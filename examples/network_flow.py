#!/usr/bin/env python3
"""Neuromorphic-assisted maximum flow (the Conclusions' future work).

The paper closes by nominating *tidal flow* as "a promising starting point
for a neuromorphic network-flow algorithm": each iteration begins with a
breadth-first forward sweep — exactly the kind of message wave the
Section-3 spiking network computes.  This script runs tidal flow on a
pipeline network with a known bottleneck, once with a conventional BFS
level oracle and once with the spiking oracle (unit-delay SSSP on the
residual network), and shows they push identical flow while the spiking
variant reports its neuromorphic sweep costs.

Run:  python examples/network_flow.py
"""

from repro.algorithms.flow import edmonds_karp, tidal_flow
from repro.workloads import bottleneck_flow_network


def main() -> None:
    stages, width, bottleneck = 5, 4, 3
    g = bottleneck_flow_network(
        stages, width, max_capacity=9, bottleneck=bottleneck, seed=11
    )
    source, sink = 0, g.n - 1
    print(
        f"pipeline network: {width} lanes x {stages} stages "
        f"({g.n} vertices, {g.m} arcs), engineered bottleneck "
        f"{width} x {bottleneck} = {width * bottleneck}\n"
    )

    conventional = tidal_flow(g, source, sink, levels="bfs")
    spiking = tidal_flow(g, source, sink, levels="spiking")
    baseline = edmonds_karp(g, source, sink)

    print(f"tidal flow (BFS levels):     value {conventional.flow_value} "
          f"in {conventional.iterations} tide(s)")
    print(f"tidal flow (spiking levels): value {spiking.flow_value} "
          f"in {spiking.iterations} tide(s)")
    print(f"Edmonds-Karp baseline:       value {baseline.flow_value} "
          f"in {baseline.iterations} augmentation(s)")
    assert conventional.flow_value == spiking.flow_value == baseline.flow_value
    assert spiking.flow_value == width * bottleneck

    cost = spiking.spiking_cost
    print("\nspiking sweep accounting:")
    print(f"  level sweeps:        {cost.extras['level_sweeps']:.0f}")
    print(f"  simulated ticks:     {cost.simulated_ticks} "
          "(each sweep's horizon = residual BFS depth)")
    print(f"  spikes:              {cost.spike_count}")
    print("\nEach sweep is the Section-3 network on the residual graph with")
    print("unit delays: first-spike times are BFS levels — the forward wave")
    print("of the tide, computed by spikes.")


if __name__ == "__main__":
    main()
