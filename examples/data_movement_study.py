#!/usr/bin/env python3
"""When does the neuromorphic advantage appear?  A data-movement study.

Reproduces the paper's central argument interactively: on a RAM that
ignores data movement, Dijkstra is untouchable — but price the Manhattan
distance every word travels (the DISTANCE model, Definition 5) and the
spiking algorithms win by a polynomial factor that grows with graph size.

Run:  python examples/data_movement_study.py
"""

from repro.algorithms import spiking_khop_pseudo, spiking_sssp_pseudo
from repro.baselines import bellman_ford_khop, dijkstra
from repro.distance_model import (
    bellman_ford_khop_distance,
    bellman_ford_lower_bound,
    dijkstra_distance,
)
from repro.workloads import gnp_graph

REGISTERS = 4


def main() -> None:
    k = 3
    print("cost of k-hop SSSP (k=3), conventional vs neuromorphic")
    print("(neuromorphic charged with the Theta(n) crossbar embedding)\n")
    header = (
        f"{'n':>4} {'m':>5} | {'RAM ops':>9} {'neuro ticks':>11} | "
        f"{'DISTANCE':>10} {'Thm6.2 LB':>10} {'neuro ticks':>11} {'ratio':>6}"
    )
    print(header)
    print("-" * len(header))
    for n in (12, 20, 32, 48):
        g = gnp_graph(n, 0.5, max_length=3, seed=n, ensure_source_reaches=True)
        neuro = spiking_khop_pseudo(g, 0, k)
        _, ram_ops = bellman_ford_khop(g, 0, k)
        _, movement = bellman_ford_khop_distance(g, 0, k, num_registers=REGISTERS)
        bound = bellman_ford_lower_bound(g.m, k, REGISTERS)
        charged = neuro.cost.with_embedding(g.n).total_time
        print(
            f"{g.n:>4} {g.m:>5} | {ram_ops.total:>9} {neuro.cost.total_time:>11} | "
            f"{movement:>10} {bound:>10.0f} {charged:>11} "
            f"{movement / charged:>6.1f}"
        )

    print(
        "\nLeft block (no data movement): the sides trade wins depending on"
        "\nthe workload.  Right block (DISTANCE model): the conventional"
        "\nmovement cost grows like k*m^1.5 while the embedded spiking cost"
        "\ngrows like n*L + m — the ratio column is the paper's provable"
        "\npolynomial advantage, widening with size."
    )

    print("\nSame story for plain SSSP on one graph:")
    g = gnp_graph(30, 0.25, max_length=6, seed=11, ensure_source_reaches=True)
    neuro = spiking_sssp_pseudo(g, 0)
    _, ops = dijkstra(g, 0)
    _, movement = dijkstra_distance(g, 0, num_registers=REGISTERS)
    print(f"  Dijkstra RAM ops:          {ops.total}")
    print(f"  Dijkstra DISTANCE cost:    {movement}")
    print(f"  spiking (native):          {neuro.cost.total_time} ticks")
    print(f"  spiking (crossbar charge): {neuro.cost.with_embedding(g.n).total_time} ticks")


if __name__ == "__main__":
    main()
