#!/usr/bin/env python3
"""The Section-7 tradeoff, measured: accuracy vs neurons vs time.

Nanongkai's algorithm buys a huge neuron saving — n neurons per scale
instead of the exact algorithm's m log(nU) circuit neurons — at the price
of a (1 + eps) error.  This script sweeps eps on one workload and prints
the whole tradeoff surface, then deploys the best setting on crossbar
hardware through a single re-embedded session.

Run:  python examples/approximation_study.py
"""

import numpy as np

from repro.algorithms import spiking_khop_approx, spiking_khop_pseudo
from repro.baselines import bellman_ford_khop
from repro.workloads import power_law_graph


def main() -> None:
    g = power_law_graph(60, attach=3, max_length=12, seed=4)
    k = 5
    exact_ref, _ = bellman_ford_khop(g, 0, k)
    exact_run = spiking_khop_pseudo(g, 0, k)
    print(f"contact network: n={g.n} m={g.m} U={g.max_length()}, k={k}")
    print(f"exact spiking algorithm: {exact_run.cost.neuron_count} neurons, "
          f"{exact_run.cost.total_time} ticks\n")

    header = (f"{'eps':>6}  {'scales':>6}  {'neurons':>8}  {'ticks':>7}  "
              f"{'max err':>8}  {'mean err':>8}")
    print(header)
    print("-" * len(header))
    for eps in (0.5, 0.25, 0.1, 0.05, None):
        r = spiking_khop_approx(g, 0, k, epsilon=eps)
        ratios = [
            r.dist[v] / exact_ref[v]
            for v in range(g.n)
            if exact_ref[v] > 0 and r.dist[v] >= 0
        ]
        label = f"{r.cost.extras['epsilon']:.3f}"
        print(
            f"{label:>6}  {r.cost.extras['scales']:>6.0f}  "
            f"{r.cost.neuron_count:>8}  {r.cost.total_time:>7}  "
            f"{max(ratios) - 1:>8.4f}  {np.mean(ratios) - 1:>8.4f}"
        )

    print("\nSmaller eps buys accuracy with more scales (and neurons), yet")
    print(f"even eps=0.05 stays far below the exact algorithm's "
          f"{exact_run.cost.neuron_count} neurons.")

    small = power_law_graph(14, attach=2, max_length=6, seed=5)
    onchip = spiking_khop_approx(small, 0, 3, on_crossbar=True)
    print(
        f"\ncrossbar deployment (n={small.n}): one H_{small.n} reused across "
        f"{onchip.cost.extras['scales']:.0f} scales, "
        f"{onchip.cost.extras['reprogram_ops']:.0f} delay reprogrammings, "
        f"{onchip.cost.neuron_count} crossbar neurons."
    )


if __name__ == "__main__":
    main()
