#!/usr/bin/env python3
"""Bounded-hop routing on a road-like network (the k-hop SSSP use case).

A delivery planner wants the shortest route from a depot that uses at most
``k`` road segments — every stop at an intersection costs fixed handling
time, so fewer, longer segments can beat many short ones.  This is exactly
the k-hop shortest path problem of Section 4.

The script compares, as the hop budget k grows:

* the exact Section 4.1 TTL algorithm (event level),
* the exact Section 4.2 polynomial algorithm (round level),
* the Section 7 (1 + eps)-approximation,
* and conventional Bellman–Ford,

reporting route quality and every cost model the paper uses.

Run:  python examples/road_navigation.py
"""

import numpy as np

from repro.algorithms import (
    reconstruct_khop_path,
    spiking_khop_approx,
    spiking_khop_poly,
    spiking_khop_pseudo,
)
from repro.baselines import bellman_ford_khop
from repro.workloads import road_like_graph


def main() -> None:
    rows, cols = 8, 10
    g = road_like_graph(rows, cols, max_length=9, highway_fraction=0.08, seed=3)
    depot = 0
    customer = rows * cols - 1
    print(f"road network: {g.n} intersections, {g.m} directed segments")
    print(f"routing {depot} -> {customer}\n")

    header = (
        f"{'k':>3}  {'exact len':>9}  {'approx len':>10}  "
        f"{'TTL ticks':>10}  {'poly ticks':>10}  {'BF ops':>9}  {'hops used':>9}"
    )
    print(header)
    print("-" * len(header))
    for k in (2, 3, 4, 6, 9, 14):
        ttl = spiking_khop_pseudo(g, depot, k)
        poly = spiking_khop_poly(g, depot, k)
        approx = spiking_khop_approx(g, depot, k)
        conv, ops = bellman_ford_khop(g, depot, k)
        assert np.array_equal(ttl.dist, conv)
        assert np.array_equal(poly.dist, conv)

        exact_len = ttl.distance_to(customer)
        approx_len = approx.dist[customer]
        hops = "-"
        if exact_len is not None:
            path = reconstruct_khop_path(g, depot, customer, k, ttl.dist)
            hops = len(path) - 1
        print(
            f"{k:>3}  {str(exact_len):>9}  "
            f"{('%.1f' % approx_len) if approx_len >= 0 else '-':>10}  "
            f"{ttl.cost.total_time:>10}  {poly.cost.total_time:>10}  "
            f"{ops.total:>9}  {str(hops):>9}"
        )

    print(
        "\nReading the table: tighter hop budgets give longer (or no) routes;"
        "\nonce k covers the best route, the length stops improving.  The"
        "\nspiking costs grow slowly with k while Bellman-Ford pays k full"
        "\nedge sweeps — the Table-1 k-hop advantage."
    )


if __name__ == "__main__":
    main()
