#!/usr/bin/env python3
"""Quickstart: spiking shortest paths in five minutes.

Builds a small random graph, runs the Section-3 spiking SSSP (the graph
*is* the network: delays encode lengths, first-spike times are distances),
checks the answer against conventional Dijkstra, reconstructs a path, and
prints the neuromorphic cost report next to the conventional op counts.

Run:  python examples/quickstart.py
"""

from repro.algorithms import reconstruct_path, spiking_sssp_pseudo
from repro.baselines import dijkstra
from repro.workloads import gnp_graph


def main() -> None:
    # 1. A workload: 50 vertices, sparse, integer lengths 1..10.
    g = gnp_graph(50, 0.08, max_length=10, seed=7, ensure_source_reaches=True)
    print(f"graph: {g.n} vertices, {g.m} edges, longest edge U = {g.max_length()}")

    # 2. The spiking algorithm.  One neuron per vertex, one synapse per
    #    edge with delay = length; stimulate the source; read first spikes.
    result = spiking_sssp_pseudo(g, source=0)
    print(f"\ndistances from vertex 0 (first-spike times):\n{result.dist}")

    # 3. Sanity: agrees with Dijkstra.
    conventional, ops = dijkstra(g, 0)
    assert (result.dist == conventional).all()
    print("\nmatches conventional Dijkstra ✓")

    # 4. A concrete path (Sections 3 / 4.3: the spiking network latches
    #    predecessors; here recovered from the distances).
    target = int(result.dist.argmax())
    path = reconstruct_path(g, result.dist, 0, target)
    print(f"\nshortest path to the farthest vertex {target}: {path}")

    # 5. The paper's cost model (Theorem 4.1: O(L + m)).
    c = result.cost
    print("\nneuromorphic cost report")
    print(f"  simulated time T (= L):   {c.simulated_ticks} ticks")
    print(f"  loading (O(m)):           {c.loading_ticks} ticks")
    print(f"  total:                    {c.total_time} ticks")
    print(f"  neurons / synapses:       {c.neuron_count} / {c.synapse_count}")
    print(f"  spikes (energy proxy):    {c.spike_count}")
    print(f"\nconventional Dijkstra:      {ops.total} RAM operations")
    winner = "neuromorphic" if c.total_time < ops.total else "conventional"
    print(f"winner on this workload:    {winner}")


if __name__ == "__main__":
    main()
