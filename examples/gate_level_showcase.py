#!/usr/bin/env python3
"""The complete gate-level construction, end to end (Sections 4.1 + 5).

Compiles a small graph — together with every per-vertex wired-OR max
circuit and depth-2 TTL decrementer — into ONE recurrent network of LIF
threshold gates, runs it spike by spike on the dense engine, and decodes
the k-hop distances from arrival-detector spike times.  Also demonstrates
the Section-5 circuits standalone.

Run:  python examples/gate_level_showcase.py
"""

from repro.algorithms import compile_khop_pseudo_gate_level
from repro.algorithms.khop_pseudo import run_khop_gate_level
from repro.baselines import bellman_ford_khop
from repro.circuits import (
    CircuitBuilder,
    carry_lookahead_adder,
    run_circuit,
    wired_or_max,
)
from repro.workloads import WeightedDigraph


def showcase_circuits() -> None:
    print("--- Section 5 circuits, standalone ---")
    b = CircuitBuilder()
    inputs = [b.input_bits(f"x{i}", 4) for i in range(3)]
    res = wired_or_max(b, inputs)
    b.output_bits("max", res.out_bits)
    out = run_circuit(b, {"x0": 11, "x1": 6, "x2": 9})
    print(f"wired-OR max(11, 6, 9) = {out['max']}   "
          f"[{b.size} neurons, depth {b.depth}]")

    b2 = CircuitBuilder()
    a_bits = b2.input_bits("a", 5)
    c_bits = b2.input_bits("b", 5)
    b2.output_bits("sum", carry_lookahead_adder(b2, a_bits, c_bits))
    out2 = run_circuit(b2, {"a": 19, "b": 24})
    print(f"depth-2 adder 19 + 24 = {out2['sum']}   "
          f"[{b2.size} neurons, depth {b2.depth}]")


def showcase_compiled_algorithm() -> None:
    print("\n--- Section 4.1 compiled to gates ---")
    # 0 -> 1 -> 2 is short but 2 hops; 0 -> 2 is long but 1 hop.
    g = WeightedDigraph(4, [(0, 1, 1), (1, 2, 1), (0, 2, 3), (2, 3, 2)])
    for k in (1, 2, 3):
        compiled = compile_khop_pseudo_gate_level(g, 0, k)
        result = run_khop_gate_level(compiled)
        reference, _ = bellman_ford_khop(g, 0, k)
        assert (result.dist == reference).all()
        print(
            f"k={k}: distances {result.dist.tolist()}   "
            f"[{compiled.net.n_neurons} gate neurons, "
            f"edge scale {compiled.scale}, "
            f"{result.cost.spike_count} spikes]"
        )
    print("\nEvery number above was computed by threshold gates exchanging")
    print("spikes — max circuits, decrementers, and delay-encoded edges —")
    print("and matches conventional Bellman-Ford exactly.")


def main() -> None:
    showcase_circuits()
    showcase_compiled_algorithm()


if __name__ == "__main__":
    main()
