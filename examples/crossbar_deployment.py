#!/usr/bin/env python3
"""Deploying graphs onto crossbar hardware (Section 4.4 end to end).

Real spiking architectures expose a grid-like topology, not an arbitrary
one.  This script embeds a sequence of social-network-ish graphs into the
crossbar H_n, runs SSSP natively on the embedded network, shows the
O(n)-factor embedding cost the paper charges, and estimates per-platform
energy for each run (Appendix A).

Run:  python examples/crossbar_deployment.py
"""

import numpy as np

from repro.algorithms import spiking_sssp_pseudo
from repro.baselines import dijkstra
from repro.embedding import EmbeddingSession, embedded_sssp
from repro.hardware import PLATFORMS, chips_required, energy_comparison
from repro.workloads import power_law_graph


def main() -> None:
    n = 16
    session = EmbeddingSession(n=n)
    print(f"crossbar H_{n}: {2 * n * n} neurons "
          f"({chips_required(2 * n * n, PLATFORMS['TrueNorth'])} TrueNorth chip(s))\n")

    for seed in (1, 2, 3):
        g = power_law_graph(n, attach=2, max_length=6, seed=seed)
        emb = session.embed(g)  # unembeds the previous graph first
        native = spiking_sssp_pseudo(g, 0)
        onchip = embedded_sssp(g, 0, embedded=emb)
        assert np.array_equal(native.dist, onchip.dist)

        slowdown = onchip.cost.simulated_ticks / max(1, native.cost.simulated_ticks)
        print(f"graph #{seed}: n={g.n} m={g.m}")
        print(f"  embedded by reprogramming {emb.programmed_edges} Type-2 delays "
              f"(cumulative session ops: {session.reprogram_ops})")
        print(f"  native SNN time:   {native.cost.simulated_ticks} ticks")
        print(f"  crossbar time:     {onchip.cost.simulated_ticks} ticks "
              f"({slowdown:.0f}x — the Theta(n) embedding cost)")

        _, ops = dijkstra(g, 0)
        energy = energy_comparison(onchip.cost, ops)
        loihi = energy["Loihi"]["joules"]
        cpu = energy["Core i7-9700T"]["joules"]
        print(f"  energy: Loihi {loihi:.2e} J vs CPU {cpu:.2e} J "
              f"({cpu / loihi:.0f}x)\n")

    print("The same crossbar served all three graphs; each switch cost only")
    print("O(m) delay updates (Section 4.4's unembed/re-embed argument).")


if __name__ == "__main__":
    main()
