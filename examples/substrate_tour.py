#!/usr/bin/env python3
"""A tour of the SNN substrate: rasters, engines, CONGEST, chip mapping.

Runs one small Section-3 shortest-path network and inspects it from every
angle the library offers: an ASCII spike raster (watch the wavefront), the
dense/event engine equivalence, the CONGEST-model reduction of Section 2.2
(rounds + one-bit messages), and placement onto Loihi-style cores with
spike-traffic accounting (Appendix A).

Run:  python examples/substrate_tour.py
"""

from repro.core import Network, simulate
from repro.core.raster import firing_rates, spike_raster
from repro.hardware import LOIHI
from repro.hardware.mapping import (
    greedy_locality_mapping,
    mapping_traffic,
    round_robin_mapping,
)
from repro.nga.congest import simulate_snn_in_congest
from repro.workloads import grid_graph


def main() -> None:
    g = grid_graph(3, 4, max_length=3, seed=5)
    net = Network()
    ids = [net.add_neuron(f"v{v}", one_shot=True) for v in range(g.n)]
    for u, v, w in g.edges():
        net.add_synapse(ids[u], ids[v], delay=int(w))

    print("1) The spike wavefront (one row per vertex, '|' = spike):\n")
    dense = simulate(net, [ids[0]], engine="dense", max_steps=60,
                     record_spikes=True)
    print(spike_raster(dense, ids, names=[f"v{v}" for v in range(g.n)]))
    print(f"\n   first-spike times are the distances: "
          f"{dense.first_spike[:g.n].tolist()}")

    print("\n2) Engine equivalence (dense tick-stepping vs event-driven):")
    event = simulate(net, [ids[0]], engine="event", max_steps=60)
    assert (dense.first_spike == event.first_spike).all()
    print("   identical spike times ✓")
    rates = firing_rates(dense)
    print(f"   busiest neuron rate: {rates.max():.3f} spikes/tick "
          "(event-driven pays only for spikes)")

    print("\n3) The CONGEST reduction (Section 2.2): one round per tick,")
    print("   one bit per link:")
    trace = simulate_snn_in_congest(net, [ids[0]], rounds=dense.final_tick)
    assert (trace.first_spike == dense.first_spike).all()
    print(f"   {trace.rounds} rounds, {trace.messages} one-bit messages, "
          f"max link congestion {trace.max_link_bits} bit ✓")

    print("\n4) Placing the network on Loihi-style cores (Appendix A):")
    for label, mapping in (
        ("greedy locality", greedy_locality_mapping(net, LOIHI)),
        ("round robin", round_robin_mapping(net, LOIHI)),
    ):
        t = mapping_traffic(net, mapping, dense)
        print(
            f"   {label:16s}: {mapping.num_cores} core(s), "
            f"traffic intra/inter-core/inter-chip = "
            f"{t.intra_core}/{t.inter_core}/{t.inter_chip}"
        )
    print("\n   (tiny network -> one core; scale n up and the greedy mapper")
    print("   keeps the wavefront's traffic on-core where round robin leaks)")


if __name__ == "__main__":
    main()
