"""Regenerate the golden regression fixtures under ``tests/golden/``.

Each fixture freezes one algorithm run on a fixed seeded input: the graph
(as an explicit edge list, so fixtures do not depend on generator
stability), the answer, the :class:`~repro.core.cost.CostReport` fields,
and — for the SNN-level SSSP runs — the full spike raster.  Every fixture
also pins the certifier's size *and* runtime budgets (settle/quiescence
from the temporal analysis) for its graph; ``repro lint --golden`` /
``repro certify --golden`` recompute and diff them, so a timing
regression fails the same gate as a raster drift.  The golden
suite (``tests/test_golden.py``) replays every fixture on every engine and
compares spike for spike, catching any semantic drift in the engines or
the algorithm drivers.

Run after an *intentional* semantic change, then review the diff:

    PYTHONPATH=src python tools/gen_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.algorithms import spiking_khop_poly, spiking_sssp_pseudo, sssp_network
from repro.cli import _budget_payload
from repro.core import simulate, simulate_batch
from repro.workloads import WeightedDigraph, gnp_graph

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"

SCHEMA = "repro.golden/v1"

#: Every execution path a raster fixture must replay identically on.  The
#: golden suite parametrizes over this same list (``tests/test_golden.py``
#: imports it), so adding an engine here automatically extends the suite.
ENGINE_PATHS = ("dense", "event", "batch", "sparse")

#: The fixed 6-vertex graph of tests/conftest.py (known distances).
SMALL_EDGES = [
    (0, 1, 2), (0, 2, 7), (1, 2, 3), (1, 3, 6), (2, 3, 1), (3, 4, 2), (2, 4, 9),
]


def _graph_payload(g: WeightedDigraph) -> dict:
    return {"n": g.n, "edges": [[int(u), int(v), int(w)] for u, v, w in g.edges()]}


def _cost_payload(cost) -> dict:
    out = {
        "algorithm": cost.algorithm,
        "simulated_ticks": cost.simulated_ticks,
        "loading_ticks": cost.loading_ticks,
        "neuron_count": cost.neuron_count,
        "synapse_count": cost.synapse_count,
        "spike_count": cost.spike_count,
    }
    if cost.rounds is not None:
        out["rounds"] = cost.rounds
        out["round_length"] = cost.round_length
        out["message_bits"] = cost.message_bits
    return out


def replay_sssp(
    net, ids, source: int, horizon: int, engine: str
):
    """Run one fixture's SSSP network on the named execution path.

    ``engine`` is one of :data:`ENGINE_PATHS`; ``"batch"`` means a
    single-item batched dense run, the rest dispatch through
    :func:`repro.core.simulate`.
    """
    if engine == "batch":
        return simulate_batch(
            net, [[ids[source]]], engine="dense", max_steps=horizon,
            watch=ids, record_spikes=True,
        )[0]
    return simulate(
        net, [ids[source]], engine=engine, max_steps=horizon,
        watch=ids, record_spikes=True,
    )


def _raster_of(sim) -> dict:
    return {
        str(t): sorted(int(i) for i in ids_t)
        for t, ids_t in sorted(sim.spike_events.items())
    }


def sssp_fixture(name: str, g: WeightedDigraph, source: int) -> dict:
    r = spiking_sssp_pseudo(g, source)
    net, ids = sssp_network(g)
    horizon = (g.n - 1) * max(1, g.max_length()) + 1
    sim = replay_sssp(net, ids, source, horizon, "dense")
    raster = _raster_of(sim)
    # Self-check before freezing: every execution path must already agree
    # with the dense raster (the event engine's final tick legitimately
    # differs; dense-semantics paths must match it exactly).
    for engine in ENGINE_PATHS:
        if engine == "dense":
            continue
        other = replay_sssp(net, ids, source, horizon, engine)
        assert _raster_of(other) == raster, f"{name}: {engine} raster drift"
        if engine != "event":
            assert other.final_tick == sim.final_tick, f"{name}: {engine}"
    return {
        "schema": SCHEMA,
        "name": name,
        "algorithm": "sssp_pseudo",
        "graph": _graph_payload(g),
        "source": source,
        "dist": r.dist.tolist(),
        "cost": _cost_payload(r.cost),
        "engines": list(ENGINE_PATHS),
        "final_tick": sim.final_tick,
        "raster": raster,
        "budgets": _budget_payload(g, 3),
    }


def khop_fixture(name: str, g: WeightedDigraph, source: int, k: int) -> dict:
    r = spiking_khop_poly(g, source, k)
    return {
        "schema": SCHEMA,
        "name": name,
        "algorithm": "khop_poly",
        "graph": _graph_payload(g),
        "source": source,
        "k": k,
        "dist": r.dist.tolist(),
        "cost": _cost_payload(r.cost),
        "budgets": _budget_payload(g, k),
    }


def build_fixtures() -> dict:
    small = WeightedDigraph(6, SMALL_EDGES)
    gnp = gnp_graph(12, 0.25, max_length=5, seed=3, ensure_source_reaches=True)
    return {
        "sssp_small.json": sssp_fixture("sssp_small", small, source=0),
        "sssp_gnp12.json": sssp_fixture("sssp_gnp12", gnp, source=0),
        "khop_poly_gnp12.json": khop_fixture("khop_poly_gnp12", gnp, source=0, k=3),
    }


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for fname, payload in build_fixtures().items():
        path = GOLDEN_DIR / fname
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
