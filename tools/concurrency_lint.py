"""Lock-discipline AST lint for the serving layer (rules SC2xx).

The resilience contract of ``repro.service`` depends on a handful of
lock-ordering disciplines that nothing enforced mechanically: the
exactly-once completion claim must never wait on a ticket *while holding*
a server lock (a crashed worker's recovery path takes the same locks), a
worker submission or blocking socket call under a lock serializes the
whole pool behind one caller, and acquiring a plain ``threading.Lock``
reentrantly deadlocks outright.  This tool walks the AST of the serving
modules and flags those patterns before they become a wedged-pool
incident.

Rule catalog (stable codes, continuing the SC table into the 2xx block):

========  =======================  ========  ==================================
Code      Rule                     Severity  Fires when
========  =======================  ========  ==================================
SC201     lock-across-result       error     ``<x>.result(...)`` is called while
                                             a ``with <lock>`` block is open
SC202     lock-across-submit       error     work is submitted to a pool/queue
                                             (``.submit/.offer/.map``) under a
                                             held lock
SC203     lock-across-blocking-io  error     a blocking socket/stream call
                                             (``recv/accept/connect/sendall/
                                             readline/makefile``) under a held
                                             lock
SC204     nested-lock-acquire      error     the same lock expression is
                                             acquired inside its own ``with``
                                             block and is not a known RLock
SC205     sleep-under-lock         warning   ``time.sleep`` under a held lock
========  =======================  ========  ==================================

"Lock" is recognized heuristically: a ``with`` context expression whose
dotted source name ends in ``lock`` (``self._lock``, ``self._reg_lock``,
``graph.lock`` ...), the repo's naming convention.  Locks created as
``threading.RLock()`` anywhere in the scanned module are treated as
reentrant and exempt from SC204; so are attributes listed in
``KNOWN_REENTRANT``.  A call can silence one finding with a trailing
``# sc2xx: allow[-CODE]`` comment on its line (used where waiting under
the lock *is* the documented design, e.g. a condition-variable wait).

Usage::

    python tools/concurrency_lint.py [paths...]   # default: src/repro/service

Exit status 1 on any error-severity finding, which is what makes it a CI
gate (see ``.github/workflows/ci.yml``, lint job).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = [REPO_ROOT / "src" / "repro" / "service"]

#: Attribute names known to hold ``threading.RLock`` instances even when the
#: assignment lives in a module outside the scan set.
KNOWN_REENTRANT: Set[str] = {"lock"}  # MutableGraph.lock is an RLock

#: Method names that submit work to a pool or queue (SC202).
SUBMIT_METHODS = {"submit", "offer", "map", "apply_async", "put"}

#: Method names that block on a socket or stream peer (SC203).
BLOCKING_IO_METHODS = {
    "recv",
    "recv_into",
    "accept",
    "connect",
    "sendall",
    "readline",
    "makefile",
    "create_connection",
}

RULES: Dict[str, Tuple[str, str]] = {
    "SC201": ("lock-across-result", "error"),
    "SC202": ("lock-across-submit", "error"),
    "SC203": ("lock-across-blocking-io", "error"),
    "SC204": ("nested-lock-acquire", "error"),
    "SC205": ("sleep-under-lock", "warning"),
}


@dataclass(frozen=True)
class Finding:
    code: str
    path: Path
    line: int
    message: str

    @property
    def severity(self) -> str:
        return RULES[self.code][1]

    def render(self) -> str:
        rule, severity = RULES[self.code]
        rel = self.path.relative_to(REPO_ROOT) if self.path.is_absolute() else self.path
        return f"{rel}:{self.line}: {self.code} [{severity}] {rule}: {self.message}"


def _dotted(node: ast.AST) -> Optional[str]:
    """``self._reg_lock`` -> "self._reg_lock"; None for non-dotted exprs."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _is_lock_expr(node: ast.AST) -> Optional[str]:
    name = _dotted(node)
    if name is None:
        return None
    leaf = name.rsplit(".", 1)[-1]
    return name if leaf.lower().endswith("lock") else None


def _rlock_attrs(tree: ast.Module) -> Set[str]:
    """Attribute/name leaves assigned ``threading.RLock()`` in this module."""
    out: Set[str] = set(KNOWN_REENTRANT)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and (_dotted(value.func) or "").rsplit(".", 1)[-1] == "RLock"
        ):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            name = _dotted(target)
            if name:
                out.add(name.rsplit(".", 1)[-1])
    return out


def _allowed(source_lines: List[str], lineno: int, code: str) -> bool:
    if not 1 <= lineno <= len(source_lines):
        return False
    line = source_lines[lineno - 1]
    marker = "# sc2xx: allow"
    idx = line.find(marker)
    if idx < 0:
        return False
    rest = line[idx + len(marker) :].strip().lower()
    return rest == "" or code.lower() in rest


class _LockWalker(ast.NodeVisitor):
    """Tracks the stack of held lock expressions while walking one module."""

    def __init__(self, path: Path, source_lines: List[str], rlocks: Set[str]):
        self.path = path
        self.lines = source_lines
        self.rlocks = rlocks
        self.held: List[str] = []
        self.findings: List[Finding] = []

    # -- helpers ------------------------------------------------------- #

    def _emit(self, code: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if _allowed(self.lines, lineno, code):
            return
        self.findings.append(Finding(code, self.path, lineno, message))

    # -- scope boundaries: a nested def/lambda runs later, not under the
    #    lock that is merely *lexically* enclosing its definition -------- #

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_new_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_new_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_new_scope(node)

    def _visit_new_scope(self, node: ast.AST) -> None:
        saved, self.held = self.held, []
        self.generic_visit(node)
        self.held = saved

    # -- the core: with-blocks and calls -------------------------------- #

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            expr = item.context_expr
            # `with lock:` or `with lock.acquire_timeout(...)`-style guards
            lock_name = _is_lock_expr(expr)
            if lock_name is None and isinstance(expr, ast.Call):
                lock_name = _is_lock_expr(expr.func)
            if lock_name is None:
                continue
            leaf = lock_name.rsplit(".", 1)[-1]
            if lock_name in self.held and leaf not in self.rlocks:
                self._emit(
                    "SC204",
                    expr,
                    f"lock {lock_name!r} acquired while already held "
                    "(deadlock unless it is an RLock)",
                )
            acquired.append(lock_name)
        self.held.extend(acquired)
        self.generic_visit(node)
        for _ in acquired:
            self.held.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            name = _dotted(node.func) or ""
            leaf = name.rsplit(".", 1)[-1]
            held = ", ".join(sorted(set(self.held)))
            if leaf == "result":
                self._emit(
                    "SC201",
                    node,
                    f"{name or 'ticket.result'}() awaited while holding "
                    f"{held}; a recovery path completing the ticket may "
                    "need that lock",
                )
            elif leaf in SUBMIT_METHODS:
                self._emit(
                    "SC202",
                    node,
                    f"{name}() submits work while holding {held}; the pool "
                    "serializes behind this caller",
                )
            elif leaf in BLOCKING_IO_METHODS:
                self._emit(
                    "SC203",
                    node,
                    f"{name}() can block on a peer while holding {held}",
                )
            elif name in ("time.sleep", "sleep"):
                self._emit(
                    "SC205", node, f"sleeping while holding {held}"
                )
        self.generic_visit(node)


def lint_file(path: Path) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    walker = _LockWalker(path, source.splitlines(), _rlock_attrs(tree))
    walker.visit(tree)
    return walker.findings


def iter_files(paths: List[Path]) -> Iterator[Path]:
    for p in paths:
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    paths = [Path(a) for a in argv] or DEFAULT_PATHS
    findings: List[Finding] = []
    n_files = 0
    for f in iter_files(paths):
        n_files += 1
        findings.extend(lint_file(f))
    for finding in findings:
        print(finding.render())
    errors = [f for f in findings if f.severity == "error"]
    print(
        f"concurrency lint: {n_files} files, {len(findings)} findings, "
        f"{len(errors)} errors"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
