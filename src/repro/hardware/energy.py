"""Energy estimation from simulation outputs (paper Appendix A).

Neuromorphic energy is event-driven: outgoing communication happens only at
spikes, so a run's energy is well approximated by
``spike_count * pJ/spike`` (the figure of merit Table 3 reports per
platform).  The CPU comparison charges the conventional baseline's
operation count at one op per cycle against the chip's running power —
deliberately favorable to the CPU (real memory-bound graph codes sustain
far less than 1 op/cycle).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.counting import OpCounter
from repro.core.cost import CostReport
from repro.errors import ValidationError
from repro.hardware.platforms import PLATFORMS, PlatformSpec

__all__ = [
    "spike_energy_joules",
    "cpu_energy_joules",
    "chips_required",
    "energy_comparison",
]


def spike_energy_joules(spike_count: int, platform: PlatformSpec) -> Optional[float]:
    """Energy of ``spike_count`` spike events on ``platform`` (None if the
    platform does not report pJ/spike)."""
    if spike_count < 0:
        raise ValidationError(f"spike_count must be >= 0, got {spike_count}")
    pj = platform.pj_per_spike_mid
    if pj is None:
        return None
    return spike_count * pj * 1e-12


def cpu_energy_joules(
    op_count: int,
    platform: PlatformSpec,
    *,
    ops_per_cycle: float = 1.0,
) -> Optional[float]:
    """Energy of ``op_count`` RAM operations on a CPU platform.

    ``time = ops / (clock * ops_per_cycle)``, ``energy = time * power``.
    """
    if op_count < 0:
        raise ValidationError(f"op_count must be >= 0, got {op_count}")
    if platform.clock_hz is None or platform.power_watts_mid is None:
        return None
    seconds = op_count / (platform.clock_hz * ops_per_cycle)
    return seconds * platform.power_watts_mid


def chips_required(neuron_count: int, platform: PlatformSpec) -> Optional[int]:
    """How many chips the run's neuron footprint occupies."""
    per_chip = platform.neurons_per_chip
    if per_chip is None or per_chip == 0:
        return None
    return max(1, -(-neuron_count // per_chip))


def energy_comparison(
    neuro_cost: CostReport,
    baseline_ops: OpCounter,
    *,
    ops_per_cycle: float = 1.0,
) -> Dict[str, Dict[str, Optional[float]]]:
    """Per-platform energy of the neuromorphic run vs the CPU baseline.

    Returns ``{platform: {"joules": ..., "chips": ...}}`` for neuromorphic
    platforms and ``{"joules": ...}`` for the CPU reference, mirroring the
    Appendix-A comparison.
    """
    out: Dict[str, Dict[str, Optional[float]]] = {}
    for name, spec in PLATFORMS.items():
        if spec.is_cpu:
            out[name] = {
                "joules": cpu_energy_joules(
                    baseline_ops.total, spec, ops_per_cycle=ops_per_cycle
                ),
                "chips": 1,
            }
        else:
            out[name] = {
                "joules": spike_energy_joules(neuro_cost.spike_count, spec),
                "chips": chips_required(neuro_cost.neuron_count, spec),
            }
    return out


def wall_time_estimate(
    simulated_ticks: int,
    platform: PlatformSpec,
    *,
    tick_seconds: Optional[float] = None,
) -> Optional[float]:
    """Estimated wall-clock of a run: ``ticks * tick duration``.

    The tick duration defaults to one clock period on synchronously
    clocked platforms (TrueNorth's 1 kHz neurosynaptic tick is the
    canonical example) and must be supplied for asynchronous designs
    (Loihi's barrier-sync tick is workload-dependent; Table 3 notes its
    within-tile spike latency of 2.1 ns).
    """
    if simulated_ticks < 0:
        raise ValidationError(f"ticks must be >= 0, got {simulated_ticks}")
    if tick_seconds is None:
        if platform.clock_hz is None:
            return None
        tick_seconds = 1.0 / platform.clock_hz
    return simulated_ticks * tick_seconds
