"""Neuromorphic platform registry and energy model (paper Appendix A,
Table 3).

The registry carries the published per-platform constants (neurons per
core, cores per chip, pJ per spike event, running power); the energy model
converts a simulation's spike count into Joules per platform and compares
against a CPU executing the conventional baseline — the energy story the
appendix tells quantitatively.
"""

from repro.hardware.platforms import (
    CORE_I7_9700T,
    LOIHI,
    PLATFORMS,
    SPINNAKER1,
    SPINNAKER2,
    TRUENORTH,
    PlatformSpec,
)
from repro.hardware.energy import (
    chips_required,
    wall_time_estimate,
    cpu_energy_joules,
    energy_comparison,
    spike_energy_joules,
)

__all__ = [
    "PlatformSpec",
    "PLATFORMS",
    "TRUENORTH",
    "LOIHI",
    "SPINNAKER1",
    "SPINNAKER2",
    "CORE_I7_9700T",
    "spike_energy_joules",
    "cpu_energy_joules",
    "chips_required",
    "wall_time_estimate",
    "energy_comparison",
]
