"""Mapping SNNs onto many-core neuromorphic chips (paper Appendix A).

Every platform in Table 3 is organized as local cores of up to ~1000
densely connected neurons, many cores per chip, and boards of chips
(Figure 7).  Spikes between neurons on the same core are nearly free;
crossing a core (and worse, a chip) costs routing energy and latency.

This module provides:

* :func:`greedy_locality_mapping` — assigns neurons to fixed-capacity
  cores in a BFS order over the synapse graph, keeping tightly coupled
  neurons together;
* :func:`round_robin_mapping` — the locality-oblivious strawman;
* :func:`mapping_traffic` — given a mapping and a simulation result,
  counts intra-core, inter-core, and inter-chip *spike-hops* (each spike
  crosses each of its synapses once), the quantity routing energy scales
  with.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.network import Network
from repro.core.result import SimulationResult
from repro.errors import ValidationError
from repro.hardware.platforms import PlatformSpec

__all__ = [
    "CoreMapping",
    "greedy_locality_mapping",
    "round_robin_mapping",
    "mapping_traffic",
    "TrafficReport",
]


@dataclass
class CoreMapping:
    """Assignment of neurons to cores and cores to chips."""

    core_of: np.ndarray  #: int64[n], core index per neuron
    chip_of_core: np.ndarray  #: int64[num_cores]
    neurons_per_core: int
    cores_per_chip: int

    @property
    def num_cores(self) -> int:
        return int(self.chip_of_core.size)

    @property
    def num_chips(self) -> int:
        return int(self.chip_of_core.max()) + 1 if self.chip_of_core.size else 0

    def chip_of(self, neuron: int) -> int:
        return int(self.chip_of_core[self.core_of[neuron]])

    def core_loads(self) -> np.ndarray:
        return np.bincount(self.core_of, minlength=self.num_cores)


def _capacities(platform: PlatformSpec) -> (int, int):
    npc = platform.neurons_per_core or 1024
    cpc = platform.cores_per_chip or 128
    return int(npc), int(cpc)


def round_robin_mapping(
    network: Network, platform: PlatformSpec
) -> CoreMapping:
    """Locality-oblivious mapping: neuron i goes to core i // capacity."""
    net = network.compile()
    npc, cpc = _capacities(platform)
    core_of = np.arange(net.n, dtype=np.int64) // npc
    num_cores = int(core_of.max()) + 1 if net.n else 0
    chip_of_core = np.arange(num_cores, dtype=np.int64) // cpc
    return CoreMapping(core_of, chip_of_core, npc, cpc)


def greedy_locality_mapping(
    network: Network, platform: PlatformSpec
) -> CoreMapping:
    """Fill cores in BFS order over the (undirected) synapse graph.

    Neighboring neurons land on the same core until it fills, so local
    circuit motifs (a vertex's max circuit, a latch pair) stay on-core —
    the placement objective neuromorphic toolchains optimize for.
    """
    net = network.compile()
    npc, cpc = _capacities(platform)
    n = net.n
    # undirected adjacency from synapses
    neighbors: List[List[int]] = [[] for _ in range(n)]
    for u in range(n):
        sl = net.out_synapses(u)
        for s in range(sl.start, sl.stop):
            v = int(net.syn_dst[s])
            if v != u:
                neighbors[u].append(v)
                neighbors[v].append(u)
    core_of = np.full(n, -1, dtype=np.int64)
    order: List[int] = []
    seen = np.zeros(n, dtype=bool)
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        queue = deque([start])
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in neighbors[u]:
                if not seen[v]:
                    seen[v] = True
                    queue.append(v)
    for idx, u in enumerate(order):
        core_of[u] = idx // npc
    num_cores = int(core_of.max()) + 1 if n else 0
    chip_of_core = np.arange(num_cores, dtype=np.int64) // cpc
    return CoreMapping(core_of, chip_of_core, npc, cpc)


@dataclass
class TrafficReport:
    """Spike-hop traffic split by routing tier."""

    intra_core: int
    inter_core: int
    inter_chip: int

    @property
    def total(self) -> int:
        return self.intra_core + self.inter_core + self.inter_chip


def mapping_traffic(
    network: Network,
    mapping: CoreMapping,
    result: SimulationResult,
) -> TrafficReport:
    """Count spike-hops per routing tier for a finished simulation.

    Each spike of neuron ``u`` traverses every outgoing synapse once; the
    tier is decided by where the target neuron lives.  ``inter_chip`` hops
    also count as leaving their core, but are reported in the costlier
    tier only.
    """
    net = network.compile()
    if mapping.core_of.size != net.n:
        raise ValidationError("mapping does not match network size")
    intra = inter = chips = 0
    for u in range(net.n):
        count = int(result.spike_counts[u])
        if count == 0:
            continue
        sl = net.out_synapses(u)
        for s in range(sl.start, sl.stop):
            v = int(net.syn_dst[s])
            if mapping.core_of[u] == mapping.core_of[v]:
                intra += count
            elif mapping.chip_of(u) == mapping.chip_of(v):
                inter += count
            else:
                chips += count
    return TrafficReport(intra_core=intra, inter_core=inter, inter_chip=chips)
