"""Platform constants from Table 3 ("Selection of Current Scalable
Neuromorphic Platforms"), plus the reference CPU column.

Several entries are published as ranges or estimates (the appendix notes a
memory tradespace); we store the ranges and expose midpoints for the
energy model.  ``None`` marks quantities the table leaves unreported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "PlatformSpec",
    "TRUENORTH",
    "LOIHI",
    "SPINNAKER1",
    "SPINNAKER2",
    "CORE_I7_9700T",
    "PLATFORMS",
]


@dataclass(frozen=True)
class PlatformSpec:
    """One column of Table 3."""

    name: str
    organization: str
    design: str
    process_nm: int
    clock_hz: Optional[float]  #: None for asynchronous designs
    neurons_per_core: Optional[int]
    cores_per_chip: Optional[int]
    #: per-chip neuron count when the source reports it chip-wise
    neurons_per_chip_override: Optional[int] = None
    pj_per_spike: Optional[Tuple[float, float]] = None  #: (low, high) range
    power_watts: Optional[Tuple[float, float]] = None  #: (low, high) range

    @property
    def neurons_per_chip(self) -> Optional[int]:
        if self.neurons_per_chip_override is not None:
            return self.neurons_per_chip_override
        if self.neurons_per_core is None or self.cores_per_chip is None:
            return None
        return self.neurons_per_core * self.cores_per_chip

    @property
    def pj_per_spike_mid(self) -> Optional[float]:
        if self.pj_per_spike is None:
            return None
        return 0.5 * (self.pj_per_spike[0] + self.pj_per_spike[1])

    @property
    def power_watts_mid(self) -> Optional[float]:
        if self.power_watts is None:
            return None
        return 0.5 * (self.power_watts[0] + self.power_watts[1])

    @property
    def is_cpu(self) -> bool:
        return self.design == "CPU"


TRUENORTH = PlatformSpec(
    name="TrueNorth",
    organization="IBM",
    design="ASIC",
    process_nm=28,
    clock_hz=1e3,
    neurons_per_core=256,
    cores_per_chip=4096,
    pj_per_spike=(26.0, 26.0),
    power_watts=(0.070, 0.150),
)

LOIHI = PlatformSpec(
    name="Loihi",
    organization="Intel",
    design="ASIC",
    process_nm=14,
    clock_hz=None,  # asynchronous; within-tile spike latency 2.1 ns
    neurons_per_core=1024,
    cores_per_chip=128,
    pj_per_spike=(23.6, 23.6),
    power_watts=(0.45, 0.45),
)

SPINNAKER1 = PlatformSpec(
    name="SpiNNaker 1",
    organization="U. Manchester",
    design="ARM",
    process_nm=130,
    clock_hz=None,
    neurons_per_core=1000,
    cores_per_chip=16,
    pj_per_spike=(6e3, 8e3),
    power_watts=(1.0, 1.0),
)

SPINNAKER2 = PlatformSpec(
    name="SpiNNaker 2",
    organization="U. Manchester",
    design="ARM",
    process_nm=22,
    clock_hz=350e6,  # 100-600 MHz range midpoint
    neurons_per_core=None,
    cores_per_chip=None,
    neurons_per_chip_override=800_000,
    pj_per_spike=None,  # unreported in Table 3
    power_watts=(0.72, 0.72),
)

CORE_I7_9700T = PlatformSpec(
    name="Core i7-9700T",
    organization="Intel",
    design="CPU",
    process_nm=14,
    clock_hz=4.3e9,  # max turbo
    neurons_per_core=None,
    cores_per_chip=None,
    pj_per_spike=None,
    power_watts=(35.0, 35.0),  # TDP
)

PLATFORMS: Dict[str, PlatformSpec] = {
    p.name: p for p in (TRUENORTH, LOIHI, SPINNAKER1, SPINNAKER2, CORE_I7_9700T)
}
