"""Structure-keyed build cache for compiled networks and circuits.

The many-query-per-graph workloads (all-pairs SSSP, fault sweeps, repeated
benchmark trials, the :mod:`repro.service` query server) re-ask one topology
thousands of times; rebuilding the :class:`~repro.core.network.Network` per
query costs ``O(m)`` Python calls each time, dwarfing the spiking phase
itself on small horizons.  On hardware the graph is loaded once and only the
stimulus changes — this cache is the software analogue: builds are keyed by
a fingerprint of the structure that determines them (topology, weights,
delays, build options), so repeated queries skip network construction and
compilation entirely.

Cached values are treated as frozen: callers must not mutate a network
fetched from the cache.  The cache is a bounded LRU and is **thread-safe**:
all lookup/insert/evict/clear transitions happen under one reentrant lock,
so the :mod:`repro.service` worker pool can share
:data:`default_build_cache` across threads.  A miss builds while holding
the lock — concurrent misses on the same key therefore build exactly once,
which is the behavior the serving layer wants (builds are rare and shared,
and duplicate builds would waste the ``O(m)`` work the cache exists to
avoid).  Use :data:`default_build_cache` unless a caller needs isolation.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.telemetry.metrics import counter_inc

__all__ = ["BuildCache", "default_build_cache", "structure_fingerprint"]


def structure_fingerprint(*parts: Any) -> str:
    """SHA-1 fingerprint of arrays, scalars, and strings, order-sensitive.

    NumPy arrays hash their dtype, shape, and raw bytes; other parts hash
    their ``repr``.  Two structures share a fingerprint iff every part
    matches, which is what makes the fingerprint safe as a build-cache key
    for topology/weight/delay payloads.
    """
    h = hashlib.sha1()
    for part in parts:
        if isinstance(part, np.ndarray):
            arr = np.ascontiguousarray(part)
            h.update(f"a:{arr.dtype.str}:{arr.shape}:".encode())
            h.update(arr.tobytes())
        else:
            h.update(f"s:{part!r}:".encode())
        h.update(b"|")
    return h.hexdigest()


class BuildCache:
    """Bounded LRU mapping structure keys to built (frozen) artifacts.

    All operations are serialized by an internal reentrant lock, so one
    instance may be shared by concurrent worker threads.
    """

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValidationError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.seeds = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def get_or_build(self, key: Tuple, build: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``key``, building it on a miss.

        The key should include every input the build depends on (use
        :func:`structure_fingerprint` to reduce array payloads).  On a hit
        the entry is refreshed to most-recently-used.  The lock is held
        across ``build()``, so concurrent misses on one key build once.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                counter_inc("cache.build.hits", 1)
                return entry
            self.misses += 1
            counter_inc("cache.build.misses", 1)
            value = build()
            if value is None:
                raise ValidationError("build cache cannot store None")
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                counter_inc("cache.build.evictions", 1)
            return value

    def put(self, key: Tuple, value: Any) -> None:
        """Insert (or overwrite) an entry directly, as most-recently-used.

        The seeding path of the incremental recompiler
        (:mod:`repro.dynamic.recompile`): a network patched forward from a
        previous graph version is stored under the new version's key so the
        next :func:`get_or_build` of that key hits instead of rebuilding.
        """
        if value is None:
            raise ValidationError("build cache cannot store None")
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.seeds += 1
            counter_inc("cache.build.seeds", 1)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                counter_inc("cache.build.evictions", 1)

    def invalidate(self, structure_key: str) -> int:
        """Drop every entry whose key tuple contains ``structure_key``.

        This is the *partial* invalidation used when one graph mutates:
        only entries built from that exact graph version (its structure
        key appears as a component of their cache keys) are dropped;
        entries of every other graph survive untouched.  Returns the
        number of entries removed (also counted in ``invalidations``).
        """
        with self._lock:
            doomed = [k for k in self._entries if structure_key in k]
            for k in doomed:
                del self._entries[k]
            self.invalidations += len(doomed)
            if doomed:
                counter_inc("cache.build.invalidations", len(doomed))
            return len(doomed)

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop entries where any string key component starts with ``prefix``.

        Dynamic graphs use versioned structure keys of the form
        ``dyn:<graph uid>:v<version>:<content hash>``, so
        ``invalidate_prefix("dyn:<graph uid>:")`` drops every cached build
        of every version of one mutable graph at once (e.g. when it is
        deregistered), without touching other residents.
        """
        with self._lock:
            doomed = [
                k
                for k in self._entries
                if any(isinstance(part, str) and part.startswith(prefix) for part in k)
            ]
            for k in doomed:
                del self._entries[k]
            self.invalidations += len(doomed)
            if doomed:
                counter_inc("cache.build.invalidations", len(doomed))
            return len(doomed)

    def export_entries(self, structure_key: str) -> list:
        """Snapshot ``(key, value)`` pairs whose key mentions ``structure_key``.

        The process-pool handoff path: the parent exports the compiled
        artifacts it already built for a resident graph and ships them to
        worker processes, which :meth:`seed_entries` them so their first
        query skips the ``O(m)`` rebuild.  Values are returned as-is —
        callers are responsible for shipping picklable artifacts (compiled
        networks pickle; builder closures do not).
        """
        with self._lock:
            return [(k, v) for k, v in self._entries.items() if structure_key in k]

    def seed_entries(self, entries: list) -> int:
        """Seed many ``(key, value)`` pairs (a worker-side cache warmup)."""
        for key, value in entries:
            self.put(tuple(key), value)
        return len(entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "seeds": self.seeds,
            }


#: Process-wide cache shared by the algorithm drivers (all-pairs SSSP,
#: degradation sweeps) and the :mod:`repro.service` worker pool.  Bounded,
#: so long-running services cannot leak.
default_build_cache = BuildCache()
