"""LIF neuron parameterization (paper Definitions 1 and 2).

Dynamics simulated by the engines, for neuron ``j`` at tick ``t >= 1``::

    v_hat(t) = v(t-1) - (v(t-1) - v_reset) * tau + v_syn(t)
    f(t)     = 1  iff  v_hat(t) > v_threshold          (strict, Eq. 2)
    v(t)     = v_reset if f(t) = 1 else v_hat(t)
    v_syn(t) = sum_i f_i(t - d_ij) * w_ij

Timing convention
-----------------
The paper's Eq. (1)/(4) pair assigns the synaptic input of tick ``t`` to the
voltage update of tick ``t + 1``, which would make the end-to-end latency of
a synapse ``d + 1`` ticks.  The algorithms of Sections 3–4, however, assume
that a synapse whose delay equals a graph-edge length delivers a spike whose
*firing* time equals the path length ("a spike that arrives at a node v at
time t corresponds to a path ... of length t").  We therefore fold the extra
integration tick into the programmed delay: a spike emitted at time ``s``
across a synapse with delay ``d`` can cause the target to fire at exactly
``s + d``.  Delays remain integers ``>= DEFAULT_DELTA = 1`` (zero delays are
prohibited, Section 2.2).

Threshold convention
--------------------
Eq. (2) fires on the *strict* inequality ``v_hat > v_threshold``.  The
paper's circuit figures nevertheless use unit thresholds with unit weights
(e.g. "neurons have threshold 1" while an OR gate fires on a single weight-1
input), implicitly reading the comparison as ``>=``.  We keep the strict
semantics of Eq. (2) and place gate thresholds at half-integers:
:func:`threshold_for_count` maps "fires when at least k unit inputs are
active" to a threshold of ``k - 1/2``.  For integer synaptic weights the two
conventions coincide exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["NeuronParams", "threshold_for_count", "DEFAULT_DELTA"]

#: Hardware minimum synaptic delay ``delta`` (Section 2.2): all synapse
#: delays are integer multiples ``l * delta`` with ``l >= 1``; we take the
#: tick unit to be ``delta`` itself.
DEFAULT_DELTA: int = 1


def threshold_for_count(k: int) -> float:
    """Threshold so a neuron fires iff at least ``k`` unit-weight inputs fire.

    With the strict comparison of Eq. (2), ``k - 0.5`` fires exactly on
    integer input sums ``>= k``.
    """
    if k < 1:
        raise ValidationError(f"input count must be >= 1, got {k}")
    return k - 0.5


@dataclass(frozen=True)
class NeuronParams:
    """Programmable parameters of one LIF neuron (Definition 1).

    Attributes
    ----------
    v_reset:
        Voltage after a spike and the initial voltage ``v(0)``.
    v_threshold:
        Firing threshold; a neuron spikes when ``v_hat > v_threshold``.
    tau:
        Decay rate in ``[0, 1]``; the voltage excess over ``v_reset``
        shrinks by a factor ``(1 - tau)`` each tick.  ``tau = 1`` recovers a
        memoryless threshold gate, ``tau = 0`` a perfect integrator.
    one_shot:
        Convenience flag: once the neuron has fired it never fires again.
        Equivalent to (and validated against) the latch-inhibition gadget of
        Figure 1B; used by the Section 3 algorithm where each node
        "propagates only the first incoming spike it receives".
    """

    v_reset: float = 0.0
    v_threshold: float = 0.5
    tau: float = 0.0
    one_shot: bool = False

    def __post_init__(self) -> None:
        if not math.isfinite(self.v_reset):
            raise ValidationError(f"v_reset must be finite, got {self.v_reset}")
        if not math.isfinite(self.v_threshold):
            raise ValidationError(
                f"v_threshold must be finite, got {self.v_threshold}"
            )
        if not (0.0 <= self.tau <= 1.0):
            raise ValidationError(f"tau must lie in [0, 1], got {self.tau}")

    @property
    def is_pacemaker(self) -> bool:
        """True if the neuron fires spontaneously (``v_reset > v_threshold``).

        Such neurons fire every tick with no input; the event-driven engine
        rejects networks containing them.
        """
        return self.v_reset > self.v_threshold
