"""Simulation outcomes: spike records and stop reasons."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["StopReason", "SimulationResult"]


class StopReason(enum.Enum):
    """Why a simulation run ended."""

    #: The designated terminal neuron fired (Definition 3 termination).
    TERMINAL = "terminal"
    #: Every neuron in the caller-supplied watch set has fired at least once.
    WATCH_SET = "watch_set"
    #: No spike deliveries remain scheduled and no neuron can fire again.
    QUIESCENT = "quiescent"
    #: The tick budget ``max_steps`` was exhausted.
    MAX_STEPS = "max_steps"
    #: A watchdog tripped on a runaway spike rate (see
    #: :class:`~repro.core.watchdog.Watchdog`); the result's ``diagnostic``
    #: names the offending neurons.
    RUNAWAY = "runaway"


@dataclass
class SimulationResult:
    """Outcome of one SNN simulation.

    Attributes
    ----------
    first_spike:
        ``int64[n]``; tick of each neuron's first spike, ``-1`` if it never
        fired.  Input-stimulus spikes occur at tick 0.
    spike_counts:
        ``int64[n]``; how many times each neuron fired.
    total_spikes:
        Sum of ``spike_counts`` — the energy proxy used by the hardware
        energy model (spike events dominate neuromorphic energy).
    final_tick:
        Last simulated tick ``T`` (the paper's execution time when stopping
        at the terminal neuron).
    stop_reason:
        Which condition ended the run.
    spike_events:
        Optional full record (only when ``record_spikes=True``): map from
        tick to the array of neuron ids that fired then.
    voltages:
        Optional voltage traces for probed neurons (dense engine only):
        map neuron id -> float array indexed by tick.
    diagnostic:
        Optional :class:`~repro.core.watchdog.WatchdogReport` attached when
        a watchdog tripped (``stop_reason == RUNAWAY``) or the tick budget
        ran out with activity still in flight (``MAX_STEPS``).
    """

    first_spike: np.ndarray
    spike_counts: np.ndarray
    final_tick: int
    stop_reason: StopReason
    spike_events: Optional[Dict[int, np.ndarray]] = None
    voltages: Optional[Dict[int, np.ndarray]] = None
    diagnostic: Optional[object] = None

    @property
    def total_spikes(self) -> int:
        return int(self.spike_counts.sum())

    def fired(self, nid: int) -> bool:
        """Whether neuron ``nid`` fired at least once."""
        return bool(self.first_spike[nid] >= 0)

    def spike_times(self, nid: int) -> List[int]:
        """All spike times of one neuron (requires ``record_spikes=True``)."""
        if self.spike_events is None:
            raise ValueError("run with record_spikes=True to retrieve spike trains")
        return [t for t, ids in sorted(self.spike_events.items()) if nid in set(ids.tolist())]

    def output_pattern(self, output_ids: np.ndarray, at_tick: Optional[int] = None) -> np.ndarray:
        """Boolean firing pattern of the output neurons at ``at_tick``.

        Definition 3 reads the output neurons at the terminal tick ``T``;
        that is the default.  Requires ``record_spikes=True``.
        """
        if self.spike_events is None:
            raise ValueError("run with record_spikes=True to read output patterns")
        t = self.final_tick if at_tick is None else at_tick
        fired_now = set(self.spike_events.get(t, np.empty(0, dtype=np.int64)).tolist())
        return np.asarray([nid in fired_now for nid in output_ids], dtype=bool)
