"""Structural statistics of spiking networks.

Summaries for debugging, the CLI ``info`` command, and capacity planning
against the Table-3 platform limits: neuron/synapse counts, fan-in/out
distributions, weight and delay ranges, and flags for the features that
constrain engine choice (pacemakers, decay, one-shot neurons).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.network import CompiledNetwork, Network

__all__ = ["NetworkStats", "network_stats"]


@dataclass(frozen=True)
class NetworkStats:
    """Read-only summary of one network's structure."""

    neurons: int
    synapses: int
    max_fan_out: int
    max_fan_in: int
    mean_fan_out: float
    min_weight: float
    max_weight: float
    min_delay: int
    max_delay: int
    excitatory_synapses: int
    inhibitory_synapses: int
    self_loops: int
    one_shot_neurons: int
    integrator_neurons: int  #: tau < 1 (voltage persists across ticks)
    pacemaker_neurons: int

    def summary(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [
            f"neurons:            {self.neurons}",
            f"synapses:           {self.synapses}"
            f" ({self.excitatory_synapses} excitatory,"
            f" {self.inhibitory_synapses} inhibitory,"
            f" {self.self_loops} self-loops)",
            f"fan-out:            max {self.max_fan_out}, mean {self.mean_fan_out:.2f}",
            f"fan-in:             max {self.max_fan_in}",
            f"weights:            [{self.min_weight:g}, {self.max_weight:g}]",
            f"delays:             [{self.min_delay}, {self.max_delay}]",
            f"one-shot neurons:   {self.one_shot_neurons}",
            f"integrator neurons: {self.integrator_neurons}",
            f"pacemaker neurons:  {self.pacemaker_neurons}",
        ]
        return "\n".join(lines)


def network_stats(network: Network) -> NetworkStats:
    """Compute :class:`NetworkStats` for a (builder or compiled) network."""
    net: CompiledNetwork = (
        network.compile() if isinstance(network, Network) else network
    )
    n, m = net.n, net.m
    fan_out = np.diff(net.indptr)
    fan_in = (
        np.bincount(net.syn_dst, minlength=n) if m else np.zeros(n, dtype=np.int64)
    )
    src_of = np.repeat(np.arange(n), fan_out) if m else np.empty(0, dtype=np.int64)
    return NetworkStats(
        neurons=n,
        synapses=m,
        max_fan_out=int(fan_out.max()) if n else 0,
        max_fan_in=int(fan_in.max()) if n else 0,
        mean_fan_out=float(fan_out.mean()) if n else 0.0,
        min_weight=float(net.syn_weight.min()) if m else 0.0,
        max_weight=float(net.syn_weight.max()) if m else 0.0,
        min_delay=int(net.syn_delay.min()) if m else 0,
        max_delay=int(net.syn_delay.max()) if m else 0,
        excitatory_synapses=int((net.syn_weight > 0).sum()),
        inhibitory_synapses=int((net.syn_weight < 0).sum()),
        self_loops=int((src_of == net.syn_dst).sum()) if m else 0,
        one_shot_neurons=int(net.one_shot.sum()),
        integrator_neurons=int((net.tau < 1.0).sum()),
        pacemaker_neurons=int((net.v_reset > net.v_threshold).sum()),
    )
