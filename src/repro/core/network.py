"""SNN construction: a mutable builder and a frozen array-backed compilation.

:class:`Network` is the user-facing builder (append-only Python lists, named
neurons, O(1) per call).  :meth:`Network.compile` freezes it into a
:class:`CompiledNetwork` of contiguous NumPy arrays (CSR synapse layout by
source neuron) that the engines consume — the hot simulation loops never see
Python objects, per the vectorization guidance in the HPC notes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.lif import DEFAULT_DELTA, NeuronParams
from repro.errors import ValidationError

__all__ = ["Network", "CompiledNetwork"]

NeuronRef = Union[int, str]


class Network:
    """Mutable spiking-neural-network builder (paper Definition 3).

    Neurons are integer ids assigned in creation order; an optional unique
    string name may be attached for readability in circuits and tests.
    Synapses are directed, with real weight and integer delay
    ``>= DEFAULT_DELTA``.  Cycles and self-loops are permitted.

    Examples
    --------
    >>> net = Network()
    >>> a = net.add_neuron("a")
    >>> b = net.add_neuron("b", v_threshold=0.5)
    >>> net.add_synapse(a, b, weight=1.0, delay=3)
    >>> net.n_neurons, net.n_synapses
    (2, 1)
    """

    def __init__(self) -> None:
        self._params: List[NeuronParams] = []
        self._names: List[Optional[str]] = []
        self._name_to_id: Dict[str, int] = {}
        self._syn_src: List[int] = []
        self._syn_dst: List[int] = []
        self._syn_w: List[float] = []
        self._syn_d: List[int] = []
        self.inputs: List[int] = []
        self.outputs: List[int] = []
        self.terminal: Optional[int] = None
        self._compiled: Optional[CompiledNetwork] = None

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #

    @property
    def n_neurons(self) -> int:
        return len(self._params)

    @property
    def n_synapses(self) -> int:
        return len(self._syn_src)

    def add_neuron(
        self,
        name: Optional[str] = None,
        *,
        v_reset: float = 0.0,
        v_threshold: float = 0.5,
        tau: float = 0.0,
        one_shot: bool = False,
        params: Optional[NeuronParams] = None,
    ) -> int:
        """Add one neuron; returns its id.

        Either pass individual parameters or a prebuilt ``params`` (not
        both).
        """
        if params is None:
            params = NeuronParams(
                v_reset=v_reset, v_threshold=v_threshold, tau=tau, one_shot=one_shot
            )
        nid = len(self._params)
        if name is not None:
            if name in self._name_to_id:
                raise ValidationError(f"duplicate neuron name {name!r}")
            self._name_to_id[name] = nid
        self._params.append(params)
        self._names.append(name)
        self._compiled = None
        return nid

    def add_neurons(self, count: int, **kwargs) -> List[int]:
        """Add ``count`` identical anonymous neurons; returns their ids."""
        return [self.add_neuron(**kwargs) for _ in range(count)]

    def resolve(self, ref: NeuronRef) -> int:
        """Map a neuron id or name to its id."""
        if isinstance(ref, str):
            try:
                return self._name_to_id[ref]
            except KeyError:
                raise ValidationError(f"unknown neuron name {ref!r}") from None
        nid = int(ref)
        if not (0 <= nid < len(self._params)):
            raise ValidationError(f"neuron id {nid} out of range")
        return nid

    def add_synapse(
        self,
        src: NeuronRef,
        dst: NeuronRef,
        *,
        weight: float = 1.0,
        delay: int = DEFAULT_DELTA,
    ) -> None:
        """Add a directed synapse.  Delay must be an integer ``>= 1``."""
        if not math.isfinite(delay) or int(delay) != delay or delay < DEFAULT_DELTA:
            raise ValidationError(
                f"synapse delay must be an integer >= {DEFAULT_DELTA}, got {delay}"
            )
        if not math.isfinite(weight):
            raise ValidationError(f"synapse weight must be finite, got {weight}")
        self._syn_src.append(self.resolve(src))
        self._syn_dst.append(self.resolve(dst))
        self._syn_w.append(float(weight))
        self._syn_d.append(int(delay))
        self._compiled = None

    def mark_input(self, ref: NeuronRef) -> None:
        self.inputs.append(self.resolve(ref))

    def mark_output(self, ref: NeuronRef) -> None:
        self.outputs.append(self.resolve(ref))

    def set_terminal(self, ref: NeuronRef) -> None:
        """Designate the terminal neuron ``u_t`` whose first spike ends the run."""
        self.terminal = self.resolve(ref)

    def name_of(self, nid: int) -> Optional[str]:
        return self._names[nid]

    def params_of(self, nid: int) -> NeuronParams:
        return self._params[nid]

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #

    def compile(self, *, sparse: bool = False) -> "CompiledNetwork":
        """Freeze into contiguous arrays; cached until the builder mutates.

        With ``sparse=True`` the per-delay CSR artifact of
        :mod:`repro.core.sparse` is built (and memoized on the compiled
        network) as well, so the first sparse-engine run pays no compile
        cost.
        """
        if self._compiled is None:
            self._compiled = CompiledNetwork._from_builder(self)
        if sparse:
            self._compiled.to_sparse()
        return self._compiled


@dataclass
class CompiledNetwork:
    """Frozen array representation consumed by the simulation engines.

    Synapses are stored CSR-by-source: the out-synapses of neuron ``i`` are
    the slice ``indptr[i]:indptr[i+1]`` of ``syn_dst`` / ``syn_weight`` /
    ``syn_delay``.
    """

    n: int
    v_reset: np.ndarray
    v_threshold: np.ndarray
    tau: np.ndarray
    one_shot: np.ndarray
    indptr: np.ndarray
    syn_dst: np.ndarray
    syn_weight: np.ndarray
    syn_delay: np.ndarray
    inputs: np.ndarray
    outputs: np.ndarray
    terminal: Optional[int] = None
    names: Sequence[Optional[str]] = field(default_factory=tuple)

    @property
    def m(self) -> int:
        return int(self.syn_dst.size)

    @property
    def n_neurons(self) -> int:
        return int(self.n)

    @property
    def n_synapses(self) -> int:
        return self.m

    def compile(self, *, sparse: bool = False) -> "CompiledNetwork":
        """Already compiled; returns ``self``.

        Makes :class:`CompiledNetwork` a drop-in wherever a
        :class:`Network` builder is accepted (``net.compile()`` call sites,
        ``plan.net.n_neurons`` accounting), which is what lets the
        incremental recompiler of :mod:`repro.dynamic` seed the build cache
        with patched compiled networks directly.  ``sparse=True``
        additionally builds (and memoizes) the per-delay CSR artifact.
        """
        if sparse:
            self.to_sparse()
        return self

    def __getstate__(self) -> dict:
        """Pickle without the memoized sparse artifact.

        The per-delay CSR artifact (:meth:`to_sparse`) is a derived cache
        stashed on the instance; shipping it to a worker process would
        multiply pipe traffic for a structure the receiver can rebuild on
        first use.  Dropping it keeps compiled-network handoff slim and
        leaves the unpickled copy semantically identical.
        """
        state = dict(self.__dict__)
        state.pop("_sparse_artifact", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def to_sparse(self):
        """The per-delay CSR artifact of this network (built on demand).

        Delegates to :func:`repro.core.sparse.sparse_compile`, which
        memoizes the result on this instance; see
        :class:`repro.core.sparse.SparseCompiledNetwork`.
        """
        from repro.core.sparse import sparse_compile

        return sparse_compile(self)

    @property
    def density(self) -> float:
        """Synapse density ``m / n^2`` (0.0 for an empty network)."""
        if self.n == 0:
            return 0.0
        return self.m / float(self.n) / float(self.n)

    @property
    def max_delay(self) -> int:
        return int(self.syn_delay.max()) if self.m else DEFAULT_DELTA

    @property
    def has_pacemakers(self) -> bool:
        return bool(np.any(self.v_reset > self.v_threshold))

    @property
    def has_decay(self) -> bool:
        return bool(np.any(self.tau > 0.0))

    @classmethod
    def _from_builder(cls, net: Network) -> "CompiledNetwork":
        n = net.n_neurons
        params = net._params
        v_reset = np.fromiter((p.v_reset for p in params), dtype=np.float64, count=n)
        v_threshold = np.fromiter(
            (p.v_threshold for p in params), dtype=np.float64, count=n
        )
        tau = np.fromiter((p.tau for p in params), dtype=np.float64, count=n)
        one_shot = np.fromiter((p.one_shot for p in params), dtype=bool, count=n)
        src = np.asarray(net._syn_src, dtype=np.int64)
        order = np.argsort(src, kind="stable")
        syn_dst = np.asarray(net._syn_dst, dtype=np.int64)[order]
        syn_weight = np.asarray(net._syn_w, dtype=np.float64)[order]
        syn_delay = np.asarray(net._syn_d, dtype=np.int64)[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        if src.size:
            np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(
            n=n,
            v_reset=v_reset,
            v_threshold=v_threshold,
            tau=tau,
            one_shot=one_shot,
            indptr=indptr,
            syn_dst=syn_dst,
            syn_weight=syn_weight,
            syn_delay=syn_delay,
            inputs=np.asarray(sorted(set(net.inputs)), dtype=np.int64),
            outputs=np.asarray(sorted(set(net.outputs)), dtype=np.int64),
            terminal=net.terminal,
            names=tuple(net._names),
        )

    def out_synapses(self, nid: int) -> slice:
        return slice(int(self.indptr[nid]), int(self.indptr[nid + 1]))

    def gather_out_synapses(self, ids: np.ndarray) -> np.ndarray:
        """Indices of all out-synapses of the given neurons, vectorized.

        Equivalent to concatenating ``range(indptr[i], indptr[i+1])`` per id,
        built without a Python-level loop (repeat + cumulative offsets).
        """
        if ids.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.indptr[ids]
        counts = self.indptr[ids + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # offset of each output element within its neuron's synapse run
        run_starts = np.cumsum(counts) - counts
        offsets = np.arange(total, dtype=np.int64) - np.repeat(run_starts, counts)
        return np.repeat(starts, counts) + offsets
