"""Fault injection: perturbed copies of networks for robustness studies.

Physical neuromorphic hardware has dead neurons, dropped synapses, and
analog weight drift (Appendix A calls the platforms "research-grade ...
still in development").  These helpers build perturbed copies of a
network so tests and benches can measure how the algorithms degrade:

* :func:`with_dead_neurons` — listed neurons never fire (all their
  synapses, in and out, are removed; ids are preserved);
* :func:`with_synapse_dropout` — each synapse is deleted independently
  with probability ``p`` (seeded);
* :func:`with_weight_noise` — multiplicative Gaussian jitter on weights
  (topology and delays intact).

All functions return a *new* :class:`Network`; the original is untouched.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from repro.core.network import Network
from repro.errors import ValidationError

__all__ = ["with_dead_neurons", "with_synapse_dropout", "with_weight_noise"]


def _clone_neurons(net: Network) -> Network:
    out = Network()
    for nid in range(net.n_neurons):
        out.add_neuron(net.name_of(nid), params=net.params_of(nid))
    out.inputs = list(net.inputs)
    out.outputs = list(net.outputs)
    out.terminal = net.terminal
    return out


def _synapses(net: Network):
    c = net.compile()
    for u in range(c.n):
        sl = c.out_synapses(u)
        for s in range(sl.start, sl.stop):
            yield u, int(c.syn_dst[s]), float(c.syn_weight[s]), int(c.syn_delay[s])


def with_dead_neurons(net: Network, dead: Iterable[int]) -> Network:
    """Copy of ``net`` where the listed neurons are electrically dead."""
    dead_set: Set[int] = set(int(d) for d in dead)
    for d in dead_set:
        if not (0 <= d < net.n_neurons):
            raise ValidationError(f"neuron {d} out of range")
    out = _clone_neurons(net)
    for u, v, w, d in _synapses(net):
        if u in dead_set or v in dead_set:
            continue
        out.add_synapse(u, v, weight=w, delay=d)
    return out


def with_synapse_dropout(
    net: Network, p: float, *, seed: Optional[int] = None
) -> Network:
    """Copy of ``net`` with each synapse dropped independently w.p. ``p``."""
    if not (0.0 <= p <= 1.0):
        raise ValidationError(f"dropout probability must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    out = _clone_neurons(net)
    for u, v, w, d in _synapses(net):
        if rng.random() >= p:
            out.add_synapse(u, v, weight=w, delay=d)
    return out


def with_weight_noise(
    net: Network, sigma: float, *, seed: Optional[int] = None
) -> Network:
    """Copy of ``net`` with weights scaled by ``1 + N(0, sigma)`` jitter."""
    if sigma < 0:
        raise ValidationError(f"sigma must be >= 0, got {sigma}")
    rng = np.random.default_rng(seed)
    out = _clone_neurons(net)
    for u, v, w, d in _synapses(net):
        out.add_synapse(u, v, weight=w * (1.0 + rng.normal(0.0, sigma)), delay=d)
    return out
