"""Batched dense LIF engine: B independent stimuli over one shared network.

The all-pairs and sweep workloads of this repo ask the *same* network many
questions that differ only in the stimulus (one SSSP phase per source, one
trial per fault seed).  Running them one at a time re-pays the per-tick
Python/NumPy dispatch overhead B times; this engine instead holds the state
of all B runs in ``(B, n)`` arrays — voltages, refractory/one-shot flags,
and a shared circular ``(max_delay + 1, B, n)`` delivery buffer — and steps
every run in the same vectorized tick update.

Semantics are *per item* identical to B independent
:func:`repro.core.engine.simulate_dense` calls (the differential test
harness asserts spike-for-spike equality, including under transient
faults):

* each item has its own stimulus schedule, early-stop state (terminal /
  watch-set / quiescence / tick budget), stop reason, and final tick;
* each item binds its own :class:`~repro.core.transient.FaultModel`; fault
  decisions are counter-hashed pure functions of ``(seed, tick, entity)``,
  so an item realizes exactly the faults its solo run would;
* each item may carry its own :class:`~repro.telemetry.hooks.EngineHooks`
  observer, which sees exactly the events of the solo run (per-item
  telemetry totals stay exact).

Items that stop early are masked out of every subsequent update and record
nothing further; the batch finishes when the last item stops.  Voltage
probes and watchdogs are not supported here — the
:func:`repro.core.run.simulate_batch` front end falls back to per-item
dispatch for those.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.engine import StimulusSpec, _normalize_stimulus
from repro.core.network import CompiledNetwork, Network
from repro.core.result import SimulationResult, StopReason
from repro.core.transient import BoundFaults, FaultModel
from repro.errors import ValidationError
from repro.telemetry.hooks import EngineHooks
from repro.telemetry.metrics import counter_inc

__all__ = ["simulate_dense_batch"]

FaultsSpec = Union[None, FaultModel, Sequence[Optional[FaultModel]]]
HooksSpec = Union[None, EngineHooks, Sequence[Optional[EngineHooks]]]


def _per_item(spec, count: int, kind: type, what: str) -> list:
    """Normalize ``spec`` to a length-``count`` list of per-item values."""
    if spec is None:
        return [None] * count
    if isinstance(spec, kind):
        return [spec] * count
    items = list(spec)
    if len(items) != count:
        raise ValidationError(
            f"{what} sequence has {len(items)} entries for a batch of {count}"
        )
    for item in items:
        if item is not None and not isinstance(item, kind):
            raise ValidationError(f"{what} entries must be {kind.__name__} or None")
    return items


def simulate_dense_batch(
    network: Union[Network, CompiledNetwork],
    stimuli: Sequence[Optional[StimulusSpec]],
    *,
    max_steps: int,
    terminal: Optional[int] = None,
    watch: Optional[Iterable[int]] = None,
    stop_when_quiescent: bool = True,
    record_spikes: bool = False,
    faults: FaultsSpec = None,
    hooks: HooksSpec = None,
) -> List[SimulationResult]:
    """Simulate B independent stimuli on one network in lockstep.

    Parameters mirror :func:`~repro.core.engine.simulate_dense` except that
    ``stimuli`` is a sequence of B stimulus specs (one per batch item) and
    ``faults`` / ``hooks`` may each be a single value shared by every item
    or a length-B sequence of per-item values.  ``terminal``, ``watch``,
    ``max_steps``, and ``stop_when_quiescent`` are shared by all items
    (each item still *evaluates* them independently).

    Returns one :class:`~repro.core.result.SimulationResult` per item, in
    input order, each identical to what the solo dense engine would have
    produced for that stimulus.
    """
    net = network.compile() if isinstance(network, Network) else network
    if max_steps < 0:
        raise ValidationError(f"max_steps must be >= 0, got {max_steps}")
    B = len(stimuli)
    if B == 0:
        return []
    n = net.n
    term = terminal if terminal is not None else net.terminal

    watch_mask = None
    watch_remaining = None
    if watch is not None:
        watch_mask = np.zeros(n, dtype=bool)
        watch_mask[np.asarray(list(watch), dtype=np.int64)] = True
        watch_remaining = np.full(B, int(watch_mask.sum()), dtype=np.int64)

    stim_list = [_normalize_stimulus(s) for s in stimuli]
    stim_by_tick: Dict[int, List] = {}
    last_stim = np.full(B, -1, dtype=np.int64)
    for b, stim in enumerate(stim_list):
        for tick, ids in stim.items():
            if ids.size and (ids.min() < 0 or ids.max() >= n):
                raise ValidationError("stimulus neuron id out of range")
            if tick > 0:
                stim_by_tick.setdefault(tick, []).append((b, ids))
            last_stim[b] = max(last_stim[b], tick)

    fault_models = _per_item(faults, B, FaultModel, "faults")
    hook_list = _per_item(hooks, B, EngineHooks, "hooks")
    rf: List[Optional[BoundFaults]] = [
        m.bind(net, max_steps) if m is not None else None for m in fault_models
    ]
    next_forced: List[Optional[int]] = [
        r.next_forced_tick(-1) if r is not None else None for r in rf
    ]
    have_faults = any(r is not None for r in rf)
    have_hooks = any(h is not None for h in hook_list)
    # Fully vectorized registration is only exact to use when nothing needs
    # per-item event streams: fault suppression, hook callbacks, and spike
    # recording all consume per-item fired-id arrays.
    plain = not (have_faults or have_hooks or record_spikes)

    D = net.max_delay
    n_slots = D + 1
    buf = np.zeros((n_slots, B, n), dtype=np.float64)
    slot_counts = np.zeros((n_slots, B), dtype=np.int64)
    v = np.broadcast_to(net.v_reset, (B, n)).copy()
    fired_ever = np.zeros((B, n), dtype=bool)
    first_spike = np.full((B, n), -1, dtype=np.int64)
    spike_counts = np.zeros((B, n), dtype=np.int64)
    any_one_shot = bool(net.one_shot.any())
    has_pacemakers = net.has_pacemakers
    spike_events: Optional[List[Dict[int, np.ndarray]]] = (
        [dict() for _ in range(B)] if record_spikes else None
    )

    active = np.ones(B, dtype=bool)
    stop_reason: List[Optional[StopReason]] = [None] * B
    final_tick = np.zeros(B, dtype=np.int64)

    for b, h in enumerate(hook_list):
        if h is not None:
            h.on_run_start(n, max_steps, "dense-batch")

    def stop(b: int, reason: StopReason, t: int) -> None:
        stop_reason[b] = reason
        final_tick[b] = t
        active[b] = False
        h = hook_list[b]
        if h is not None:
            h.on_stop(t, reason, None)

    def register(b: int, ids: np.ndarray, t: int) -> None:
        """Per-item spike bookkeeping, identical to the solo engine's."""
        newly = ids[~fired_ever[b, ids]]
        first_spike[b, newly] = t
        if watch_mask is not None and newly.size:
            watch_remaining[b] -= int(watch_mask[newly].sum())
        fired_ever[b, ids] = True
        spike_counts[b, ids] += 1
        if spike_events is not None and ids.size:
            spike_events[b][t] = ids.copy()
        h = hook_list[b]
        if h is not None and ids.size:
            h.on_spikes(t, ids)

    buf_flat = buf.reshape(-1)
    slot_counts_flat = slot_counts.reshape(-1)

    def scatter_all(b_arr: np.ndarray, id_arr: np.ndarray, t: int) -> None:
        """Emit the out-synapses of every (item, neuron) spike pair at ``t``.

        Deliveries of different items land in disjoint buffer cells, and
        within one item the synapse order equals the solo engine's CSR
        order, so per-cell float accumulation order matches the solo run
        exactly.
        """
        counts = net.indptr[id_arr + 1] - net.indptr[id_arr]
        syn_idx = net.gather_out_synapses(id_arr)
        if syn_idx.size == 0:
            return
        owner = np.repeat(b_arr, counts)
        weights = net.syn_weight[syn_idx]
        dropped = None
        if have_faults:
            keep = np.ones(syn_idx.size, dtype=bool)
            for b in np.unique(owner):
                r = rf[b]
                if r is None:
                    continue
                sel = owner == b
                keep[sel] = r.keep_deliveries(t, syn_idx[sel])
            dropped = np.bincount(owner[~keep], minlength=B)
            emitted = np.bincount(owner, minlength=B)
            owner = owner[keep]
            syn_idx = syn_idx[keep]
            weights = weights[keep]
            for b in np.unique(owner):
                r = rf[b]
                if r is None:
                    continue
                sel = owner == b
                weights[sel] = r.deliver_weights(t, syn_idx[sel], weights[sel])
        if have_hooks:
            scheduled = np.bincount(owner, minlength=B)
            counted = emitted if dropped is not None else scheduled
            for b in np.nonzero(counted)[0]:
                h = hook_list[b]
                if h is not None:
                    d = int(dropped[b]) if dropped is not None else 0
                    h.on_deliveries(t, int(scheduled[b]), d)
        if syn_idx.size == 0:
            return
        slots = (t + net.syn_delay[syn_idx]) % n_slots
        np.add.at(buf_flat, (slots * B + owner) * n + net.syn_dst[syn_idx], weights)
        np.add.at(slot_counts_flat, slots * B + owner, 1)

    # ---- tick 0: induced input spikes, per item ------------------------- #
    t = 0
    tick0_fired = np.zeros(B, dtype=np.int64)
    all_b: List[np.ndarray] = []
    all_ids: List[np.ndarray] = []
    for b in range(B):
        ids0 = stim_list[b].get(0, np.empty(0, dtype=np.int64))
        if next_forced[b] == 0:
            forced0 = rf[b].forced_at(0)
            if hook_list[b] is not None and forced0.size:
                hook_list[b].on_fault_forced(0, forced0)
            ids0 = np.union1d(ids0, forced0)
            next_forced[b] = rf[b].next_forced_tick(0)
        if rf[b] is not None and ids0.size:
            sup0 = rf[b].suppressed(0, ids0)
            if sup0.any():
                if hook_list[b] is not None:
                    hook_list[b].on_fault_suppressed(0, ids0[sup0])
                ids0 = ids0[~sup0]
        if ids0.size:
            register(b, ids0, 0)
            all_b.append(np.full(ids0.size, b, dtype=np.int64))
            all_ids.append(ids0)
        tick0_fired[b] = ids0.size
    if all_ids:
        scatter_all(np.concatenate(all_b), np.concatenate(all_ids), 0)
    for b in range(B):
        if term is not None and tick0_fired[b] and fired_ever[b, term]:
            stop(b, StopReason.TERMINAL, 0)
        elif watch_remaining is not None and watch_remaining[b] == 0:
            stop(b, StopReason.WATCH_SET, 0)

    # ---- main loop ------------------------------------------------------ #
    while active.any():
        if t >= max_steps:
            for b in np.nonzero(active)[0]:
                stop(int(b), StopReason.MAX_STEPS, t)
            break
        t += 1
        slot = t % n_slots
        syn = buf[slot]
        slot_counts[slot, :] = 0
        # Eq. (1) for every item at once: decay toward reset, integrate.
        vhat = v + (net.v_reset - v) * net.tau + syn
        syn[:] = 0.0
        fire = vhat > net.v_threshold  # Eq. (2), strict
        if any_one_shot:
            fire &= ~(net.one_shot[None, :] & fired_ever)
        fire[~active] = False
        for b, ids in stim_by_tick.get(t, ()):
            if active[b] and ids.size:
                fire[b, ids] = True
        if have_faults:
            for b in np.nonzero(active)[0]:
                if next_forced[b] == t:
                    forced = rf[b].forced_at(t)
                    if hook_list[b] is not None and forced.size:
                        hook_list[b].on_fault_forced(t, forced)
                    fire[b, forced] = True
                    next_forced[b] = rf[b].next_forced_tick(t)
        v = np.where(fire, net.v_reset, vhat)  # Eq. (3)
        fired_sizes = np.zeros(B, dtype=np.int64)
        b_all, id_all = np.nonzero(fire)
        if plain:
            if id_all.size:
                newly = fire & ~fired_ever
                first_spike[newly] = t
                if watch_remaining is not None:
                    watch_remaining -= (newly & watch_mask[None, :]).sum(axis=1)
                fired_ever |= fire
                spike_counts += fire
                np.add.at(fired_sizes, b_all, 1)
                scatter_all(b_all, id_all, t)
        elif id_all.size:
            scat_b: List[np.ndarray] = []
            scat_ids: List[np.ndarray] = []
            uniq, starts = np.unique(b_all, return_index=True)
            ends = np.append(starts[1:], b_all.size)
            for b, lo, hi in zip(uniq.tolist(), starts.tolist(), ends.tolist()):
                ids = id_all[lo:hi]
                if rf[b] is not None:
                    # suppressed spikes are "fired but lost": the voltage
                    # reset above stands, nothing is recorded or delivered
                    sup = rf[b].suppressed(t, ids)
                    if sup.any():
                        if hook_list[b] is not None:
                            hook_list[b].on_fault_suppressed(t, ids[sup])
                        ids = ids[~sup]
                if ids.size:
                    register(b, ids, t)
                    scat_b.append(np.full(ids.size, b, dtype=np.int64))
                    scat_ids.append(ids)
                fired_sizes[b] = ids.size
            if scat_ids:
                scatter_all(np.concatenate(scat_b), np.concatenate(scat_ids), t)
        # per-item stop checks after the full tick
        outstanding = slot_counts.sum(axis=0)
        for b in np.nonzero(active)[0]:
            b = int(b)
            if term is not None and fired_ever[b, term]:
                stop(b, StopReason.TERMINAL, t)
            elif watch_remaining is not None and watch_remaining[b] == 0:
                stop(b, StopReason.WATCH_SET, t)
            elif (
                stop_when_quiescent
                and not has_pacemakers
                and fired_sizes[b] == 0
                and outstanding[b] == 0
                and last_stim[b] <= t
                and next_forced[b] is None
            ):
                stop(b, StopReason.QUIESCENT, t)

    counter_inc("engine.runs", B)
    counter_inc("engine.spikes", int(spike_counts.sum()))
    counter_inc("engine.ticks", int(final_tick.sum()))
    return [
        SimulationResult(
            first_spike=first_spike[b].copy(),
            spike_counts=spike_counts[b].copy(),
            final_tick=int(final_tick[b]),
            stop_reason=stop_reason[b],
            spike_events=spike_events[b] if spike_events is not None else None,
        )
        for b in range(B)
    ]
