"""Neuromorphic cost accounting.

The paper measures algorithms in model quantities, not wall-clock: simulated
execution time ``T`` (ticks, i.e. multiples of the minimum delay ``delta``),
neuron count, synapse count, spike count (the energy proxy), and the
``O(m)`` loading term for programming the graph/circuits into the SNA
(Sections 4.1, 4.2, 4.5 all state loading explicitly).  :class:`CostReport`
carries those quantities from every algorithm runner so the Table-1 benches
can compare models on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["CostReport"]


@dataclass
class CostReport:
    """Model-level cost of one neuromorphic algorithm execution.

    Attributes
    ----------
    algorithm:
        Short identifier (e.g. ``"sssp_pseudo"``).
    simulated_ticks:
        Spiking execution time ``T`` in ticks, excluding loading.
    loading_ticks:
        Time to program the SNA; ``O(m)`` for the graph itself plus the
        per-node/per-edge circuit sizes where applicable.
    neuron_count, synapse_count:
        Hardware resources occupied.
    spike_count:
        Total spike events during the run (energy proxy; Table 3's pJ/spike
        converts this to Joules).
    rounds:
        For round-synchronized algorithms (Section 4.2), the number of
        message rounds ``R``; ``simulated_ticks = R * x`` with round length
        ``x``.
    round_length:
        Ticks per round (``x = Theta(log nU)`` in Section 4.2), when
        applicable.
    message_bits:
        Message width ``lambda`` in bits, when applicable.
    embedding_factor:
        Multiplicative slowdown applied to the spiking portion when the run
        is charged for crossbar embedding (Section 4.4: ``O(n)``); 1 when
        data movement is assumed O(1).
    extras:
        Free-form auxiliary measurements (e.g. per-phase tick counts).
    """

    algorithm: str
    simulated_ticks: int
    loading_ticks: int
    neuron_count: int
    synapse_count: int
    spike_count: int
    rounds: Optional[int] = None
    round_length: Optional[int] = None
    message_bits: Optional[int] = None
    embedding_factor: int = 1
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def total_time(self) -> int:
        """Loading plus (embedding-charged) spiking time.

        This is the quantity Table 1 reports: e.g. ``O(nL + m)`` for the
        pseudopolynomial SSSP is ``embedding_factor * simulated_ticks +
        loading_ticks``.
        """
        return self.embedding_factor * self.simulated_ticks + self.loading_ticks

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable rendering (used by ``--json`` CLI output and
        the :mod:`repro.service` result schema)."""
        out: Dict[str, object] = {
            "algorithm": self.algorithm,
            "simulated_ticks": self.simulated_ticks,
            "loading_ticks": self.loading_ticks,
            "total_time": self.total_time,
            "neurons": self.neuron_count,
            "synapses": self.synapse_count,
            "spikes": self.spike_count,
        }
        if self.rounds is not None:
            out["rounds"] = self.rounds
        if self.round_length is not None:
            out["round_length"] = self.round_length
        if self.message_bits is not None:
            out["message_bits"] = self.message_bits
        if self.embedding_factor != 1:
            out["embedding_factor"] = self.embedding_factor
        if self.extras:
            out["extras"] = dict(self.extras)
        return out

    def with_embedding(self, n: int) -> "CostReport":
        """Return a copy charged for the crossbar embedding cost ``O(n)``.

        Section 4.4: after embedding into the crossbar, "all other steps now
        require more time by a factor O(n)" while loading remains ``O(m)``.
        """
        return CostReport(
            algorithm=self.algorithm + "+crossbar",
            simulated_ticks=self.simulated_ticks,
            loading_ticks=self.loading_ticks,
            neuron_count=self.neuron_count,
            synapse_count=self.synapse_count,
            spike_count=self.spike_count,
            rounds=self.rounds,
            round_length=self.round_length,
            message_bits=self.message_bits,
            embedding_factor=self.embedding_factor * max(1, n),
            extras=dict(self.extras),
        )
