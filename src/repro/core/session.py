"""Interactive stepping sessions over the dense engine.

:class:`DenseSession` exposes the tick loop of
:func:`repro.core.engine.simulate_dense` as an object you can drive
incrementally: step a few ticks, inspect voltages and spikes, inject
external spikes mid-run, continue.  Useful for debugging compiled
circuits, teaching, and closed-loop experiments where stimuli depend on
observed activity (which a one-shot ``simulate`` call cannot express).

Semantics are identical to the batch engine — the test suite replays the
same stimulus through both and compares spike trains tick for tick.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

from repro.core.network import CompiledNetwork, Network
from repro.core.transient import FaultModel
from repro.core.watchdog import Watchdog, WatchdogState
from repro.errors import RunawaySpikesError, SimulationError, ValidationError
from repro.telemetry.hooks import EngineHooks

__all__ = ["DenseSession"]


class DenseSession:
    """A resumable dense LIF simulation.

    >>> session = DenseSession(net)
    >>> session.inject([0])           # stimulus for the *next* tick boundary
    >>> session.step()                # advance one tick
    >>> session.fired_last            # ids that fired this tick
    >>> session.voltages[3]           # inspect state between ticks

    ``faults`` injects per-tick transient faults with the same semantics as
    the batch engines (``fault_horizon`` bounds the ticks fault schedules are
    generated for).  A ``watchdog`` always *raises*
    :class:`~repro.errors.RunawaySpikesError` on a runaway spike rate —
    a session has no result object to carry a diagnostic stop reason.
    ``hooks`` observes per-tick events with the same semantics as the batch
    engines (no stop event: a session never stops by itself).
    """

    def __init__(
        self,
        network: Union[Network, CompiledNetwork],
        *,
        faults: Optional[FaultModel] = None,
        watchdog: Optional[Watchdog] = None,
        fault_horizon: int = 1_000_000,
        hooks: Optional[EngineHooks] = None,
    ):
        self.net = network.compile() if isinstance(network, Network) else network
        n = self.net.n
        self._n_slots = self.net.max_delay + 1
        self._buf = np.zeros((self._n_slots, n), dtype=np.float64)
        self.voltages = self.net.v_reset.copy()
        self.fired_ever = np.zeros(n, dtype=bool)
        self.first_spike = np.full(n, -1, dtype=np.int64)
        self.spike_counts = np.zeros(n, dtype=np.int64)
        self.tick = -1  # step() advances to 0 first (the stimulus tick)
        self._pending_inject: List[int] = []
        self._fired_last: np.ndarray = np.empty(0, dtype=np.int64)
        self._any_one_shot = bool(self.net.one_shot.any())
        self._rf = faults.bind(self.net, fault_horizon) if faults is not None else None
        self._next_forced = (
            self._rf.next_forced_tick(-1) if self._rf is not None else None
        )
        self._wd = (
            WatchdogState(watchdog, n, self.net.names) if watchdog is not None else None
        )
        self._hooks = hooks
        if hooks is not None:
            hooks.on_run_start(n, fault_horizon, "session")

    # ------------------------------------------------------------------ #

    @property
    def fired_last(self) -> np.ndarray:
        """Neuron ids that fired on the most recent tick."""
        return self._fired_last

    def inject(self, ids: Iterable[int]) -> None:
        """Queue induced spikes for the next processed tick."""
        for nid in ids:
            nid = int(nid)
            if not (0 <= nid < self.net.n):
                raise ValidationError(f"neuron {nid} out of range")
            self._pending_inject.append(nid)

    def _scatter(self, ids: np.ndarray, t: int) -> None:
        syn_idx = self.net.gather_out_synapses(ids)
        if syn_idx.size == 0:
            return
        weights = self.net.syn_weight[syn_idx]
        dropped = 0
        if self._rf is not None:
            keep = self._rf.keep_deliveries(t, syn_idx)
            if not keep.all():
                dropped = int(syn_idx.size - keep.sum())
                syn_idx = syn_idx[keep]
                weights = weights[keep]
            if syn_idx.size:
                weights = self._rf.deliver_weights(t, syn_idx, weights)
        if self._hooks is not None:
            self._hooks.on_deliveries(t, int(syn_idx.size), dropped)
        if syn_idx.size == 0:
            return
        slots = (t + self.net.syn_delay[syn_idx]) % self._n_slots
        flat = slots * self.net.n + self.net.syn_dst[syn_idx]
        np.add.at(self._buf.reshape(-1), flat, weights)

    def step(self, ticks: int = 1) -> np.ndarray:
        """Advance the simulation; returns the ids fired on the last tick."""
        if ticks < 1:
            raise ValidationError(f"ticks must be >= 1, got {ticks}")
        net = self.net
        for _ in range(ticks):
            self.tick += 1
            t = self.tick
            injected = np.asarray(sorted(set(self._pending_inject)), dtype=np.int64)
            self._pending_inject.clear()
            if t == 0:
                # tick 0 carries only induced spikes (Definition 3 start)
                fire = np.zeros(net.n, dtype=bool)
                fire[injected] = True
                vhat = self.voltages
            else:
                slot = t % self._n_slots
                syn = self._buf[slot]
                vhat = (
                    self.voltages
                    + (net.v_reset - self.voltages) * net.tau
                    + syn
                )
                syn[:] = 0.0
                fire = vhat > net.v_threshold
                if self._any_one_shot:
                    fire &= ~(net.one_shot & self.fired_ever)
                fire[injected] = True
            if self._next_forced == t:
                forced = self._rf.forced_at(t)
                if self._hooks is not None and forced.size:
                    self._hooks.on_fault_forced(t, forced)
                fire[forced] = True
                self._next_forced = self._rf.next_forced_tick(t)
            self.voltages = np.where(fire, net.v_reset, vhat)
            ids = np.nonzero(fire)[0]
            if self._rf is not None and ids.size:
                # suppressed spikes are "fired but lost": the voltage reset
                # above stands, but nothing is recorded and nothing propagates
                sup = self._rf.suppressed(t, ids)
                if sup.any():
                    if self._hooks is not None:
                        self._hooks.on_fault_suppressed(t, ids[sup])
                    ids = ids[~sup]
            newly = ids[~self.fired_ever[ids]]
            self.first_spike[newly] = t
            self.fired_ever[ids] = True
            self.spike_counts[ids] += 1
            self._fired_last = ids
            if self._hooks is not None and ids.size:
                self._hooks.on_spikes(t, ids)
            if ids.size:
                self._scatter(ids, t)
            if self._wd is not None:
                report = self._wd.observe(t, ids)
                if report is not None:
                    raise RunawaySpikesError(report.describe(), report)
        return self._fired_last

    def run_until(self, predicate, *, max_ticks: int = 1_000_000) -> int:
        """Step until ``predicate(session)`` is true; returns the tick.

        Raises :class:`SimulationError` if the budget runs out first.
        """
        for _ in range(max_ticks):
            self.step()
            if predicate(self):
                return self.tick
        raise SimulationError(f"predicate not satisfied within {max_ticks} ticks")
