"""Engine-dispatching front end for SNN simulation."""

from __future__ import annotations

import warnings
from typing import Iterable, List, Optional, Sequence, Union

from repro.core.batch import FaultsSpec, HooksSpec, _per_item, simulate_dense_batch
from repro.core.engine import StimulusSpec, simulate_dense
from repro.core.event_engine import simulate_event_driven
from repro.core.network import CompiledNetwork, Network
from repro.core.result import SimulationResult
from repro.core.sparse import prefers_sparse, simulate_sparse
from repro.core.transient import FaultModel
from repro.core.watchdog import Watchdog
from repro.errors import ValidationError
from repro.telemetry.hooks import EngineHooks

__all__ = ["simulate", "simulate_batch", "DEFAULT_MAX_STEPS", "ENGINES"]

#: Default tick budget; generous enough for every test/bench workload while
#: still bounding accidental runaway networks.
DEFAULT_MAX_STEPS: int = 1_000_000

#: Above this maximum synaptic delay the auto-dispatcher assumes the network
#: is delay-encoded (Sections 3–4 algorithms) and picks an activity-driven
#: engine (sparse for large low-density networks, event otherwise).
_EVENT_DELAY_CUTOFF: int = 64

#: Every engine name :func:`simulate` / :func:`simulate_batch` accept.  An
#: unknown name raises :class:`~repro.errors.ValidationError` (error code
#: ``INVALID``) listing these.
ENGINES: tuple = ("auto", "dense", "event", "sparse")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValidationError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )


def _auto_long_delay_engine(net: CompiledNetwork, batched: bool) -> str:
    """Engine choice for delay-encoded (long-delay) networks.

    Pacemakers force dense (with a warning); large low-density networks go
    sparse; everything else goes event.
    """
    if net.has_pacemakers:
        fallback = "the batched dense engine" if batched else "the dense engine"
        warnings.warn(
            "network has long delays (event-engine territory) but "
            "contains pacemaker neurons, which the event engine does "
            f"not support; falling back to {fallback}",
            RuntimeWarning,
            stacklevel=3,
        )
        return "dense"
    if prefers_sparse(net):
        return "sparse"
    return "event"


def simulate(
    network: Union[Network, CompiledNetwork],
    stimulus: Optional[StimulusSpec] = None,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    terminal: Optional[int] = None,
    watch: Optional[Iterable[int]] = None,
    stop_when_quiescent: bool = True,
    record_spikes: bool = False,
    probe_voltages: Optional[Iterable[int]] = None,
    faults: Optional[FaultModel] = None,
    watchdog: Optional[Watchdog] = None,
    hooks: Optional[EngineHooks] = None,
    engine: str = "auto",
) -> SimulationResult:
    """Simulate an SNN, dispatching to a concrete engine.

    ``engine`` may be ``"auto"`` (default), ``"dense"``, ``"event"``, or
    ``"sparse"``; any other name raises a structured
    :class:`~repro.errors.ValidationError` (error code ``INVALID``).  Auto
    picks dense for networks with voltage probes (the other engines do not
    support them) and otherwise chooses by maximum synaptic delay: long
    programmed delays signal a delay-encoded algorithm whose quiet ticks an
    activity-driven engine skips.  Among those, large low-density networks
    (:func:`~repro.core.sparse.prefers_sparse`, thresholds
    ``SPARSE_AUTO_MIN_NEURONS`` / ``SPARSE_DENSITY_THRESHOLD``) run on the
    sparse CSR core and the rest on the event engine; if the network
    contains pacemaker neurons (which both reject), auto falls back to the
    dense engine with a warning instead of raising.

    ``faults``, ``watchdog``, and telemetry ``hooks`` are forwarded to
    whichever engine runs; the engines observe identical fault, watchdog,
    and hook semantics.  Probe ids are deduplicated and validated by the
    dense engine, which raises
    :class:`~repro.errors.ValidationError` for out-of-range ids.
    """
    _check_engine(engine)
    net = network.compile() if isinstance(network, Network) else network
    if engine == "auto":
        if probe_voltages is not None:
            engine = "dense"
        elif net.max_delay > _EVENT_DELAY_CUTOFF:
            engine = _auto_long_delay_engine(net, batched=False)
        else:
            engine = "dense"
    if engine == "dense":
        return simulate_dense(
            net,
            stimulus,
            max_steps=max_steps,
            terminal=terminal,
            watch=watch,
            stop_when_quiescent=stop_when_quiescent,
            record_spikes=record_spikes,
            probe_voltages=probe_voltages,
            faults=faults,
            watchdog=watchdog,
            hooks=hooks,
        )
    if probe_voltages is not None:
        raise ValidationError("voltage probes require the dense engine")
    if engine == "sparse":
        return simulate_sparse(
            net,
            stimulus,
            max_steps=max_steps,
            terminal=terminal,
            watch=watch,
            stop_when_quiescent=stop_when_quiescent,
            record_spikes=record_spikes,
            faults=faults,
            watchdog=watchdog,
            hooks=hooks,
        )
    return simulate_event_driven(
        net,
        stimulus,
        max_steps=max_steps,
        terminal=terminal,
        watch=watch,
        record_spikes=record_spikes,
        faults=faults,
        watchdog=watchdog,
        hooks=hooks,
    )


def simulate_batch(
    network: Union[Network, CompiledNetwork],
    stimuli: Sequence[Optional[StimulusSpec]],
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    terminal: Optional[int] = None,
    watch: Optional[Iterable[int]] = None,
    stop_when_quiescent: bool = True,
    record_spikes: bool = False,
    probe_voltages: Optional[Iterable[int]] = None,
    faults: FaultsSpec = None,
    watchdog: Optional[Watchdog] = None,
    hooks: HooksSpec = None,
    engine: str = "auto",
) -> List[SimulationResult]:
    """Simulate B independent stimuli on one shared network.

    The batched analogue of :func:`simulate`: ``stimuli`` is a sequence of
    B stimulus specs, and ``faults`` / ``hooks`` may each be one shared
    value or a length-B sequence of per-item values.  Returns one
    :class:`~repro.core.result.SimulationResult` per item, in input order,
    identical to B independent :func:`simulate` calls.

    ``engine`` may be ``"auto"`` (default), ``"dense"`` (the batched dense
    engine), ``"event"``, or ``"sparse"`` (each per item).  Auto applies
    the same heuristic as :func:`simulate`: long programmed delays signal a
    delay-encoded algorithm whose quiet ticks an activity-driven engine
    skips, so those batches run item by item on the sparse core (large
    low-density networks) or the event engine; everything else steps all
    items in lockstep on the batched dense engine.  Requests the batched
    dense engine cannot express — voltage probes or a ``watchdog`` — fall
    back to per-item :func:`simulate` dispatch, preserving exact solo
    semantics at sequential speed.
    """
    _check_engine(engine)
    net = network.compile() if isinstance(network, Network) else network
    B = len(stimuli)
    fault_list = _per_item(faults, B, FaultModel, "faults")
    hook_list = _per_item(hooks, B, EngineHooks, "hooks")

    if watchdog is not None or probe_voltages is not None:
        # per-item fallback: the batched dense engine carries no watchdog
        # state or probe traces
        return [
            simulate(
                net,
                stimuli[b],
                max_steps=max_steps,
                terminal=terminal,
                watch=watch,
                stop_when_quiescent=stop_when_quiescent,
                record_spikes=record_spikes,
                probe_voltages=probe_voltages,
                faults=fault_list[b],
                watchdog=watchdog,
                hooks=hook_list[b],
                engine=engine,
            )
            for b in range(B)
        ]

    if engine == "auto":
        if net.max_delay > _EVENT_DELAY_CUTOFF:
            engine = _auto_long_delay_engine(net, batched=True)
        else:
            engine = "dense"
    if engine == "dense":
        return simulate_dense_batch(
            net,
            stimuli,
            max_steps=max_steps,
            terminal=terminal,
            watch=watch,
            stop_when_quiescent=stop_when_quiescent,
            record_spikes=record_spikes,
            faults=fault_list,
            hooks=hook_list,
        )
    if engine == "sparse":
        return [
            simulate_sparse(
                net,
                stimuli[b],
                max_steps=max_steps,
                terminal=terminal,
                watch=watch,
                stop_when_quiescent=stop_when_quiescent,
                record_spikes=record_spikes,
                faults=fault_list[b],
                hooks=hook_list[b],
            )
            for b in range(B)
        ]
    return [
        simulate_event_driven(
            net,
            stimuli[b],
            max_steps=max_steps,
            terminal=terminal,
            watch=watch,
            record_spikes=record_spikes,
            faults=fault_list[b],
            hooks=hook_list[b],
        )
        for b in range(B)
    ]
