"""Event-driven LIF simulation engine.

Processes spike *deliveries* from a priority queue instead of advancing
every neuron every tick.  Voltage decay between deliveries is closed
analytically: after ``dt`` quiet ticks the excess over ``v_reset`` shrinks by
``(1 - tau) ** dt``, which equals the tick-by-tick Eq. (1) update exactly
(up to floating-point associativity for fractional ``tau``).

This engine is what makes the pseudopolynomial algorithms of Sections 3–4
practical to simulate: their simulated horizon is ``T = O(L)`` (path length)
while only ``O(n + m)`` spikes ever occur, so stepping each tick would waste
``Omega(L * n)`` work.  The engine's wall-clock is ``O(S log S)`` in the
number of deliveries ``S``; the *reported* execution time is still the
simulated tick count, which is what the paper's theorems bound.

Restrictions (validated up front):

* no pacemaker neurons (``v_reset > v_threshold``) — they fire with no
  incoming events, defeating laziness; use the dense engine;
* semantics otherwise identical to :func:`repro.core.engine.simulate_dense`,
  which the test suite checks on randomized networks.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.engine import StimulusSpec, _normalize_stimulus
from repro.core.network import CompiledNetwork, Network
from repro.core.result import SimulationResult, StopReason
from repro.core.transient import FaultModel
from repro.core.watchdog import Watchdog, WatchdogState
from repro.errors import (
    NonQuiescenceError,
    RunawaySpikesError,
    UnsupportedNetworkError,
    ValidationError,
)
from repro.telemetry.hooks import EngineHooks
from repro.telemetry.metrics import counter_inc

__all__ = ["simulate_event_driven"]


def simulate_event_driven(
    network: Union[Network, CompiledNetwork],
    stimulus: Optional[StimulusSpec] = None,
    *,
    max_steps: int,
    terminal: Optional[int] = None,
    watch: Optional[Iterable[int]] = None,
    record_spikes: bool = False,
    faults: Optional[FaultModel] = None,
    watchdog: Optional[Watchdog] = None,
    hooks: Optional[EngineHooks] = None,
) -> SimulationResult:
    """Simulate a network by processing spike deliveries in time order.

    Same parameters and result semantics as
    :func:`repro.core.engine.simulate_dense` (without voltage probes, which
    are only meaningful per tick).  Transient ``faults`` and the
    ``watchdog`` guards observe identical semantics to the dense engine;
    forced fault spikes (spurious / stuck-at-firing) are merged into the
    event stream in time order, so laziness is preserved between them.

    ``hooks`` observes the same events as in the dense engine; because
    events are emitted per *active* tick, equivalent runs report identical
    totals on both engines (asserted by the equivalence tests).
    """
    net = network.compile() if isinstance(network, Network) else network
    if max_steps < 0:
        raise ValidationError(f"max_steps must be >= 0, got {max_steps}")
    if net.has_pacemakers:
        raise UnsupportedNetworkError(
            "network contains pacemaker neurons (v_reset > v_threshold); "
            "use the dense engine"
        )
    n = net.n
    term = terminal if terminal is not None else net.terminal
    watch_mask = None
    watch_remaining = 0
    if watch is not None:
        watch_mask = np.zeros(n, dtype=bool)
        watch_mask[np.asarray(list(watch), dtype=np.int64)] = True
        watch_remaining = int(watch_mask.sum())

    stim = _normalize_stimulus(stimulus)
    for ids in stim.values():
        if ids.size and (ids.min() < 0 or ids.max() >= n):
            raise ValidationError("stimulus neuron id out of range")

    v = net.v_reset.copy()
    last_update = np.zeros(n, dtype=np.int64)
    fired_ever = np.zeros(n, dtype=bool)
    first_spike = np.full(n, -1, dtype=np.int64)
    spike_counts = np.zeros(n, dtype=np.int64)
    spike_events: Optional[Dict[int, List[int]]] = {} if record_spikes else None

    # Heap of (tick, kind, neuron, weight); kind 0 = induced spike,
    # kind 1 = synaptic delivery.  Induced spikes sort first at equal ticks
    # (they fire unconditionally so ordering only affects bookkeeping).
    heap: List[Tuple[int, int, int, float]] = []
    for tick, ids in stim.items():
        for nid in ids:
            heap.append((tick, 0, int(nid), 0.0))
    heapq.heapify(heap)

    decay_keep = 1.0 - net.tau  # per-tick retention of excess voltage

    rf = faults.bind(net, max_steps) if faults is not None else None
    next_forced = rf.next_forced_tick(-1) if rf is not None else None
    wd = WatchdogState(watchdog, n, net.names) if watchdog is not None else None
    diagnostic = None
    if hooks is not None:
        hooks.on_run_start(n, max_steps, "event")

    def fire(nid: int, t: int) -> Tuple[int, int]:
        """Record one spike; returns (deliveries scheduled, dropped)."""
        nonlocal watch_remaining
        if not fired_ever[nid]:
            first_spike[nid] = t
            fired_ever[nid] = True
            if watch_mask is not None and watch_mask[nid]:
                watch_remaining -= 1
        spike_counts[nid] += 1
        if spike_events is not None:
            spike_events.setdefault(t, []).append(nid)
        v[nid] = net.v_reset[nid]
        last_update[nid] = t
        lo, hi = net.indptr[nid], net.indptr[nid + 1]
        if rf is None:
            for s in range(lo, hi):
                heapq.heappush(
                    heap,
                    (t + int(net.syn_delay[s]), 1, int(net.syn_dst[s]), float(net.syn_weight[s])),
                )
            return int(hi - lo), 0
        # fault decisions hash (seed, emission tick, synapse id), so the
        # mask here equals the dense engine's scatter mask exactly
        syn_idx = np.arange(lo, hi, dtype=np.int64)
        keep = rf.keep_deliveries(t, syn_idx)
        syn_idx = syn_idx[keep]
        dropped = int(hi - lo) - int(syn_idx.size)
        if syn_idx.size == 0:
            return 0, dropped
        weights = rf.deliver_weights(t, syn_idx, net.syn_weight[syn_idx])
        for s, w in zip(syn_idx, weights):
            heapq.heappush(
                heap,
                (t + int(net.syn_delay[s]), 1, int(net.syn_dst[s]), float(w)),
            )
        return int(syn_idx.size), dropped

    final_tick = 0
    stop_reason: Optional[StopReason] = None
    while stop_reason is None:
        if not heap and next_forced is None:
            stop_reason = StopReason.QUIESCENT
            break
        # Next tick with activity: earliest of heap events and fault-forced
        # spikes (spurious / stuck-at-firing), keeping laziness between them.
        if heap and (next_forced is None or heap[0][0] <= next_forced):
            t = heap[0][0]
        else:
            t = next_forced
        if t > max_steps:
            stop_reason = StopReason.MAX_STEPS
            final_tick = max_steps
            break
        final_tick = t
        # Drain the whole batch at tick t: deliveries to one neuron sum
        # before the threshold comparison, matching v_syn of Eq. (4).
        induced: List[int] = []
        delivered: Dict[int, float] = {}
        while heap and heap[0][0] == t:
            _, kind, nid, w = heapq.heappop(heap)
            if kind == 0:
                induced.append(nid)
            else:
                delivered[nid] = delivered.get(nid, 0.0) + w
        if next_forced == t:
            forced = rf.forced_at(t)
            if hooks is not None and forced.size:
                hooks.on_fault_forced(t, forced)
            induced.extend(int(i) for i in forced)
            next_forced = rf.next_forced_tick(t)
        fired_now: List[int] = []
        for nid, syn in delivered.items():
            dt = t - last_update[nid]
            keep = decay_keep[nid]
            if dt > 0 and keep != 1.0:
                excess = v[nid] - net.v_reset[nid]
                v[nid] = net.v_reset[nid] + excess * (keep**dt)
            vhat = v[nid] + syn
            last_update[nid] = t
            if vhat > net.v_threshold[nid] and not (net.one_shot[nid] and fired_ever[nid]):
                fired_now.append(nid)
            else:
                v[nid] = vhat
        for nid in set(induced):
            if nid not in fired_now:
                fired_now.append(nid)
        if rf is not None and fired_now:
            arr = np.asarray(fired_now, dtype=np.int64)
            sup = rf.suppressed(t, arr)
            if sup.any():
                # suppressed spikes are "fired but lost": voltage resets as if
                # fired, but nothing is recorded and nothing propagates
                if hooks is not None:
                    hooks.on_fault_suppressed(t, np.sort(arr[sup]))
                for nid, s in zip(fired_now, sup):
                    if s:
                        v[nid] = net.v_reset[nid]
                        last_update[nid] = t
                fired_now = [nid for nid, s in zip(fired_now, sup) if not s]
        scheduled_t = dropped_t = 0
        for nid in fired_now:
            s, d = fire(nid, t)
            scheduled_t += s
            dropped_t += d
        if hooks is not None:
            if fired_now:
                hooks.on_spikes(t, np.asarray(sorted(fired_now), dtype=np.int64))
            if scheduled_t or dropped_t:
                hooks.on_deliveries(t, scheduled_t, dropped_t)
        # stop checks after the full batch at tick t
        if wd is not None:
            report = wd.observe(t, np.asarray(fired_now, dtype=np.int64))
            if report is not None:
                if watchdog.raise_on_trip:
                    raise RunawaySpikesError(report.describe(), report)
                stop_reason = StopReason.RUNAWAY
                diagnostic = report
                continue
        if term is not None and fired_ever[term]:
            stop_reason = StopReason.TERMINAL
        elif watch_mask is not None and watch_remaining == 0:
            stop_reason = StopReason.WATCH_SET

    if wd is not None and stop_reason is StopReason.MAX_STEPS:
        report = wd.non_quiescence(final_tick)
        if report is not None:
            if watchdog.raise_on_trip:
                raise NonQuiescenceError(report.describe(), report)
            diagnostic = report

    if hooks is not None:
        hooks.on_stop(int(final_tick), stop_reason, diagnostic)
    counter_inc("engine.runs", 1)
    counter_inc("engine.spikes", int(spike_counts.sum()))
    counter_inc("engine.ticks", int(final_tick))
    events = None
    if spike_events is not None:
        events = {
            t: np.asarray(sorted(ids), dtype=np.int64) for t, ids in spike_events.items()
        }
    return SimulationResult(
        first_spike=first_spike,
        spike_counts=spike_counts,
        final_tick=int(final_tick),
        stop_reason=stop_reason,
        spike_events=events,
        diagnostic=diagnostic,
    )
