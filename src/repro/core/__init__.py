"""Discrete leaky-integrate-and-fire (LIF) spiking neural network substrate.

Implements Definitions 1–3 of the paper: discrete time, per-neuron
``(v_reset, v_threshold, tau)``, synapses with programmable weight and
integer delay at least the hardware minimum ``delta = 1``, computation
initiated by stimulating input neurons at ``t = 0`` and terminated when a
designated terminal neuron first spikes.

Two engines share identical semantics:

* :func:`~repro.core.engine.simulate_dense` — advances every neuron every
  tick with vectorized NumPy state; right for circuit-heavy networks where
  most ticks carry activity.
* :func:`~repro.core.event_engine.simulate_event_driven` — processes spike
  deliveries from a priority queue and closes voltage decay lazily; right for
  the delay-encoded algorithms of Sections 3–4 where the simulated horizon
  ``T = O(L)`` far exceeds the number of spikes.

``simulate`` picks an engine automatically.  ``simulate_batch`` runs B
independent stimuli over one shared network, stepping all items in lockstep
on the batched dense engine (:func:`~repro.core.batch.simulate_dense_batch`)
or falling back to per-item dispatch where batching cannot help; the
:mod:`~repro.core.cache` build cache lets repeated queries of one structure
skip network construction entirely.

Runtime robustness (both engines, identical semantics):

* :class:`~repro.core.transient.FaultModel` implementations inject seeded
  per-tick transient faults — spike drops, spurious spikes, stuck-at
  windows, weight drift — composable with ``|``;
* :class:`~repro.core.watchdog.Watchdog` arms runaway-spike-rate detection
  and non-quiescence diagnosis.
"""

from repro.core.lif import (
    DEFAULT_DELTA,
    NeuronParams,
    threshold_for_count,
)
from repro.core.network import CompiledNetwork, Network
from repro.core.result import SimulationResult, StopReason
from repro.core.cost import CostReport
from repro.core.batch import simulate_dense_batch
from repro.core.cache import BuildCache, default_build_cache, structure_fingerprint
from repro.core.engine import simulate_dense
from repro.core.event_engine import simulate_event_driven
from repro.core.run import ENGINES, simulate, simulate_batch
from repro.core.sparse import (
    SparseCompiledNetwork,
    network_density,
    prefers_sparse,
    simulate_sparse,
    sparse_compile,
)
from repro.core.transient import (
    FaultModel,
    SpikeDrop,
    SpuriousSpikes,
    StuckAtFiring,
    StuckAtSilent,
    WeightDrift,
    compose,
)
from repro.core.watchdog import Watchdog, WatchdogReport

__all__ = [
    "DEFAULT_DELTA",
    "NeuronParams",
    "threshold_for_count",
    "Network",
    "CompiledNetwork",
    "SimulationResult",
    "StopReason",
    "CostReport",
    "simulate",
    "simulate_batch",
    "simulate_dense",
    "simulate_dense_batch",
    "simulate_event_driven",
    "simulate_sparse",
    "sparse_compile",
    "SparseCompiledNetwork",
    "network_density",
    "prefers_sparse",
    "ENGINES",
    "BuildCache",
    "default_build_cache",
    "structure_fingerprint",
    "FaultModel",
    "SpikeDrop",
    "SpuriousSpikes",
    "StuckAtSilent",
    "StuckAtFiring",
    "WeightDrift",
    "compose",
    "Watchdog",
    "WatchdogReport",
]
