"""Spike-raster rendering and rate statistics for simulation results.

Event-driven debugging aids: an ASCII raster of which neuron fired when
(the standard visualization of SNN activity), per-neuron firing rates, and
inter-spike-interval summaries.  All functions consume a
:class:`~repro.core.result.SimulationResult` recorded with
``record_spikes=True``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.network import Network
from repro.core.result import SimulationResult
from repro.errors import ValidationError

__all__ = ["spike_raster", "firing_rates", "interspike_intervals"]


def _events_required(result: SimulationResult) -> Dict[int, np.ndarray]:
    if result.spike_events is None:
        raise ValidationError(
            "raster utilities need record_spikes=True on the simulation"
        )
    return result.spike_events


def spike_raster(
    result: SimulationResult,
    neuron_ids: Sequence[int],
    *,
    t_start: int = 0,
    t_end: Optional[int] = None,
    names: Optional[Sequence[str]] = None,
    mark: str = "|",
    empty: str = ".",
) -> str:
    """Render an ASCII raster: one row per neuron, one column per tick.

    >>> print(spike_raster(result, [0, 1, 2]))          # doctest: +SKIP
    v0 |....|.....
    v1 .|....|....
    v2 ..|....|...
    """
    events = _events_required(result)
    t_end = result.final_tick if t_end is None else t_end
    if t_end < t_start:
        raise ValidationError("t_end must be >= t_start")
    fired_at: Dict[int, set] = {int(nid): set() for nid in neuron_ids}
    for t, ids in events.items():
        if t_start <= t <= t_end:
            for nid in ids.tolist():
                if nid in fired_at:
                    fired_at[nid].add(t)
    labels = (
        [str(x) for x in names]
        if names is not None
        else [f"n{nid}" for nid in neuron_ids]
    )
    if len(labels) != len(neuron_ids):
        raise ValidationError("one name per neuron id required")
    width = max(len(s) for s in labels) if labels else 0
    lines: List[str] = []
    for nid, label in zip(neuron_ids, labels):
        row = "".join(
            mark if t in fired_at[int(nid)] else empty
            for t in range(t_start, t_end + 1)
        )
        lines.append(f"{label.rjust(width)} {row}")
    return "\n".join(lines)


def firing_rates(
    result: SimulationResult, *, horizon: Optional[int] = None
) -> np.ndarray:
    """Spikes per tick for every neuron over the (given or run) horizon."""
    ticks = (result.final_tick if horizon is None else horizon) + 1
    if ticks <= 0:
        raise ValidationError("horizon must cover at least one tick")
    return result.spike_counts / float(ticks)


def interspike_intervals(result: SimulationResult, neuron_id: int) -> np.ndarray:
    """Gaps between consecutive spikes of one neuron (empty if < 2 spikes)."""
    events = _events_required(result)
    times = sorted(
        t for t, ids in events.items() if neuron_id in set(ids.tolist())
    )
    if len(times) < 2:
        return np.empty(0, dtype=np.int64)
    return np.diff(np.asarray(times, dtype=np.int64))
