"""Runtime watchdog guards for the simulation engines.

Networks with unintended excitatory cycles oscillate forever and, without a
guard, silently burn the whole ``max_steps`` budget.  A :class:`Watchdog`
arms two diagnostics in either engine (and :class:`~repro.core.session.DenseSession`):

* **runaway spike-rate detection** — if any non-exempt neuron fires at least
  ``max_spikes_per_neuron`` times within a sliding ``window`` of ticks, the
  run stops with :attr:`~repro.core.result.StopReason.RUNAWAY` and a
  :class:`WatchdogReport` naming the hottest neurons;
* **non-quiescence diagnosis** — if the tick budget is exhausted while
  activity continues, the MAX_STEPS result carries a report of the hottest
  neurons of the final window instead of failing silently.

With ``raise_on_trip=True`` the same conditions raise
:class:`~repro.errors.RunawaySpikesError` /
:class:`~repro.errors.NonQuiescenceError` instead of returning a result.

Neurons that legitimately fire every tick (clock latches, pacemakers) should
be listed in ``ignore``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = ["Watchdog", "WatchdogReport", "WatchdogState"]


@dataclass(frozen=True)
class Watchdog:
    """Configuration of the engine watchdog guards.

    Parameters
    ----------
    window:
        Length of the sliding tick window over which spike rates are
        measured (``>= 2``).
    max_spikes_per_neuron:
        Trip once some non-exempt neuron fires at least this many times
        inside one window.  Defaults to ``window // 2`` — an every-other-tick
        oscillator trips, a one-shot wavefront never does.
    top_k:
        How many of the hottest neurons the diagnostic report names.
    ignore:
        Neuron ids exempt from rate accounting (clock latches, pacemakers).
    raise_on_trip:
        Raise :class:`~repro.errors.RunawaySpikesError` /
        :class:`~repro.errors.NonQuiescenceError` instead of stopping with a
        diagnostic result.
    """

    window: int = 64
    max_spikes_per_neuron: Optional[int] = None
    top_k: int = 5
    ignore: Tuple[int, ...] = ()
    raise_on_trip: bool = False

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValidationError(f"watchdog window must be >= 2, got {self.window}")
        limit = self.effective_limit
        if not (1 <= limit <= self.window):
            raise ValidationError(
                f"max_spikes_per_neuron must be in [1, window], got {limit}"
            )
        if self.top_k < 1:
            raise ValidationError(f"top_k must be >= 1, got {self.top_k}")
        # normalize ignore to a sorted tuple so the config hashes/compares
        object.__setattr__(self, "ignore", tuple(sorted(set(int(i) for i in self.ignore))))

    @property
    def effective_limit(self) -> int:
        return (
            self.max_spikes_per_neuron
            if self.max_spikes_per_neuron is not None
            else self.window // 2
        )


@dataclass
class WatchdogReport:
    """Diagnostic emitted when a watchdog condition fires.

    ``hot`` lists the offending neurons hottest-first as
    ``(neuron id, name or None, spikes in window)``.
    """

    kind: str  # "runaway" or "non_quiescent"
    tick: int
    window: int
    hot: List[Tuple[int, Optional[str], int]] = field(default_factory=list)

    @property
    def hot_neurons(self) -> List[int]:
        """Just the offending neuron ids, hottest first."""
        return [nid for nid, _, _ in self.hot]

    def describe(self) -> str:
        what = (
            "runaway spike rate"
            if self.kind == "runaway"
            else "tick budget exhausted while the network was still active"
        )
        neurons = ", ".join(
            f"{name or f'#{nid}'} ({count} spikes)" for nid, name, count in self.hot
        )
        return (
            f"{what} at tick {self.tick} "
            f"(window={self.window}); hottest neurons: {neurons or 'none'}"
        )


class WatchdogState:
    """Per-run sliding-window spike accounting shared by both engines.

    The window is pruned by *tick value*, not by call count, so the event
    engine (which skips quiet ticks) and the dense engine (which visits every
    tick) compute identical rates.
    """

    def __init__(self, config: Watchdog, n: int, names: Iterable[Optional[str]] = ()):
        self.config = config
        self.limit = config.effective_limit
        self.counts = np.zeros(n, dtype=np.int64)
        self.entries: Deque[Tuple[int, np.ndarray]] = deque()
        self.names = tuple(names)
        self._ignore = np.zeros(n, dtype=bool)
        for nid in config.ignore:
            if 0 <= nid < n:
                self._ignore[nid] = True

    def _name_of(self, nid: int) -> Optional[str]:
        return self.names[nid] if nid < len(self.names) else None

    def _hottest(self) -> List[Tuple[int, Optional[str], int]]:
        eff = np.where(self._ignore, 0, self.counts)
        order = np.argsort(eff, kind="stable")[::-1][: self.config.top_k]
        return [
            (int(nid), self._name_of(int(nid)), int(eff[nid]))
            for nid in order
            if eff[nid] > 0
        ]

    def observe(self, t: int, ids: np.ndarray) -> Optional[WatchdogReport]:
        """Account the neurons fired at tick ``t``; report if the rate trips."""
        window = self.config.window
        while self.entries and self.entries[0][0] <= t - window:
            _, old = self.entries.popleft()
            self.counts[old] -= 1
        if ids.size == 0:
            return None
        self.entries.append((t, ids))
        self.counts[ids] += 1
        over = self.counts[ids] >= self.limit
        if over.any() and not self._ignore[ids[over]].all():
            return WatchdogReport(
                kind="runaway", tick=int(t), window=window, hot=self._hottest()
            )
        return None

    def non_quiescence(self, t: int) -> Optional[WatchdogReport]:
        """Report residual activity when the tick budget ran out, if any."""
        window = self.config.window
        while self.entries and self.entries[0][0] <= t - window:
            _, old = self.entries.popleft()
            self.counts[old] -= 1
        hot = self._hottest()
        if not hot:
            return None
        return WatchdogReport(
            kind="non_quiescent", tick=int(t), window=self.config.window, hot=hot
        )
