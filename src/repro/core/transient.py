"""Runtime (per-tick) transient fault models for the simulation engines.

:mod:`repro.core.faults` builds *statically* perturbed network copies; real
neuromorphic substrates additionally fault **mid-run**: deliveries are lost,
neurons babble or fall silent for stretches of time, analog weights drift as
the run proceeds.  This module models those transient faults as values the
engines consult while simulating, with identical semantics across
:func:`~repro.core.engine.simulate_dense`,
:func:`~repro.core.event_engine.simulate_event_driven`, and
:class:`~repro.core.session.DenseSession` (enforced by the
engine-equivalence tests).

Models (all seeded, all composable with ``|`` or :func:`compose`):

* :class:`SpikeDrop` — each synaptic delivery is lost independently with
  probability ``p`` (optionally only deliveries leaving ``sources``);
* :class:`SpuriousSpikes` — each neuron is forced to fire spontaneously
  with per-tick probability ``rate``;
* :class:`StuckAtSilent` — listed neurons lose every output spike during a
  tick window (the spike is consumed — voltage resets — but never leaves);
* :class:`StuckAtFiring` — listed neurons fire on every tick of a window;
* :class:`WeightDrift` — cumulative drift: a delivery emitted at tick ``t``
  carries ``w * (1 + rate * t * g_s)`` where ``g_s`` is a per-synapse
  standard-normal direction.

Cross-engine determinism
------------------------
The two engines visit work in different orders (the dense engine sweeps all
synapses of a tick at once; the event engine follows heap order), so fault
decisions must not consume a sequential RNG stream.  Every per-event
decision here is a *counter-based* hash of ``(seed, tick, entity id)`` —
a splitmix64 finalizer — making the decision a pure function of what is
faulted, never of visit order.  Bind-time draws (drift directions) use an
ordinary seeded generator, which is safe because both engines bind the same
model against the same compiled network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.network import CompiledNetwork
from repro.errors import ValidationError

__all__ = [
    "FaultModel",
    "BoundFaults",
    "SpikeDrop",
    "SpuriousSpikes",
    "StuckAtSilent",
    "StuckAtFiring",
    "WeightDrift",
    "CountingFaults",
    "FaultRealization",
    "compose",
]

_GOLD = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_INV_2_53 = 1.0 / float(1 << 53)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (wrapping uint64 arithmetic)."""
    with np.errstate(over="ignore"):
        x = x + _GOLD
        x = x ^ (x >> np.uint64(30))
        x = x * _MIX1
        x = x ^ (x >> np.uint64(27))
        x = x * _MIX2
        x = x ^ (x >> np.uint64(31))
    return x


def _uniform_hash(seed: int, tick: int, ids: np.ndarray) -> np.ndarray:
    """Uniform [0, 1) per id — a pure function of ``(seed, tick, id)``."""
    with np.errstate(over="ignore"):
        key = _splitmix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF) ^ _splitmix64(np.uint64(tick)))
        h = _splitmix64(ids.astype(np.uint64) ^ key)
    return (h >> np.uint64(11)).astype(np.float64) * _INV_2_53


def _uniform_hash_grid(seed: int, ticks: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """``(len(ticks), len(ids))`` grid of the same per-(tick, id) uniforms."""
    with np.errstate(over="ignore"):
        keys = _splitmix64(
            np.uint64(seed & 0xFFFFFFFFFFFFFFFF) ^ _splitmix64(ticks.astype(np.uint64))
        )
        h = _splitmix64(ids.astype(np.uint64)[None, :] ^ keys[:, None])
    return (h >> np.uint64(11)).astype(np.float64) * _INV_2_53


Window = Tuple[int, int, int]  # (neuron, start tick, stop tick — exclusive)


def _check_windows(windows: Iterable[Sequence[int]]) -> Tuple[Window, ...]:
    out: List[Window] = []
    for w in windows:
        nid, start, stop = (int(x) for x in w)
        if nid < 0:
            raise ValidationError(f"window neuron must be >= 0, got {nid}")
        if start < 0 or stop <= start:
            raise ValidationError(f"window [{start}, {stop}) is empty or negative")
        out.append((nid, start, stop))
    return tuple(out)


class BoundFaults:
    """Per-run fault state the engines consult; neutral by default.

    An engine binds a :class:`FaultModel` once per run and then asks, per
    tick: which deliveries survive (:meth:`keep_deliveries`), at what weight
    (:meth:`deliver_weights`), which neurons are forced to fire
    (:meth:`forced_at` / :meth:`next_forced_tick`), and which would-be
    spikes are suppressed (:meth:`suppressed`).
    """

    def __init__(self, net: CompiledNetwork, horizon: int):
        self.net = net
        self.horizon = int(horizon)

    def keep_deliveries(self, t: int, syn_idx: np.ndarray) -> np.ndarray:
        """Boolean mask: True where the delivery emitted at ``t`` survives."""
        return np.ones(syn_idx.size, dtype=bool)

    def deliver_weights(self, t: int, syn_idx: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Effective weights of deliveries emitted at tick ``t``."""
        return weights

    def forced_at(self, t: int) -> np.ndarray:
        """Sorted unique neuron ids forced to fire at tick ``t``."""
        return np.empty(0, dtype=np.int64)

    def next_forced_tick(self, after: int) -> Optional[int]:
        """Smallest tick ``> after`` (and ``<= horizon``) with forced spikes."""
        return None

    def suppressed(self, t: int, ids: np.ndarray) -> np.ndarray:
        """Boolean mask over ``ids``: True where the spike at ``t`` is lost.

        A suppressed spike behaves as *fired but lost*: the neuron's voltage
        resets exactly as if it had fired, but nothing is recorded and no
        deliveries leave — the same rule in every engine, which is what
        keeps lazy (event) and eager (dense) evaluation equivalent.
        """
        return np.zeros(ids.size, dtype=bool)


class FaultModel:
    """Base class for transient fault specifications.

    Subclasses implement :meth:`bind`; models compose with ``a | b``.
    """

    def bind(self, net: CompiledNetwork, max_steps: int) -> BoundFaults:
        raise NotImplementedError

    def fingerprint(self) -> Optional[Tuple]:
        """Deterministic content key of this model, or ``None``.

        Two models with equal fingerprints realize identical faults on
        identical runs, which is what lets the :mod:`repro.service` result
        cache key entries on ``(structure key, query params, fault
        fingerprint)``.  Models whose identity is not purely their
        parameters (e.g. stateful wrappers like :class:`CountingFaults`)
        return ``None``, marking results computed under them uncacheable.
        """
        return None

    def __or__(self, other: "FaultModel") -> "FaultModel":
        return compose(self, other)


# --------------------------------------------------------------------- #
# Spike drop
# --------------------------------------------------------------------- #


class SpikeDrop(FaultModel):
    """Each synaptic delivery is lost independently with probability ``p``.

    With ``sources`` given, only deliveries leaving those neurons are
    droppable — used e.g. to fault a single TMR replica.  The decision for
    a delivery is a counter-hash of ``(seed, emission tick, synapse id)``,
    so both engines lose exactly the same deliveries.
    """

    def __init__(self, p: float, *, seed: int = 0, sources: Optional[Iterable[int]] = None):
        if not (0.0 <= p <= 1.0):
            raise ValidationError(f"drop probability must be in [0, 1], got {p}")
        self.p = float(p)
        self.seed = int(seed)
        self.sources = None if sources is None else tuple(sorted(set(int(s) for s in sources)))

    def bind(self, net: CompiledNetwork, max_steps: int) -> BoundFaults:
        return _BoundSpikeDrop(net, max_steps, self)

    def fingerprint(self) -> Tuple:
        return ("spike_drop", self.p, self.seed, self.sources)


class _BoundSpikeDrop(BoundFaults):
    def __init__(self, net: CompiledNetwork, horizon: int, spec: SpikeDrop):
        super().__init__(net, horizon)
        self.spec = spec
        self._droppable: Optional[np.ndarray] = None
        if spec.sources is not None:
            syn_src = np.repeat(np.arange(net.n, dtype=np.int64), np.diff(net.indptr))
            self._droppable = np.isin(syn_src, np.asarray(spec.sources, dtype=np.int64))

    def keep_deliveries(self, t: int, syn_idx: np.ndarray) -> np.ndarray:
        if self.spec.p == 0.0 or syn_idx.size == 0:
            return np.ones(syn_idx.size, dtype=bool)
        keep = _uniform_hash(self.spec.seed, t, syn_idx) >= self.spec.p
        if self._droppable is not None:
            keep |= ~self._droppable[syn_idx]
        return keep


# --------------------------------------------------------------------- #
# Spurious spikes
# --------------------------------------------------------------------- #


class SpuriousSpikes(FaultModel):
    """Each neuron fires spontaneously with per-tick probability ``rate``.

    Spurious spikes are *forced* fires: recorded, delivered, and resetting
    the voltage exactly like threshold crossings.  With ``neurons`` given,
    only those neurons babble.
    """

    def __init__(self, rate: float, *, seed: int = 0, neurons: Optional[Iterable[int]] = None):
        if not (0.0 <= rate <= 1.0):
            raise ValidationError(f"spurious rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)
        self.neurons = None if neurons is None else tuple(sorted(set(int(x) for x in neurons)))

    def bind(self, net: CompiledNetwork, max_steps: int) -> BoundFaults:
        return _BoundSpurious(net, max_steps, self)

    def fingerprint(self) -> Tuple:
        return ("spurious", self.rate, self.seed, self.neurons)


class _BoundSpurious(BoundFaults):
    _SCAN_CHUNK = 512  # ticks hashed per block while scanning forward

    def __init__(self, net: CompiledNetwork, horizon: int, spec: SpuriousSpikes):
        super().__init__(net, horizon)
        self.spec = spec
        if spec.neurons is None:
            self._sel = np.arange(net.n, dtype=np.int64)
        else:
            self._sel = np.asarray([x for x in spec.neurons if x < net.n], dtype=np.int64)

    def forced_at(self, t: int) -> np.ndarray:
        if self.spec.rate == 0.0 or self._sel.size == 0:
            return np.empty(0, dtype=np.int64)
        hits = _uniform_hash(self.spec.seed, t, self._sel) < self.spec.rate
        return self._sel[hits]

    def next_forced_tick(self, after: int) -> Optional[int]:
        if self.spec.rate == 0.0 or self._sel.size == 0:
            return None
        t = after + 1
        while t <= self.horizon:
            block = min(self._SCAN_CHUNK, self.horizon - t + 1)
            ticks = np.arange(t, t + block, dtype=np.int64)
            hits = (_uniform_hash_grid(self.spec.seed, ticks, self._sel) < self.spec.rate).any(
                axis=1
            )
            if hits.any():
                return t + int(np.argmax(hits))
            t += block
        return None


# --------------------------------------------------------------------- #
# Stuck-at windows
# --------------------------------------------------------------------- #


class StuckAtSilent(FaultModel):
    """Listed neurons lose every output spike during their tick windows.

    ``windows`` is an iterable of ``(neuron, start, stop)`` with ``stop``
    exclusive.  During a window the neuron behaves as *fired but lost*
    whenever it would fire (voltage resets, nothing propagates, nothing is
    recorded); between windows it is healthy.
    """

    def __init__(self, windows: Iterable[Sequence[int]]):
        self.windows = _check_windows(windows)

    def bind(self, net: CompiledNetwork, max_steps: int) -> BoundFaults:
        for nid, _, _ in self.windows:
            if nid >= net.n:
                raise ValidationError(f"stuck neuron {nid} out of range for n={net.n}")
        return _BoundStuckSilent(net, max_steps, self.windows)

    def fingerprint(self) -> Tuple:
        return ("stuck_silent", self.windows)


class _BoundStuckSilent(BoundFaults):
    def __init__(self, net: CompiledNetwork, horizon: int, windows: Tuple[Window, ...]):
        super().__init__(net, horizon)
        self.windows = windows

    def suppressed(self, t: int, ids: np.ndarray) -> np.ndarray:
        mask = np.zeros(ids.size, dtype=bool)
        for nid, start, stop in self.windows:
            if start <= t < stop:
                mask |= ids == nid
        return mask


class StuckAtFiring(FaultModel):
    """Listed neurons are forced to fire on every tick of their windows.

    The forced fire follows normal fire semantics (recorded, delivered,
    voltage reset) — a neuron stuck at firing floods its fan-out.
    """

    def __init__(self, windows: Iterable[Sequence[int]]):
        self.windows = _check_windows(windows)

    def bind(self, net: CompiledNetwork, max_steps: int) -> BoundFaults:
        for nid, _, _ in self.windows:
            if nid >= net.n:
                raise ValidationError(f"stuck neuron {nid} out of range for n={net.n}")
        return _BoundStuckFiring(net, max_steps, self.windows)

    def fingerprint(self) -> Tuple:
        return ("stuck_firing", self.windows)


class _BoundStuckFiring(BoundFaults):
    def __init__(self, net: CompiledNetwork, horizon: int, windows: Tuple[Window, ...]):
        super().__init__(net, horizon)
        self.windows = windows

    def forced_at(self, t: int) -> np.ndarray:
        ids = {nid for nid, start, stop in self.windows if start <= t < stop}
        return np.asarray(sorted(ids), dtype=np.int64)

    def next_forced_tick(self, after: int) -> Optional[int]:
        best: Optional[int] = None
        for _, start, stop in self.windows:
            t = max(start, after + 1)
            if t < stop and t <= self.horizon and (best is None or t < best):
                best = t
        return best


# --------------------------------------------------------------------- #
# Weight drift
# --------------------------------------------------------------------- #


class WeightDrift(FaultModel):
    """Cumulative analog weight drift, linear in simulated time.

    A delivery emitted at tick ``t`` over synapse ``s`` carries
    ``w_s * (1 + rate * t * g_s)`` where ``g_s ~ N(0, 1)`` is a fixed
    per-synapse drift direction drawn at bind time from ``seed``.  At
    ``t = 0`` weights are exact; the perturbation grows with the run, which
    is what distinguishes drift from the static
    :func:`~repro.core.faults.with_weight_noise`.
    """

    def __init__(self, rate: float, *, seed: int = 0):
        if rate < 0:
            raise ValidationError(f"drift rate must be >= 0, got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)

    def bind(self, net: CompiledNetwork, max_steps: int) -> BoundFaults:
        return _BoundDrift(net, max_steps, self)

    def fingerprint(self) -> Tuple:
        return ("weight_drift", self.rate, self.seed)


class _BoundDrift(BoundFaults):
    def __init__(self, net: CompiledNetwork, horizon: int, spec: WeightDrift):
        super().__init__(net, horizon)
        self.rate = spec.rate
        self.directions = np.random.default_rng(spec.seed).standard_normal(net.m)

    def deliver_weights(self, t: int, syn_idx: np.ndarray, weights: np.ndarray) -> np.ndarray:
        if self.rate == 0.0 or t == 0 or syn_idx.size == 0:
            return weights
        return weights * (1.0 + self.rate * t * self.directions[syn_idx])


# --------------------------------------------------------------------- #
# Realization counting
# --------------------------------------------------------------------- #


@dataclass
class FaultRealization:
    """Exact counts of faults an engine actually realized during one run.

    ``dropped_deliveries`` counts synaptic deliveries removed at emission
    time, ``forced_spikes`` counts fault-forced fires the model handed to
    the engine, and ``suppressed_spikes`` counts would-be spikes the model
    marked "fired but lost".  Because fault decisions are counter-hashed
    (pure functions of what is faulted), equivalent runs realize identical
    counts on every engine — the telemetry tests compare these against the
    totals the :class:`~repro.telemetry.trace.TraceRecorder` observes
    through the hook API.
    """

    dropped_deliveries: int = 0
    forced_spikes: int = 0
    suppressed_spikes: int = 0

    def as_dict(self) -> dict:
        return {
            "dropped_deliveries": self.dropped_deliveries,
            "forced_spikes": self.forced_spikes,
            "suppressed_spikes": self.suppressed_spikes,
        }


class CountingFaults(FaultModel):
    """Wrap a fault model and tally the faults engines realize through it.

    The wrapper is transparent: every query delegates to the inner model,
    so spike trains are unchanged.  ``realization`` accumulates across
    binds (reuse one wrapper per run for per-run counts).
    """

    def __init__(self, inner: FaultModel):
        self.inner = inner
        self.realization = FaultRealization()

    def bind(self, net: CompiledNetwork, max_steps: int) -> BoundFaults:
        return _CountingBound(
            net, max_steps, self.inner.bind(net, max_steps), self.realization
        )


class _CountingBound(BoundFaults):
    def __init__(
        self,
        net: CompiledNetwork,
        horizon: int,
        inner: BoundFaults,
        counters: FaultRealization,
    ):
        super().__init__(net, horizon)
        self.inner = inner
        self.counters = counters

    def keep_deliveries(self, t: int, syn_idx: np.ndarray) -> np.ndarray:
        keep = self.inner.keep_deliveries(t, syn_idx)
        self.counters.dropped_deliveries += int(syn_idx.size - keep.sum())
        return keep

    def deliver_weights(self, t: int, syn_idx: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return self.inner.deliver_weights(t, syn_idx, weights)

    def forced_at(self, t: int) -> np.ndarray:
        ids = self.inner.forced_at(t)
        self.counters.forced_spikes += int(ids.size)
        return ids

    def next_forced_tick(self, after: int) -> Optional[int]:
        return self.inner.next_forced_tick(after)

    def suppressed(self, t: int, ids: np.ndarray) -> np.ndarray:
        mask = self.inner.suppressed(t, ids)
        self.counters.suppressed_spikes += int(mask.sum())
        return mask


# --------------------------------------------------------------------- #
# Composition
# --------------------------------------------------------------------- #


class _CompositeFaultModel(FaultModel):
    """Independent fault processes applied together (order-insensitive)."""

    def __init__(self, parts: Sequence[FaultModel]):
        flat: List[FaultModel] = []
        for p in parts:
            if isinstance(p, _CompositeFaultModel):
                flat.extend(p.parts)
            else:
                flat.append(p)
        self.parts: Tuple[FaultModel, ...] = tuple(flat)

    def bind(self, net: CompiledNetwork, max_steps: int) -> BoundFaults:
        return _BoundComposite(net, max_steps, [p.bind(net, max_steps) for p in self.parts])

    def fingerprint(self) -> Optional[Tuple]:
        parts = tuple(p.fingerprint() for p in self.parts)
        if any(f is None for f in parts):
            return None
        return ("compose", parts)


class _BoundComposite(BoundFaults):
    def __init__(self, net: CompiledNetwork, horizon: int, parts: List[BoundFaults]):
        super().__init__(net, horizon)
        self.parts = parts

    def keep_deliveries(self, t: int, syn_idx: np.ndarray) -> np.ndarray:
        keep = np.ones(syn_idx.size, dtype=bool)
        for p in self.parts:
            keep &= p.keep_deliveries(t, syn_idx)
        return keep

    def deliver_weights(self, t: int, syn_idx: np.ndarray, weights: np.ndarray) -> np.ndarray:
        for p in self.parts:
            weights = p.deliver_weights(t, syn_idx, weights)
        return weights

    def forced_at(self, t: int) -> np.ndarray:
        forced = [p.forced_at(t) for p in self.parts]
        forced = [f for f in forced if f.size]
        if not forced:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(forced))

    def next_forced_tick(self, after: int) -> Optional[int]:
        ticks = [t for t in (p.next_forced_tick(after) for p in self.parts) if t is not None]
        return min(ticks) if ticks else None

    def suppressed(self, t: int, ids: np.ndarray) -> np.ndarray:
        mask = np.zeros(ids.size, dtype=bool)
        for p in self.parts:
            mask |= p.suppressed(t, ids)
        return mask


def compose(*models: Union[FaultModel, None]) -> FaultModel:
    """Combine fault models into one; each keeps its own seed and process.

    Deliveries survive only if every component keeps them, drifted weights
    apply multiplicatively, forced-spike sets union, and a spike is
    suppressed if any component suppresses it.
    """
    parts = [m for m in models if m is not None]
    if not parts:
        raise ValidationError("compose requires at least one fault model")
    if len(parts) == 1:
        return parts[0]
    return _CompositeFaultModel(parts)
