"""Dense (per-tick, vectorized) LIF simulation engine.

Advances every neuron every tick.  All per-tick state is held in flat NumPy
arrays: a voltage vector, a circular ``(max_delay + 1, n)`` delivery buffer,
and CSR synapse arrays; spike scatter uses ``np.add.at`` on the flattened
buffer.  No Python-level per-neuron work happens inside the loop except the
final bookkeeping of fired ids.

Use this engine for circuit-style networks where most ticks carry activity.
For delay-encoded graph algorithms whose simulated horizon vastly exceeds
the number of spikes, prefer
:func:`repro.core.event_engine.simulate_event_driven`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.network import CompiledNetwork, Network
from repro.core.result import SimulationResult, StopReason
from repro.core.transient import FaultModel
from repro.core.watchdog import Watchdog, WatchdogState
from repro.errors import NonQuiescenceError, RunawaySpikesError, ValidationError
from repro.telemetry.hooks import EngineHooks
from repro.telemetry.metrics import counter_inc

__all__ = ["simulate_dense"]

StimulusSpec = Union[Sequence[int], Mapping[int, Sequence[int]]]


def _normalize_probes(probe_voltages: Optional[Iterable[int]], n: int) -> list:
    """Deduplicated, validated probe ids (first occurrence order kept)."""
    if probe_voltages is None:
        return []
    probes = []
    seen = set()
    for p in probe_voltages:
        pid = int(p)
        if not (0 <= pid < n):
            raise ValidationError(
                f"voltage probe id {pid} out of range for network of {n} neurons"
            )
        if pid not in seen:
            seen.add(pid)
            probes.append(pid)
    return probes


def _normalize_stimulus(stimulus: Optional[StimulusSpec]) -> Dict[int, np.ndarray]:
    """Normalize to ``{tick: array-of-neuron-ids}`` with tick-0 default."""
    if stimulus is None:
        return {}
    if isinstance(stimulus, Mapping):
        out = {}
        for tick, ids in stimulus.items():
            if tick < 0:
                raise ValidationError(f"stimulus tick must be >= 0, got {tick}")
            out[int(tick)] = np.asarray(sorted(set(int(i) for i in ids)), dtype=np.int64)
        return out
    return {0: np.asarray(sorted(set(int(i) for i in stimulus)), dtype=np.int64)}


def simulate_dense(
    network: Union[Network, CompiledNetwork],
    stimulus: Optional[StimulusSpec] = None,
    *,
    max_steps: int,
    terminal: Optional[int] = None,
    watch: Optional[Iterable[int]] = None,
    stop_when_quiescent: bool = True,
    record_spikes: bool = False,
    probe_voltages: Optional[Iterable[int]] = None,
    faults: Optional[FaultModel] = None,
    watchdog: Optional[Watchdog] = None,
    hooks: Optional[EngineHooks] = None,
) -> SimulationResult:
    """Simulate a network tick by tick.

    Parameters
    ----------
    network:
        A :class:`Network` (compiled on the fly) or :class:`CompiledNetwork`.
    stimulus:
        Neuron ids induced to spike at tick 0, or a mapping
        ``{tick: ids}`` for multi-wave inputs (circuit pipelining tests).
    max_steps:
        Hard tick budget; the run stops with :attr:`StopReason.MAX_STEPS`
        when exhausted.
    terminal:
        Neuron whose first spike terminates the run (defaults to the
        network's designated terminal, if any).
    watch:
        Stop once every neuron in this set has fired.
    stop_when_quiescent:
        Stop early when no deliveries remain scheduled and nothing fired in
        the current tick (never triggers while pacemaker neurons exist).
    record_spikes:
        Keep the full tick -> fired-ids record (memory proportional to total
        spikes).
    probe_voltages:
        Neuron ids whose voltage trace to record each tick.
    faults:
        Optional :class:`~repro.core.transient.FaultModel` injecting
        per-tick transient faults (delivery drops, spurious/stuck neurons,
        weight drift).  Semantics are identical in the event engine.
    watchdog:
        Optional :class:`~repro.core.watchdog.Watchdog`.  A runaway spike
        rate stops the run with :attr:`StopReason.RUNAWAY` and a diagnostic
        report (or raises with ``raise_on_trip``); exhausting ``max_steps``
        while activity continues attaches a non-quiescence report.
    hooks:
        Optional :class:`~repro.telemetry.hooks.EngineHooks` observer
        receiving per-tick spikes, synaptic-delivery counts, voltage-probe
        samples, fault realizations, and the stop reason.  ``None`` (the
        default) keeps the loop free of telemetry work.
    """
    net = network.compile() if isinstance(network, Network) else network
    if max_steps < 0:
        raise ValidationError(f"max_steps must be >= 0, got {max_steps}")
    n = net.n
    term = terminal if terminal is not None else net.terminal
    watch_set = None
    watch_remaining = 0
    watch_mask = None
    if watch is not None:
        watch_mask = np.zeros(n, dtype=bool)
        watch_mask[np.asarray(list(watch), dtype=np.int64)] = True
        watch_remaining = int(watch_mask.sum())

    stim = _normalize_stimulus(stimulus)
    for ids in stim.values():
        if ids.size and (ids.min() < 0 or ids.max() >= n):
            raise ValidationError("stimulus neuron id out of range")
    pending_stim_ticks = sorted(stim)

    D = net.max_delay
    n_slots = D + 1
    buf = np.zeros((n_slots, n), dtype=np.float64)
    slot_counts = np.zeros(n_slots, dtype=np.int64)
    v = net.v_reset.copy()
    fired_ever = np.zeros(n, dtype=bool)
    first_spike = np.full(n, -1, dtype=np.int64)
    spike_counts = np.zeros(n, dtype=np.int64)
    any_one_shot = bool(net.one_shot.any())
    has_pacemakers = net.has_pacemakers

    probes = _normalize_probes(probe_voltages, n)
    probes_arr = np.asarray(probes, dtype=np.int64) if probes else None
    voltage_traces: Optional[Dict[int, list]] = (
        {p: [float(v[p])] for p in probes} if probes else None
    )
    spike_events: Optional[Dict[int, np.ndarray]] = {} if record_spikes else None

    rf = faults.bind(net, max_steps) if faults is not None else None
    next_forced = rf.next_forced_tick(-1) if rf is not None else None
    wd = WatchdogState(watchdog, n, net.names) if watchdog is not None else None
    diagnostic = None
    if hooks is not None:
        hooks.on_run_start(n, max_steps, "dense")

    def scatter(ids: np.ndarray, t: int) -> None:
        syn_idx = net.gather_out_synapses(ids)
        if syn_idx.size == 0:
            return
        weights = net.syn_weight[syn_idx]
        dropped = 0
        if rf is not None:
            keep = rf.keep_deliveries(t, syn_idx)
            if not keep.all():
                dropped = int(syn_idx.size - keep.sum())
                syn_idx = syn_idx[keep]
                weights = weights[keep]
            if syn_idx.size:
                weights = rf.deliver_weights(t, syn_idx, weights)
        if hooks is not None:
            hooks.on_deliveries(t, int(syn_idx.size), dropped)
        if syn_idx.size == 0:
            return
        slots = (t + net.syn_delay[syn_idx]) % n_slots
        flat = slots * n + net.syn_dst[syn_idx]
        np.add.at(buf.reshape(-1), flat, weights)
        np.add.at(slot_counts, slots, 1)

    def register_spikes(ids: np.ndarray, t: int) -> None:
        nonlocal watch_remaining
        newly = ids[~fired_ever[ids]]
        first_spike[newly] = t
        if watch_mask is not None and newly.size:
            watch_remaining -= int(watch_mask[newly].sum())
        fired_ever[ids] = True
        spike_counts[ids] += 1
        if spike_events is not None and ids.size:
            spike_events[t] = ids.copy()
        if hooks is not None and ids.size:
            hooks.on_spikes(t, ids)

    # ---- tick 0: induced input spikes ---------------------------------- #
    t = 0
    ids0 = stim.get(0, np.empty(0, dtype=np.int64))
    if next_forced == 0:
        forced0 = rf.forced_at(0)
        if hooks is not None and forced0.size:
            hooks.on_fault_forced(0, forced0)
        ids0 = np.union1d(ids0, forced0)
        next_forced = rf.next_forced_tick(0)
    if rf is not None and ids0.size:
        sup0 = rf.suppressed(0, ids0)
        if sup0.any():
            if hooks is not None:
                hooks.on_fault_suppressed(0, ids0[sup0])
            ids0 = ids0[~sup0]
    if ids0.size:
        register_spikes(ids0, 0)
        scatter(ids0, 0)
    if hooks is not None and probes_arr is not None:
        hooks.on_probe(0, probes, v[probes_arr])
    stop_reason = None
    if wd is not None:
        report = wd.observe(0, ids0)
        if report is not None:
            if watchdog.raise_on_trip:
                raise RunawaySpikesError(report.describe(), report)
            stop_reason = StopReason.RUNAWAY
            diagnostic = report
    if stop_reason is not None:
        pass
    elif term is not None and ids0.size and fired_ever[term]:
        stop_reason = StopReason.TERMINAL
    elif watch_mask is not None and watch_remaining == 0:
        stop_reason = StopReason.WATCH_SET

    # ---- main loop ------------------------------------------------------ #
    while stop_reason is None:
        if t >= max_steps:
            stop_reason = StopReason.MAX_STEPS
            break
        t += 1
        slot = t % n_slots
        syn = buf[slot]
        slot_counts[slot] = 0
        # Eq. (1): decay toward reset, then integrate synaptic input.
        vhat = v + (net.v_reset - v) * net.tau + syn
        syn[:] = 0.0
        fire = vhat > net.v_threshold  # Eq. (2), strict
        if any_one_shot:
            fire &= ~(net.one_shot & fired_ever)
        # induced spikes this tick fire unconditionally
        ids_stim = stim.get(t)
        if ids_stim is not None and ids_stim.size:
            fire[ids_stim] = True
        if next_forced == t:
            forced = rf.forced_at(t)
            if hooks is not None and forced.size:
                hooks.on_fault_forced(t, forced)
            fire[forced] = True
            next_forced = rf.next_forced_tick(t)
        v = np.where(fire, net.v_reset, vhat)  # Eq. (3)
        ids = np.nonzero(fire)[0]
        if rf is not None and ids.size:
            # suppressed spikes are "fired but lost": the voltage reset above
            # stands, but nothing is recorded and nothing propagates
            sup = rf.suppressed(t, ids)
            if sup.any():
                if hooks is not None:
                    hooks.on_fault_suppressed(t, ids[sup])
                ids = ids[~sup]
        if ids.size:
            register_spikes(ids, t)
            scatter(ids, t)
        if voltage_traces is not None:
            for p in voltage_traces:
                voltage_traces[p].append(float(v[p]))
            if hooks is not None:
                hooks.on_probe(t, probes, v[probes_arr])
        # stop checks
        if wd is not None:
            report = wd.observe(t, ids)
            if report is not None:
                if watchdog.raise_on_trip:
                    raise RunawaySpikesError(report.describe(), report)
                stop_reason = StopReason.RUNAWAY
                diagnostic = report
                continue
        if term is not None and fired_ever[term]:
            stop_reason = StopReason.TERMINAL
        elif watch_mask is not None and watch_remaining == 0:
            stop_reason = StopReason.WATCH_SET
        elif (
            stop_when_quiescent
            and not has_pacemakers
            and ids.size == 0
            and slot_counts.sum() == 0
            and all(ts <= t for ts in pending_stim_ticks)
            and next_forced is None
        ):
            stop_reason = StopReason.QUIESCENT

    if wd is not None and stop_reason is StopReason.MAX_STEPS:
        report = wd.non_quiescence(t)
        if report is not None:
            if watchdog.raise_on_trip:
                raise NonQuiescenceError(report.describe(), report)
            diagnostic = report

    if hooks is not None:
        hooks.on_stop(t, stop_reason, diagnostic)
    counter_inc("engine.runs", 1)
    counter_inc("engine.spikes", int(spike_counts.sum()))
    counter_inc("engine.ticks", t)
    voltages = (
        {p: np.asarray(trace, dtype=np.float64) for p, trace in voltage_traces.items()}
        if voltage_traces is not None
        else None
    )
    return SimulationResult(
        first_spike=first_spike,
        spike_counts=spike_counts,
        final_tick=t,
        stop_reason=stop_reason,
        spike_events=spike_events,
        voltages=voltages,
        diagnostic=diagnostic,
    )
