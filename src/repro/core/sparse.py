"""Sparse CSR simulation core for large delay-encoded networks.

The dense engine keeps a ``(max_delay + 1, n)`` circular delivery buffer and
touches every neuron every tick — ``O(n)`` work and ``O(n * max_delay)``
memory even when almost nothing spikes.  The event engine skips quiet ticks
but pays pure-Python heap churn per delivery.  This module is the third
point in that design space: compile the synapse table once into **per-delay
CSR slices** (`scipy.sparse` matrices, one per distinct delay) and simulate
by **vectorized gather/scatter over only the ticks that carry activity**.

Compile-time artifact (:func:`sparse_compile` →
:class:`SparseCompiledNetwork`):

* synapses are stably sorted by delay, preserving the dense engine's
  (source asc, CSR position asc) order *within* each delay bucket;
* each bucket holds a compact ``(S_k, n)`` ``scipy.sparse.csr_matrix``
  (rows = only the sources that have synapses of that delay) plus the
  global synapse ids aligned with its data — faults hash global synapse
  ids, so counter-seeded fault realizations match the dense engine exactly;
* a per-synapse bucket label lets one tick's scatter group the fired
  neurons' out-synapses by delay with a single radix sort, visiting only
  the delay buckets actually reached that tick.

Run time (:func:`simulate_sparse`): a ring buffer of ``max_delay + 1``
chunk lists holds in-flight deliveries as ``(dst, weight)`` array pairs; a
heap of arrival ticks plus the stimulus / forced-fault schedules yields the
next *active* tick, and everything between active ticks is closed
analytically (voltage decay, quiescence detection).  Peak memory is
``O(n + m + in-flight deliveries)`` — no ``(max_delay + 1, n)`` buffer and
never a dense ``(n, n)`` matrix, which is what lets SSSP networks reach
``n = 10^5`` (see ``docs/sparse_engine.md`` and the memory-regression
test).

Semantics are identical to :func:`repro.core.engine.simulate_dense` —
spike-for-spike, including stop metadata (``final_tick`` / ``stop_reason``
follow the dense engine's tick-by-tick rules, unlike the event engine's
last-event convention), fault realizations, and hook totals — up to the
same fractional-``tau`` float-associativity caveat as the event engine.
Restrictions: no pacemaker neurons and no voltage probes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.cache import BuildCache
from repro.core.engine import StimulusSpec, _normalize_stimulus
from repro.core.network import CompiledNetwork, Network
from repro.core.result import SimulationResult, StopReason
from repro.core.transient import FaultModel
from repro.core.watchdog import Watchdog, WatchdogState
from repro.errors import (
    NonQuiescenceError,
    RunawaySpikesError,
    UnsupportedNetworkError,
    ValidationError,
)
from repro.telemetry.hooks import EngineHooks
from repro.telemetry.metrics import counter_inc

__all__ = [
    "SPARSE_AUTO_MIN_NEURONS",
    "SPARSE_DENSITY_THRESHOLD",
    "DelayBucket",
    "SparseCompiledNetwork",
    "network_density",
    "prefers_sparse",
    "sparse_compile",
    "simulate_sparse",
]

#: Below this neuron count the auto-dispatcher never picks the sparse
#: engine: small networks fit the dense buffers comfortably and the dense
#: per-tick loop has less per-call overhead.  Configurable at runtime
#: (tests and benchmarks lower it to exercise the sparse path on small
#: instances).
SPARSE_AUTO_MIN_NEURONS: int = 2048

#: Maximum synapse density ``m / n^2`` at which the auto-dispatcher
#: considers a network sparse.  Graph-algorithm networks sit far below
#: this (SSSP at n=10^4 with average degree 6 has density 6e-4); circuit
#: networks with broadcast fan-out sit above it and stay on dense.
SPARSE_DENSITY_THRESHOLD: float = 0.05

_MEMO_ATTR = "_sparse_artifact"


@dataclass(frozen=True, eq=False)
class DelayBucket:
    """All synapses sharing one delay, as a compact CSR slice.

    ``matrix`` is a ``(len(srcs), n)`` :class:`scipy.sparse.csr_matrix`
    whose row ``i`` holds the synapses of source neuron ``srcs[i]`` with
    this delay, in the dense engine's CSR order.  ``syn`` carries the
    global synapse index (position in ``CompiledNetwork.syn_*``) of each
    stored entry, aligned with ``matrix.data`` — the handle fault models
    hash.  ``indptr`` is an int64 copy of ``matrix.indptr`` so the hot
    gather never touches scipy's (possibly int32) pointer array.
    """

    delay: int
    srcs: np.ndarray
    matrix: "sp.csr_matrix"
    syn: np.ndarray
    indptr: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.syn.size)


@dataclass(frozen=True, eq=False)
class SparseCompiledNetwork:
    """Per-delay CSR bucketing of one :class:`CompiledNetwork`.

    ``delays`` is ascending and unique; ``buckets[k]`` holds the synapses
    with delay ``delays[k]`` as a compact CSR slice.
    """

    net: CompiledNetwork
    delays: np.ndarray
    buckets: Tuple[DelayBucket, ...]
    #: per-synapse bucket label (position of each synapse's delay in
    #: ``delays``), aligned with the compiled network's CSR synapse
    #: arrays.  The hot scatter stable-sorts a tick's gathered synapses
    #: by this small-integer key (radix sort) to group them by delay in
    #: the dense engine's (delay asc, source asc, CSR position asc)
    #: accumulation order.
    syn_bucket: np.ndarray

    @property
    def n(self) -> int:
        return int(self.net.n)

    @property
    def nnz(self) -> int:
        return int(sum(b.nnz for b in self.buckets))

    @property
    def n_buckets(self) -> int:
        return len(self.buckets)


def network_density(net: CompiledNetwork) -> float:
    """Synapse density ``m / n^2`` (0.0 for an empty network)."""
    return float(net.density)


def prefers_sparse(net: CompiledNetwork) -> bool:
    """Whether the auto-dispatcher should run this network sparsely.

    True for large (``n >= SPARSE_AUTO_MIN_NEURONS``), low-density
    (``m / n^2 <= SPARSE_DENSITY_THRESHOLD``) networks without pacemakers.
    Both thresholds are module-level and may be reconfigured.
    """
    return (
        net.n >= SPARSE_AUTO_MIN_NEURONS
        and not net.has_pacemakers
        and network_density(net) <= SPARSE_DENSITY_THRESHOLD
    )


def sparse_compile(
    network: Union[Network, CompiledNetwork],
    *,
    cache: Optional["BuildCache"] = None,
    structure_key: Optional[str] = None,
) -> SparseCompiledNetwork:
    """Bucket a network's synapses by delay into CSR slices.

    The artifact is memoized on the :class:`CompiledNetwork` instance, so
    repeated simulations (and build-cache hits returning the same compiled
    object) pay the bucketing cost once.  When ``cache`` (a
    :class:`~repro.core.cache.BuildCache`) and ``structure_key`` are given,
    the artifact is additionally published under ``("sparse_csr",
    structure_key)`` so structure-keyed invalidation drops it together with
    the compiled network it belongs to.
    """
    net = network.compile() if isinstance(network, Network) else network
    memo = getattr(net, _MEMO_ATTR, None)
    if isinstance(memo, SparseCompiledNetwork) and memo.net is net:
        if cache is not None and structure_key is not None:
            cache.put(("sparse_csr", structure_key), memo)
        return memo
    art = _build_artifact(net)
    setattr(net, _MEMO_ATTR, art)
    counter_inc("engine.sparse.compiles", 1)
    if cache is not None and structure_key is not None:
        cache.put(("sparse_csr", structure_key), art)
    return art


def _build_artifact(net: CompiledNetwork) -> SparseCompiledNetwork:
    n, m = net.n, net.m
    out_counts = np.diff(net.indptr)
    src = np.repeat(np.arange(n, dtype=np.int64), out_counts)
    # stable sort by delay: within each bucket the original (source asc,
    # CSR position asc) order survives, which is exactly the order the
    # dense engine's np.add.at scatter visits same-delay synapses in
    order = np.argsort(net.syn_delay, kind="stable")
    d_sorted = net.syn_delay[order]
    delays, starts = np.unique(d_sorted, return_index=True)
    bounds = np.append(starts, m)
    dst_sorted = net.syn_dst[order]
    w_sorted = net.syn_weight[order]
    src_sorted = src[order]

    buckets: List[DelayBucket] = []
    for k in range(int(delays.size)):
        lo, hi = int(bounds[k]), int(bounds[k + 1])
        srcs_k, counts_k = np.unique(src_sorted[lo:hi], return_counts=True)
        indptr_k = np.zeros(srcs_k.size + 1, dtype=np.int64)
        np.cumsum(counts_k, out=indptr_k[1:])
        matrix = sp.csr_matrix(
            (w_sorted[lo:hi], dst_sorted[lo:hi], indptr_k),
            shape=(int(srcs_k.size), n),
        )
        buckets.append(
            DelayBucket(
                delay=int(delays[k]),
                srcs=srcs_k,
                matrix=matrix,
                syn=order[lo:hi],
                indptr=np.asarray(matrix.indptr, dtype=np.int64),
            )
        )

    syn_bucket = np.searchsorted(delays, net.syn_delay) if m else np.empty(
        0, dtype=np.int64
    )
    return SparseCompiledNetwork(
        net=net,
        delays=delays,
        buckets=tuple(buckets),
        syn_bucket=np.asarray(syn_bucket, dtype=np.int64),
    )


def repatch_sparse(old_net: CompiledNetwork, new_net: CompiledNetwork) -> bool:
    """Carry a sparse artifact across an incremental recompile.

    If ``old_net`` had been sparse-compiled, eagerly re-bucket ``new_net``
    (whose ``syn_delay`` may differ after a weight patch) so the patched
    network comes out with its CSR artifact already attached instead of
    the artifact being dropped and lazily rebuilt on first use.  Returns
    whether a re-bucketing happened.  When the two networks share the very
    same delay array (pure reuse), the rebuild is skipped by the instance
    memo if ``old_net is new_net``.
    """
    if old_net is new_net:
        return False
    if not isinstance(getattr(old_net, _MEMO_ATTR, None), SparseCompiledNetwork):
        return False
    sparse_compile(new_net)
    counter_inc("engine.sparse.repatches", 1)
    return True


def simulate_sparse(
    network: Union[Network, CompiledNetwork],
    stimulus: Optional[StimulusSpec] = None,
    *,
    max_steps: int,
    terminal: Optional[int] = None,
    watch: Optional[Iterable[int]] = None,
    stop_when_quiescent: bool = True,
    record_spikes: bool = False,
    faults: Optional[FaultModel] = None,
    watchdog: Optional[Watchdog] = None,
    hooks: Optional[EngineHooks] = None,
) -> SimulationResult:
    """Simulate a network on the sparse CSR core.

    Same parameters and result semantics as
    :func:`repro.core.engine.simulate_dense` (without voltage probes, which
    require per-tick state).  Unlike the event engine, stop metadata —
    ``final_tick`` and ``stop_reason``, including ``stop_when_quiescent=
    False`` running out the tick budget — follows the dense engine's rules
    exactly, so results compare equal field-for-field.

    Restrictions (validated up front): no pacemaker neurons
    (``v_reset > v_threshold``) — they fire without incoming events,
    defeating activity-driven laziness; use the dense engine.
    """
    net = network.compile() if isinstance(network, Network) else network
    if max_steps < 0:
        raise ValidationError(f"max_steps must be >= 0, got {max_steps}")
    if net.has_pacemakers:
        raise UnsupportedNetworkError(
            "network contains pacemaker neurons (v_reset > v_threshold); "
            "use the dense engine"
        )
    art = sparse_compile(net)
    n = net.n
    term = terminal if terminal is not None else net.terminal
    watch_mask = None
    watch_remaining = 0
    if watch is not None:
        watch_mask = np.zeros(n, dtype=bool)
        watch_mask[np.asarray(list(watch), dtype=np.int64)] = True
        watch_remaining = int(watch_mask.sum())

    stim = _normalize_stimulus(stimulus)
    for sids in stim.values():
        if sids.size and (sids.min() < 0 or sids.max() >= n):
            raise ValidationError("stimulus neuron id out of range")
    stim_later = sorted(ts for ts in stim if ts >= 1)
    stim_pos = 0

    D = net.max_delay
    n_slots = D + 1
    # ring buffer of in-flight deliveries: one chunk list per arrival slot;
    # every delay is in [1, D], so at any moment a slot holds chunks for at
    # most one arrival tick, and the heap names the non-empty slots' ticks
    pending: List[List[Tuple[np.ndarray, np.ndarray]]] = [[] for _ in range(n_slots)]
    arrival_heap: List[int] = []
    acc = np.zeros(n, dtype=np.float64)

    v = net.v_reset.copy()
    last_update = np.zeros(n, dtype=np.int64)
    fired_ever = np.zeros(n, dtype=bool)
    first_spike = np.full(n, -1, dtype=np.int64)
    spike_counts = np.zeros(n, dtype=np.int64)
    any_one_shot = bool(net.one_shot.any())
    decay_keep = 1.0 - net.tau
    has_decay = net.has_decay
    spike_events: Optional[Dict[int, np.ndarray]] = {} if record_spikes else None
    empty_ids = np.empty(0, dtype=np.int64)

    rf = faults.bind(net, max_steps) if faults is not None else None
    next_forced = rf.next_forced_tick(-1) if rf is not None else None
    wd = WatchdogState(watchdog, n, net.names) if watchdog is not None else None
    diagnostic: Optional[object] = None
    if hooks is not None:
        hooks.on_run_start(n, max_steps, "sparse")

    def register_spikes(ids: np.ndarray, t: int) -> None:
        nonlocal watch_remaining
        newly = ids[~fired_ever[ids]]
        first_spike[newly] = t
        if watch_mask is not None and newly.size:
            watch_remaining -= int(watch_mask[newly].sum())
        fired_ever[ids] = True
        spike_counts[ids] += 1
        if spike_events is not None and ids.size:
            spike_events[t] = ids.copy()
        if hooks is not None and ids.size:
            hooks.on_spikes(t, ids)

    # hot-loop locals: one attribute lookup per run, not per tick
    delays_arr = art.delays
    syn_bucket = art.syn_bucket
    syn_dst = net.syn_dst
    syn_weight = net.syn_weight
    gather_out = net.gather_out_synapses
    zero1 = np.zeros(1, dtype=np.int64)

    def scatter(ids: np.ndarray, t: int) -> None:
        """Schedule all out-deliveries of ``ids`` (sorted asc) fired at ``t``.

        Gathers the fired set's out-synapses in the dense engine's
        (source asc, CSR position asc) order, then stable-sorts them by
        compile-time bucket label — a radix sort over small integers — so
        each delay group comes out in exactly the order the dense engine's
        ``np.add.at`` scatter visits same-delay synapses in.
        """
        gsyn = gather_out(ids)
        if gsyn.size == 0:
            return
        gb = syn_bucket[gsyn]
        if gsyn.size > 1:
            order = np.argsort(gb, kind="stable")
            gsyn = gsyn[order]
            gb = gb[order]
        dst = syn_dst[gsyn]
        w = syn_weight[gsyn]
        dropped = 0
        if rf is not None:
            # one call over the whole tick, like the dense engine's scatter;
            # decisions hash global synapse ids, so order is irrelevant
            keep = rf.keep_deliveries(t, gsyn)
            if not keep.all():
                dropped = int(gsyn.size - keep.sum())
                gsyn = gsyn[keep]
                dst = dst[keep]
                w = w[keep]
                gb = gb[keep]
            if gsyn.size:
                w = rf.deliver_weights(t, gsyn, w)
        if hooks is not None:
            hooks.on_deliveries(t, int(dst.size), dropped)
        if dst.size == 0:
            return
        cuts = np.flatnonzero(gb[1:] != gb[:-1]) + 1
        gstarts = np.concatenate((zero1, cuts))
        arrives = delays_arr[gb[gstarts]] + t
        # tolist() converts once in C; per-group int() calls would dominate
        # when a tick's deliveries span many distinct delays
        bounds_l = np.append(gstarts, gb.size).tolist()
        arrives_l = arrives.tolist()
        slots_l = (arrives % n_slots).tolist()
        lo = bounds_l[0]
        for j, hi in enumerate(bounds_l[1:]):
            slot = slots_l[j]
            if not pending[slot]:
                heapq.heappush(arrival_heap, arrives_l[j])
            pending[slot].append((dst[lo:hi], w[lo:hi]))
            lo = hi

    # ---- tick 0: induced input spikes ---------------------------------- #
    ids0 = stim.get(0, empty_ids)
    if rf is not None and next_forced == 0:
        forced0 = rf.forced_at(0)
        if hooks is not None and forced0.size:
            hooks.on_fault_forced(0, forced0)
        ids0 = np.union1d(ids0, forced0)
        next_forced = rf.next_forced_tick(0)
    if rf is not None and ids0.size:
        sup0 = rf.suppressed(0, ids0)
        if sup0.any():
            if hooks is not None:
                hooks.on_fault_suppressed(0, ids0[sup0])
            ids0 = ids0[~sup0]
    if ids0.size:
        register_spikes(ids0, 0)
        scatter(ids0, 0)
    final_tick = 0
    stop_reason: Optional[StopReason] = None
    if wd is not None:
        assert watchdog is not None
        report = wd.observe(0, ids0)
        if report is not None:
            if watchdog.raise_on_trip:
                raise RunawaySpikesError(report.describe(), report)
            stop_reason = StopReason.RUNAWAY
            diagnostic = report
    if stop_reason is not None:
        pass
    elif term is not None and ids0.size and fired_ever[term]:
        stop_reason = StopReason.TERMINAL
    elif watch_mask is not None and watch_remaining == 0:
        stop_reason = StopReason.WATCH_SET

    # first tick at which the dense engine could observe quiescence: it
    # checks at every processed tick, so after activity at tick T the
    # earliest quiet tick is T + 1 (and tick 1 when nothing ever fires)
    quiesce_at = 1

    # ---- main loop: jump from active tick to active tick ---------------- #
    while stop_reason is None:
        t_next: Optional[int] = arrival_heap[0] if arrival_heap else None
        if stim_pos < len(stim_later):
            ts = stim_later[stim_pos]
            t_next = ts if t_next is None else min(t_next, ts)
        if next_forced is not None:
            t_next = next_forced if t_next is None else min(t_next, next_forced)
        if t_next is None:
            # nothing is in flight and nothing is scheduled: the dense
            # engine would tick quietly from here on
            if not stop_when_quiescent or quiesce_at > max_steps:
                stop_reason = StopReason.MAX_STEPS
                final_tick = max_steps
            else:
                stop_reason = StopReason.QUIESCENT
                final_tick = quiesce_at
            break
        if t_next > max_steps:
            stop_reason = StopReason.MAX_STEPS
            final_tick = max_steps
            break
        t = t_next
        final_tick = t
        if arrival_heap and arrival_heap[0] == t:
            heapq.heappop(arrival_heap)

        # consume this tick's deliveries and evaluate thresholds
        fired_input = empty_ids
        slot = t % n_slots
        chunks = pending[slot]
        if chunks:
            pending[slot] = []
            if len(chunks) == 1:
                dst_all, w_all = chunks[0]
            else:
                dst_all = np.concatenate([c[0] for c in chunks])
                w_all = np.concatenate([c[1] for c in chunks])
            np.add.at(acc, dst_all, w_all)
            if dst_all.size > 1:
                ds = np.sort(dst_all)
                umask = np.empty(ds.size, dtype=bool)
                umask[0] = True
                np.not_equal(ds[1:], ds[:-1], out=umask[1:])
                arrived = ds[umask]
            else:
                arrived = dst_all
            syn_in = acc[arrived]
            acc[arrived] = 0.0
            if has_decay:
                dt = t - last_update[arrived]
                keep = decay_keep[arrived]
                decayable = (dt > 0) & (keep != 1.0)
                if decayable.any():
                    reset_a = net.v_reset[arrived]
                    va = v[arrived]
                    v[arrived] = np.where(
                        decayable, reset_a + (va - reset_a) * keep**dt, va
                    )
            vhat = v[arrived] + syn_in
            fire_m = vhat > net.v_threshold[arrived]
            if any_one_shot:
                fire_m &= ~(net.one_shot[arrived] & fired_ever[arrived])
            fired_input = arrived[fire_m]
            v[arrived] = np.where(fire_m, net.v_reset[arrived], vhat)
            last_update[arrived] = t

        # induced spikes this tick fire unconditionally
        ids = fired_input
        if stim_pos < len(stim_later) and stim_later[stim_pos] == t:
            ids_stim = stim[t]
            stim_pos += 1
            if ids_stim.size:
                ids = np.union1d(ids, ids_stim)
        if rf is not None and next_forced == t:
            forced = rf.forced_at(t)
            if hooks is not None and forced.size:
                hooks.on_fault_forced(t, forced)
            if forced.size:
                ids = np.union1d(ids, forced)
            next_forced = rf.next_forced_tick(t)
        if ids.size:
            v[ids] = net.v_reset[ids]
            last_update[ids] = t
        if rf is not None and ids.size:
            # suppressed spikes are "fired but lost": the voltage reset
            # stands, but nothing is recorded and nothing propagates
            sup = rf.suppressed(t, ids)
            if sup.any():
                if hooks is not None:
                    hooks.on_fault_suppressed(t, ids[sup])
                ids = ids[~sup]
        if ids.size:
            register_spikes(ids, t)
            scatter(ids, t)
        quiesce_at = t + 1 if ids.size else t

        # stop checks, in the dense engine's order
        if wd is not None:
            assert watchdog is not None
            report = wd.observe(t, ids)
            if report is not None:
                if watchdog.raise_on_trip:
                    raise RunawaySpikesError(report.describe(), report)
                stop_reason = StopReason.RUNAWAY
                diagnostic = report
                continue
        if term is not None and fired_ever[term]:
            stop_reason = StopReason.TERMINAL
        elif watch_mask is not None and watch_remaining == 0:
            stop_reason = StopReason.WATCH_SET

    if wd is not None and stop_reason is StopReason.MAX_STEPS:
        assert watchdog is not None
        report = wd.non_quiescence(final_tick)
        if report is not None:
            if watchdog.raise_on_trip:
                raise NonQuiescenceError(report.describe(), report)
            diagnostic = report

    if hooks is not None:
        hooks.on_stop(int(final_tick), stop_reason, diagnostic)
    counter_inc("engine.runs", 1)
    counter_inc("engine.spikes", int(spike_counts.sum()))
    counter_inc("engine.ticks", int(final_tick))
    return SimulationResult(
        first_spike=first_spike,
        spike_counts=spike_counts,
        final_tick=int(final_tick),
        stop_reason=stop_reason,
        spike_events=spike_events,
        diagnostic=diagnostic,
    )
