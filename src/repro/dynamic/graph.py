"""Mutable graphs with versioned structure keys and cheap delta tracking.

:class:`MutableGraph` wraps the CSR layout of
:class:`~repro.workloads.graph.WeightedDigraph` with in-place mutations
(``add_node`` / ``remove_node`` / ``add_edge`` / ``remove_edge`` /
``reweight``).  Every mutation bumps an integer ``version``; the immutable
:meth:`snapshot` of a version carries a **versioned structure key**

    ``dyn:<uid>:v<version>:<content hash>``

so every downstream cache key derived from ``structure_key()`` — build-cache
keys, serving batch keys, resident keys, result-cache keys — automatically
scopes to one ``(graph, version)`` pair.  Invalidation is then surgical:
:meth:`~repro.core.cache.BuildCache.invalidate` with one version's key drops
exactly that version's builds, and
:meth:`~repro.core.cache.BuildCache.invalidate_prefix` with ``dyn:<uid>:``
drops all versions of one graph while other residents survive.

Semantics (documented in ``docs/dynamic_graphs.md``):

* **No parallel edges.**  ``add_edge`` on an existing ``(u, v)`` pair raises;
  use :meth:`reweight`.  (The immutable base class tolerates parallel edges,
  but mutation-by-endpoint needs each pair to be unique to be well defined.)
* **Self-loops allowed** — both network builders mask them out, matching the
  immutable pipeline.
* **Tombstoned removal.**  ``remove_node`` strips the vertex's incident edges
  and marks the id dead; ids are never reused and ``n`` never shrinks, so
  vertex ids in recorded op streams stay stable across replays.  Reads that
  name a removed vertex still get the well-defined isolated-vertex answer.
* **Delta tracking.**  The graph records the last version at which topology
  (edge set / vertex slots) changed vs. weights alone, letting the
  incremental recompiler choose a delay-array patch over a structural
  recompile.

Thread safety: all mutations and snapshot reads serialize on ``lock`` (an
``RLock``); holders can group a mutation + recompile + snapshot into one
atomic step, which is how the serving layer keeps concurrent readers on
un-torn versions.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.cache import structure_fingerprint
from repro.errors import GraphError
from repro.workloads.graph import WeightedDigraph

__all__ = ["MutableGraph"]

_UIDS = itertools.count()


def _fresh_uid() -> str:
    """Deterministic per-process uid (no wall clock / randomness)."""
    return f"g{next(_UIDS)}"


class MutableGraph:
    """A weighted digraph supporting in-place mutation with versioning.

    Parameters
    ----------
    base:
        Either a :class:`~repro.workloads.graph.WeightedDigraph` to copy
        (must not contain parallel edges), or an integer vertex count for
        an initially edge-free graph, or ``None`` for an empty graph.
    uid:
        Stable identifier used in versioned structure keys.  Defaults to a
        process-unique counter-based id; pass an explicit uid when replay
        determinism across processes matters.
    """

    def __init__(
        self,
        base: Union[WeightedDigraph, int, None] = None,
        *,
        uid: Optional[str] = None,
    ) -> None:
        if base is None:
            n = 0
            tails = np.empty(0, dtype=np.int64)
            heads = np.empty(0, dtype=np.int64)
            lengths = np.empty(0, dtype=np.int64)
        elif isinstance(base, WeightedDigraph):
            n = base.n
            tails = base.tails.copy()
            heads = base.heads.copy()
            lengths = base.lengths.copy()
            if tails.size:
                pairs = tails * np.int64(max(n, 1)) + heads
                if np.unique(pairs).size != pairs.size:
                    raise GraphError(
                        "MutableGraph requires a base without parallel edges"
                    )
        elif isinstance(base, (int, np.integer)):
            n = int(base)
            if n < 0:
                raise GraphError(f"vertex count must be nonnegative, got {n}")
            tails = np.empty(0, dtype=np.int64)
            heads = np.empty(0, dtype=np.int64)
            lengths = np.empty(0, dtype=np.int64)
        else:  # pragma: no cover - defensive
            raise GraphError(f"unsupported MutableGraph base: {type(base).__name__}")

        self.uid: str = uid if uid is not None else _fresh_uid()
        self.lock = threading.RLock()
        self._n = int(n)
        # CSR arrays, sorted by tail (stable; insertion order within a tail
        # row), mirroring WeightedDigraph's layout exactly so snapshots are
        # identity re-sorts.
        self._tails = tails
        self._heads = heads
        self._lengths = lengths
        self._indptr = np.zeros(self._n + 1, dtype=np.int64)
        if tails.size:
            np.add.at(self._indptr, self._tails + 1, 1)
            np.cumsum(self._indptr, out=self._indptr)
        self._removed: Set[int] = set()
        self.version: int = 0
        # Last version at which topology (edge set / vertex slots) changed
        # vs. only weights changed — the recompiler's delta signal.
        self._topology_version: int = 0
        self._weights_version: int = 0
        self._snapshot: Optional[WeightedDigraph] = None
        self._snapshot_version: int = -1
        self._ops: Dict[str, int] = {
            "add_node": 0,
            "remove_node": 0,
            "add_edge": 0,
            "remove_edge": 0,
            "reweight": 0,
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Vertex slot count, *including* tombstoned (removed) vertices."""
        return self._n

    @property
    def m(self) -> int:
        with self.lock:
            return int(self._tails.size)

    @property
    def topology_version(self) -> int:
        """Last version at which the edge set or vertex slots changed."""
        return self._topology_version

    @property
    def weights_version(self) -> int:
        """Last version at which only an edge weight changed."""
        return self._weights_version

    def live_vertices(self) -> List[int]:
        """Vertex ids that have not been removed, ascending."""
        with self.lock:
            return [v for v in range(self._n) if v not in self._removed]

    def is_removed(self, v: int) -> bool:
        with self.lock:
            return v in self._removed

    def has_edge(self, u: int, v: int) -> bool:
        with self.lock:
            return self._find_edge(u, v) >= 0

    def edge_weight(self, u: int, v: int) -> int:
        with self.lock:
            pos = self._find_edge(u, v)
            if pos < 0:
                raise GraphError(f"no edge ({u}, {v})")
            return int(self._lengths[pos])

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(tail, head, length)`` triples in CSR order."""
        with self.lock:
            tails = self._tails.tolist()
            heads = self._heads.tolist()
            lengths = self._lengths.tolist()
        return iter(list(zip(tails, heads, lengths)))

    def stats(self) -> Dict[str, int]:
        """Mutation counts plus current version / size."""
        with self.lock:
            out = dict(self._ops)
            out["version"] = self.version
            out["n"] = self._n
            out["m"] = int(self._tails.size)
            out["removed"] = len(self._removed)
            return out

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #

    def add_node(self) -> int:
        """Append a fresh isolated vertex; returns its id."""
        with self.lock:
            nid = self._n
            self._n += 1
            self._indptr = np.append(self._indptr, self._indptr[-1])
            self._bump(topology=True)
            self._ops["add_node"] += 1
            return nid

    def remove_node(self, v: int) -> int:
        """Tombstone ``v`` and strip its incident edges.

        Returns the number of edges removed.  The id slot persists (ids are
        never reused); the vertex simply becomes isolated and dead to
        further mutation.
        """
        with self.lock:
            self._check_vertex(v)
            mask = (self._tails != v) & (self._heads != v)
            dropped = int(self._tails.size - int(mask.sum()))
            if dropped:
                self._tails = self._tails[mask]
                self._heads = self._heads[mask]
                self._lengths = self._lengths[mask]
                self._rebuild_indptr()
            self._removed.add(int(v))
            self._bump(topology=True)
            self._ops["remove_node"] += 1
            return dropped

    def add_edge(self, u: int, v: int, weight: int) -> None:
        """Insert edge ``(u, v)`` with positive integer ``weight``.

        Raises :class:`~repro.errors.GraphError` if the edge already exists
        (no parallel edges) or an endpoint is out of range / removed.
        """
        with self.lock:
            self._check_vertex(u)
            self._check_vertex(v)
            w = self._check_weight(weight)
            if self._find_edge(u, v) >= 0:
                raise GraphError(f"edge ({u}, {v}) already exists; use reweight")
            # Insert at the end of u's CSR row: stays tail-sorted with
            # insertion order preserved within the row, which is exactly the
            # order WeightedDigraph's stable argsort would produce.
            pos = int(self._indptr[u + 1])
            self._tails = np.insert(self._tails, pos, u)
            self._heads = np.insert(self._heads, pos, v)
            self._lengths = np.insert(self._lengths, pos, w)
            self._indptr[u + 1 :] += 1
            self._bump(topology=True)
            self._ops["add_edge"] += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)``; raises if absent."""
        with self.lock:
            self._check_vertex(u)
            self._check_vertex(v)
            pos = self._find_edge(u, v)
            if pos < 0:
                raise GraphError(f"no edge ({u}, {v})")
            self._tails = np.delete(self._tails, pos)
            self._heads = np.delete(self._heads, pos)
            self._lengths = np.delete(self._lengths, pos)
            self._indptr[u + 1 :] -= 1
            self._bump(topology=True)
            self._ops["remove_edge"] += 1

    def reweight(self, u: int, v: int, weight: int) -> None:
        """Set the weight of existing edge ``(u, v)`` (weights-only delta).

        In-place on the graph's own ``lengths`` array — snapshots hold
        fancy-indexed copies, so published versions are never mutated.
        """
        with self.lock:
            self._check_vertex(u)
            self._check_vertex(v)
            w = self._check_weight(weight)
            pos = self._find_edge(u, v)
            if pos < 0:
                raise GraphError(f"no edge ({u}, {v})")
            self._lengths[pos] = w
            self._bump(topology=False)
            self._ops["reweight"] += 1

    # ------------------------------------------------------------------ #
    # Snapshots and keys
    # ------------------------------------------------------------------ #

    def snapshot(self) -> WeightedDigraph:
        """Immutable :class:`WeightedDigraph` of the current version, cached.

        The snapshot's ``structure_key()`` is the versioned key
        ``dyn:<uid>:v<version>:<content hash>`` rather than the bare content
        fingerprint, so builds and results cached from it are scoped to this
        graph *and* this version.
        """
        with self.lock:
            if self._snapshot is None or self._snapshot_version != self.version:
                snap = WeightedDigraph.from_arrays(
                    self._n, self._tails, self._heads, self._lengths
                )
                # Pre-seed the lazy key cache with the versioned key; every
                # structure_key() call on this snapshot returns it.
                snap._key = self.structure_key()
                self._snapshot = snap
                self._snapshot_version = self.version
            return self._snapshot

    def structure_key(self) -> str:
        """Versioned structure key of the current state."""
        with self.lock:
            content = structure_fingerprint(
                self._n, self._tails, self._heads, self._lengths
            )
            return f"dyn:{self.uid}:v{self.version}:{content}"

    def key_prefix(self) -> str:
        """Prefix shared by every version's key (for whole-graph eviction)."""
        return f"dyn:{self.uid}:"

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _bump(self, *, topology: bool) -> None:
        self.version += 1
        if topology:
            self._topology_version = self.version
        else:
            self._weights_version = self.version
        self._snapshot = None
        self._snapshot_version = -1

    def _check_vertex(self, v: int) -> None:
        if not isinstance(v, (int, np.integer)):
            raise GraphError(f"vertex id must be an integer, got {v!r}")
        if not (0 <= v < self._n):
            raise GraphError(f"vertex {v} out of range [0, {self._n})")
        if v in self._removed:
            raise GraphError(f"vertex {v} has been removed")

    @staticmethod
    def _check_weight(weight: int) -> int:
        if not isinstance(weight, (int, np.integer)) or isinstance(weight, bool):
            raise GraphError(f"edge weight must be a positive integer, got {weight!r}")
        if weight <= 0:
            raise GraphError(f"edge weight must be a positive integer, got {weight}")
        return int(weight)

    def _find_edge(self, u: int, v: int) -> int:
        lo = int(self._indptr[u])
        hi = int(self._indptr[u + 1])
        hits = np.nonzero(self._heads[lo:hi] == v)[0]
        return lo + int(hits[0]) if hits.size else -1

    def _rebuild_indptr(self) -> None:
        self._indptr = np.zeros(self._n + 1, dtype=np.int64)
        if self._tails.size:
            np.add.at(self._indptr, self._tails + 1, 1)
        np.cumsum(self._indptr, out=self._indptr)

    def __repr__(self) -> str:
        return (
            f"MutableGraph(uid={self.uid!r}, n={self._n}, m={self._tails.size}, "
            f"version={self.version})"
        )
