"""Dynamic-graph benchmark: incremental recompile vs full rebuild.

Two measurements behind ``BENCH_dynamic.json``:

- **Recompile microbenchmark** (:func:`bench_recompile`): on a random
  sparse graph, apply one mutation and time
  :meth:`~repro.dynamic.recompile.IncrementalRecompiler.refresh` against
  the non-incremental baseline — rebuilding the Section-3 network from
  scratch through the Python builder (one ``add_neuron`` per vertex, one
  ``add_synapse`` per edge, then ``compile()``), which is exactly what a
  static deployment pays on every graph change.  Single-edge reweights go
  through the ``O(m)`` array-patch path and the headline claim is a
  ``>= 5x`` speedup at ``n >= 1000``; topology mutations go through the
  vectorized direct compile, which is also reported.  Every timed
  incremental network is verified array-identical to the from-scratch
  build before its timing counts.

- **Stream replay** (:func:`run_stream_bench`): a seeded mixed read/write
  stream replayed through a live :class:`~repro.service.server.QueryServer`
  via :func:`~repro.dynamic.stream.run_stream_replay`, reporting read
  latency percentiles under write load and the recompiler counters that
  prove the incremental path served the writes.

:func:`run_dynamic_bench` bundles both into the artifact document; the
``benchmarks/bench_dynamic.py`` CLI and ``benchmarks/emit.py`` write it to
``BENCH_dynamic.json``.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.cache import BuildCache
from repro.core.network import CompiledNetwork, Network
from repro.dynamic.graph import MutableGraph
from repro.dynamic.recompile import FAMILIES, IncrementalRecompiler, compile_vertex_network
from repro.dynamic.stream import generate_stream, run_stream_replay
from repro.errors import ValidationError
from repro.workloads.generators import gnp_graph, grid_graph
from repro.workloads.graph import WeightedDigraph

__all__ = [
    "BENCH_SCHEMA",
    "bench_recompile",
    "run_dynamic_bench",
    "run_stream_bench",
]

BENCH_SCHEMA = "repro.dynamic.bench/v1"


def _full_build(snap: WeightedDigraph, *, unit_delay: bool) -> CompiledNetwork:
    """The non-incremental baseline: Python builder + compile, uncached.

    Mirrors :func:`~repro.algorithms.sssp_pseudo.sssp_network` /
    :func:`~repro.algorithms.reach.khop_reach_network` construction
    exactly (ungadgeted), but never touches the build cache — this is the
    cost a static deployment pays for every mutation.
    """
    net = Network()
    node_ids = [net.add_neuron(f"v{v}", one_shot=True) for v in range(snap.n)]
    for u, v, w in snap.edges():
        if u == v:
            continue
        net.add_synapse(node_ids[u], node_ids[v], weight=1.0, delay=1 if unit_delay else int(w))
    return net.compile()


def _networks_equal(a: CompiledNetwork, b: CompiledNetwork) -> bool:
    if a.n != b.n:
        return False
    for field in ("v_reset", "v_threshold", "tau", "indptr", "syn_dst", "syn_weight", "syn_delay"):
        if not np.array_equal(getattr(a, field), getattr(b, field)):
            return False
    return bool(np.array_equal(a.one_shot, b.one_shot))


def _median_s(samples: List[float]) -> float:
    return float(statistics.median(samples)) if samples else 0.0


def bench_recompile(
    n: int,
    *,
    trials: int = 5,
    seed: int = 0,
    p: Optional[float] = None,
    max_length: int = 10,
) -> Dict[str, Any]:
    """Time single-mutation incremental refresh vs from-scratch rebuild.

    Returns per-mutation-class medians and the verified headline speedup
    (``rebuild_median / incremental_median``) for the reweight (weight
    patch) and add-edge (vectorized recompile) paths.  Raises
    :class:`~repro.errors.ValidationError` if any incremental network
    differs from its from-scratch build — the benchmark never reports a
    speedup for a wrong answer.
    """
    if n < 2:
        raise ValidationError(f"bench_recompile needs n >= 2, got {n}")
    if trials < 1:
        raise ValidationError(f"trials must be >= 1, got {trials}")
    rng = np.random.default_rng(seed)
    base = gnp_graph(n, p if p is not None else min(1.0, 8.0 / n),
                     max_length=max_length, seed=seed)
    graph = MutableGraph(base, uid=f"bench{n}")
    rec = IncrementalRecompiler(graph, cache=BuildCache(maxsize=8))
    rec.prime()

    reweight_inc: List[float] = []
    reweight_full: List[float] = []
    addedge_inc: List[float] = []
    addedge_full: List[float] = []
    verified = 0

    def _verify(snap: WeightedDigraph) -> None:
        nonlocal verified
        for family, unit in (("sssp", False), ("khop", True)):
            net, _ids = rec.network(family)
            if not _networks_equal(net, compile_vertex_network(snap, unit_delay=unit)):
                raise ValidationError(
                    f"incremental {family} network diverged from rebuild at n={n}"
                )
            verified += 1

    for _trial in range(trials):
        # --- reweight: the O(m) array-patch path -----------------------
        edges = list(graph.edges())
        u, v, w = edges[int(rng.integers(len(edges)))]
        new_w = 1 + (int(w) % max_length)  # guaranteed != w only if max_length > 1
        t0 = time.perf_counter()
        graph.reweight(int(u), int(v), new_w)
        rec.refresh()
        reweight_inc.append(time.perf_counter() - t0)
        snap = graph.snapshot()
        t0 = time.perf_counter()
        full = _full_build(snap, unit_delay=False)
        reweight_full.append(time.perf_counter() - t0)
        net, _ids = rec.network("sssp")
        if not _networks_equal(net, full):
            raise ValidationError(f"reweight patch diverged from rebuild at n={n}")
        _verify(snap)

        # --- add_edge: the vectorized direct-compile path --------------
        pair: Optional[Tuple[int, int]] = None
        for _attempt in range(64):
            a = int(rng.integers(n))
            b = int(rng.integers(n))
            if a != b and not graph.is_removed(a) and not graph.is_removed(b) \
                    and not graph.has_edge(a, b):
                pair = (a, b)
                break
        if pair is not None:
            t0 = time.perf_counter()
            graph.add_edge(pair[0], pair[1], int(rng.integers(1, max_length + 1)))
            rec.refresh()
            addedge_inc.append(time.perf_counter() - t0)
            snap = graph.snapshot()
            t0 = time.perf_counter()
            full = _full_build(snap, unit_delay=False)
            addedge_full.append(time.perf_counter() - t0)
            net, _ids = rec.network("sssp")
            if not _networks_equal(net, full):
                raise ValidationError(f"add_edge recompile diverged from rebuild at n={n}")
            _verify(snap)

    rw_inc, rw_full = _median_s(reweight_inc), _median_s(reweight_full)
    ae_inc, ae_full = _median_s(addedge_inc), _median_s(addedge_full)
    return {
        "n": n,
        "m": graph.m,
        "trials": trials,
        "verified_networks": verified,
        "reweight": {
            "incremental_median_s": round(rw_inc, 6),
            "rebuild_median_s": round(rw_full, 6),
            "speedup": round(rw_full / rw_inc, 2) if rw_inc > 0 else float("inf"),
        },
        "add_edge": {
            "incremental_median_s": round(ae_inc, 6),
            "rebuild_median_s": round(ae_full, 6),
            "speedup": round(ae_full / ae_inc, 2) if ae_inc > 0 else float("inf"),
        },
        "recompiler": rec.stats(),
    }


def run_stream_bench(
    *,
    n_ops: int = 500,
    seed: int = 0,
    write_fraction: float = 0.25,
    workers: int = 2,
) -> Dict[str, Any]:
    """Replay a seeded mixed stream on the standard loadgen graph pair."""
    graphs = {
        "grid": grid_graph(10, 10, max_length=7, seed=2),
        "gnp": gnp_graph(96, 0.05, max_length=9, seed=1),
    }
    ops = generate_stream(
        graphs, n_ops, seed=seed, write_fraction=write_fraction
    )
    report = run_stream_replay(graphs, ops, workers=workers)
    report["config"] = {
        "n_ops": n_ops,
        "seed": seed,
        "write_fraction": write_fraction,
        "workers": workers,
        "graphs": {gid: {"n": g.n, "m": g.m} for gid, g in sorted(graphs.items())},
    }
    return report


def run_dynamic_bench(
    *,
    quick: bool = False,
    n_ops: int = 500,
    seed: int = 0,
) -> Dict[str, Any]:
    """The full ``BENCH_dynamic.json`` document."""
    sizes = [1000] if quick else [300, 1000, 2000]
    recompile = [
        bench_recompile(n, trials=3 if quick else 5, seed=seed) for n in sizes
    ]
    stream = run_stream_bench(n_ops=n_ops, seed=seed)
    headline = next((r for r in recompile if r["n"] >= 1000), recompile[-1])
    return {
        "schema": BENCH_SCHEMA,
        "config": {"quick": quick, "sizes": sizes, "n_ops": n_ops, "seed": seed},
        "families": list(FAMILIES),
        "recompile": recompile,
        "headline_speedup": headline["reweight"]["speedup"],
        "stream": stream,
    }
