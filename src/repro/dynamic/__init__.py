"""Dynamic graphs: mutations, incremental recompilation, op-stream workloads.

Everything else in the reproduction is build-once/query-many; this package
makes graphs *mutable* while keeping every downstream consumer (the solo
algorithm drivers, the build cache, the serving layer) correct:

:mod:`repro.dynamic.graph`
    :class:`~repro.dynamic.graph.MutableGraph` — add/remove node/edge and
    reweight over incrementally maintained CSR arrays, with a monotonically
    increasing version and **versioned structure keys**
    (``dyn:<uid>:v<version>:<content hash>``) so each version caches and
    invalidates independently.
:mod:`repro.dynamic.recompile`
    :class:`~repro.dynamic.recompile.IncrementalRecompiler` — patches the
    compiled Section-3 SSSP / unit-delay k-hop networks forward across
    mutations instead of rebuilding them through the ``O(m)``-Python-calls
    builder, seeds :data:`~repro.core.cache.default_build_cache` under the
    new version's key, and invalidates exactly the old version's entries.
:mod:`repro.dynamic.stream`
    Replayable JSONL op streams (skewed mixed read/write workloads) plus
    the generator and the server replay driver behind
    ``repro stream`` / ``repro loadgen --ops``.
:mod:`repro.dynamic.bench`
    The ``BENCH_dynamic.json`` benchmark: incremental-recompile vs
    full-rebuild speedup and read latency under write load.

Mutation requests flow through :class:`~repro.service.server.QueryServer`
as first-class query kinds (``add_edge``, ``reweight``, ...); see
``docs/dynamic_graphs.md`` for the mutation semantics and the
version/consistency model.
"""

from repro.dynamic.graph import MutableGraph
from repro.dynamic.recompile import IncrementalRecompiler, RecompileReport
from repro.dynamic.stream import (
    OP_TYPES,
    generate_stream,
    op_to_request,
    read_stream,
    replay_stream,
    run_stream_replay,
    write_stream,
)

__all__ = [
    "MutableGraph",
    "IncrementalRecompiler",
    "RecompileReport",
    "OP_TYPES",
    "generate_stream",
    "op_to_request",
    "read_stream",
    "replay_stream",
    "run_stream_replay",
    "write_stream",
]
