"""Incremental recompilation of compiled networks across graph mutations.

The Section-3 construction maps the graph onto the network so directly (one
neuron per vertex, one synapse per non-self-loop edge, delay = edge length)
that most mutations touch only a sliver of the compiled arrays.  Rebuilding
through :class:`~repro.core.network.Network` costs ``O(n + m)`` *Python
calls* (``add_neuron`` / ``add_synapse`` object churn) — the exact overhead
the build cache exists to avoid — while the compiled form can be patched
with a handful of vectorized array operations:

* **weights-only delta** (``reweight``): the SSSP network's only
  weight-dependent array is ``syn_delay``; a new
  :class:`~repro.core.network.CompiledNetwork` is created sharing every
  other array with the previous version, with ``syn_delay`` re-sliced from
  the new CSR ``lengths``.  The unit-delay k-hop network does not depend on
  weights at all, so its previous compilation is *reused as-is* — only its
  cache key moves forward.
* **topology delta** (add/remove node/edge): the whole network is compiled
  directly from the CSR arrays with vectorized NumPy (mask self-loops,
  bincount/cumsum the indptr) — no builder objects, no per-edge Python
  calls.  Output is array-for-array identical to
  :meth:`CompiledNetwork._from_builder` on the equivalent builder, which is
  what the Hypothesis differential harness in ``tests/test_dynamic.py``
  pins (spike-for-spike identity against from-scratch rebuilds).

After patching, the recompiler **seeds** the build cache under the new
version's structure key (:meth:`BuildCache.put`) and **invalidates** the old
version's entries (:meth:`BuildCache.invalidate`), so the read path —
:func:`~repro.algorithms.sssp_pseudo.sssp_plan` /
:func:`~repro.algorithms.reach.khop_reach_plan` — transparently hits the
patched network with zero changes to the algorithm drivers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.cache import BuildCache, default_build_cache
from repro.core.network import CompiledNetwork
from repro.core.sparse import repatch_sparse, sparse_compile
from repro.dynamic.graph import MutableGraph
from repro.errors import ValidationError
from repro.staticcheck.temporal import TemporalAnalysis, analyze_temporal, repropagate
from repro.telemetry.metrics import counter_inc
from repro.workloads.graph import WeightedDigraph

__all__ = ["IncrementalRecompiler", "RecompileReport", "compile_vertex_network"]

#: Query families the recompiler maintains: the Section-3 SSSP network
#: (non-gadget level) and the unit-delay k-hop reachability network.  The
#: gadget-expanded SSSP level is not patched incrementally (its per-vertex
#: latch gadgets break the 1:1 vertex/neuron mapping); gadget queries fall
#: back to the ordinary cached-build path.
FAMILIES: Tuple[str, ...] = ("sssp", "khop")


def compile_vertex_network(
    graph: WeightedDigraph, *, unit_delay: bool
) -> CompiledNetwork:
    """Compile the Section-3 vertex network straight from CSR arrays.

    Vectorized equivalent of the builders in
    :func:`~repro.algorithms.sssp_pseudo.sssp_network` (``unit_delay=False``)
    and :func:`~repro.algorithms.reach.khop_reach_network`
    (``unit_delay=True``): one one-shot neuron ``v{i}`` per vertex,
    self-loops masked, weight 1.0, delay = edge length (or 1).  Produces
    arrays identical to ``Network.compile()`` on the equivalent builder.
    """
    n = graph.n
    mask = graph.tails != graph.heads
    src = graph.tails[mask]
    syn_dst = graph.heads[mask]
    if unit_delay:
        syn_delay = np.ones(src.size, dtype=np.int64)
    else:
        syn_delay = graph.lengths[mask]
    syn_weight = np.ones(src.size, dtype=np.float64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    if src.size:
        np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CompiledNetwork(
        n=n,
        v_reset=np.zeros(n, dtype=np.float64),
        v_threshold=np.full(n, 0.5, dtype=np.float64),
        tau=np.zeros(n, dtype=np.float64),
        one_shot=np.ones(n, dtype=bool),
        indptr=indptr,
        syn_dst=syn_dst,
        syn_weight=syn_weight,
        syn_delay=syn_delay,
        inputs=np.empty(0, dtype=np.int64),
        outputs=np.empty(0, dtype=np.int64),
        terminal=None,
        names=tuple(f"v{v}" for v in range(n)),
    )


@dataclass
class _FamilyState:
    """Last compiled artifact of one family, pinned to a graph version."""

    version: int
    key: str
    net: CompiledNetwork
    node_ids: List[int]
    #: Spike-time intervals for the worst-case (any-vertex) stimulus; kept
    #: current across refreshes once :meth:`IncrementalRecompiler.temporal`
    #: has been called for the family.  ``None`` = never requested.
    temporal: Optional[TemporalAnalysis] = None


@dataclass
class RecompileReport:
    """What one :meth:`IncrementalRecompiler.refresh` did."""

    graph_version: int
    #: family -> one of "unchanged", "reused", "patched_weights", "recompiled"
    families: Dict[str, str] = field(default_factory=dict)
    cache_seeded: int = 0
    cache_invalidated: int = 0


class IncrementalRecompiler:
    """Keeps compiled SSSP/k-hop networks of one mutable graph up to date.

    One recompiler per :class:`~repro.dynamic.graph.MutableGraph`.  Callers
    mutate the graph, then call :meth:`refresh` (typically while holding
    ``graph.lock`` so mutation + recompile + snapshot publish as one atomic
    step).  ``refresh`` advances each tracked family to the current version
    by the cheapest sound route and moves the build-cache entries from the
    old version's structure key to the new one.
    """

    def __init__(
        self, graph: MutableGraph, *, cache: Optional[BuildCache] = None
    ) -> None:
        self._graph = graph
        self._cache = default_build_cache if cache is None else cache
        self._state: Dict[str, _FamilyState] = {}
        self.full_builds = 0
        self.weight_patches = 0
        self.vector_recompiles = 0
        self.reuses = 0
        self.sparse_rebuckets = 0
        self.temporal_repropagations = 0
        self.temporal_reanalyses = 0
        self.cache_seeded = 0
        self.cache_invalidated = 0

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> MutableGraph:
        return self._graph

    def network(self, family: str) -> Tuple[CompiledNetwork, List[int]]:
        """The compiled network + vertex->neuron ids of ``family``, current.

        Tracks the family from this call on (subsequent :meth:`refresh`
        calls keep it in sync).
        """
        with self._graph.lock:
            self._ensure(family)
            st = self._state[family]
            if st.version != self._graph.version:
                self.refresh()
                st = self._state[family]
            return st.net, list(st.node_ids)

    def stats(self) -> Dict[str, int]:
        return {
            "families": len(self._state),
            "full_builds": self.full_builds,
            "weight_patches": self.weight_patches,
            "vector_recompiles": self.vector_recompiles,
            "reuses": self.reuses,
            "sparse_rebuckets": self.sparse_rebuckets,
            "temporal_repropagations": self.temporal_repropagations,
            "temporal_reanalyses": self.temporal_reanalyses,
            "cache_seeded": self.cache_seeded,
            "cache_invalidated": self.cache_invalidated,
        }

    # ------------------------------------------------------------------ #
    # Refresh
    # ------------------------------------------------------------------ #

    def prime(self) -> None:
        """Track and build every family at the current version."""
        with self._graph.lock:
            for family in FAMILIES:
                self._ensure(family)

    def refresh(self) -> RecompileReport:
        """Advance every tracked family to the graph's current version.

        Chooses per family: nothing (already current), pure reuse (k-hop
        across a weights-only delta), a ``syn_delay`` patch (SSSP across a
        weights-only delta), or a vectorized structural recompile.  Seeds
        the build cache under the new version's key and invalidates the old
        version's entries, returning counts in the report.
        """
        with self._graph.lock:
            version = self._graph.version
            report = RecompileReport(graph_version=version)
            if not self._state:
                return report
            snap = self._graph.snapshot()
            new_key = snap.structure_key()
            old_keys: Set[str] = set()
            for family, st in self._state.items():
                if st.version == version:
                    report.families[family] = "unchanged"
                    continue
                topo_dirty = self._graph.topology_version > st.version
                weight_dirty = self._graph.weights_version > st.version
                if topo_dirty:
                    net = compile_vertex_network(snap, unit_delay=(family == "khop"))
                    node_ids = list(range(snap.n))
                    mode = "recompiled"
                    self.vector_recompiles += 1
                    counter_inc("dynamic.recompile.vectorized", 1)
                elif weight_dirty and family == "sssp":
                    net = self._patch_delays(st.net, snap)
                    node_ids = st.node_ids
                    mode = "patched_weights"
                    self.weight_patches += 1
                    counter_inc("dynamic.recompile.weight_patches", 1)
                else:
                    # weights-only delta and the family ignores weights
                    # (khop): the old compilation is still exact.
                    net = st.net
                    node_ids = st.node_ids
                    mode = "reused"
                    self.reuses += 1
                    counter_inc("dynamic.recompile.reuses", 1)
                if mode != "reused" and repatch_sparse(st.net, net):
                    # the previous version ran on the sparse engine: carry
                    # the CSR artifact forward so the next run pays no
                    # lazy re-bucketing, instead of dropping it with the
                    # invalidated cache entries
                    self.sparse_rebuckets += 1
                temporal = self._advance_temporal(st, net, mode)
                old_keys.add(st.key)
                self._seed(family, new_key, net, node_ids)
                report.cache_seeded += 1
                self._state[family] = _FamilyState(
                    version=version,
                    key=new_key,
                    net=net,
                    node_ids=node_ids,
                    temporal=temporal,
                )
                report.families[family] = mode
            for old_key in old_keys:
                dropped = self._cache.invalidate(old_key)
                report.cache_invalidated += dropped
                self.cache_invalidated += dropped
            self.cache_seeded += report.cache_seeded
            return report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _ensure(self, family: str) -> None:
        if family not in FAMILIES:
            raise ValidationError(
                f"unknown recompile family {family!r}; expected one of {FAMILIES}"
            )
        if family in self._state:
            return
        snap = self._graph.snapshot()
        net = compile_vertex_network(snap, unit_delay=(family == "khop"))
        node_ids = list(range(snap.n))
        key = snap.structure_key()
        self._seed(family, key, net, node_ids)
        self.cache_seeded += 1
        self.full_builds += 1
        counter_inc("dynamic.recompile.full_builds", 1)
        self._state[family] = _FamilyState(
            version=self._graph.version, key=key, net=net, node_ids=node_ids
        )

    def _seed(
        self, family: str, key: str, net: CompiledNetwork, node_ids: List[int]
    ) -> None:
        if family == "sssp":
            cache_key: Tuple[object, ...] = ("sssp_pseudo", False, key)
        else:
            cache_key = ("khop_reach", key)
        self._cache.put(cache_key, (net, node_ids))
        if getattr(net, "_sparse_artifact", None) is not None:
            # publish the per-delay CSR artifact under the same structure
            # key so invalidation drops it together with the network
            sparse_compile(net, cache=self._cache, structure_key=key)
        counter_inc("dynamic.cache.seeded", 1)

    def _advance_temporal(
        self, st: _FamilyState, net: CompiledNetwork, mode: str
    ) -> Optional[TemporalAnalysis]:
        """Carry the family's temporal analysis across one refresh.

        A weights-only delta re-propagates intervals only through the
        affected delay cone (:func:`~repro.staticcheck.temporal.repropagate`
        from the changed synapses); a structural recompile re-analyzes from
        scratch.  Differentially tested equal to from-scratch in
        ``tests/test_dynamic.py``.
        """
        if st.temporal is None:
            return None
        if mode == "reused":
            return st.temporal
        if mode == "patched_weights":
            changed = np.flatnonzero(st.net.syn_delay != net.syn_delay)
            self.temporal_repropagations += 1
            counter_inc("dynamic.recompile.temporal_repropagated", 1)
            return repropagate(st.temporal, net, changed)
        self.temporal_reanalyses += 1
        counter_inc("dynamic.recompile.temporal_reanalyzed", 1)
        return analyze_temporal(net, stimulus=list(range(net.n)))

    def temporal(self, family: str) -> TemporalAnalysis:
        """Current spike-time intervals of ``family``'s compiled network.

        The analysis assumes the worst-case stimulus (any vertex driven at
        tick 0), matching the admission bound of
        :class:`~repro.service.server.QueryServer`.  Computed lazily on
        first call, then maintained incrementally by :meth:`refresh`.
        """
        with self._graph.lock:
            self._ensure(family)
            st = self._state[family]
            if st.version != self._graph.version:
                self.refresh()
                st = self._state[family]
            if st.temporal is None:
                st.temporal = analyze_temporal(
                    st.net, stimulus=list(range(st.net.n))
                )
                self.temporal_reanalyses += 1
                counter_inc("dynamic.recompile.temporal_reanalyzed", 1)
            return st.temporal

    @staticmethod
    def _patch_delays(net: CompiledNetwork, snap: WeightedDigraph) -> CompiledNetwork:
        """New compilation sharing everything but ``syn_delay`` (reweight)."""
        mask = snap.tails != snap.heads
        syn_delay = snap.lengths[mask]
        if syn_delay.size != net.m:  # pragma: no cover - guarded by delta tracking
            raise ValidationError(
                "weights-only patch requires unchanged topology "
                f"({syn_delay.size} edges vs {net.m} synapses)"
            )
        return dataclasses.replace(net, syn_delay=syn_delay)
