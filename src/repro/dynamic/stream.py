"""Replayable mixed read/write op streams (the ``repro.dynamic.stream`` format).

One op per JSONL line::

    {"op": 17, "type": "REWEIGHT", "graph": "grid", "params": {"u": 3, "v": 4, "weight": 6}}

``type`` is one of :data:`OP_TYPES` — three read shapes (``READ_SSSP``,
``READ_KHOP``, ``READ_APSP``) and the five mutations (``ADD_NODE``,
``REMOVE_NODE``, ``ADD_EDGE``, ``REMOVE_EDGE``, ``REWEIGHT``).  The format
is deliberately dumb (plain JSON, explicit vertex ids, no timestamps) so a
recorded stream replays bit-identically: :func:`generate_stream` maintains
shadow :class:`~repro.dynamic.graph.MutableGraph` copies while generating,
guaranteeing every op is valid when applied *in order*, and
:func:`replay_stream` preserves that order by submitting writes
synchronously (each write is acknowledged before any later op is
submitted) while pipelining reads in a bounded window between writes.

Reads are **skewed**: vertices are drawn from a Zipf-like rank
distribution over a seeded per-graph permutation, modeling the hot-key
access patterns of streaming graph workloads (cf. Hamilton et al.'s
framing of graph analysis as a streaming application).

:func:`run_stream_replay` is the self-contained driver behind
``repro loadgen --ops`` and the CI ``dynamic-smoke`` job: it builds a
:class:`~repro.service.server.QueryServer`, registers every referenced
graph as dynamic, replays the ops, and reports per-op-type p50/p99
latencies plus recompiler/cache counters.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dynamic.graph import MutableGraph
from repro.errors import ReproError, ValidationError
from repro.service.schema import QueryRequest
from repro.workloads.graph import WeightedDigraph

__all__ = [
    "OP_TYPES",
    "READ_OP_KINDS",
    "WRITE_OP_KINDS",
    "STREAM_SCHEMA",
    "generate_stream",
    "op_to_request",
    "read_stream",
    "replay_stream",
    "run_stream_replay",
    "write_stream",
]

STREAM_SCHEMA = "repro.dynamic.stream/v1"

#: Read op type -> request kind.
READ_OP_KINDS: Dict[str, str] = {
    "READ_SSSP": "sssp",
    "READ_KHOP": "khop",
    "READ_APSP": "apsp",
}

#: Write op type -> mutation request kind.
WRITE_OP_KINDS: Dict[str, str] = {
    "ADD_NODE": "add_node",
    "REMOVE_NODE": "remove_node",
    "ADD_EDGE": "add_edge",
    "REMOVE_EDGE": "remove_edge",
    "REWEIGHT": "reweight",
}

OP_TYPES: Tuple[str, ...] = tuple(READ_OP_KINDS) + tuple(WRITE_OP_KINDS)

#: Relative frequency of each write type within the write fraction.
_WRITE_WEIGHTS: Dict[str, float] = {
    "REWEIGHT": 0.40,
    "ADD_EDGE": 0.25,
    "REMOVE_EDGE": 0.15,
    "ADD_NODE": 0.12,
    "REMOVE_NODE": 0.08,
}

#: Relative frequency of each read shape within the read fraction.
_READ_WEIGHTS: Dict[str, float] = {
    "READ_SSSP": 0.60,
    "READ_KHOP": 0.30,
    "READ_APSP": 0.10,
}

_KHOP_TIERS = (4, 8, 16)


def _zipf_pick(
    rng: np.random.Generator, ranked: Sequence[int], skew: float
) -> int:
    """One vertex from ``ranked`` under a Zipf-like rank distribution."""
    weights = 1.0 / np.power(np.arange(1, len(ranked) + 1, dtype=np.float64), skew)
    weights /= weights.sum()
    return int(ranked[int(rng.choice(len(ranked), p=weights))])


def _weighted_type(rng: np.random.Generator, weights: Mapping[str, float]) -> str:
    names = list(weights)
    p = np.asarray([weights[n] for n in names], dtype=np.float64)
    p /= p.sum()
    return names[int(rng.choice(len(names), p=p))]


class _Shadow:
    """Generator-side shadow of one graph: state + skewed vertex ranking."""

    def __init__(self, gid: str, base: WeightedDigraph, rng: np.random.Generator):
        self.gid = gid
        self.graph = MutableGraph(base, uid=f"shadow:{gid}")
        self.max_length = max(1, base.max_length())
        # A fixed permutation defines which vertices are "hot"; new nodes
        # are appended (cold tail).
        self.ranking: List[int] = [
            int(v) for v in rng.permutation(base.n)
        ] if base.n else []

    def live_ranking(self) -> List[int]:
        removed = {v for v in self.ranking if self.graph.is_removed(v)}
        return [v for v in self.ranking if v not in removed]


def generate_stream(
    graphs: Mapping[str, WeightedDigraph],
    n_ops: int,
    *,
    seed: int = 0,
    write_fraction: float = 0.25,
    skew: float = 1.2,
    min_live_nodes: int = 4,
) -> List[Dict[str, Any]]:
    """A seeded mixed read/write op stream over ``graphs``.

    Every op is valid when the stream is applied in order starting from the
    given base graphs (the generator tracks shadow state), so a replay
    against freshly registered copies of the same graphs sees zero
    validation errors.  ``write_fraction`` of ops are mutations (skewed
    toward ``REWEIGHT``/``ADD_EDGE``); reads draw sources from a Zipf-like
    rank distribution with exponent ``skew``.  ``min_live_nodes`` bounds
    destructive drift: ``REMOVE_NODE`` is never emitted when it would
    leave fewer live vertices.
    """
    if n_ops < 0:
        raise ValidationError(f"n_ops must be >= 0, got {n_ops}")
    if not graphs:
        raise ValidationError("generate_stream requires at least one graph")
    if not (0.0 <= write_fraction <= 1.0):
        raise ValidationError(
            f"write_fraction must be in [0, 1], got {write_fraction}"
        )
    rng = np.random.default_rng(seed)
    shadows = {gid: _Shadow(gid, g, rng) for gid, g in sorted(graphs.items())}
    gids = sorted(shadows)
    ops: List[Dict[str, Any]] = []
    for i in range(n_ops):
        gid = gids[int(rng.integers(len(gids)))]
        shadow = shadows[gid]
        if rng.random() < write_fraction:
            op = _generate_write(rng, shadow, min_live_nodes)
        else:
            op = _generate_read(rng, shadow, skew)
        if op is None:  # graph too degenerate for any op: fall back
            op = {"type": "ADD_NODE", "params": {}}
            shadow.ranking.append(shadow.graph.add_node())
        op["op"] = i
        op["graph"] = gid
        ops.append(op)
    return ops


def _generate_read(
    rng: np.random.Generator, shadow: _Shadow, skew: float
) -> Optional[Dict[str, Any]]:
    live = shadow.live_ranking()
    if not live:
        return None
    kind = _weighted_type(rng, _READ_WEIGHTS)
    if kind == "READ_SSSP":
        return {"type": kind, "params": {"source": _zipf_pick(rng, live, skew)}}
    if kind == "READ_KHOP":
        return {
            "type": kind,
            "params": {
                "source": _zipf_pick(rng, live, skew),
                "k": int(_KHOP_TIERS[int(rng.integers(len(_KHOP_TIERS)))]),
            },
        }
    n_sources = int(min(len(live), 2 + rng.integers(3)))
    sources: List[int] = []
    while len(sources) < n_sources:
        s = _zipf_pick(rng, live, skew)
        if s not in sources:
            sources.append(s)
    return {"type": "READ_APSP", "params": {"sources": sources}}


def _generate_write(
    rng: np.random.Generator, shadow: _Shadow, min_live_nodes: int
) -> Optional[Dict[str, Any]]:
    g = shadow.graph
    live = shadow.live_ranking()
    kind = _weighted_type(rng, _WRITE_WEIGHTS)
    if kind in ("REWEIGHT", "REMOVE_EDGE") and g.m == 0:
        kind = "ADD_EDGE"
    if kind == "REMOVE_NODE" and len(live) <= min_live_nodes:
        kind = "ADD_NODE"
    if kind == "ADD_EDGE" and len(live) < 2:
        kind = "ADD_NODE"

    if kind == "ADD_NODE":
        nid = g.add_node()
        shadow.ranking.append(nid)
        return {"type": kind, "params": {}}
    if kind == "REMOVE_NODE":
        v = int(live[int(rng.integers(len(live)))])
        g.remove_node(v)
        return {"type": kind, "params": {"u": v}}
    if kind in ("REWEIGHT", "REMOVE_EDGE"):
        edges = list(g.edges())
        u, v, _w = edges[int(rng.integers(len(edges)))]
        if kind == "REWEIGHT":
            w = int(rng.integers(1, shadow.max_length + 1))
            g.reweight(int(u), int(v), w)
            return {"type": kind, "params": {"u": int(u), "v": int(v), "weight": w}}
        g.remove_edge(int(u), int(v))
        return {"type": kind, "params": {"u": int(u), "v": int(v)}}
    # ADD_EDGE: try a few endpoint pairs; degrade to reweight, then a node.
    for _attempt in range(8):
        u = int(live[int(rng.integers(len(live)))])
        v = int(live[int(rng.integers(len(live)))])
        if u != v and not g.has_edge(u, v):
            w = int(rng.integers(1, shadow.max_length + 1))
            g.add_edge(u, v, w)
            return {"type": "ADD_EDGE", "params": {"u": u, "v": v, "weight": w}}
    if g.m:
        edges = list(g.edges())
        u, v, _w = edges[int(rng.integers(len(edges)))]
        w = int(rng.integers(1, shadow.max_length + 1))
        g.reweight(int(u), int(v), w)
        return {"type": "REWEIGHT", "params": {"u": int(u), "v": int(v), "weight": w}}
    return None


# ---------------------------------------------------------------------- #
# Serialization
# ---------------------------------------------------------------------- #


def write_stream(ops: Iterable[Mapping[str, Any]], path: str) -> int:
    """Write ops as JSONL (one op per line); returns the op count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for op in ops:
            fh.write(json.dumps(dict(op), sort_keys=True) + "\n")
            count += 1
    return count


def read_stream(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL op stream, validating op types."""
    ops: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(f"{path}:{lineno}: invalid JSON ({exc})")
            if not isinstance(doc, dict):
                raise ValidationError(f"{path}:{lineno}: op must be an object")
            if doc.get("type") not in OP_TYPES:
                raise ValidationError(
                    f"{path}:{lineno}: unknown op type {doc.get('type')!r}"
                )
            if not doc.get("graph"):
                raise ValidationError(f"{path}:{lineno}: op missing 'graph'")
            ops.append(doc)
    return ops


def op_to_request(op: Mapping[str, Any]) -> QueryRequest:
    """Map one op record onto the serving schema."""
    op_type = str(op.get("type"))
    gid = str(op.get("graph"))
    params_raw = op.get("params") or {}
    if not isinstance(params_raw, Mapping):
        raise ValidationError(f"op params must be an object, got {params_raw!r}")
    params: Dict[str, Any] = dict(params_raw)
    if op_type in READ_OP_KINDS:
        kind = READ_OP_KINDS[op_type]
        if kind == "apsp":
            sources = params.get("sources")
            return QueryRequest(
                kind="apsp",
                graph_id=gid,
                sources=tuple(int(s) for s in sources) if sources else None,
            )
        return QueryRequest(
            kind=kind,
            graph_id=gid,
            source=params.get("source"),
            target=params.get("target"),
            k=params.get("k"),
        )
    if op_type in WRITE_OP_KINDS:
        return QueryRequest(
            kind=WRITE_OP_KINDS[op_type],
            graph_id=gid,
            u=params.get("u"),
            v=params.get("v"),
            weight=params.get("weight"),
        )
    raise ValidationError(f"unknown op type {op_type!r}")


# ---------------------------------------------------------------------- #
# Replay
# ---------------------------------------------------------------------- #


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def replay_stream(
    server: Any,
    ops: Sequence[Mapping[str, Any]],
    *,
    timeout_s: float = 120.0,
    window: int = 32,
) -> Dict[str, Any]:
    """Replay ``ops`` in order against a running server; latency report.

    Writes are **synchronous**: each mutation's result is awaited before
    any later op is submitted, so the server-side graph state at each op
    matches the generator's shadow state exactly (zero validation errors
    on a well-formed stream) and reads always observe the version the
    stream implies.  Reads between writes are pipelined up to ``window``
    outstanding tickets.  Returns per-op-type latency percentiles, error
    details (first 10), and the final ``graph_version`` observed per
    graph.
    """
    latencies: Dict[str, List[float]] = {}
    errors: List[Dict[str, Any]] = []
    n_errors = 0
    final_versions: Dict[str, int] = {}
    pending: List[Tuple[Mapping[str, Any], Any, float]] = []
    _now = getattr(server, "_clock", time.monotonic)

    def _note(op: Mapping[str, Any], result: Any, elapsed_s: float) -> None:
        nonlocal n_errors
        op_type = str(op.get("type"))
        latencies.setdefault(op_type, []).append(elapsed_s)
        if result.graph_version is not None:
            final_versions[str(op.get("graph"))] = int(result.graph_version)
        if not result.ok:
            n_errors += 1
            if len(errors) < 10:
                errors.append(
                    {
                        "op": op.get("op"),
                        "type": op_type,
                        "error": result.error,
                        "error_code": result.error_code,
                    }
                )

    def _drain(limit: int) -> None:
        while len(pending) > limit:
            p_op, p_ticket, p_t0 = pending.pop(0)
            result = p_ticket.result(timeout_s)
            _note(p_op, result, _now() - p_t0)

    for op in ops:
        op_type = str(op.get("type"))
        request = op_to_request(op)
        t0 = _now()
        try:
            ticket = server.submit(request)
        except ReproError as exc:
            n_errors += 1
            if len(errors) < 10:
                errors.append(
                    {"op": op.get("op"), "type": op_type, "error": str(exc)}
                )
            continue
        if op_type in WRITE_OP_KINDS:
            _drain(0)  # all earlier reads settle against the pre-write version
            result = ticket.result(timeout_s)
            _note(op, result, _now() - t0)
        else:
            pending.append((op, ticket, t0))
            _drain(window)
    _drain(0)

    per_type: Dict[str, Dict[str, Any]] = {}
    for op_type, vals in sorted(latencies.items()):
        per_type[op_type] = {
            "count": len(vals),
            "p50_s": round(_percentile(vals, 50), 6),
            "p99_s": round(_percentile(vals, 99), 6),
            "mean_s": round(float(np.mean(vals)), 6) if vals else 0.0,
        }
    reads = [v for t, vs in latencies.items() if t in READ_OP_KINDS for v in vs]
    writes = [v for t, vs in latencies.items() if t in WRITE_OP_KINDS for v in vs]
    return {
        "schema": STREAM_SCHEMA,
        "ops": len(ops),
        "completed": sum(len(v) for v in latencies.values()),
        "errors": n_errors,
        "error_details": errors,
        "per_type": per_type,
        "reads": {
            "count": len(reads),
            "p50_s": round(_percentile(reads, 50), 6),
            "p99_s": round(_percentile(reads, 99), 6),
        },
        "writes": {
            "count": len(writes),
            "p50_s": round(_percentile(writes, 50), 6),
            "p99_s": round(_percentile(writes, 99), 6),
        },
        "final_versions": final_versions,
    }


def run_stream_replay(
    graphs: Mapping[str, WeightedDigraph],
    ops: Sequence[Mapping[str, Any]],
    *,
    workers: int = 2,
    max_batch: int = 16,
    linger_s: float = 0.002,
    queue_limit: int = 1024,
    result_cache_ttl_s: float = 60.0,
    timeout_s: float = 300.0,
    window: int = 32,
) -> Dict[str, Any]:
    """Build a server, register ``graphs`` as dynamic, replay ``ops``.

    The self-contained driver used by ``repro loadgen --ops``, the
    benchmark, and the CI smoke job.  The report includes the replay
    latencies plus server/cache/recompiler counters, so "the incremental
    path was exercised" is checkable from the artifact alone
    (``dynamic.*.recompile.weight_patches`` etc.).
    """
    from repro.service.server import QueryServer

    referenced = {str(op.get("graph")) for op in ops}
    missing = sorted(referenced - set(graphs))
    if missing:
        raise ValidationError(f"ops reference unregistered graphs: {missing}")

    server = QueryServer(
        workers=workers,
        max_batch=max_batch,
        linger_s=linger_s,
        queue_limit=queue_limit,
        result_cache_ttl_s=result_cache_ttl_s,
        lint_admission=False,
    )
    with server:
        for gid, g in sorted(graphs.items()):
            server.register_dynamic_graph(gid, g)
        report = replay_stream(server, ops, timeout_s=timeout_s, window=window)
        stats = server.stats()
    metrics = stats.get("metrics")
    counters: Dict[str, Any] = {}
    if isinstance(metrics, dict) and isinstance(metrics.get("counters"), dict):
        counters = metrics["counters"]
    report["server"] = {
        "workers": workers,
        "batches": counters.get("service.batches", 0),
        "coalesced_batches": counters.get("service.batches.coalesced", 0),
        "mutation_batches": counters.get("service.batches.mutation", 0),
        "completed": counters.get("service.requests.completed", 0),
        "request_errors": counters.get("service.requests.errors", 0),
        "result_cache": stats.get("result_cache"),
        "build_cache": stats.get("build_cache"),
    }
    report["dynamic"] = stats.get("dynamic", {})
    return report
