"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An argument or model parameter failed validation.

    Raised eagerly at construction time (e.g. a synapse delay below the
    hardware minimum ``delta``, a decay outside ``[0, 1]``) so that invalid
    networks never reach a simulation engine.
    """


class SimulationError(ReproError, RuntimeError):
    """A simulation could not be run or did not terminate as requested."""


class UnsupportedNetworkError(SimulationError):
    """The selected engine cannot simulate this network.

    The event-driven engine is lazy between spike deliveries and therefore
    rejects *pacemaker* neurons (``v_reset > v_threshold``) that would fire
    spontaneously with no incoming events; use the dense engine for those.
    """


class CircuitError(ReproError, ValueError):
    """A circuit construction received inconsistent wiring or widths."""


class GraphError(ReproError, ValueError):
    """A graph input is malformed (bad endpoints, negative lengths, ...)."""


class EmbeddingError(ReproError, ValueError):
    """A crossbar embedding request cannot be satisfied."""


class MachineError(ReproError, RuntimeError):
    """An invalid operation was issued to the DISTANCE machine."""
