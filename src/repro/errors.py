"""Exception hierarchy and stable error taxonomy for the ``repro`` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors (``TypeError`` etc.).

The serving layer additionally needs a *wire-stable* classification of
failures: a client deciding whether to retry cannot parse exception
messages.  :func:`classify_exception` maps any exception to a short stable
error code, and :data:`RETRYABLE_ERROR_CODES` names the codes a
well-behaved client may retry (transient conditions: overload, an open
circuit breaker, a crashed worker, a queue-deadline timeout).  Codes are
append-only: never rename or repurpose one, clients depend on them.
"""

from __future__ import annotations

from typing import Tuple


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An argument or model parameter failed validation.

    Raised eagerly at construction time (e.g. a synapse delay below the
    hardware minimum ``delta``, a decay outside ``[0, 1]``) so that invalid
    networks never reach a simulation engine.
    """


class SimulationError(ReproError, RuntimeError):
    """A simulation could not be run or did not terminate as requested."""


class UnsupportedNetworkError(SimulationError):
    """The selected engine cannot simulate this network.

    The event-driven engine is lazy between spike deliveries and therefore
    rejects *pacemaker* neurons (``v_reset > v_threshold``) that would fire
    spontaneously with no incoming events; use the dense engine for those.
    """


class WatchdogError(SimulationError):
    """A simulation watchdog guard tripped.

    Raised only when the caller opted in with ``Watchdog(raise_on_trip=True)``;
    otherwise the engines stop gracefully with a diagnostic
    :class:`~repro.core.watchdog.WatchdogReport` attached to the result.
    The triggering report is available as :attr:`report`.
    """

    def __init__(self, message: str, report: object = None):
        super().__init__(message)
        self.report = report


class RunawaySpikesError(WatchdogError):
    """A neuron group exceeded the watchdog's spike-rate ceiling.

    Typical cause: an unintended excitatory cycle turned the network into an
    oscillator that would otherwise burn the whole ``max_steps`` budget.
    """


class NonQuiescenceError(WatchdogError):
    """The tick budget ran out while the network was still active.

    The report names the hottest neurons of the final watchdog window so the
    non-terminating activity can be located instead of silently timing out.
    """


class ServiceOverloadedError(ReproError, RuntimeError):
    """The serving layer's admission queue is full; retry later.

    The backpressure contract of :class:`repro.service.server.QueryServer`:
    rather than queueing unboundedly, an over-capacity submit is rejected
    with a suggested :attr:`retry_after_s` (the current expected drain time
    of one batch) and the observed :attr:`queue_depth`.
    """

    def __init__(self, message: str, *, retry_after_s: float = 0.0, queue_depth: int = 0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
        self.queue_depth = int(queue_depth)


class CircuitOpenError(ReproError, RuntimeError):
    """A circuit breaker is open for this (kind, graph_id); shed fast.

    Raised synchronously by :meth:`repro.service.server.QueryServer.submit`
    when the rolling error rate of the targeted query family tripped its
    breaker.  Unlike :class:`ServiceOverloadedError` (the queue is full but
    healthy), an open breaker means recent requests of this exact shape
    have been *failing*; :attr:`retry_after_s` is the remaining cool-down
    before the breaker admits half-open trial requests again.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after_s: float = 0.0,
        kind: str = "",
        graph_id: str = "",
    ):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
        self.kind = str(kind)
        self.graph_id = str(graph_id)


class StaticCheckError(ReproError, ValueError):
    """A static-analysis gate rejected a network before simulation.

    Raised by the opt-in ``verify=True`` hooks of the circuit runner and
    the algorithm drivers, and by
    :meth:`repro.staticcheck.diagnostics.LintReport.raise_if_errors`, when
    the :mod:`repro.staticcheck` linter finds error-severity structural
    violations (paper Definitions 1-3 or engine assumptions).  The full
    :class:`~repro.staticcheck.diagnostics.LintReport` is attached as
    :attr:`report`.
    """

    def __init__(self, message: str, report: object = None):
        super().__init__(message)
        self.report = report


class TemporalBudgetError(StaticCheckError):
    """A request's certified runtime bound does not fit its deadline.

    Raised synchronously at admission by
    :meth:`repro.service.server.QueryServer.submit` when the temporal
    analysis (:mod:`repro.staticcheck.temporal`) proves the planned run
    needs more ticks than the request's ``deadline_s`` allows at the
    server's configured tick rate — the simulator is never started.
    :attr:`certified_ticks` is the provable worst-case run length;
    :attr:`budget_ticks` is what the deadline affords.
    """

    def __init__(
        self,
        message: str,
        *,
        certified_ticks: int = 0,
        budget_ticks: int = 0,
        report: object = None,
    ):
        super().__init__(message, report=report)
        self.certified_ticks = int(certified_ticks)
        self.budget_ticks = int(budget_ticks)


class CircuitError(ReproError, ValueError):
    """A circuit construction received inconsistent wiring or widths."""


class GraphError(ReproError, ValueError):
    """A graph input is malformed (bad endpoints, negative lengths, ...)."""


class EmbeddingError(ReproError, ValueError):
    """A crossbar embedding request cannot be satisfied."""


class MachineError(ReproError, RuntimeError):
    """An invalid operation was issued to the DISTANCE machine."""


class RemoteWorkerError(ReproError, RuntimeError):
    """A worker process failed a simulation job and reported the failure.

    The process-pool tier (:mod:`repro.service.net.procpool`) runs
    simulations in child processes; an exception raised there cannot always
    be pickled back intact, so the worker ships ``(type name, message,
    stable error code)`` and the parent re-raises this carrier.
    :func:`classify_exception` forwards :attr:`error_code` verbatim, which
    keeps the wire-visible code identical to an in-process failure.
    """

    def __init__(
        self, message: str, *, error_code: str = "INTERNAL", remote_type: str = ""
    ):
        super().__init__(message)
        self.error_code = str(error_code)
        self.remote_type = str(remote_type)


# --------------------------------------------------------------------- #
# Stable error codes (the serving layer's retry contract)
# --------------------------------------------------------------------- #

#: Codes a client may retry: the condition is transient and the query is
#: idempotent-safe to resubmit.  Everything else is permanent — retrying a
#: deterministic failure (validation, a structural lint rejection, a
#: reproducible simulation error) reproduces the failure.
RETRYABLE_ERROR_CODES = frozenset(
    {"OVERLOADED", "BREAKER_OPEN", "WORKER_CRASH", "WORKER_WEDGED", "TIMEOUT"}
)

#: isinstance-ordered (most specific first) exception -> code mapping.
_CODE_TABLE: Tuple[Tuple[type, str], ...] = (
    (CircuitOpenError, "BREAKER_OPEN"),
    (ServiceOverloadedError, "OVERLOADED"),
    (TemporalBudgetError, "TEMPORAL_BUDGET"),
    (StaticCheckError, "STATICCHECK"),
    (UnsupportedNetworkError, "UNSUPPORTED"),
    (WatchdogError, "WATCHDOG"),
    (SimulationError, "SIMULATION"),
    (ValidationError, "INVALID"),
    (CircuitError, "INVALID"),
    (GraphError, "INVALID"),
    (EmbeddingError, "INVALID"),
    (MachineError, "INVALID"),
    (TimeoutError, "TIMEOUT"),
    (MemoryError, "RESOURCE"),
)


def classify_exception(exc: BaseException) -> Tuple[str, bool]:
    """``(stable error code, retryable?)`` for any raised exception.

    The code is what travels in
    :attr:`repro.service.schema.QueryResult.error_code`; ``retryable``
    is ``code in RETRYABLE_ERROR_CODES``.  Unrecognized exceptions map to
    ``INTERNAL`` (permanent): an unknown failure is assumed deterministic,
    so blind retries do not amplify a bug into a retry storm.
    """
    if isinstance(exc, RemoteWorkerError):
        return exc.error_code, exc.error_code in RETRYABLE_ERROR_CODES
    for etype, code in _CODE_TABLE:
        if isinstance(exc, etype):
            return code, code in RETRYABLE_ERROR_CODES
    return "INTERNAL", False
