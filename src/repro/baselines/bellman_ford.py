"""Instrumented k-hop Bellman–Ford (paper Section 6.2).

"The best-known conventional algorithm for this problem is based on the
Bellman–Ford algorithm and runs in ``O(km)`` time": ``k`` rounds, each
relaxing *every* edge —

    dist_i(v) <- min{ dist_{i-1}(v), dist_{i-1}(u) + l(e) }.

The strict every-edge-every-round schedule is the object of the Theorem 6.2
movement lower bound, so it is the default; ``early_exit`` stops once a
round changes nothing (an optimization that does not help the worst case).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.baselines.counting import OpCounter
from repro.errors import ValidationError
from repro.workloads.graph import WeightedDigraph

__all__ = ["bellman_ford_khop"]


def bellman_ford_khop(
    graph: WeightedDigraph,
    source: int,
    k: int,
    *,
    early_exit: bool = False,
) -> Tuple[np.ndarray, OpCounter]:
    """Exact ``<= k``-hop distances (``-1`` if unreachable) plus op counts."""
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range")
    if k < 0:
        raise ValidationError(f"k must be >= 0, got {k}")
    n = graph.n
    INF = np.iinfo(np.int64).max
    prev = np.full(n, INF, dtype=np.int64)
    prev[source] = 0
    ops = OpCounter()
    ops.array_writes += 1
    tails = graph.tails.tolist()
    heads = graph.heads.tolist()
    lengths = graph.lengths.tolist()
    for _round in range(k):
        cur = prev.copy()
        ops.array_reads += n
        ops.array_writes += n
        changed = False
        for u, v, w in zip(tails, heads, lengths):
            ops.array_reads += 3  # edge tuple
            ops.relaxations += 1
            ops.comparisons += 1
            if prev[u] != INF and prev[u] + w < cur[v]:
                cur[v] = prev[u] + w
                ops.array_writes += 1
                changed = True
        prev = cur
        if early_exit and not changed:
            break
    return np.where(prev == INF, -1, prev), ops
