"""Conventional (RAM-model) baseline algorithms with operation counting.

The "ignoring data movement" half of Table 1 compares the neuromorphic
algorithms against the best-known conventional serial algorithms:
Dijkstra's algorithm (``O(m + n log n)``) for SSSP and ``k`` rounds of
Bellman–Ford (``O(km)``) for k-hop SSSP.  Instrumented operation counters
make the comparison empirical; the DISTANCE-model variants that also charge
data movement live in :mod:`repro.distance_model`.
"""

from repro.baselines.counting import OpCounter
from repro.baselines.dijkstra import dijkstra
from repro.baselines.bellman_ford import bellman_ford_khop

__all__ = ["OpCounter", "dijkstra", "bellman_ford_khop"]
