"""Operation counters for the conventional baselines."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OpCounter"]


@dataclass
class OpCounter:
    """Unit-cost RAM operation counts of one baseline execution.

    ``total`` is the quantity compared against the neuromorphic
    ``CostReport.total_time`` in the no-data-movement half of Table 1.
    """

    comparisons: int = 0
    relaxations: int = 0
    heap_pushes: int = 0
    heap_pops: int = 0
    array_reads: int = 0
    array_writes: int = 0

    @property
    def total(self) -> int:
        return (
            self.comparisons
            + self.relaxations
            + self.heap_pushes
            + self.heap_pops
            + self.array_reads
            + self.array_writes
        )
