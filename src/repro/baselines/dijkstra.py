"""Instrumented Dijkstra (binary heap), the paper's conventional SSSP
baseline (``O(m + n log n)`` with a Fibonacci heap; ``O((n + m) log n)``
with the binary heap used here — the log factor is irrelevant to the
polynomial-gap comparisons of Table 1 and noted in the analysis module).
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

import numpy as np

from repro.baselines.counting import OpCounter
from repro.errors import ValidationError
from repro.workloads.graph import WeightedDigraph

__all__ = ["dijkstra"]


def dijkstra(
    graph: WeightedDigraph,
    source: int,
    *,
    target: Optional[int] = None,
) -> Tuple[np.ndarray, OpCounter]:
    """Exact SSSP distances (``-1`` if unreachable) plus operation counts.

    Stops early once ``target`` (if given) is settled.
    """
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range")
    n = graph.n
    INF = np.iinfo(np.int64).max
    dist = np.full(n, INF, dtype=np.int64)
    done = np.zeros(n, dtype=bool)
    ops = OpCounter()
    dist[source] = 0
    ops.array_writes += 1
    heap = [(0, source)]
    ops.heap_pushes += 1
    while heap:
        d, u = heapq.heappop(heap)
        ops.heap_pops += 1
        if done[u]:
            ops.array_reads += 1
            continue
        done[u] = True
        ops.array_writes += 1
        if target is not None and u == target:
            break
        heads, lengths = graph.out_edges(u)
        for v, w in zip(heads.tolist(), lengths.tolist()):
            ops.array_reads += 2  # edge head + length
            cand = d + int(w)
            ops.relaxations += 1
            ops.comparisons += 1
            if cand < dist[v]:
                dist[v] = cand
                ops.array_writes += 1
                heapq.heappush(heap, (cand, v))
                ops.heap_pushes += 1
    return np.where(dist == INF, -1, dist), ops
