"""repro — a reproduction of *Provable Advantages for Graph Algorithms in
Spiking Neural Networks* (Aimone et al., SPAA 2021).

The package builds, from scratch, every system the paper describes:

* :mod:`repro.core` — the discrete leaky-integrate-and-fire SNN substrate
  (Definitions 1–3) with dense and event-driven engines;
* :mod:`repro.circuits` — the threshold-gate circuit library of Section 5
  and the Figure-1 gadgets;
* :mod:`repro.nga` — the round-based neuromorphic graph algorithm model
  (Definition 4) and semiring matrix powers;
* :mod:`repro.algorithms` — the spiking shortest-path algorithms of
  Sections 3, 4, and 7, at event level and fully compiled gate level;
* :mod:`repro.embedding` — the crossbar ``H_n`` and the Section 4.4 graph
  embedding;
* :mod:`repro.baselines` — instrumented conventional Dijkstra and k-hop
  Bellman–Ford;
* :mod:`repro.distance_model` — the DISTANCE data-movement machine of
  Definition 5 / Section 6, with measured algorithms and the lower-bound
  formulas of Theorems 6.1 and 6.2;
* :mod:`repro.analysis` — Table-1 complexity formulas, advantage
  predicates, crossover location, table rendering;
* :mod:`repro.hardware` — the Table-3 platform registry and energy model;
* :mod:`repro.workloads` — graph type, generators, and I/O.

Quickstart::

    from repro.workloads import gnp_graph
    from repro.algorithms import spiking_sssp_pseudo

    g = gnp_graph(100, 0.05, max_length=10, seed=0, ensure_source_reaches=True)
    result = spiking_sssp_pseudo(g, source=0)
    print(result.dist, result.cost.total_time)
"""

from repro.workloads import WeightedDigraph
from repro.core import Network, simulate
from repro.core.cost import CostReport
from repro.algorithms import (
    ShortestPathResult,
    spiking_khop_approx,
    spiking_khop_poly,
    spiking_khop_pseudo,
    spiking_sssp_poly,
    spiking_sssp_pseudo,
)
from repro.embedding import embedded_sssp
from repro.baselines import bellman_ford_khop, dijkstra

__version__ = "1.0.0"

__all__ = [
    "WeightedDigraph",
    "Network",
    "simulate",
    "CostReport",
    "ShortestPathResult",
    "spiking_sssp_pseudo",
    "spiking_khop_pseudo",
    "spiking_khop_poly",
    "spiking_sssp_poly",
    "spiking_khop_approx",
    "embedded_sssp",
    "dijkstra",
    "bellman_ford_khop",
    "__version__",
]
