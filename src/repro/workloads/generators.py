"""Seeded workload generators.

Each generator returns a :class:`~repro.workloads.graph.WeightedDigraph` with
positive integer edge lengths drawn uniformly from ``[1, max_length]``
(``max_length`` is the paper's ``U``).  All generators take a ``seed`` so that
tests and benchmarks are reproducible.

The families cover the scenarios the paper's introduction motivates:

* sparse random digraphs (``gnp_graph``) — generic graph analytics;
* grid / road-like graphs — navigation with bounded-hop constraints;
* power-law graphs — social/contact networks;
* layered DAGs — pipeline/scheduling graphs where the ``k``-hop structure is
  explicit;
* paths, cycles, stars, complete graphs — adversarial/extremal cases used in
  the complexity discussion (e.g. ``L`` large vs ``m`` small).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.workloads.graph import WeightedDigraph

__all__ = [
    "gnp_graph",
    "grid_graph",
    "road_like_graph",
    "power_law_graph",
    "small_world_graph",
    "layered_dag",
    "bottleneck_flow_network",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def _lengths(rng: np.random.Generator, m: int, max_length: int) -> np.ndarray:
    if max_length < 1:
        raise GraphError(f"max_length must be >= 1, got {max_length}")
    return rng.integers(1, max_length + 1, size=m, dtype=np.int64)


def gnp_graph(
    n: int,
    p: float,
    *,
    max_length: int = 1,
    seed: Optional[int] = None,
    ensure_source_reaches: bool = False,
    source: int = 0,
) -> WeightedDigraph:
    """Directed Erdős–Rényi ``G(n, p)`` with uniform integer lengths.

    With ``ensure_source_reaches`` a Hamiltonian-ish random out-tree from
    ``source`` is added so that every vertex is reachable (useful for SSSP
    sweeps where unreachable vertices would make ``L`` undefined).
    """
    rng = _rng(seed)
    if not (0.0 <= p <= 1.0):
        raise GraphError(f"p must be in [0, 1], got {p}")
    # Vectorized pair sampling: draw the full adjacency mask only for small n;
    # otherwise sample the binomial count of edges and draw endpoints.
    if n <= 2048:
        mask = rng.random((n, n)) < p
        np.fill_diagonal(mask, False)
        tails, heads = np.nonzero(mask)
    else:
        m_expected = rng.binomial(n * (n - 1), p)
        tails = rng.integers(0, n, size=m_expected, dtype=np.int64)
        heads = rng.integers(0, n, size=m_expected, dtype=np.int64)
        keep = tails != heads
        tails, heads = tails[keep], heads[keep]
    if ensure_source_reaches and n > 1:
        order = rng.permutation(n)
        order = order[order != source]
        chain_tails = np.concatenate(([source], order[:-1]))
        chain_heads = order
        tails = np.concatenate((tails, chain_tails))
        heads = np.concatenate((heads, chain_heads))
    lengths = _lengths(rng, tails.size, max_length)
    return WeightedDigraph.from_arrays(n, tails, heads, lengths)


def grid_graph(
    rows: int,
    cols: int,
    *,
    max_length: int = 1,
    seed: Optional[int] = None,
    bidirectional: bool = True,
) -> WeightedDigraph:
    """``rows x cols`` lattice; vertex ``(r, c)`` is ``r * cols + c``."""
    rng = _rng(seed)
    tails, heads = [], []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                tails.append(u)
                heads.append(u + 1)
            if r + 1 < rows:
                tails.append(u)
                heads.append(u + cols)
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    if bidirectional:
        tails, heads = (
            np.concatenate((tails, heads)),
            np.concatenate((heads, tails)),
        )
    lengths = _lengths(rng, tails.size, max_length)
    return WeightedDigraph.from_arrays(rows * cols, tails, heads, lengths)


def road_like_graph(
    rows: int,
    cols: int,
    *,
    max_length: int = 10,
    highway_fraction: float = 0.05,
    seed: Optional[int] = None,
) -> WeightedDigraph:
    """Grid plus a sprinkling of long-range 'highway' shortcuts.

    Models road networks: mostly planar lattice with a few fast long edges.
    Highways get length ``max_length`` but skip many grid cells, so bounded-hop
    (``k``-hop) routing on this family exhibits the hop/length tradeoff the
    k-hop problem is about.
    """
    rng = _rng(seed)
    base = grid_graph(rows, cols, max_length=max_length, seed=seed)
    n = rows * cols
    n_highways = max(1, int(highway_fraction * n))
    h_tails = rng.integers(0, n, size=n_highways, dtype=np.int64)
    h_heads = rng.integers(0, n, size=n_highways, dtype=np.int64)
    keep = h_tails != h_heads
    h_tails, h_heads = h_tails[keep], h_heads[keep]
    tails = np.concatenate((base.tails, h_tails, h_heads))
    heads = np.concatenate((base.heads, h_heads, h_tails))
    lengths = np.concatenate(
        (
            base.lengths,
            np.full(h_tails.size, max_length, dtype=np.int64),
            np.full(h_tails.size, max_length, dtype=np.int64),
        )
    )
    return WeightedDigraph.from_arrays(n, tails, heads, lengths)


def power_law_graph(
    n: int,
    attach: int = 2,
    *,
    max_length: int = 1,
    seed: Optional[int] = None,
) -> WeightedDigraph:
    """Barabási–Albert preferential attachment, both edge orientations."""
    import networkx as nx

    if n <= attach:
        raise GraphError("power_law_graph requires n > attach")
    rng = _rng(seed)
    nxg = nx.barabasi_albert_graph(n, attach, seed=int(rng.integers(0, 2**31)))
    tails, heads = [], []
    for u, v in nxg.edges():
        tails.extend((u, v))
        heads.extend((v, u))
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    lengths = _lengths(rng, tails.size, max_length)
    return WeightedDigraph.from_arrays(n, tails, heads, lengths)


def small_world_graph(
    n: int,
    nearest: int = 4,
    rewire: float = 0.1,
    *,
    max_length: int = 1,
    seed: Optional[int] = None,
) -> WeightedDigraph:
    """Watts–Strogatz small world, both edge orientations.

    High clustering with a few long-range shortcuts: hop-diameter collapses
    to O(log n), so the k-hop problems saturate at small k — a useful
    contrast to grids in the k-sweep benches.
    """
    import networkx as nx

    if nearest >= n:
        raise GraphError("small_world_graph requires nearest < n")
    rng = _rng(seed)
    nxg = nx.watts_strogatz_graph(n, nearest, rewire, seed=int(rng.integers(0, 2**31)))
    tails, heads = [], []
    for u, v in nxg.edges():
        tails.extend((u, v))
        heads.extend((v, u))
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    lengths = _lengths(rng, tails.size, max_length)
    return WeightedDigraph.from_arrays(n, tails, heads, lengths)


def bottleneck_flow_network(
    stages: int,
    width: int,
    *,
    max_capacity: int = 10,
    bottleneck: int = 2,
    seed: Optional[int] = None,
) -> WeightedDigraph:
    """A flow network with a known max-flow value.

    Vertex 0 (source) fans out to ``width`` parallel pipelines of
    ``stages`` stages that reconverge on the sink (last vertex).  One stage
    is a deliberate bottleneck of total capacity ``width * bottleneck``,
    which is therefore the max-flow value (every other stage has strictly
    larger capacity).  Edge lengths carry the capacities.
    """
    if stages < 1 or width < 1:
        raise GraphError("need at least one stage and one pipeline")
    if bottleneck >= max_capacity:
        raise GraphError("bottleneck must be below max_capacity")
    rng = _rng(seed)
    n = 2 + stages * width
    sink = n - 1
    choke_stage = int(rng.integers(0, stages))
    tails, heads, caps = [], [], []

    def vid(stage: int, lane: int) -> int:
        return 1 + stage * width + lane

    for lane in range(width):
        tails.append(0)
        heads.append(vid(0, lane))
        caps.append(max_capacity)
        for stage in range(stages - 1):
            cap = bottleneck if stage + 1 == choke_stage else int(
                rng.integers(bottleneck + 1, max_capacity + 1)
            )
            tails.append(vid(stage, lane))
            heads.append(vid(stage + 1, lane))
            caps.append(cap)
        tails.append(vid(stages - 1, lane))
        heads.append(sink)
        caps.append(max_capacity)
    # entry edges form the bottleneck if the choke stage is stage 0
    if choke_stage == 0:
        for i in range(width):
            caps[i * (stages + 1)] = bottleneck
    return WeightedDigraph.from_arrays(
        n,
        np.asarray(tails, dtype=np.int64),
        np.asarray(heads, dtype=np.int64),
        np.asarray(caps, dtype=np.int64),
    )


def layered_dag(
    layers: int,
    width: int,
    *,
    max_length: int = 1,
    density: float = 0.5,
    seed: Optional[int] = None,
) -> WeightedDigraph:
    """DAG of ``layers`` layers of ``width`` vertices, plus a source vertex.

    Vertex 0 is a source connected to every first-layer vertex; each layer is
    randomly wired to the next with the given density (at least one out-edge
    per vertex so the sink layer is reachable).  Shortest paths from the
    source use exactly one edge per layer, making hop counts deterministic —
    handy for ``k``-hop tests.
    """
    rng = _rng(seed)
    n = 1 + layers * width
    tails, heads = [], []

    def vid(layer: int, i: int) -> int:
        return 1 + layer * width + i

    for i in range(width):
        tails.append(0)
        heads.append(vid(0, i))
    for layer in range(layers - 1):
        for i in range(width):
            targets = np.nonzero(rng.random(width) < density)[0]
            if targets.size == 0:
                targets = rng.integers(0, width, size=1)
            for j in targets:
                tails.append(vid(layer, i))
                heads.append(vid(layer + 1, int(j)))
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    lengths = _lengths(rng, tails.size, max_length)
    return WeightedDigraph.from_arrays(n, tails, heads, lengths)


def path_graph(
    n: int, *, max_length: int = 1, seed: Optional[int] = None
) -> WeightedDigraph:
    """Directed path ``0 -> 1 -> ... -> n-1`` (extremal: L large, m = n-1)."""
    rng = _rng(seed)
    tails = np.arange(n - 1, dtype=np.int64)
    heads = tails + 1
    lengths = _lengths(rng, tails.size, max_length)
    return WeightedDigraph.from_arrays(n, tails, heads, lengths)


def cycle_graph(
    n: int, *, max_length: int = 1, seed: Optional[int] = None
) -> WeightedDigraph:
    """Directed cycle on ``n`` vertices."""
    rng = _rng(seed)
    tails = np.arange(n, dtype=np.int64)
    heads = (tails + 1) % n
    lengths = _lengths(rng, tails.size, max_length)
    return WeightedDigraph.from_arrays(n, tails, heads, lengths)


def star_graph(
    n: int, *, max_length: int = 1, seed: Optional[int] = None
) -> WeightedDigraph:
    """Vertex 0 with an out-edge to each of ``1..n-1`` (L small, degree high)."""
    rng = _rng(seed)
    tails = np.zeros(n - 1, dtype=np.int64)
    heads = np.arange(1, n, dtype=np.int64)
    lengths = _lengths(rng, tails.size, max_length)
    return WeightedDigraph.from_arrays(n, tails, heads, lengths)


def complete_graph(
    n: int, *, max_length: int = 1, seed: Optional[int] = None
) -> WeightedDigraph:
    """Complete digraph ``K_n`` (the worst case assumed by the embedding)."""
    rng = _rng(seed)
    idx = np.arange(n, dtype=np.int64)
    tails = np.repeat(idx, n)
    heads = np.tile(idx, n)
    keep = tails != heads
    tails, heads = tails[keep], heads[keep]
    lengths = _lengths(rng, tails.size, max_length)
    return WeightedDigraph.from_arrays(n, tails, heads, lengths)
