"""Workload substrate: weighted digraphs, generators, and edge-list I/O.

Everything in the evaluation runs on :class:`~repro.workloads.graph.WeightedDigraph`,
a compact CSR-backed directed graph with positive integer edge lengths (the
paper's setting: positive lengths, longest edge ``U``).
"""

from repro.workloads.graph import WeightedDigraph
from repro.workloads.generators import (
    bottleneck_flow_network,
    complete_graph,
    cycle_graph,
    gnp_graph,
    grid_graph,
    layered_dag,
    path_graph,
    power_law_graph,
    road_like_graph,
    small_world_graph,
    star_graph,
)
from repro.workloads.io import read_edge_list, write_edge_list

__all__ = [
    "WeightedDigraph",
    "bottleneck_flow_network",
    "complete_graph",
    "cycle_graph",
    "gnp_graph",
    "grid_graph",
    "layered_dag",
    "path_graph",
    "power_law_graph",
    "road_like_graph",
    "small_world_graph",
    "star_graph",
    "read_edge_list",
    "write_edge_list",
]
