"""A compact weighted directed graph used throughout the reproduction.

The paper's algorithms operate on directed graphs with *positive integer*
edge lengths (Section 3: "graphs with positive edge weights"; Section 4 uses
``U`` for the longest edge).  :class:`WeightedDigraph` stores the graph in
CSR (compressed sparse row) form — contiguous NumPy arrays — so that the
simulation engines and baselines can iterate adjacency without per-edge
Python object overhead, following the vectorization guidance of the
scientific-Python optimization notes.

Vertices are ``0 .. n-1``.  Parallel edges are allowed (the algorithms are
insensitive to them); self-loops are allowed but rejected by the shortest-path
drivers that cannot use them.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["WeightedDigraph"]


class WeightedDigraph:
    """Directed graph with positive integer edge lengths, CSR-backed.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v, length)`` triples.  Lengths must be positive
        integers (``numpy`` integer types accepted).

    Attributes
    ----------
    n : int
        Vertex count.
    m : int
        Edge count.
    indptr, heads, lengths : numpy.ndarray
        CSR adjacency: out-edges of ``u`` are
        ``heads[indptr[u]:indptr[u+1]]`` with lengths
        ``lengths[indptr[u]:indptr[u+1]]``.
    """

    __slots__ = ("n", "m", "indptr", "heads", "lengths", "tails", "_rev", "_key")

    def __init__(self, n: int, edges: Iterable[Tuple[int, int, int]]):
        if n < 0:
            raise GraphError(f"vertex count must be nonnegative, got {n}")
        self.n = int(n)
        edge_list = list(edges)
        self.m = len(edge_list)
        tails = np.empty(self.m, dtype=np.int64)
        heads = np.empty(self.m, dtype=np.int64)
        lengths = np.empty(self.m, dtype=np.int64)
        for i, (u, v, w) in enumerate(edge_list):
            tails[i] = u
            heads[i] = v
            lengths[i] = w
        if self.m:
            if tails.min() < 0 or tails.max() >= n or heads.min() < 0 or heads.max() >= n:
                raise GraphError("edge endpoint out of range")
            if lengths.min() <= 0:
                bad = int(lengths.min())
                raise GraphError(f"edge lengths must be positive integers, got {bad}")
        # Sort by tail to build CSR; stable sort keeps insertion order per tail.
        order = np.argsort(tails, kind="stable")
        self.tails = tails[order]
        self.heads = heads[order]
        self.lengths = lengths[order]
        self.indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(self.indptr, self.tails + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)
        self._rev: Optional[WeightedDigraph] = None
        self._key: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_arrays(
        cls,
        n: int,
        tails: Sequence[int],
        heads: Sequence[int],
        lengths: Sequence[int],
    ) -> "WeightedDigraph":
        """Build from parallel arrays (no per-edge tuple allocation)."""
        tails = np.asarray(tails, dtype=np.int64)
        heads = np.asarray(heads, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if not (tails.shape == heads.shape == lengths.shape):
            raise GraphError("tails/heads/lengths must have equal shapes")
        g = cls.__new__(cls)
        g.n = int(n)
        g.m = int(tails.size)
        if g.n < 0:
            raise GraphError(f"vertex count must be nonnegative, got {n}")
        if g.m:
            if tails.min() < 0 or tails.max() >= n or heads.min() < 0 or heads.max() >= n:
                raise GraphError("edge endpoint out of range")
            if lengths.min() <= 0:
                raise GraphError("edge lengths must be positive integers")
        order = np.argsort(tails, kind="stable")
        g.tails = tails[order]
        g.heads = heads[order]
        g.lengths = lengths[order]
        g.indptr = np.zeros(g.n + 1, dtype=np.int64)
        np.add.at(g.indptr, g.tails + 1, 1)
        np.cumsum(g.indptr, out=g.indptr)
        g._rev = None
        g._key = None
        return g

    @classmethod
    def from_networkx(cls, nxg) -> "WeightedDigraph":
        """Convert a ``networkx`` (Di)Graph with integer ``weight`` attributes.

        Node labels must be ``0..n-1`` integers.  Undirected graphs are
        converted by adding both edge orientations.
        """
        import networkx as nx

        n = nxg.number_of_nodes()
        if set(nxg.nodes()) != set(range(n)):
            raise GraphError("networkx nodes must be labeled 0..n-1")
        edges: List[Tuple[int, int, int]] = []
        directed = nxg.is_directed()
        for u, v, data in nxg.edges(data=True):
            w = int(data.get("weight", 1))
            edges.append((u, v, w))
            if not directed:
                edges.append((v, u, w))
        return cls(n, edges)

    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` with ``weight`` edge attributes."""
        import networkx as nx

        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(self.n))
        for u, v, w in self.edges():
            # parallel edges collapse to the minimum length, which preserves
            # all shortest-path quantities used in this reproduction
            if nxg.has_edge(u, v):
                nxg[u][v]["weight"] = min(nxg[u][v]["weight"], int(w))
            else:
                nxg.add_edge(u, v, weight=int(w))
        return nxg

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(tail, head, length)`` triples in CSR order."""
        for i in range(self.m):
            yield int(self.tails[i]), int(self.heads[i]), int(self.lengths[i])

    def out_edges(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(heads, lengths)`` views of the out-edges of ``u``."""
        lo, hi = self.indptr[u], self.indptr[u + 1]
        return self.heads[lo:hi], self.lengths[lo:hi]

    def out_degree(self, u: int) -> int:
        return int(self.indptr[u + 1] - self.indptr[u])

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees (vectorized bincount over edge heads)."""
        return np.bincount(self.heads, minlength=self.n).astype(np.int64)

    def reverse(self) -> "WeightedDigraph":
        """Graph with all edges reversed (cached)."""
        if self._rev is None:
            self._rev = WeightedDigraph.from_arrays(
                self.n, self.heads, self.tails, self.lengths
            )
        return self._rev

    def max_length(self) -> int:
        """The paper's ``U``: length of the longest edge (0 if no edges)."""
        return int(self.lengths.max()) if self.m else 0

    def min_length(self) -> int:
        """Length of the shortest edge (0 if no edges)."""
        return int(self.lengths.min()) if self.m else 0

    def max_out_degree(self) -> int:
        if self.n == 0:
            return 0
        return int(np.max(np.diff(self.indptr)))

    def has_self_loops(self) -> bool:
        return bool(np.any(self.tails == self.heads))

    def scaled(self, factor: int) -> "WeightedDigraph":
        """Return a copy with every edge length multiplied by ``factor``.

        Scaling preserves shortest-path structure exactly while making the
        minimum edge length large enough to hide circuit latencies (Sections
        4.1 and 4.4 both use this device).
        """
        if factor < 1:
            raise GraphError(f"scale factor must be >= 1, got {factor}")
        return WeightedDigraph.from_arrays(
            self.n, self.tails, self.heads, self.lengths * int(factor)
        )

    def structure_key(self) -> str:
        """Content fingerprint of ``(n, tails, heads, lengths)``, cached.

        Two graphs share a key iff their CSR edge arrays are identical —
        the invariant the :mod:`repro.core.cache` build cache relies on to
        reuse compiled networks across queries of the same graph.

        Edge **weights are part of the fingerprint** (the ``lengths``
        array hashes alongside the topology): the Section-3 SSSP network
        encodes each edge length as a synapse *delay*, so two graphs that
        differ in a single weight compile to different networks and must
        never share a :class:`~repro.core.cache.BuildCache` entry.  A
        single reweight therefore changes the structure key, which is what
        lets the dynamic layer (:mod:`repro.dynamic`) scope cache
        invalidation to exactly the mutated version.
        """
        if self._key is None:
            from repro.core.cache import structure_fingerprint

            self._key = structure_fingerprint(
                self.n, self.tails, self.heads, self.lengths
            )
        return self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedDigraph):
            return NotImplemented
        if self.n != other.n or self.m != other.m:
            return False
        a = sorted(zip(self.tails.tolist(), self.heads.tolist(), self.lengths.tolist()))
        b = sorted(zip(other.tails.tolist(), other.heads.tolist(), other.lengths.tolist()))
        return a == b

    def __hash__(self) -> int:  # graphs are mutable-free but large; identity hash
        return id(self)

    def __repr__(self) -> str:
        return f"WeightedDigraph(n={self.n}, m={self.m}, U={self.max_length()})"
