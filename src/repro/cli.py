"""Command-line interface: run the paper's algorithms on edge-list files.

Examples::

    python -m repro generate --kind gnp --n 100 --p 0.05 --max-length 10 \
        --seed 7 --out graph.edges
    python -m repro sssp graph.edges --source 0 --algorithm pseudo
    python -m repro khop graph.edges --source 0 --k 4 --algorithm ttl
    python -m repro approx graph.edges --source 0 --k 4
    python -m repro compare graph.edges --source 0 --k 4 --registers 4
    python -m repro chaos worker-crash --requests 64 --seed 0

``compare`` prints a Table-1-style report for the given instance: both
halves (RAM ops and DISTANCE movement vs neuromorphic ticks, native and
embedding-charged).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.algorithms import (
    spiking_khop_approx,
    spiking_khop_poly,
    spiking_khop_pseudo,
    spiking_sssp_poly,
    spiking_sssp_pseudo,
)
from repro.analysis import ComparisonRow, render_table
from repro.baselines import bellman_ford_khop, dijkstra
from repro.core.cost import CostReport
from repro.distance_model import (
    bellman_ford_khop_distance,
    dijkstra_distance,
)
from repro.embedding import embedded_sssp
from repro.workloads import (
    complete_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    power_law_graph,
    read_edge_list,
    road_like_graph,
    write_edge_list,
)
from repro.workloads.io import read_dimacs, write_dimacs


def _read_graph(path: str):
    """Edge-list by default; 9th-DIMACS format for ``.gr`` files."""
    if str(path).endswith(".gr"):
        return read_dimacs(path)
    return read_edge_list(path)


def _write_graph(graph, path: str) -> None:
    if str(path).endswith(".gr"):
        write_dimacs(graph, path)
    else:
        write_edge_list(graph, path)

__all__ = ["main", "build_parser"]

_GENERATORS = {
    "gnp": lambda a: gnp_graph(
        a.n, a.p, max_length=a.max_length, seed=a.seed, ensure_source_reaches=True
    ),
    "grid": lambda a: grid_graph(a.rows, a.cols, max_length=a.max_length, seed=a.seed),
    "road": lambda a: road_like_graph(
        a.rows, a.cols, max_length=a.max_length, seed=a.seed
    ),
    "path": lambda a: path_graph(a.n, max_length=a.max_length, seed=a.seed),
    "complete": lambda a: complete_graph(a.n, max_length=a.max_length, seed=a.seed),
    "powerlaw": lambda a: power_law_graph(a.n, max_length=a.max_length, seed=a.seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Neuromorphic graph algorithms (SPAA 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a random graph to an edge list")
    gen.add_argument("--kind", choices=sorted(_GENERATORS), default="gnp")
    gen.add_argument("--n", type=int, default=50)
    gen.add_argument("--p", type=float, default=0.1)
    gen.add_argument("--rows", type=int, default=8)
    gen.add_argument("--cols", type=int, default=8)
    gen.add_argument("--max-length", type=int, default=10)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)

    def graph_cmd(name: str, help_: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_)
        p.add_argument("graph", help="edge-list file")
        p.add_argument("--source", type=int, default=0)
        p.add_argument("--target", type=int, default=None)
        p.add_argument(
            "--json",
            action="store_true",
            help="emit one JSON document instead of the human-readable report",
        )
        return p

    sssp = graph_cmd("sssp", "single-source shortest paths")
    sssp.add_argument(
        "--algorithm",
        choices=("pseudo", "poly", "crossbar"),
        default="pseudo",
    )

    khop = graph_cmd("khop", "k-hop shortest paths")
    khop.add_argument("--k", type=int, required=True)
    khop.add_argument("--algorithm", choices=("ttl", "poly"), default="ttl")

    approx = graph_cmd("approx", "(1+eps)-approximate k-hop shortest paths")
    approx.add_argument("--k", type=int, required=True)
    approx.add_argument("--epsilon", type=float, default=None)

    compare = graph_cmd("compare", "Table-1-style comparison on an instance")
    compare.add_argument("--k", type=int, default=4)
    compare.add_argument("--registers", type=int, default=4)

    info = sub.add_parser(
        "info", help="graph and compiled-network statistics + chip fit"
    )
    info.add_argument("graph", help="edge-list file")

    report = sub.add_parser(
        "report", help="write a full Markdown advantage report for an instance"
    )
    report.add_argument("graph", help="edge-list file")
    report.add_argument("--source", type=int, default=0)
    report.add_argument("--k", type=int, default=4)
    report.add_argument("--registers", type=int, default=4)
    report.add_argument("--out", default=None, help="output file (default: stdout)")

    faults = sub.add_parser(
        "faults", help="degradation sweep: answer quality vs transient-fault rate"
    )
    faults.add_argument("graph", help="edge-list file")
    faults.add_argument(
        "--rates",
        default="0,0.01,0.05,0.1,0.2",
        help="comma-separated fault rates in [0, 1]",
    )
    faults.add_argument("--trials", type=int, default=20)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument(
        "--algorithms",
        default="sssp,max,matvec",
        help="comma-separated subset of sssp,max,matvec",
    )
    faults.add_argument(
        "--out", default=None, help="write a Markdown table here (default: text to stdout)"
    )

    prof = sub.add_parser(
        "profile",
        help="profile an algorithm: phase timings, spike counters, DISTANCE costs",
    )
    prof.add_argument(
        "algorithm",
        choices=("sssp", "sssp_poly", "khop", "khop_poly", "approx", "matvec"),
    )
    prof.add_argument(
        "graph",
        nargs="?",
        default=None,
        help="edge-list file (default: a seeded G(n, p) instance)",
    )
    prof.add_argument("--source", type=int, default=0)
    prof.add_argument("--k", type=int, default=4)
    prof.add_argument(
        "--engine", choices=("event", "dense", "sparse"), default="event"
    )
    prof.add_argument("--registers", type=int, default=4)
    prof.add_argument("--n", type=int, default=200, help="generated-graph size")
    prof.add_argument("--p", type=float, default=0.05, help="generated-graph density")
    prof.add_argument("--max-length", type=int, default=10)
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument(
        "--trace", default=None, help="write a Chrome trace_event JSON here"
    )

    lint = sub.add_parser(
        "lint",
        help="static analysis: lint networks and certify theorem budgets",
    )
    lint.add_argument(
        "graphs",
        nargs="*",
        help="edge-list files to lint as compiled Section-3 / k-hop networks",
    )
    lint.add_argument(
        "--golden",
        default=None,
        help="directory of golden fixtures whose embedded graphs to lint",
    )
    lint.add_argument("--k", type=int, default=4, help="k for k-hop certification")
    lint.add_argument(
        "--json", action="store_true", help="emit one JSON document (for CI)"
    )
    lint.add_argument("--out", default=None, help="also write the JSON report here")
    lint.add_argument(
        "--no-circuits",
        action="store_true",
        help="skip the circuit-library certification grid",
    )
    lint.add_argument(
        "--temporal",
        action="store_true",
        help="also print per-network spike-time intervals and quiescence bounds",
    )

    cert = sub.add_parser(
        "certify",
        help="certify theorem budgets (size + runtime) and emit certify_report.json",
    )
    cert.add_argument(
        "graphs",
        nargs="*",
        help="edge-list files to certify as compiled Section-3 / k-hop networks",
    )
    cert.add_argument(
        "--golden",
        default=None,
        help="directory of golden fixtures whose embedded graphs (and pinned "
        "budgets) to certify against",
    )
    cert.add_argument("--k", type=int, default=4, help="k for k-hop certification")
    cert.add_argument(
        "--json", action="store_true", help="emit one JSON document (for CI)"
    )
    cert.add_argument("--out", default=None, help="also write the JSON report here")
    cert.add_argument(
        "--no-circuits",
        action="store_true",
        help="skip the circuit-library certification grid",
    )
    cert.add_argument(
        "--temporal",
        action="store_true",
        help="also print per-network spike-time intervals and quiescence bounds",
    )

    serve = sub.add_parser(
        "serve",
        help="serve JSONL graph queries with micro-batch coalescing",
    )
    serve.add_argument(
        "graphs",
        nargs="*",
        help="graphs to make resident, as 'id=path' (or bare paths, id = stem; "
        "default: built-in grid + G(n,p) pair)",
    )
    serve.add_argument(
        "--requests",
        default="-",
        help="JSONL request file ('-' = stdin); one QueryRequest document per line",
    )
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--max-batch", type=int, default=16)
    serve.add_argument("--linger-ms", type=float, default=2.0)
    serve.add_argument("--queue-limit", type=int, default=256)
    serve.add_argument(
        "--net",
        action="store_true",
        help="serve over a TCP socket (JSONL frames) instead of a request file",
    )
    serve.add_argument("--host", default="127.0.0.1", help="--net bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="--net bind port (0 = pick a free port)"
    )
    serve.add_argument(
        "--process-workers",
        type=int,
        default=0,
        help="run N worker processes holding resident networks (0 = threads only)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition resident graphs into K shards routed by the fixpoint router",
    )
    serve.add_argument(
        "--chaos-kill-batch",
        type=int,
        default=None,
        metavar="SEQ",
        help="SIGKILL the worker process serving batch #SEQ (recovery smoke tests)",
    )
    serve.add_argument(
        "--stats", action="store_true", help="print server stats JSON to stderr on exit"
    )

    lg = sub.add_parser(
        "loadgen",
        help="closed-loop serving benchmark: coalesced vs naive loop",
    )
    lg.add_argument(
        "graphs",
        nargs="*",
        help="graphs to query, as 'id=path' (default: built-in grid + G(n,p) pair)",
    )
    lg.add_argument("--requests", type=int, default=200)
    lg.add_argument("--clients", type=int, default=8)
    lg.add_argument("--depth", type=int, default=32, help="in-flight requests per client")
    lg.add_argument("--workers", type=int, default=1)
    lg.add_argument("--max-batch", type=int, default=64)
    lg.add_argument("--linger-ms", type=float, default=20.0)
    lg.add_argument("--queue-limit", type=int, default=1024)
    lg.add_argument("--rate", type=float, default=None, help="open-loop arrival rate (req/s)")
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument(
        "--mix",
        default="sssp=0.7,khop=0.2,apsp=0.1",
        help="query mix weights, e.g. 'sssp=0.6,khop=0.4'",
    )
    lg.add_argument("--drop-p", type=float, default=0.0, help="SpikeDrop fault probability")
    lg.add_argument("--fault-seed", type=int, default=0)
    lg.add_argument("--skip-naive", action="store_true", help="skip the naive baseline")
    lg.add_argument(
        "--no-verify", action="store_true", help="skip the served-vs-solo equality check"
    )
    lg.add_argument(
        "--ops",
        default=None,
        metavar="STREAM.jsonl",
        help="replay a repro.dynamic.stream op log instead of the closed loop "
        "(graphs become dynamic residents; reports per-op-type p50/p99)",
    )
    lg.add_argument(
        "--net",
        default=None,
        metavar="HOST:PORT",
        help="drive the workload over a socket against a running "
        "'repro serve --net' (graphs must match the server's residents)",
    )
    lg.add_argument(
        "--connections", type=int, default=4, help="--net client connections"
    )
    lg.add_argument(
        "--compare-pools",
        action="store_true",
        help="add thread-pool vs process-pool vs sharded rows to the report",
    )
    lg.add_argument("--out", default="BENCH_serving.json")

    st = sub.add_parser(
        "stream",
        help="generate a replayable mixed read/write op stream (JSONL)",
    )
    st.add_argument(
        "graphs",
        nargs="*",
        help="graphs to target, as 'id=path' (default: built-in grid + G(n,p) pair)",
    )
    st.add_argument("--ops", type=int, default=500, help="number of ops")
    st.add_argument("--seed", type=int, default=0)
    st.add_argument(
        "--write-fraction", type=float, default=0.25, help="fraction of ops that mutate"
    )
    st.add_argument("--skew", type=float, default=1.2, help="Zipf exponent for read keys")
    st.add_argument("--out", required=True, help="output JSONL path")

    chaos = sub.add_parser(
        "chaos",
        help="replay a deterministic fault scenario against the query server",
    )
    chaos.add_argument(
        "scenario",
        nargs="?",
        default="worker-crash",
        help="named scenario (see --list); default: worker-crash",
    )
    chaos.add_argument(
        "graphs",
        nargs="*",
        help="graphs to query, as 'id=path' (default: built-in grid + G(n,p) pair)",
    )
    chaos.add_argument("--list", action="store_true", help="list scenarios and exit")
    chaos.add_argument("--requests", type=int, default=64)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--workers", type=int, default=None, help="override scenario worker count")
    chaos.add_argument("--max-batch", type=int, default=4)
    chaos.add_argument("--linger-ms", type=float, default=5.0)
    chaos.add_argument(
        "--no-verify", action="store_true", help="skip the served-vs-solo equality check"
    )
    chaos.add_argument("--out", default="BENCH_chaos.json")

    return parser


def _print_cost(cost: CostReport) -> None:
    print(f"algorithm:        {cost.algorithm}")
    print(f"simulated ticks:  {cost.simulated_ticks}")
    print(f"loading ticks:    {cost.loading_ticks}")
    print(f"total time:       {cost.total_time}")
    print(f"neurons:          {cost.neuron_count}")
    print(f"synapses:         {cost.synapse_count}")
    print(f"spikes:           {cost.spike_count}")
    if cost.rounds is not None:
        print(f"rounds x length:  {cost.rounds} x {cost.round_length}")


def _print_distances(dist: np.ndarray, target: Optional[int]) -> None:
    if target is not None:
        d = dist[target]
        print(f"distance to {target}: {d if d >= 0 else 'unreachable'}")
    else:
        print(f"distances: {dist.tolist()}")


def _emit_query_json(command: str, algorithm: str, g, args, res, **extra) -> None:
    """Machine-readable rendering of one graph-query result (``--json``)."""
    import json

    doc = {
        "command": command,
        "algorithm": algorithm,
        "graph": {"n": g.n, "m": g.m, "max_length": g.max_length()},
        "source": args.source,
        "target": args.target,
        "dist": res.dist.tolist(),
        "cost": res.cost.to_dict(),
    }
    if args.target is not None:
        d = res.dist[args.target]
        doc["distance_to_target"] = None if d < 0 else int(d)
    doc.update(extra)
    print(json.dumps(doc))


def _cmd_profile(args) -> int:
    """``repro profile``: run one algorithm under the telemetry profiler."""
    from repro.nga.matvec import matrix_power_nga
    from repro.nga.semiring import MIN_PLUS
    from repro.telemetry import Profiler, TraceRecorder

    if args.graph is not None:
        g = _read_graph(args.graph)
    else:
        g = gnp_graph(
            args.n,
            args.p,
            max_length=args.max_length,
            seed=args.seed,
            ensure_source_reaches=True,
        )
    print(f"graph: n={g.n} m={g.m} U={g.max_length()}")

    recorder = None
    if args.trace:
        if args.algorithm != "sssp":
            print("note: --trace is only supported for 'sssp'; ignoring")
        else:
            recorder = TraceRecorder()

    profiler = Profiler(args.algorithm)
    if args.algorithm == "sssp":
        res = profiler.run(
            spiking_sssp_pseudo, g, args.source, engine=args.engine, hooks=recorder
        )
    elif args.algorithm == "sssp_poly":
        res = profiler.run(spiking_sssp_poly, g, args.source)
    elif args.algorithm == "khop":
        res = profiler.run(spiking_khop_pseudo, g, args.source, args.k)
    elif args.algorithm == "khop_poly":
        res = profiler.run(spiking_khop_poly, g, args.source, args.k)
    elif args.algorithm == "approx":
        res = profiler.run(spiking_khop_approx, g, args.source, args.k)
    else:  # matvec
        res = profiler.run(matrix_power_nga, g, MIN_PLUS, {args.source: 0}, args.k)
    cost = res.cost
    report = profiler.report(cost=cost)
    print()
    print(report.render())

    from repro.core.cache import default_build_cache

    bc = default_build_cache.stats()
    print()
    print(
        f"build cache: {bc['entries']} entries, {bc['hits']} hits, "
        f"{bc['misses']} misses, {bc['evictions']} evictions, "
        f"{bc['invalidations']} invalidations, {bc['seeds']} seeds"
    )

    # lint the network the profiled algorithm just compiled (a build-cache
    # hit), so structural health appears next to the cache stats it explains
    if args.algorithm == "sssp":
        from repro.algorithms.sssp_pseudo import sssp_network
        from repro.staticcheck import lint_network

        net, node_ids = sssp_network(g)
        lint = lint_network(
            net.compile(),
            subject="sssp network",
            entries=[node_ids[args.source]],
        )
        print(lint.summary())

        from repro.staticcheck.temporal import analyze_temporal

        analysis = analyze_temporal(
            net.compile(), stimulus=[node_ids[args.source]]
        )
        print(analysis.summary())

    # DISTANCE-model comparison: data-movement cost of the conventional
    # baseline vs the neuromorphic totals (native and embedding-charged)
    if args.algorithm in ("khop", "khop_poly", "approx"):
        _, mv = bellman_ford_khop_distance(
            g, args.source, args.k, num_registers=args.registers
        )
        label = f"{args.k}-hop Bellman-Ford"
    else:
        _, mv = dijkstra_distance(g, args.source, num_registers=args.registers)
        label = "Dijkstra"
    print()
    print(f"DISTANCE cost ({label}, c={args.registers} registers): {mv:,}")
    print(f"neuromorphic total time (native):            {cost.total_time:,}")
    print(
        "neuromorphic total time (embedding-charged): "
        f"{cost.with_embedding(g.n).total_time:,}"
    )
    if recorder is not None:
        recorder.to_chrome_trace(args.trace)
        print(f"wrote Chrome trace ({recorder.emitted} events) to {args.trace}")
    if not report.consistent:
        print("warning: measured counters disagree with the cost report")
        return 1
    return 0


def _cmd_lint(args) -> int:
    """``repro lint``: structural lint + theorem-budget certification.

    Certifies the whole circuit library against the paper's resource
    budgets, then lints and certifies the compiled Section-3 SSSP (both
    one-shot constructions) and unit-delay k-hop networks of every given
    graph — edge-list files and/or the graphs embedded in golden
    fixtures.  Exit status 1 on any error-severity diagnostic or budget
    violation, which is what makes it a CI gate.
    """
    import json
    import os

    from repro.staticcheck import (
        CertificationReport,
        certify_khop,
        certify_library,
        certify_sssp,
    )
    from repro.workloads.graph import WeightedDigraph

    report = CertificationReport()
    if not args.no_circuits:
        lib = certify_library()
        report.entries.extend(lib.entries)
        report.lint_reports.extend(lib.lint_reports)

    named_graphs: List = []
    for path in args.graphs:
        named_graphs.append((path, _read_graph(path), None))
    if args.golden:
        for name in sorted(os.listdir(args.golden)):
            if not name.endswith(".json"):
                continue
            with open(os.path.join(args.golden, name), encoding="utf-8") as fh:
                fixture = json.load(fh)
            gspec = fixture.get("graph")
            if not isinstance(gspec, dict) or "edges" not in gspec:
                continue
            g = WeightedDigraph(
                int(gspec["n"]), [tuple(e) for e in gspec["edges"]]
            )
            named_graphs.append((f"{args.golden}/{name}", g, fixture))

    budget_diffs: List[str] = []
    temporal_summaries: List[dict] = []
    for label, g, fixture in named_graphs:
        for use_gadgets in (False, True):
            entry, lint = certify_sssp(g, use_gadgets=use_gadgets)
            entry = _relabel_entry(entry, f"{entry.kind}[{label}]")
            report.entries.append(entry)
            report.lint_reports.append(lint)
        entry, lint = certify_khop(g, args.k)
        entry = _relabel_entry(entry, f"{entry.kind}[{label}]")
        report.entries.append(entry)
        report.lint_reports.append(lint)
        # Golden-pinned runtime budgets: a settle/quiescence/runtime drift
        # fails this gate exactly like a size regression.
        if fixture is not None and isinstance(fixture.get("budgets"), dict):
            pinned = fixture["budgets"]
            fresh = _budget_payload(g, int(pinned.get("k", args.k)))
            for kind in sorted(set(pinned) | set(fresh)):
                if kind == "k":
                    continue
                if pinned.get(kind) != fresh.get(kind):
                    budget_diffs.append(
                        f"{label}: {kind} budgets drifted\n"
                        f"    pinned: {json.dumps(pinned.get(kind), sort_keys=True)}\n"
                        f"    now:    {json.dumps(fresh.get(kind), sort_keys=True)}"
                    )
        if getattr(args, "temporal", False):
            from repro.algorithms.sssp_pseudo import sssp_network
            from repro.staticcheck.temporal import analyze_temporal

            net, node_ids = sssp_network(g)
            analysis = analyze_temporal(
                net.compile(), stimulus=list(node_ids)
            )
            temporal_summaries.append(
                {"subject": f"sssp[{label}]", **analysis.to_dict()}
            )

    doc = report.to_dict()
    if budget_diffs:
        doc["budget_regressions"] = budget_diffs
    if temporal_summaries:
        doc["temporal"] = temporal_summaries
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    if args.json:
        print(json.dumps(doc))
    else:
        print(report.render())
        for summary in temporal_summaries:
            print(
                f"temporal {summary['subject']}: "
                f"{summary['live']}/{summary['neurons']} live, "
                f"last spike <= {summary['last_spike_bound']}, "
                f"quiescent by {summary['quiescence_bound']}"
                if summary["bounded"]
                else f"temporal {summary['subject']}: "
                f"{summary['unbounded']} neuron(s) with no certified bound"
            )
        for diff in budget_diffs:
            print(f"golden budget regression: {diff}")
        bad_lints = [r for r in report.lint_reports if not r.ok]
        for r in bad_lints:
            print()
            print(r.render())
        if args.out:
            print(f"wrote certification report to {args.out}")
    return 0 if report.ok and not budget_diffs else 1


def _budget_payload(g, k: int) -> dict:
    """The certifier measurements golden fixtures pin for one graph.

    Shared by ``tools/gen_golden.py`` (which embeds it in each fixture)
    and ``repro lint --golden`` / ``repro certify --golden`` (which
    recompute and diff it), so a settle/quiescence/runtime regression
    fails the same gate as a raster drift.
    """
    from repro.staticcheck.certifier import certify_khop, certify_sssp

    def entry_payload(e) -> dict:
        return {
            "neurons": e.neurons,
            "synapses": e.synapses,
            "runtime": e.runtime,
            "settle": e.settle,
            "quiescence": e.quiescence,
            "budget": e.budget.to_dict(),
        }

    out: dict = {"k": int(k)}
    for use_gadgets in (False, True):
        entry, _ = certify_sssp(g, use_gadgets=use_gadgets)
        out[entry.kind] = entry_payload(entry)
    entry, _ = certify_khop(g, k)
    out[entry.kind] = entry_payload(entry)
    return out


def _relabel_entry(entry, kind: str):
    """Return ``entry`` with its ``kind`` replaced (frozen dataclass copy)."""
    import dataclasses

    return dataclasses.replace(entry, kind=kind)


def _parse_resident_graphs(specs: List[str]) -> dict:
    """Parse ``id=path`` (or bare path) arguments into ``{id: graph}``."""
    import os

    graphs = {}
    for spec in specs:
        if "=" in spec:
            gid, path = spec.split("=", 1)
        else:
            path = spec
            gid = os.path.splitext(os.path.basename(path))[0]
        graphs[gid] = _read_graph(path)
    return graphs


def _parse_mix(text: str) -> dict:
    mix = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        kind, _, weight = part.partition("=")
        mix[kind.strip()] = float(weight) if weight else 1.0
    return mix


def _default_service_graphs() -> dict:
    """The built-in resident pair shared by serve/loadgen/stream defaults."""
    return {
        "grid": grid_graph(10, 10, max_length=7, seed=2),
        "gnp": gnp_graph(96, 0.05, max_length=9, seed=1),
    }


def _build_query_server(args, graphs):
    """Construct the QueryServer (+ optional process pool) the serve modes share.

    Returns ``(server, pool)``; the caller owns closing the pool.
    """
    from repro.service import QueryServer

    pool = None
    chaos = None
    if args.process_workers > 0:
        from repro.service.net import ProcessWorkerPool

        pool = ProcessWorkerPool(workers=args.process_workers)
        if args.chaos_kill_batch is not None:
            from repro.service.chaos import ChaosPolicy

            chaos = ChaosPolicy(kill_batches=(int(args.chaos_kill_batch),))
    server = QueryServer(
        workers=args.workers,
        max_batch=args.max_batch,
        linger_s=args.linger_ms / 1000.0,
        queue_limit=args.queue_limit,
        process_pool=pool,
        chaos=chaos,
    )
    for gid, g in graphs.items():
        if args.shards > 1:
            server.register_sharded_graph(gid, g, min(args.shards, g.n))
        else:
            server.register_graph(gid, g)
    return server, pool


class _ServeInterrupt(BaseException):
    """Raised by the serve signal handler to break out of the submit loop.

    BaseException so the rider-protecting ``except Exception`` guards in
    the submit path cannot swallow a delivered SIGINT/SIGTERM.
    """


def _cmd_serve(args) -> int:
    """``repro serve``: answer JSONL queries from a file, stdin, or a socket.

    Exit-code contract (both modes): 0 on success, 1 if any request
    failed, ``128 + signum`` after a graceful SIGINT/SIGTERM drain —
    every request admitted before the signal still gets its answer line.
    """
    import json
    import signal

    graphs = (
        _parse_resident_graphs(args.graphs)
        if args.graphs
        else _default_service_graphs()
    )
    if args.net:
        return _cmd_serve_net(args, graphs)

    from repro.errors import ReproError
    from repro.service import request_from_dict

    server, pool = _build_query_server(args, graphs)

    caught = [0]

    def _flag_handler(signum, frame) -> None:
        caught[0] = signum

    def _raise_handler(signum, frame) -> None:
        caught[0] = signum
        # Later signals during the drain only re-flag; the drain finishes.
        signal.signal(signal.SIGINT, _flag_handler)
        signal.signal(signal.SIGTERM, _flag_handler)
        raise _ServeInterrupt()

    previous = {
        sig: signal.signal(sig, _raise_handler)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }

    failures = 0
    try:
        if args.requests == "-":
            fh = sys.stdin
            close_fh = False
        else:
            fh = open(args.requests, encoding="utf-8")
            close_fh = True
        try:
            with server:
                # submit everything first so concurrent requests can
                # coalesce, then collect in input order; a signal breaks
                # the submit loop and drains what was already admitted
                pending = []
                try:
                    for lineno, line in enumerate(fh, 1):
                        line = line.strip()
                        if not line or line.startswith("#"):
                            continue
                        try:
                            ticket = server.submit(
                                request_from_dict(json.loads(line))
                            )
                        except (ReproError, json.JSONDecodeError) as exc:
                            pending.append(
                                (lineno, None, f"{type(exc).__name__}: {exc}")
                            )
                            continue
                        pending.append((lineno, ticket, None))
                except _ServeInterrupt:
                    pass
                for lineno, ticket, error in pending:
                    if ticket is None:
                        failures += 1
                        print(
                            json.dumps(
                                {"line": lineno, "status": "rejected", "error": error}
                            )
                        )
                        continue
                    result = ticket.result(timeout=300.0)
                    if not result.ok:
                        failures += 1
                    print(json.dumps(result.to_dict()))
        finally:
            if close_fh:
                fh.close()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        if pool is not None:
            pool.close()
    if args.stats:
        print(json.dumps(server.stats()["metrics"], indent=2), file=sys.stderr)
    if caught[0]:
        return 128 + caught[0]
    return 1 if failures else 0


def _cmd_serve_net(args, graphs) -> int:
    """``repro serve --net``: asyncio JSONL socket front end."""
    import asyncio
    import json

    from repro.service.net import NetServer

    server, pool = _build_query_server(args, graphs)
    server.start()
    net = NetServer(server, host=args.host, port=args.port)

    async def _run() -> int:
        await net.start()
        # The parse-friendly startup line: tests and the CI smoke read the
        # bound port (0 = ephemeral) from here.
        print(f"listening on {net.host}:{net.port}", flush=True)
        return await net.run()

    try:
        signum = asyncio.run(_run())
    finally:
        if pool is not None:
            pool.close()
    if args.stats:
        stats = dict(net.stats())
        stats["server"] = server.stats()["metrics"]
        print(json.dumps(stats, indent=2), file=sys.stderr)
    return 128 + signum if signum else 0


def _cmd_loadgen(args) -> int:
    """``repro loadgen``: serving benchmark, writes BENCH_serving.json."""
    import json

    from repro.service import run_loadgen

    if args.graphs:
        graphs = _parse_resident_graphs(args.graphs)
    else:
        graphs = _default_service_graphs()
    if args.ops is not None:
        return _loadgen_replay_ops(args, graphs)
    if args.net is not None or args.compare_pools:
        return _loadgen_net(args, graphs)
    fault_spec = None
    if args.drop_p:
        fault_spec = {"drop_p": args.drop_p, "seed": args.fault_seed}
    report = run_loadgen(
        graphs,
        n_requests=args.requests,
        clients=args.clients,
        depth=args.depth,
        workers=args.workers,
        max_batch=args.max_batch,
        linger_s=args.linger_ms / 1000.0,
        queue_limit=args.queue_limit,
        rate=args.rate,
        seed=args.seed,
        mix=_parse_mix(args.mix),
        fault_spec=fault_spec,
        verify=not args.no_verify,
        skip_naive=args.skip_naive,
    )
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    s = report["serving"]
    print(f"served {args.requests} requests: {s['ok']} ok, {s['errors']} errors")
    print(
        f"throughput:  {s['throughput_rps']} req/s "
        f"(p50 {s['latency_p50_s'] * 1000:.1f} ms, p99 {s['latency_p99_s'] * 1000:.1f} ms)"
    )
    print(
        f"batches:     {s['batches']} ({s['coalesced_batches']} coalesced, "
        f"mean occupancy {s['mean_batch_occupancy']})"
    )
    if report["naive"] is not None:
        print(
            f"naive loop:  {report['naive']['throughput_rps']} req/s "
            f"-> speedup {report['speedup']}x"
        )
    if report["equality"]["checked"]:
        print(f"equality:    {report['equality']['mismatches']} mismatches")
    print(f"wrote {args.out}")
    if s["errors"] or report["equality"]["mismatches"]:
        return 1
    return 0


def _loadgen_net(args, graphs) -> int:
    """``repro loadgen --net`` / ``--compare-pools``: the netbench report."""
    import json

    from repro.service.net.bench import (
        NET_BENCH_SCHEMA,
        run_net_loadgen,
        run_pool_comparison,
    )

    report: dict = {"schema": NET_BENCH_SCHEMA, "net": None, "pools": None}
    failed = False
    if args.net is not None:
        host, _, port = args.net.rpartition(":")
        net_report = run_net_loadgen(
            host or "127.0.0.1",
            int(port),
            graphs,
            n_requests=args.requests,
            connections=args.connections,
            depth=args.depth,
            seed=args.seed,
            mix=_parse_mix(args.mix),
            verify=not args.no_verify,
        )
        report["net"] = net_report
        print(
            f"net {net_report['target']}: {net_report['ok']} ok / "
            f"{net_report['requests']} requests at "
            f"{net_report['throughput_rps']} req/s "
            f"(p50 {net_report['latency_p50_s'] * 1000:.1f} ms, "
            f"p99 {net_report['latency_p99_s'] * 1000:.1f} ms, "
            f"{net_report['coalesced_answers']} coalesced answers)"
        )
        failed = bool(
            net_report["errors"] or net_report["equality"]["mismatches"]
        )
    if args.compare_pools:
        pools = run_pool_comparison(verify=not args.no_verify)
        report["pools"] = pools
        for name, row in pools["rows"].items():
            extra = ""
            if "speedup_vs_thread" in row:
                extra = f"  ({row['speedup_vs_thread']}x vs threads)"
            print(
                f"{name:13s} {row['throughput_rps']:>8} req/s  "
                f"p50 {row['latency_p50_s'] * 1000:7.1f} ms  "
                f"p99 {row['latency_p99_s'] * 1000:7.1f} ms{extra}"
            )
        print(f"cpu_count: {pools['cpu_count']}")
        failed = failed or bool(pools["equality"]["mismatches"])
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 1 if failed else 0


def _loadgen_replay_ops(args, graphs) -> int:
    """``repro loadgen --ops``: replay a recorded op stream on dynamic residents."""
    import json

    from repro.dynamic.stream import read_stream, run_stream_replay

    ops = read_stream(args.ops)
    report = run_stream_replay(
        graphs,
        ops,
        workers=args.workers,
        max_batch=args.max_batch,
        linger_s=args.linger_ms / 1000.0,
        queue_limit=args.queue_limit,
    )
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(f"replayed {report['ops']} ops: {report['completed']} completed, "
          f"{report['errors']} errors")
    for op_type, row in report["per_type"].items():
        print(
            f"  {op_type:12s} {row['count']:5d} ops  "
            f"p50 {row['p50_s'] * 1000:7.2f} ms  p99 {row['p99_s'] * 1000:7.2f} ms"
        )
    for gid, version in sorted(report["final_versions"].items()):
        print(f"  {gid}: final version {version}")
    print(f"wrote {args.out}")
    return 1 if report["errors"] else 0


def _cmd_stream(args) -> int:
    """``repro stream``: generate a replayable JSONL op stream."""
    from repro.dynamic.stream import generate_stream, write_stream

    if args.graphs:
        graphs = _parse_resident_graphs(args.graphs)
    else:
        graphs = {
            "grid": grid_graph(10, 10, max_length=7, seed=2),
            "gnp": gnp_graph(96, 0.05, max_length=9, seed=1),
        }
    ops = generate_stream(
        graphs,
        args.ops,
        seed=args.seed,
        write_fraction=args.write_fraction,
        skew=args.skew,
    )
    n = write_stream(ops, args.out)
    from collections import Counter

    counts = Counter(op["type"] for op in ops)
    mix = ", ".join(f"{t}={c}" for t, c in sorted(counts.items()))
    print(f"wrote {n} ops over {len(graphs)} graphs to {args.out}")
    print(f"mix: {mix}")
    return 0


def _cmd_chaos(args) -> int:
    """``repro chaos``: deterministic recovery harness, writes BENCH_chaos.json."""
    import json

    from repro.service import SCENARIOS, run_chaos

    if args.list:
        for name in sorted(SCENARIOS):
            print(f"{name:15s} {SCENARIOS[name]['description']}")
        return 0
    graphs = _parse_resident_graphs(args.graphs) if args.graphs else None
    report = run_chaos(
        args.scenario,
        graphs=graphs,
        n_requests=args.requests,
        seed=args.seed,
        workers=args.workers,
        max_batch=args.max_batch,
        linger_s=args.linger_ms / 1000.0,
        verify=not args.no_verify,
    )
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    o, sup = report["outcome"], report["supervisor"]
    print(f"scenario:    {report['scenario']} — {report['description']}")
    print(
        f"tickets:     {o['submitted']} submitted, {o['completed']} completed, "
        f"{o['lost']} lost, {o['degraded']} degraded"
    )
    print(
        f"supervisor:  {sup['crashes']} crashes, {sup['wedged']} wedged, "
        f"{sup['restarts']} restarts, {sup['requeued']} tickets requeued"
    )
    if sup["recovery_max_s"] is not None:
        print(
            f"recovery:    mean {sup['recovery_mean_s'] * 1000:.1f} ms, "
            f"max {sup['recovery_max_s'] * 1000:.1f} ms"
        )
    print(
        f"latency:     p50 {o['latency_p50_s'] * 1000:.1f} ms, "
        f"p99 {o['latency_p99_s'] * 1000:.1f} ms under fault"
    )
    if report["equality"]["checked"]:
        print(f"equality:    {report['equality']['mismatches']} mismatches vs solo")
    print(f"wrote {args.out}")
    if o["lost"] or report["equality"]["mismatches"]:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "generate":
        g = _GENERATORS[args.kind](args)
        _write_graph(g, args.out)
        print(f"wrote {g.n} vertices / {g.m} edges to {args.out}")
        return 0

    if args.command == "profile":
        return _cmd_profile(args)

    if args.command == "lint":
        return _cmd_lint(args)

    if args.command == "certify":
        return _cmd_lint(args)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "loadgen":
        return _cmd_loadgen(args)

    if args.command == "stream":
        return _cmd_stream(args)

    if args.command == "chaos":
        return _cmd_chaos(args)

    g = _read_graph(args.graph)
    if not getattr(args, "json", False):
        print(f"graph: n={g.n} m={g.m} U={g.max_length()}")

    if args.command == "info":
        from repro.core import Network
        from repro.core.stats import network_stats
        from repro.hardware import PLATFORMS, chips_required

        net = Network()
        ids = [net.add_neuron(one_shot=True) for _ in range(g.n)]
        for u, v, w in g.edges():
            if u != v:
                net.add_synapse(ids[u], ids[v], delay=int(w))
        stats = network_stats(net)
        print("\nSection-3 SSSP network for this graph:")
        print(stats.summary())
        print("\nchips required (crossbar embedding, 2n^2 neurons):")
        crossbar_neurons = 2 * g.n * g.n
        for name, spec in PLATFORMS.items():
            chips = chips_required(crossbar_neurons, spec)
            if chips is not None:
                print(f"  {name}: {chips}")
        return 0

    if args.command == "report":
        from repro.analysis.report import generate_instance_report

        doc = generate_instance_report(
            g, args.source, k=args.k, registers=args.registers
        )
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(doc)
            print(f"wrote report to {args.out}")
        else:
            print(doc)
        return 0

    if args.command == "faults":
        from repro.analysis.degradation import (
            degradation_markdown,
            degradation_sweep,
            render_degradation,
        )

        rates = [float(r) for r in args.rates.split(",") if r.strip()]
        algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
        cells = degradation_sweep(
            g, rates=rates, trials=args.trials, seed=args.seed, algorithms=algorithms
        )
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(degradation_markdown(cells))
            print(f"wrote degradation table to {args.out}")
        else:
            print()
            print(render_degradation(cells))
        return 0

    if args.command == "sssp":
        if args.algorithm == "pseudo":
            res = spiking_sssp_pseudo(g, args.source, target=args.target)
        elif args.algorithm == "poly":
            res = spiking_sssp_poly(g, args.source, target=args.target)
        else:
            res = embedded_sssp(g, args.source, target=args.target)
        if args.json:
            _emit_query_json("sssp", args.algorithm, g, args, res)
        else:
            _print_distances(res.dist, args.target)
            _print_cost(res.cost)
        return 0

    if args.command == "khop":
        if args.algorithm == "ttl":
            res = spiking_khop_pseudo(g, args.source, args.k, target=args.target)
        else:
            res = spiking_khop_poly(g, args.source, args.k, target=args.target)
        if args.json:
            _emit_query_json("khop", args.algorithm, g, args, res, k=args.k)
        else:
            _print_distances(res.dist, args.target)
            _print_cost(res.cost)
        return 0

    if args.command == "approx":
        res = spiking_khop_approx(g, args.source, args.k, epsilon=args.epsilon)
        eps = res.cost.extras["epsilon"]
        if args.json:
            _emit_query_json(
                "approx", "approx", g, args, res, k=args.k, epsilon=eps
            )
        else:
            print(f"epsilon: {eps:.4f} ({res.cost.extras['scales']:.0f} scales)")
            _print_distances(res.dist, args.target)
            _print_cost(res.cost)
        return 0

    if args.command == "compare":
        k = args.k
        c = args.registers
        _, ram_sssp = dijkstra(g, args.source)
        _, ram_khop = bellman_ford_khop(g, args.source, k)
        _, mv_sssp = dijkstra_distance(g, args.source, num_registers=c)
        _, mv_khop = bellman_ford_khop_distance(g, args.source, k, num_registers=c)
        neuro_sssp = spiking_sssp_pseudo(g, args.source)
        neuro_khop = spiking_khop_pseudo(g, args.source, k)
        if args.json:
            import json

            print(
                json.dumps(
                    {
                        "command": "compare",
                        "graph": {"n": g.n, "m": g.m, "max_length": g.max_length()},
                        "source": args.source,
                        "k": k,
                        "registers": c,
                        "rows": {
                            "sssp_ram": ram_sssp.total,
                            "khop_ram": ram_khop.total,
                            "sssp_distance": mv_sssp,
                            "khop_distance": mv_khop,
                            "sssp_neuro": neuro_sssp.cost.total_time,
                            "khop_neuro": neuro_khop.cost.total_time,
                            "sssp_neuro_embedded": neuro_sssp.cost.with_embedding(
                                g.n
                            ).total_time,
                            "khop_neuro_embedded": neuro_khop.cost.with_embedding(
                                g.n
                            ).total_time,
                        },
                    }
                )
            )
            return 0
        print()
        print(
            render_table(
                [
                    ComparisonRow("SSSP (RAM)", ram_sssp.total,
                                  neuro_sssp.cost.total_time),
                    ComparisonRow(f"{k}-hop (RAM)", ram_khop.total,
                                  neuro_khop.cost.total_time),
                    ComparisonRow("SSSP (DISTANCE)", mv_sssp,
                                  neuro_sssp.cost.with_embedding(g.n).total_time),
                    ComparisonRow(f"{k}-hop (DISTANCE)", mv_khop,
                                  neuro_khop.cost.with_embedding(g.n).total_time),
                ],
                title=f"instance comparison (k={k}, c={c})",
            )
        )
        return 0

    raise AssertionError("unhandled command")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
