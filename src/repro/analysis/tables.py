"""Rendering measured comparisons in the layout of Table 1."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["ComparisonRow", "render_table"]


@dataclass
class ComparisonRow:
    """One problem row of a Table-1-style comparison.

    All costs are in the respective model's unit: conventional entries in
    RAM operations or DISTANCE movement cost, neuromorphic entries in
    simulated ticks (:attr:`CostReport.total_time`).
    """

    problem: str
    conventional: float
    neuromorphic: float
    lower_bound: Optional[float] = None
    predicted_winner: Optional[str] = None
    note: str = ""

    @property
    def measured_winner(self) -> str:
        return "neuromorphic" if self.neuromorphic < self.conventional else "conventional"

    @property
    def ratio(self) -> float:
        return self.conventional / self.neuromorphic if self.neuromorphic else float("inf")


def render_table(rows: Sequence[ComparisonRow], title: str = "") -> str:
    """ASCII layout mirroring Table 1's columns."""
    headers = [
        "problem",
        "conventional",
        "neuromorphic",
        "lower bound",
        "ratio(conv/neuro)",
        "winner",
        "note",
    ]
    body: List[List[str]] = []
    for r in rows:
        body.append(
            [
                r.problem,
                f"{r.conventional:,.0f}",
                f"{r.neuromorphic:,.0f}",
                "-" if r.lower_bound is None else f"{r.lower_bound:,.0f}",
                f"{r.ratio:.2f}",
                r.measured_winner,
                r.note,
            ]
        )
    widths = [
        max(len(headers[i]), max((len(row[i]) for row in body), default=0))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)
