"""Degradation analysis: answer quality as a function of transient-fault rate.

Sweeps fault rate x algorithm and measures, per cell, how often the faulty
run still produces the exact fault-free answer (*success probability*) and
how much of the answer survives on average (*coverage*).  Three
representative algorithm families cover the paper's three styles of
computation:

* ``sssp`` — the Section-3 delay-encoded SSSP network under
  :class:`~repro.core.transient.SpikeDrop`: success means every first-spike
  time matches the fault-free run; coverage is the fraction of
  fault-free-reached vertices still reached.
* ``max`` — the Theorem-5.1 wired-OR max circuit under delivery drops:
  success means the decoded maximum is exact; coverage is the fraction of
  correct output bits.
* ``matvec`` — the Definition-4 min-plus matrix–vector NGA where each edge
  message is lost with the fault probability: success means the final
  message assignment is exact; coverage is the fraction of nodes whose
  final message matches.

Results render as text (:func:`render_degradation`) or Markdown
(:func:`degradation_markdown`) through the existing report machinery, and
are exposed on the command line as ``repro faults``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.sssp_pseudo import sssp_network
from repro.analysis.report import markdown_table
from repro.circuits.builder import CircuitBuilder
from repro.circuits.max_circuits import wired_or_max
from repro.circuits.runner import run_circuit
from repro.core.run import simulate, simulate_batch
from repro.core.transient import SpikeDrop
from repro.errors import ValidationError
from repro.nga.matvec import matrix_power_nga
from repro.nga.model import NeuromorphicGraphAlgorithm
from repro.nga.semiring import MIN_PLUS
from repro.telemetry.metrics import counter_inc, timer
from repro.workloads.generators import gnp_graph
from repro.workloads.graph import WeightedDigraph

__all__ = [
    "DegradationCell",
    "degradation_sweep",
    "render_degradation",
    "degradation_markdown",
]

ALGORITHMS = ("sssp", "max", "matvec")


@dataclass(frozen=True)
class DegradationCell:
    """One (algorithm, fault rate) cell of a degradation sweep."""

    algorithm: str
    rate: float
    trials: int
    successes: int
    coverage: float  # mean fraction of the answer that survived, in [0, 1]

    @property
    def success_probability(self) -> float:
        return self.successes / self.trials if self.trials else 0.0


def _default_graph(seed: int) -> WeightedDigraph:
    return gnp_graph(24, 0.2, max_length=5, seed=seed, ensure_source_reaches=True)


def _sssp_cells(
    graph: WeightedDigraph, rates: Sequence[float], trials: int, seed: int
) -> List[DegradationCell]:
    net, ids = sssp_network(graph)
    compiled = net.compile()
    horizon = (graph.n - 1) * max(1, graph.max_length()) + 1
    base = simulate(compiled, [ids[0]], engine="event", max_steps=horizon)
    base_reached = int((base.first_spike >= 0).sum())
    cells = []
    for rate in rates:
        # one batch per rate: every trial is an independent item whose
        # counter-hashed fault seed matches the historical per-trial runs
        runs = simulate_batch(
            compiled,
            [[ids[0]]] * trials,
            max_steps=horizon,
            faults=[
                SpikeDrop(rate, seed=seed * 1_000_003 + trial)
                for trial in range(trials)
            ],
        )
        successes = 0
        coverage = 0.0
        for r in runs:
            if np.array_equal(r.first_spike, base.first_spike):
                successes += 1
            reached = int((r.first_spike >= 0).sum())
            coverage += reached / base_reached if base_reached else 1.0
        cells.append(DegradationCell("sssp", float(rate), trials, successes, coverage / trials))
    return cells


def _max_cells(
    rates: Sequence[float], trials: int, seed: int, *, count: int = 4, width: int = 4
) -> List[DegradationCell]:
    builder = CircuitBuilder()
    groups = [builder.input_bits(f"x{i}", width) for i in range(count)]
    res = wired_or_max(builder, groups)
    builder.output_bits("max", res.out_bits)
    rng = np.random.default_rng(seed)
    cases = [
        {f"x{i}": int(v) for i, v in enumerate(rng.integers(0, 2**width, count))}
        for _ in range(trials)
    ]
    cells = []
    for rate in rates:
        successes = 0
        coverage = 0.0
        for trial, inputs in enumerate(cases):
            expect = max(inputs.values())
            got = run_circuit(
                builder,
                inputs,
                faults=SpikeDrop(rate, seed=seed * 1_000_003 + trial),
            )["max"]
            if got == expect:
                successes += 1
            matching = sum(
                1 for j in range(width) if (got >> j) & 1 == (expect >> j) & 1
            )
            coverage += matching / width
        cells.append(DegradationCell("max", float(rate), trials, successes, coverage / trials))
    return cells


def _matvec_cells(
    graph: WeightedDigraph, rates: Sequence[float], trials: int, seed: int, *, rounds: int = 3
) -> List[DegradationCell]:
    initial = {0: 0}
    base = matrix_power_nga(graph, MIN_PLUS, initial, rounds).final()
    cells = []
    for rate in rates:
        successes = 0
        coverage = 0.0
        for trial in range(trials):
            rng = np.random.default_rng(seed * 1_000_003 + trial)

            def edge_fn(u: int, v: int, w: int, msg):
                # each edge message is lost with the fault probability
                if rate > 0.0 and rng.random() < rate:
                    return None
                out = MIN_PLUS.mul(w, msg)
                return None if out == MIN_PLUS.zero else out

            def node_fn(v: int, msgs):
                acc = msgs[0]
                for m in msgs[1:]:
                    acc = MIN_PLUS.add(acc, m)
                return None if acc == MIN_PLUS.zero else acc

            got = NeuromorphicGraphAlgorithm(graph, edge_fn, node_fn).run(
                initial, rounds
            ).final()
            if got == base:
                successes += 1
            if base:
                matching = sum(1 for v, m in base.items() if got.get(v) == m)
                coverage += matching / len(base)
            else:
                coverage += 1.0
        cells.append(
            DegradationCell("matvec", float(rate), trials, successes, coverage / trials)
        )
    return cells


def degradation_sweep(
    graph: Optional[WeightedDigraph] = None,
    *,
    rates: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2),
    trials: int = 20,
    seed: int = 0,
    algorithms: Sequence[str] = ALGORITHMS,
) -> List[DegradationCell]:
    """Measure success probability and coverage over fault rate x algorithm.

    ``graph`` drives the ``sssp`` and ``matvec`` families (a seeded G(n, p)
    instance is generated when omitted); the ``max`` family draws random
    input tuples for a fixed wired-OR circuit.  Every trial is seeded, so a
    sweep is reproducible cell by cell.
    """
    if trials < 1:
        raise ValidationError(f"trials must be >= 1, got {trials}")
    unknown = set(algorithms) - set(ALGORITHMS)
    if unknown:
        raise ValidationError(
            f"unknown algorithms {sorted(unknown)}; choose from {list(ALGORITHMS)}"
        )
    for rate in rates:
        if not (0.0 <= rate <= 1.0):
            raise ValidationError(f"fault rate must be in [0, 1], got {rate}")
    g = graph if graph is not None else _default_graph(seed)
    cells: List[DegradationCell] = []
    if "sssp" in algorithms:
        with timer("phase.sweep.sssp"):
            cells.extend(_sssp_cells(g, rates, trials, seed))
    if "max" in algorithms:
        with timer("phase.sweep.max"):
            cells.extend(_max_cells(rates, trials, seed))
    if "matvec" in algorithms:
        with timer("phase.sweep.matvec"):
            cells.extend(_matvec_cells(g, rates, trials, seed))
    counter_inc("runs.degradation_sweep", 1)
    counter_inc("degradation.cells", len(cells))
    return cells


def _grouped(cells: Sequence[DegradationCell]) -> Dict[str, List[DegradationCell]]:
    by_alg: Dict[str, List[DegradationCell]] = {}
    for c in cells:
        by_alg.setdefault(c.algorithm, []).append(c)
    for group in by_alg.values():
        group.sort(key=lambda c: c.rate)
    return by_alg


def _rows(cells: Sequence[DegradationCell]) -> List[List[str]]:
    return [
        [
            c.algorithm,
            f"{c.rate:g}",
            str(c.trials),
            f"{c.success_probability:.2f}",
            f"{c.coverage:.2f}",
        ]
        for group in _grouped(cells).values()
        for c in group
    ]


_HEADERS = ["algorithm", "fault rate", "trials", "P(success)", "coverage"]


def render_degradation(cells: Sequence[DegradationCell]) -> str:
    """Columnar text table of a sweep (CLI default output)."""
    rows = [_HEADERS] + _rows(cells)
    widths = [max(len(r[i]) for r in rows) for i in range(len(_HEADERS))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def degradation_markdown(
    cells: Sequence[DegradationCell], *, title: str = "Transient-fault degradation"
) -> str:
    """Markdown document for a sweep (``repro faults --out``)."""
    doc = [f"# {title}", ""]
    doc.append(markdown_table(_HEADERS, _rows(cells)))
    doc.append("")
    doc.append(
        "_P(success): fraction of trials whose answer matched the fault-free "
        "run exactly; coverage: mean fraction of the answer that survived._"
    )
    doc.append("")
    return "\n".join(doc)
