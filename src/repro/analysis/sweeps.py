"""Parameter-sweep utilities shared by benches and examples.

A :class:`Series` is a measured cost curve over one swept parameter; the
helpers fit scaling exponents (log-log least squares), locate crossovers
between two curves, and render several series side by side — the mechanics
behind every "who wins, and from where?" question in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["Series", "sweep", "sweep_batched", "crossover_between", "render_series"]


@dataclass
class Series:
    """One measured curve: ``ys[i]`` is the cost at parameter ``xs[i]``."""

    xs: List[float]
    ys: List[float]
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValidationError("xs and ys must have equal lengths")

    def fit_exponent(self) -> float:
        """Least-squares slope of log y vs log x — the scaling exponent."""
        if len(self.xs) < 2:
            raise ValidationError("need at least two points to fit")
        if min(self.xs) <= 0 or min(self.ys) <= 0:
            raise ValidationError("log-log fit requires positive data")
        slope, _ = np.polyfit(np.log(self.xs), np.log(self.ys), 1)
        return float(slope)

    def ratio_to(self, other: "Series") -> "Series":
        """Pointwise ``self / other`` (the advantage-ratio curve)."""
        if self.xs != other.xs:
            raise ValidationError("series must share the same sweep points")
        ys = [a / b if b else float("inf") for a, b in zip(self.ys, other.ys)]
        return Series(list(self.xs), ys, label=f"{self.label}/{other.label}")


def sweep(
    values: Sequence[float],
    fn: Callable[[float], float],
    label: str = "",
) -> Series:
    """Evaluate ``fn`` over ``values`` into a :class:`Series`."""
    return Series(list(values), [float(fn(v)) for v in values], label=label)


def sweep_batched(
    values: Sequence[float],
    batch_fn: Callable[[Sequence[float]], Sequence[float]],
    label: str = "",
) -> Series:
    """Evaluate all sweep points in one call into a :class:`Series`.

    ``batch_fn`` receives the whole value list and returns one cost per
    value — the natural shape for measurements backed by
    :func:`~repro.core.run.simulate_batch`, where every sweep point is one
    batch item over a shared network and the simulation cost is paid once
    rather than per point.
    """
    ys = list(batch_fn(list(values)))
    if len(ys) != len(values):
        raise ValidationError(
            f"batch_fn returned {len(ys)} values for {len(values)} sweep points"
        )
    return Series(list(values), [float(y) for y in ys], label=label)


def crossover_between(a: Series, b: Series) -> Optional[float]:
    """First sweep point where ``b`` drops strictly below ``a``."""
    if a.xs != b.xs:
        raise ValidationError("series must share the same sweep points")
    for x, ya, yb in zip(a.xs, a.ys, b.ys):
        if yb < ya:
            return x
    return None


def render_series(series_list: Sequence[Series], x_label: str = "x") -> str:
    """Columnar text rendering of several series over a shared sweep."""
    if not series_list:
        return ""
    xs = series_list[0].xs
    for s in series_list[1:]:
        if s.xs != xs:
            raise ValidationError("series must share the same sweep points")
    headers = [x_label] + [s.label or f"series{i}" for i, s in enumerate(series_list)]
    rows = []
    for i, x in enumerate(xs):
        rows.append([_fmt(x)] + [_fmt(s.ys[i]) for s in series_list])
    widths = [
        max(len(headers[c]), max(len(r[c]) for r in rows)) for c in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _fmt(v: float) -> str:
    if float(v).is_integer():
        return f"{int(v):,}"
    return f"{v:.3g}"
