"""Complexity formulas, advantage predicates, and table rendering.

:mod:`~repro.analysis.complexity` encodes every cell of Table 1 as an
explicit function of the problem parameters (``n, m, k, U, L, alpha, c``),
with the theorem each formula comes from; :mod:`~repro.analysis.advantage`
encodes the "neuromorphic is better when" side conditions and locates
empirical crossovers; :mod:`~repro.analysis.tables` renders measured
comparisons in the layout of Table 1; :mod:`~repro.analysis.degradation`
measures answer quality under transient fault rates.
"""

from repro.analysis.complexity import (
    conventional_khop_time,
    conventional_sssp_time,
    distance_lower_bound_khop,
    distance_lower_bound_sssp,
    neuro_approx_khop_time,
    neuro_khop_poly_time,
    neuro_khop_pseudo_time,
    neuro_sssp_poly_time,
    neuro_sssp_pseudo_time,
)
from repro.analysis.advantage import (
    advantage_conditions_table1,
    advantage_ratio,
    find_crossover,
)
from repro.analysis.tables import ComparisonRow, render_table
from repro.analysis.sweeps import Series, crossover_between, render_series, sweep
from repro.analysis.report import generate_instance_report, markdown_table
from repro.analysis.degradation import (
    DegradationCell,
    degradation_markdown,
    degradation_sweep,
    render_degradation,
)

__all__ = [
    "conventional_sssp_time",
    "conventional_khop_time",
    "distance_lower_bound_sssp",
    "distance_lower_bound_khop",
    "neuro_sssp_pseudo_time",
    "neuro_khop_pseudo_time",
    "neuro_sssp_poly_time",
    "neuro_khop_poly_time",
    "neuro_approx_khop_time",
    "advantage_ratio",
    "advantage_conditions_table1",
    "find_crossover",
    "ComparisonRow",
    "render_table",
    "Series",
    "sweep",
    "crossover_between",
    "render_series",
    "generate_instance_report",
    "markdown_table",
    "DegradationCell",
    "degradation_sweep",
    "render_degradation",
    "degradation_markdown",
]
