"""Every cell of Table 1 as an explicit formula (constants taken as 1).

Parameters follow the paper's notation: ``n`` nodes, ``m`` edges, ``k`` hop
bound, ``U`` longest edge, ``L`` length of the (k-hop) shortest path,
``alpha`` number of edges on the shortest path, ``c`` register count.
Logarithms are base 2 and clamped to at least 1 so the formulas stay
monotone at tiny sizes.
"""

from __future__ import annotations

import math

__all__ = [
    "log2c",
    "conventional_sssp_time",
    "conventional_khop_time",
    "distance_lower_bound_sssp",
    "distance_lower_bound_khop",
    "neuro_sssp_pseudo_time",
    "neuro_khop_pseudo_time",
    "neuro_sssp_poly_time",
    "neuro_khop_poly_time",
    "neuro_approx_khop_time",
    "neuro_sssp_pseudo_neurons",
    "neuro_khop_pseudo_neurons",
    "neuro_khop_poly_neurons",
    "neuro_approx_khop_neurons",
    "crossbar_neurons",
]


def log2c(x: float) -> float:
    """``max(1, log2 x)`` — the clamped logarithm used by every formula."""
    return max(1.0, math.log2(max(2.0, float(x))))


# --------------------------------------------------------------------------- #
# Conventional side
# --------------------------------------------------------------------------- #


def conventional_sssp_time(n: int, m: int) -> float:
    """Best-known conventional SSSP: Dijkstra, ``O(m + n log n)``."""
    return m + n * log2c(n)


def conventional_khop_time(k: int, m: int) -> float:
    """Best-known conventional k-hop SSSP: Bellman–Ford rounds, ``O(km)``."""
    return float(k) * m


def distance_lower_bound_sssp(m: int, c: int) -> float:
    """Table 1 data-movement lower bound for SSSP: ``m^{3/2}/sqrt(c)``.

    (Theorem 6.1 constant ``1/8`` lives in
    :func:`repro.distance_model.bounds.read_lower_bound_2d`; this analysis
    formula drops constants like the rest of the table.)
    """
    return m ** 1.5 / math.sqrt(c)


def distance_lower_bound_khop(m: int, k: int, c: int) -> float:
    """Table 1 bound on the best conventional k-hop algorithm:
    ``k m^{3/2}/sqrt(c)`` (Theorem 6.2)."""
    return k * distance_lower_bound_sssp(m, c)


# --------------------------------------------------------------------------- #
# Neuromorphic side
# --------------------------------------------------------------------------- #


def neuro_sssp_pseudo_time(L: int, m: int, n: int, *, data_movement: bool) -> float:
    """Theorem 4.1: ``O(L + m)``, or ``O(nL + m)`` with the embedding cost."""
    if data_movement:
        return n * float(L) + m
    return float(L) + m


def neuro_khop_pseudo_time(
    L: int, m: int, n: int, k: int, *, data_movement: bool
) -> float:
    """Theorem 4.2: ``O((L + m) log k)`` / ``O((nL + m) log k)``."""
    base = (n * float(L) + m) if data_movement else (float(L) + m)
    return base * log2c(k)


def neuro_sssp_poly_time(
    n: int, m: int, U: int, alpha: int, *, data_movement: bool
) -> float:
    """Theorem 4.4: ``O(m log(nU))`` / ``O((n alpha + m) log(nU))``.

    Without data movement the spiking portion is ``alpha log(nU)``, always
    dominated by the ``m log(nU)`` circuit-loading term — hence the
    table's "never better" verdict against Dijkstra.
    """
    lg = log2c(n * max(1, U))
    if data_movement:
        return (n * float(alpha) + m) * lg
    return (float(alpha) + m) * lg


def neuro_khop_poly_time(n: int, m: int, U: int, k: int, *, data_movement: bool) -> float:
    """Theorem 4.3: ``O(m log(nU))`` / ``O((nk + m) log(nU))``."""
    lg = log2c(n * max(1, U))
    if data_movement:
        return (n * float(k) + m) * lg
    return (float(k) + m) * lg


def neuro_approx_khop_time(n: int, m: int, U: int, k: int, *, data_movement: bool) -> float:
    """Theorem 7.2: ``O((k log n + m) log(kU log n))`` /
    ``O((kn log n + m) log(kU log n))``."""
    outer = log2c(k * max(1, U) * log2c(n))
    inner = k * log2c(n)
    if data_movement:
        inner *= n
    return (inner + m) * outer


# --------------------------------------------------------------------------- #
# Neuron counts (Sections 3, 4.5, 7)
# --------------------------------------------------------------------------- #


def neuro_sssp_pseudo_neurons(n: int, m: int, *, with_paths: bool = False) -> float:
    """Section 3: ``n`` relay neurons; path construction latches a
    ``log n``-bit sender ID per vertex (``O(n log n)`` extra)."""
    base = float(n)
    if with_paths:
        base += n * log2c(n)
    return base


def neuro_khop_pseudo_neurons(m: int, k: int) -> float:
    """Section 4.5: ``O(m log k)`` for the per-vertex max/decrement
    circuits (neuron-saving wired-OR variant)."""
    return m * log2c(k)


def neuro_khop_poly_neurons(n: int, m: int, U: int) -> float:
    """Section 4.5: ``O(m log(nU))`` for the adders and min circuits."""
    return m * log2c(n * max(1, U))


def neuro_approx_khop_neurons(n: int, k: int, U: int) -> float:
    """Theorem 7.2 discussion: ``n`` neurons per scale,
    ``O(n log(k U log n))`` in total — independent of ``m``."""
    return n * log2c(k * max(1, U) * log2c(n))


def crossbar_neurons(n: int) -> float:
    """Section 4.4: the crossbar ``H_n`` holds ``2 n^2`` neurons."""
    return 2.0 * n * n
