"""Advantage predicates and empirical crossover location (Table 1's
"neuromorphic is better when" column).

Asymptotic little-o conditions are interpreted at concrete sizes as strict
inequalities between the two sides (with unit constants), which is the
standard way to *visualize* an asymptotic claim on a finite sweep: the
benches plot both cost curves and check that the predicted winner is the
measured winner away from the crossover.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.complexity import log2c

__all__ = ["advantage_ratio", "advantage_conditions_table1", "find_crossover"]


def advantage_ratio(conventional_cost: float, neuromorphic_cost: float) -> float:
    """``conventional / neuromorphic`` — above 1 means neuromorphic wins."""
    if neuromorphic_cost <= 0:
        return math.inf
    return conventional_cost / neuromorphic_cost


def advantage_conditions_table1(
    *,
    n: int,
    m: int,
    U: int,
    c: int,
    k: Optional[int] = None,
    L: Optional[int] = None,
    alpha: Optional[int] = None,
) -> Dict[str, bool]:
    """Evaluate every Table-1 side condition at concrete parameters.

    Returns a map from condition name (one per table row) to whether it
    holds.  Keys:

    * ``sssp_poly_dm`` — ``log U = O(log n)``, ``c = o(m / log^2 n)``, and
      ``alpha = o(m^{3/2} / (n log n sqrt c))``;
    * ``khop_poly_dm`` — ``log U = O(log n)``, ``c = o(m^3/(n^2 log^2 n))``,
      and ``c = o(k^2 m / log^2 n)``;
    * ``sssp_pseudo_dm`` — ``L = o(m^{3/2} / (n sqrt c))``;
    * ``khop_pseudo_dm`` — ``L = o(k m^{3/2} / (n sqrt c log k))``;
    * ``sssp_poly_nodm`` — never;
    * ``khop_poly_nodm`` — ``log(nU) = o(k)``;
    * ``sssp_pseudo_nodm`` — ``m, L = o(n log n)`` and ``L = o(m)``;
    * ``khop_pseudo_nodm`` — ``L = o(km / log k)`` and ``k = omega(1)``.
    """
    lg_n = log2c(n)
    out: Dict[str, bool] = {}
    log_u_ok = log2c(max(1, U)) <= 2 * lg_n  # log U = O(log n), constant 2
    if alpha is not None:
        out["sssp_poly_dm"] = (
            log_u_ok
            and c < m / lg_n**2
            and alpha < m**1.5 / (n * lg_n * math.sqrt(c))
        )
    if k is not None:
        out["khop_poly_dm"] = (
            log_u_ok
            and c < m**3 / (n**2 * lg_n**2)
            and c < k**2 * m / lg_n**2
        )
        out["khop_poly_nodm"] = log2c(n * max(1, U)) < k
    if L is not None:
        out["sssp_pseudo_dm"] = L < m**1.5 / (n * math.sqrt(c))
        out["sssp_pseudo_nodm"] = m < n * lg_n and L < n * lg_n and L < m
    if L is not None and k is not None:
        lg_k = log2c(k)
        out["khop_pseudo_dm"] = L < k * m**1.5 / (n * math.sqrt(c) * lg_k)
        out["khop_pseudo_nodm"] = L < k * m / lg_k and k > 1
    out["sssp_poly_nodm"] = False
    return out


def find_crossover(
    conventional: Callable[[int], float],
    neuromorphic: Callable[[int], float],
    parameter_values: Sequence[int],
) -> Optional[int]:
    """First parameter value at which the neuromorphic cost drops below the
    conventional cost (``None`` if it never does on the sweep).

    Used by the Table-1 benches to report where the advantage kicks in —
    e.g. sweeping ``k`` for fixed ``(n, m, U)`` in the k-hop rows.
    """
    for p in parameter_values:
        if neuromorphic(p) < conventional(p):
            return p
    return None
