"""One-call Markdown report for a problem instance.

Bundles everything the library can say about one graph into a single
document: instance statistics, both halves of the Table-1 comparison
measured on the instance, the advantage side conditions evaluated at its
parameters, and the Appendix-A energy estimate.  Used by the CLI's
``report`` command and handy in notebooks.
"""

from __future__ import annotations

from typing import List, Optional


from repro.algorithms import spiking_khop_pseudo, spiking_sssp_pseudo
from repro.analysis.advantage import advantage_conditions_table1
from repro.analysis.tables import ComparisonRow
from repro.baselines import bellman_ford_khop, dijkstra
from repro.distance_model import (
    bellman_ford_khop_distance,
    bellman_ford_lower_bound,
    dijkstra_distance,
    read_lower_bound_2d,
)
from repro.errors import ValidationError
from repro.hardware import energy_comparison
from repro.workloads.graph import WeightedDigraph

__all__ = ["generate_instance_report", "markdown_table"]


def markdown_table(headers: List[str], rows: List[List[str]]) -> str:
    """Render a GitHub-flavored Markdown table (cells are str()-ed)."""
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


_md_table = markdown_table


def _fmt(x: float) -> str:
    return f"{x:,.0f}" if abs(x) >= 1 else f"{x:.3g}"


def generate_instance_report(
    graph: WeightedDigraph,
    source: int = 0,
    *,
    k: int = 4,
    registers: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render the full Markdown report for one instance."""
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range")
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    g = graph
    n, m, U = g.n, g.m, g.max_length()

    # measurements
    neuro_sssp = spiking_sssp_pseudo(g, source)
    neuro_khop = spiking_khop_pseudo(g, source, k)
    _, ram_sssp = dijkstra(g, source)
    _, ram_khop = bellman_ford_khop(g, source, k)
    _, mv_sssp = dijkstra_distance(g, source, num_registers=registers)
    _, mv_khop = bellman_ford_khop_distance(g, source, k, num_registers=registers)

    L = int(neuro_sssp.dist.max()) if (neuro_sssp.dist >= 0).any() else 0
    Lk = int(neuro_khop.dist.max()) if (neuro_khop.dist >= 0).any() else 0
    reached = int((neuro_sssp.dist >= 0).sum())

    rows_nodm = [
        ComparisonRow("SSSP", ram_sssp.total, neuro_sssp.cost.total_time),
        ComparisonRow(f"{k}-hop SSSP", ram_khop.total, neuro_khop.cost.total_time),
    ]
    rows_dm = [
        ComparisonRow(
            "SSSP",
            mv_sssp,
            neuro_sssp.cost.with_embedding(n).total_time,
            lower_bound=read_lower_bound_2d(m, registers),
        ),
        ComparisonRow(
            f"{k}-hop SSSP",
            mv_khop,
            neuro_khop.cost.with_embedding(n).total_time,
            lower_bound=bellman_ford_lower_bound(m, k, registers),
        ),
    ]
    conds = advantage_conditions_table1(n=n, m=m, U=U, c=registers, k=k, L=L)
    energy = energy_comparison(neuro_sssp.cost, ram_sssp)

    doc: List[str] = []
    doc.append(f"# {title or 'Neuromorphic advantage report'}")
    doc.append("")
    doc.append("## Instance")
    doc.append("")
    doc.append(
        _md_table(
            ["n", "m", "U", "source", "reached", "L (max dist)", f"L_k (k={k})"],
            [[n, m, U, source, reached, L, Lk]],
        )
    )
    doc.append("")
    doc.append("## Ignoring data movement (RAM operation counts)")
    doc.append("")
    doc.append(
        _md_table(
            ["problem", "conventional", "neuromorphic (ticks)", "ratio", "winner"],
            [
                [r.problem, _fmt(r.conventional), _fmt(r.neuromorphic),
                 f"{r.ratio:.2f}", r.measured_winner]
                for r in rows_nodm
            ],
        )
    )
    doc.append("")
    doc.append(f"## With data movement (DISTANCE model, c = {registers})")
    doc.append("")
    doc.append(
        _md_table(
            ["problem", "movement cost", "lower bound", "neuromorphic (xn charge)",
             "ratio", "winner"],
            [
                [r.problem, _fmt(r.conventional), _fmt(r.lower_bound),
                 _fmt(r.neuromorphic), f"{r.ratio:.2f}", r.measured_winner]
                for r in rows_dm
            ],
        )
    )
    doc.append("")
    doc.append("## Table-1 side conditions at these parameters")
    doc.append("")
    doc.append(
        _md_table(
            ["condition", "holds"],
            [[name, "yes" if ok else "no"] for name, ok in sorted(conds.items())],
        )
    )
    doc.append("")
    doc.append("## Energy estimate (Appendix A constants)")
    doc.append("")
    energy_rows = []
    for platform, vals in energy.items():
        j = vals["joules"]
        energy_rows.append(
            [platform, "n/a" if j is None else f"{j:.3e} J", vals["chips"]]
        )
    doc.append(_md_table(["platform", "energy per SSSP run", "chips"], energy_rows))
    doc.append("")
    doc.append(
        f"_Neuromorphic run: {neuro_sssp.cost.spike_count} spikes, "
        f"{neuro_sssp.cost.neuron_count} neurons; conventional baseline: "
        f"{ram_sssp.total} RAM operations._"
    )
    doc.append("")
    return "\n".join(doc)
