"""Round-based executor for neuromorphic graph algorithms (Definition 4).

The executor is deliberately literal about the model: at the start of round
``r`` every node broadcasts its current message across all out-edges; each
edge applies the *edge function* in transit; each node then applies the
*node function* to the multiset of incoming transformed messages to produce
its next message.  A node holding ``None`` (the all-zeros spike pattern —
"sending the all zeros message equates to none of the output neurons
firing") broadcasts nothing, and a node receiving nothing computes ``None``.

Timing: an ``R``-round NGA with edge/node SNNs of depth ``T_edge`` /
``T_node`` executes in ``R * (T_edge + T_node)`` ticks; the executor carries
those depths into the :class:`~repro.core.cost.CostReport` so NGA-level
simulations report the same model cost as their gate-level compilations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.cost import CostReport
from repro.errors import ValidationError
from repro.workloads.graph import WeightedDigraph

__all__ = ["NeuromorphicGraphAlgorithm", "NGAResult"]

#: Edge function: (tail, head, length, message) -> transformed message.
EdgeFn = Callable[[int, int, int, Any], Any]
#: Node function: (node, incoming transformed messages) -> next message.
NodeFn = Callable[[int, List[Any]], Any]


@dataclass
class NGAResult:
    """Trace of an NGA execution.

    ``history[r][v]`` is node ``v``'s message at the *end* of round ``r``
    (``history[0]`` is the input assignment); ``None`` means no message.
    """

    history: List[Dict[int, Any]]
    rounds: int
    cost: CostReport

    def final(self) -> Dict[int, Any]:
        return self.history[-1]


class NeuromorphicGraphAlgorithm:
    """Generic NGA over a :class:`WeightedDigraph`.

    Parameters
    ----------
    graph:
        The input graph the NGA executes on (its nodes are the NGA nodes).
    edge_fn, node_fn:
        The per-edge and per-node message functions.
    t_edge, t_node:
        Depths of the SNNs computing the edge and node functions — used for
        time accounting only.
    message_bits:
        Message width ``lambda`` (accounting only).
    """

    def __init__(
        self,
        graph: WeightedDigraph,
        edge_fn: EdgeFn,
        node_fn: NodeFn,
        *,
        t_edge: int = 1,
        t_node: int = 1,
        message_bits: Optional[int] = None,
    ):
        if t_edge < 1 or t_node < 1:
            raise ValidationError("t_edge and t_node must be >= 1")
        self.graph = graph
        self.edge_fn = edge_fn
        self.node_fn = node_fn
        self.t_edge = t_edge
        self.t_node = t_node
        self.message_bits = message_bits

    def run(
        self,
        initial: Dict[int, Any],
        rounds: int,
        *,
        stop_when: Optional[Callable[[Dict[int, Any], int], bool]] = None,
        keep_history: bool = True,
    ) -> NGAResult:
        """Execute up to ``rounds`` rounds from the ``initial`` messages.

        ``stop_when(messages, round)`` may end the run early (the paper's
        algorithms stop when the destination first receives a message).
        """
        if rounds < 0:
            raise ValidationError(f"rounds must be >= 0, got {rounds}")
        g = self.graph
        current: Dict[int, Any] = {
            v: m for v, m in initial.items() if m is not None
        }
        for v in current:
            if not (0 <= v < g.n):
                raise ValidationError(f"initial message at invalid node {v}")
        history = [dict(current)]
        executed = 0
        spikes = 0
        for r in range(1, rounds + 1):
            inbox: Dict[int, List[Any]] = {}
            for u, msg in current.items():
                heads, lengths = g.out_edges(u)
                for v, w in zip(heads.tolist(), lengths.tolist()):
                    transformed = self.edge_fn(u, v, w, msg)
                    if transformed is None:
                        continue
                    inbox.setdefault(v, []).append(transformed)
                    spikes += self.message_bits or 1
            current = {}
            for v, msgs in inbox.items():
                out = self.node_fn(v, msgs)
                if out is not None:
                    current[v] = out
            executed = r
            if keep_history:
                history.append(dict(current))
            if stop_when is not None and stop_when(current, r):
                break
            if not current:
                break
        if not keep_history:
            history = [history[0], dict(current)]
        bits = self.message_bits or 1
        cost = CostReport(
            algorithm="nga",
            simulated_ticks=executed * (self.t_edge + self.t_node),
            loading_ticks=g.m,
            neuron_count=g.n * bits + g.m * bits,
            synapse_count=g.m * bits,
            spike_count=spikes,
            rounds=executed,
            round_length=self.t_edge + self.t_node,
            message_bits=bits,
        )
        return NGAResult(history=history, rounds=executed, cost=cost)
