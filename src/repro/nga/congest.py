"""Simulating discrete-time SNNs in the CONGEST model (paper Section 2.2).

"For discrete-time SNNs, we may associate a CONGEST graph node with each
neuron and a round with each time step.  Each message is simply a single
bit, indicating whether the neuron fired at time t, and the value of the
message computed at each node may be obtained by simulating LIF dynamics."

:func:`simulate_snn_in_congest` is that construction, written node-
centrically: every round, each CONGEST node (neuron) consumes the one-bit
messages delivered to it, updates its local LIF state, and broadcasts its
own bit.  Synaptic delays ``d > 1`` are handled the way the section
suggests they must be — the *receiver* timestamps incoming bits and applies
them ``d`` rounds later (a delay line in local memory), since CONGEST links
always take exactly one round.

The function returns both the spike-equivalent trace (tested bit-exact
against the native engines) and the CONGEST accounting: rounds used and
total messages sent, with congestion per link being the single bit the
model allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.network import CompiledNetwork, Network
from repro.errors import UnsupportedNetworkError, ValidationError

__all__ = ["CongestTrace", "simulate_snn_in_congest"]


@dataclass
class CongestTrace:
    """Result of a CONGEST-model execution of an SNN.

    ``first_spike``/``spike_counts`` mirror the engine result arrays;
    ``rounds`` is the number of CONGEST communication rounds executed (one
    per SNN tick); ``messages`` counts link-messages sent (a node firing
    with out-degree ``d`` sends ``d`` one-bit messages); ``max_link_bits``
    is the worst per-round congestion on any link (always 1 here —
    the point of the reduction).
    """

    first_spike: np.ndarray
    spike_counts: np.ndarray
    rounds: int
    messages: int
    max_link_bits: int = 1


def simulate_snn_in_congest(
    network: Network,
    stimulus: Optional[List[int]] = None,
    *,
    rounds: int,
) -> CongestTrace:
    """Execute an SNN for ``rounds`` ticks as a CONGEST message-passing run.

    Restrictions match the event engine's: no pacemaker neurons (a node
    with no inbox and no state change has nothing to react to; the paper's
    reduction assumes spikes drive everything).
    """
    net: CompiledNetwork = network.compile()
    if net.has_pacemakers:
        raise UnsupportedNetworkError(
            "CONGEST reduction requires non-pacemaker neurons"
        )
    if rounds < 0:
        raise ValidationError(f"rounds must be >= 0, got {rounds}")
    n = net.n
    stim: Set[int] = set(int(s) for s in (stimulus or []))
    for s in stim:
        if not (0 <= s < n):
            raise ValidationError(f"stimulus neuron {s} out of range")

    # node-local state
    voltage = net.v_reset.copy()
    fired_ever = np.zeros(n, dtype=bool)
    first_spike = np.full(n, -1, dtype=np.int64)
    spike_counts = np.zeros(n, dtype=np.int64)
    # per-node delay lines: node v holds {due_round: synaptic_sum}
    delay_line: List[Dict[int, float]] = [dict() for _ in range(n)]
    messages = 0

    # round 0: induced input spikes broadcast their bit
    fired_now = sorted(stim)
    for v in fired_now:
        first_spike[v] = 0
        fired_ever[v] = True
        spike_counts[v] += 1

    for r in range(1, rounds + 1):
        # communication: every node that fired last round sends its bit on
        # all outgoing links; receivers shelve it by synaptic delay
        for u in fired_now:
            sl = net.out_synapses(u)
            for s in range(sl.start, sl.stop):
                v = int(net.syn_dst[s])
                due = r - 1 + int(net.syn_delay[s])
                if due >= r:  # deliveries land at round `due`
                    delay_line[v][due] = delay_line[v].get(due, 0.0) + float(
                        net.syn_weight[s]
                    )
                messages += 1
        # local computation: LIF update with whatever is due this round
        fired_now = []
        for v in range(n):
            syn = delay_line[v].pop(r, 0.0)
            vhat = voltage[v] + (net.v_reset[v] - voltage[v]) * net.tau[v] + syn
            fire = vhat > net.v_threshold[v] and not (
                net.one_shot[v] and fired_ever[v]
            )
            if fire:
                voltage[v] = net.v_reset[v]
                if not fired_ever[v]:
                    fired_ever[v] = True
                    first_spike[v] = r
                spike_counts[v] += 1
                fired_now.append(v)
            else:
                voltage[v] = vhat
    return CongestTrace(
        first_spike=first_spike,
        spike_counts=spike_counts,
        rounds=rounds,
        messages=messages,
    )
