"""Semirings for NGA message combination.

The paper's NGA example computes ``m_{r+1} = A m_r`` where edges multiply
and nodes sum; "by summing entries of A with message values on the edges and
taking the minimum of message values at the nodes, we obtain a well-known
approach for computing k-hop shortest paths".  Both are instances of a
matrix–vector product over a semiring ``(add, mul, zero, one)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Semiring", "MIN_PLUS", "MAX_PLUS", "PLUS_TIMES", "BOOLEAN"]


@dataclass(frozen=True)
class Semiring:
    """A semiring: node aggregation ``add`` and edge combination ``mul``.

    ``zero`` is the ``add`` identity and the ``mul`` annihilator (it plays
    the role of "no message": an edge carrying ``zero`` contributes
    nothing); ``one`` is the ``mul`` identity.
    """

    name: str
    add: Callable[[Any, Any], Any]
    mul: Callable[[Any, Any], Any]
    zero: Any
    one: Any


#: Shortest paths: nodes take minima, edges add lengths.
MIN_PLUS = Semiring("min_plus", min, lambda a, b: a + b, math.inf, 0)

#: Longest paths / critical paths (on DAGs).
MAX_PLUS = Semiring("max_plus", max, lambda a, b: a + b, -math.inf, 0)

#: Ordinary linear algebra.
PLUS_TIMES = Semiring("plus_times", lambda a, b: a + b, lambda a, b: a * b, 0, 1)

#: Reachability.
BOOLEAN = Semiring("boolean", lambda a, b: a or b, lambda a, b: a and b, False, True)
