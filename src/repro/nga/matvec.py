"""Semiring matrix–vector NGAs — the paper's Definition-4 worked example.

"We let each edge ij compute ``m_ij,r = A_ij * m_i,r`` and each node j
compute ``m_j,r+1 = sum_i m_ij,r``; such an NGA computes ``m_{r+1} = A m_r``
and hence in r rounds computes ``A^r m_0``."  Here ``*``/``sum`` come from a
semiring, so the same executor yields k-hop shortest paths (min-plus),
critical paths (max-plus), counting walks (plus-times), and reachability
(boolean).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.errors import ValidationError
from repro.nga.model import NGAResult, NeuromorphicGraphAlgorithm
from repro.nga.semiring import Semiring
from repro.telemetry.metrics import counter_inc, timer
from repro.workloads.graph import WeightedDigraph

__all__ = ["matrix_power_nga", "semiring_matvec"]


def matrix_power_nga(
    graph: WeightedDigraph,
    semiring: Semiring,
    initial: Dict[int, Any],
    rounds: int,
    *,
    edge_value: str = "length",
    t_edge: int = 1,
    t_node: int = 1,
    message_bits: Optional[int] = None,
) -> NGAResult:
    """Run ``rounds`` rounds of ``m <- A (x) m`` over ``semiring``.

    ``A`` is the graph's weighted adjacency: ``A[u][v]`` is the edge length
    when ``edge_value="length"`` or the semiring ``one`` when
    ``edge_value="unit"`` (pure structure, e.g. boolean reachability).
    Nodes absent from ``initial`` start at semiring ``zero`` (no message).
    """
    if edge_value not in ("length", "unit"):
        raise ValidationError(f"edge_value must be 'length' or 'unit', got {edge_value!r}")

    def edge_fn(u: int, v: int, w: int, msg: Any) -> Any:
        a = w if edge_value == "length" else semiring.one
        out = semiring.mul(a, msg)
        return None if out == semiring.zero else out

    def node_fn(v: int, msgs) -> Any:
        acc = msgs[0]
        for m in msgs[1:]:
            acc = semiring.add(acc, m)
        return None if acc == semiring.zero else acc

    nga = NeuromorphicGraphAlgorithm(
        graph,
        edge_fn,
        node_fn,
        t_edge=t_edge,
        t_node=t_node,
        message_bits=message_bits,
    )
    start = {v: m for v, m in initial.items() if m != semiring.zero}
    with timer("phase.rounds"):
        result = nga.run(start, rounds)
    counter_inc("runs.matvec_nga", 1)
    counter_inc("spikes.total", result.cost.spike_count)
    counter_inc("ticks.simulated", result.cost.simulated_ticks)
    counter_inc("cost.total_time", result.cost.total_time)
    return result


def semiring_matvec(
    graph: WeightedDigraph,
    semiring: Semiring,
    vector: np.ndarray,
    *,
    edge_value: str = "length",
) -> np.ndarray:
    """Reference (non-neuromorphic) ``A (x) vector`` for validating NGAs.

    Dense ``O(n + m)`` sweep over the CSR arrays; entries start at the
    semiring ``zero``.
    """
    if vector.shape != (graph.n,):
        raise ValidationError("vector length must equal graph.n")
    out = np.full(graph.n, semiring.zero, dtype=object)
    for i in range(graph.m):
        u = int(graph.tails[i])
        v = int(graph.heads[i])
        if vector[u] == semiring.zero:
            continue
        a = int(graph.lengths[i]) if edge_value == "length" else semiring.one
        out[v] = semiring.add(out[v], semiring.mul(a, vector[u]))
    return out
