"""Neuromorphic graph algorithm (NGA) model — paper Definition 4.

An NGA executes on a directed graph in rounds: each node broadcasts a
``lambda``-bit message on all out-edges, each edge transforms the message in
transit, and each node combines its incoming messages into next round's
message.  Edge and node functions are computed by small SNNs of depth
``T_edge`` and ``T_node``; an ``R``-round NGA therefore takes
``R * (T_edge + T_node)`` time.

:mod:`~repro.nga.model` provides the generic round executor;
:mod:`~repro.nga.semiring` and :mod:`~repro.nga.matvec` instantiate the
paper's worked example — computing ``A^r m_0`` over a semiring, of which
min-plus matrix powers (k-hop shortest paths) are the special case the rest
of the paper develops.
"""

from repro.nga.semiring import BOOLEAN, MAX_PLUS, MIN_PLUS, PLUS_TIMES, Semiring
from repro.nga.model import NGAResult, NeuromorphicGraphAlgorithm
from repro.nga.matvec import matrix_power_nga, semiring_matvec

__all__ = [
    "Semiring",
    "MIN_PLUS",
    "MAX_PLUS",
    "PLUS_TIMES",
    "BOOLEAN",
    "NeuromorphicGraphAlgorithm",
    "NGAResult",
    "matrix_power_nga",
    "semiring_matvec",
]
