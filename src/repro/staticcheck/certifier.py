"""Resource-bound certifier: counted sizes vs. the paper's theorem budgets.

Each circuit family and algorithm network of this repository comes with a
provable resource bound — Theorem 5.1 (wired-OR max: ``O(d·lambda)``
neurons, ``O(lambda)`` depth), Theorem 5.2 (brute-force max: constant
depth), the depth-2 carry-lookahead and constant-depth SiU adders, and
Theorem 3.1 / Section 3 (SSSP: the graph *is* the network — ``n``
neurons, ``m`` synapses, runtime at most ``(n-1)·U + 1`` ticks).  The
certifier *measures* each compiled artifact (neurons, synapses, depth,
planned runtime) and checks the measurement against a closed-form budget
derived from those theorems, so a future change that silently inflates a
compiled circuit fails CI as a budget regression, not as a mystery
slowdown.

Budgets marked ``exact=True`` are exact closed forms of the current
constructions (the tests pin them with equality); the others are safe
caps within the theorem's asymptotic class.  Every certified artifact is
also run through the :mod:`repro.staticcheck.rules` linter, so one
certification report doubles as the repo-wide structural gate.

Circuit sizes below *include* the input neurons and (where used) the run
line, matching ``CircuitBuilder.size``; ``d`` is the number of input
numbers and ``lambda`` the bit width, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.circuits.builder import CircuitBuilder
from repro.errors import StaticCheckError
from repro.staticcheck.diagnostics import LintReport
from repro.staticcheck.rules import lint_circuit, lint_network

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.workloads.graph import WeightedDigraph

#: (theorem label, params -> builder, params -> budget)
FamilySpec = Tuple[
    str,
    Callable[[Dict[str, int]], CircuitBuilder],
    Callable[[Dict[str, int]], "ResourceBudget"],
]

__all__ = [
    "ResourceBudget",
    "CertEntry",
    "CertificationReport",
    "CIRCUIT_FAMILIES",
    "certify_circuit",
    "certify_library",
    "certify_sssp",
    "certify_khop",
]


@dataclass(frozen=True)
class ResourceBudget:
    """Upper bounds an artifact must not exceed (``None`` = unchecked).

    ``settle`` bounds the last certified spike tick (the temporal
    analysis' ``last_spike_bound``); ``quiescence`` bounds the tick at
    which the engine provably reports QUIESCENT (last spike plus the
    maximum delay still in flight).  ``unbounded=True`` inverts the
    temporal check: the construction is *expected* to never quiesce (the
    Figure-1B one-shot gadget latches fire forever once set), and a
    bounded analysis means the construction silently changed.
    """

    neurons: Optional[int] = None
    synapses: Optional[int] = None
    depth: Optional[int] = None
    runtime: Optional[int] = None
    settle: Optional[int] = None
    quiescence: Optional[int] = None
    unbounded: bool = False
    #: True when the neuron/synapse bounds are exact closed forms of the
    #: current construction (equality is pinned by tests), False for caps.
    exact: bool = False

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"exact": self.exact}
        for key in ("neurons", "synapses", "depth", "runtime", "settle", "quiescence"):
            value = getattr(self, key)
            if value is not None:
                out[key] = int(value)
        if self.unbounded:
            out["unbounded"] = True
        return out


@dataclass(frozen=True)
class CertEntry:
    """One certified artifact: measurement, budget, verdict."""

    kind: str
    theorem: str
    params: Tuple[Tuple[str, int], ...]
    neurons: int
    synapses: int
    depth: Optional[int]
    runtime: Optional[int]
    budget: ResourceBudget
    violations: Tuple[str, ...]
    lint_ok: bool
    #: Certified last-spike tick from the temporal analysis (None when the
    #: analysis proves the network never quiesces, or was not run).
    settle: Optional[int] = None
    #: Certified quiescence tick (settle + max in-flight delay).
    quiescence: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.violations and self.lint_ok

    def label(self) -> str:
        ps = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({ps})" if ps else self.kind

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "theorem": self.theorem,
            "params": dict(self.params),
            "neurons": self.neurons,
            "synapses": self.synapses,
            "budget": self.budget.to_dict(),
            "ok": self.ok,
            "lint_ok": self.lint_ok,
        }
        if self.depth is not None:
            out["depth"] = self.depth
        if self.runtime is not None:
            out["runtime"] = self.runtime
        if self.settle is not None:
            out["settle"] = self.settle
        if self.quiescence is not None:
            out["quiescence"] = self.quiescence
        if self.budget.unbounded:
            out["unbounded"] = True
        if self.violations:
            out["violations"] = list(self.violations)
        return out

    def render(self) -> str:
        status = "ok" if self.ok else "FAILED"
        parts = [f"{self.neurons} neurons", f"{self.synapses} synapses"]
        if self.depth is not None:
            parts.append(f"depth {self.depth}")
        if self.runtime is not None:
            parts.append(f"runtime {self.runtime}")
        if self.quiescence is not None:
            parts.append(f"settle {self.settle}, quiescent by {self.quiescence}")
        elif self.budget.unbounded:
            parts.append("non-quiescent by design")
        line = f"{self.label()} [{self.theorem}]: {status} — {', '.join(parts)}"
        for v in self.violations:
            line += f"\n    budget violation: {v}"
        if not self.lint_ok:
            line += "\n    lint: error-severity diagnostics (see lint report)"
        return line


@dataclass
class CertificationReport:
    """Machine-readable certification of the whole circuit library."""

    entries: List[CertEntry] = field(default_factory=list)
    lint_reports: List[LintReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.entries)

    def raise_if_failed(self) -> "CertificationReport":
        bad = [e for e in self.entries if not e.ok]
        if bad:
            names = ", ".join(e.label() for e in bad[:5])
            more = f" (+{len(bad) - 5} more)" if len(bad) > 5 else ""
            raise StaticCheckError(
                f"resource certification failed for {names}{more}", report=self
            )
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "entries": [e.to_dict() for e in self.entries],
            "lint": [r.to_dict() for r in self.lint_reports],
        }

    def render(self) -> str:
        head = (
            f"certification: {'ok' if self.ok else 'FAILED'} — "
            f"{len(self.entries)} artifacts, "
            f"{sum(1 for e in self.entries if not e.ok)} failing"
        )
        return "\n".join([head] + [f"  {e.render()}" for e in self.entries])


# --------------------------------------------------------------------------- #
# Circuit family registry
# --------------------------------------------------------------------------- #


def _build_max(fn: Callable[..., Any]) -> Callable[[Dict[str, int]], CircuitBuilder]:
    def build(params: Dict[str, int]) -> CircuitBuilder:
        d, lam = params["d"], params["lam"]
        b = CircuitBuilder()
        nums = [b.input_bits(f"x{i}", lam) for i in range(d)]
        res = fn(b, nums)
        b.output_bits("out", res.out_bits)
        return b

    return build


def _build_adder(fn: Callable[..., Any]) -> Callable[[Dict[str, int]], CircuitBuilder]:
    def build(params: Dict[str, int]) -> CircuitBuilder:
        lam = params["lam"]
        b = CircuitBuilder()
        a = b.input_bits("a", lam)
        c = b.input_bits("b", lam)
        out = fn(b, a, c)
        b.output_bits("out", out)
        return b

    return build


def _build_comparator(params: Dict[str, int]) -> CircuitBuilder:
    from repro.circuits.comparators import comparator_geq

    lam = params["lam"]
    b = CircuitBuilder()
    a = b.input_bits("a", lam)
    c = b.input_bits("b", lam)
    out = comparator_geq(b, a, c)
    b.output_bits("out", [out], aligned=False)
    return b


def _budget_wired_or(p: Dict[str, int]) -> ResourceBudget:
    d, lam = p["d"], p["lam"]
    return ResourceBudget(
        neurons=5 * d * lam + 2 * lam + 1,
        synapses=10 * d * lam,
        depth=4 * lam + 2,
        settle=4 * lam + 2,
        quiescence=8 * lam + 3,
        exact=True,
    )


def _budget_brute_force(p: Dict[str, int]) -> ResourceBudget:
    d, lam = p["d"], p["lam"]
    return ResourceBudget(
        neurons=(2 * d + 1) * lam + d * d + 1,
        synapses=d * (2 * d + 1) * lam + 3 * d * (d - 1) // 2,
        depth=4,
        settle=4,
        quiescence=7,
        exact=True,
    )


def _budget_cla(p: Dict[str, int]) -> ResourceBudget:
    lam = p["lam"]
    return ResourceBudget(
        neurons=4 * lam + 1,
        synapses=lam * lam + 5 * lam,
        depth=2,
        settle=2,
        quiescence=4,
        exact=True,
    )


def _budget_siu(p: Dict[str, int]) -> ResourceBudget:
    lam = p["lam"]
    # Neuron count is exact; the synapse count has no clean closed form in
    # this construction, so certify the O(lambda^2) cap instead.
    return ResourceBudget(
        neurons=(lam * lam + 13 * lam + 2) // 2,
        synapses=4 * lam * lam + 8,
        depth=4,
        settle=4,
        quiescence=8,
        exact=False,
    )


def _budget_ripple(p: Dict[str, int]) -> ResourceBudget:
    lam = p["lam"]
    return ResourceBudget(
        neurons=5 * lam,
        synapses=8 * lam - 2,
        depth=lam + 1,
        settle=lam + 1,
        quiescence=2 * lam + 2,
        exact=True,
    )


def _budget_comparator(p: Dict[str, int]) -> ResourceBudget:
    lam = p["lam"]
    return ResourceBudget(
        neurons=2 * lam + 2,
        synapses=2 * lam + 1,
        depth=1,
        settle=1,
        quiescence=2,
        exact=True,
    )


def _circuit_families() -> Dict[str, FamilySpec]:
    from repro.circuits.adders import carry_lookahead_adder, ripple_adder, siu_adder
    from repro.circuits.max_circuits import brute_force_max, wired_or_max

    return {
        "wired_or_max": ("Thm 5.1", _build_max(wired_or_max), _budget_wired_or),
        "brute_force_max": ("Thm 5.2", _build_max(brute_force_max), _budget_brute_force),
        "carry_lookahead_adder": ("Sec 5, depth-2 adder", _build_adder(carry_lookahead_adder), _budget_cla),
        "siu_adder": ("Sec 5, SiU adder", _build_adder(siu_adder), _budget_siu),
        "ripple_adder": ("Sec 5, ripple adder", _build_adder(ripple_adder), _budget_ripple),
        "comparator_geq": ("Sec 5, comparator", _build_comparator, _budget_comparator),
    }


#: kind -> (theorem label, builder, budget formula).  Populated lazily to
#: avoid import cycles at package-import time.
CIRCUIT_FAMILIES: Dict[str, FamilySpec] = {}


def _families() -> Dict[str, FamilySpec]:
    if not CIRCUIT_FAMILIES:
        CIRCUIT_FAMILIES.update(_circuit_families())
    return CIRCUIT_FAMILIES


def _check_budget(
    neurons: int,
    synapses: int,
    depth: Optional[int],
    runtime: Optional[int],
    budget: ResourceBudget,
    *,
    settle: Optional[int] = None,
    quiescence: Optional[int] = None,
    bounded: Optional[bool] = None,
) -> Tuple[str, ...]:
    violations = []
    for label, measured, cap in (
        ("neurons", neurons, budget.neurons),
        ("synapses", synapses, budget.synapses),
        ("depth", depth, budget.depth),
        ("runtime", runtime, budget.runtime),
        ("settle", settle, budget.settle),
        ("quiescence", quiescence, budget.quiescence),
    ):
        if cap is not None and measured is not None and measured > cap:
            violations.append(f"{label} {measured} exceeds budget {cap}")
    if bounded is not None:
        if budget.unbounded and bounded:
            violations.append(
                "temporal analysis certifies quiescence but the construction "
                "is pinned non-quiescent (gadget latches changed?)"
            )
        if not budget.unbounded and not bounded and (
            budget.settle is not None or budget.quiescence is not None
        ):
            violations.append(
                "temporal analysis cannot certify quiescence but the budget "
                "requires a finite bound"
            )
    return tuple(violations)


def _measure_temporal(
    net: Any, entries: Sequence[int]
) -> Tuple[Optional[int], Optional[int], bool]:
    """(settle, quiescence, bounded) of ``net`` stimulated at ``entries``."""
    from repro.staticcheck.temporal import analyze_temporal

    analysis = analyze_temporal(net, stimulus=list(entries))
    if not analysis.bounded:
        return None, None, False
    return analysis.last_spike_bound, analysis.quiescence_bound, True


def certify_circuit(kind: str, **params: int) -> Tuple[CertEntry, LintReport]:
    """Build one library circuit, measure it, lint it, check its budget."""
    families = _families()
    if kind not in families:
        raise StaticCheckError(
            f"unknown circuit kind {kind!r}; known: {sorted(families)}"
        )
    theorem, build, budget_fn = families[kind]
    builder = build(params)
    budget: ResourceBudget = budget_fn(params)
    net = builder.net.compile()
    lint = lint_circuit(builder, subject=f"{kind}({params})")
    depth = builder.depth
    entries = [
        sig.nid for group in builder.input_groups.values() for sig in group
    ]
    settle, quiescence, bounded = _measure_temporal(net, entries)
    entry = CertEntry(
        kind=kind,
        theorem=theorem,
        params=tuple(sorted(params.items())),
        neurons=builder.size,
        synapses=net.m,
        depth=depth,
        runtime=None,
        budget=budget,
        violations=_check_budget(
            builder.size,
            net.m,
            depth,
            None,
            budget,
            settle=settle,
            quiescence=quiescence,
            bounded=bounded,
        ),
        lint_ok=lint.ok,
        settle=settle,
        quiescence=quiescence,
    )
    return entry, lint


def certify_sssp(
    graph: "WeightedDigraph", *, use_gadgets: bool = False
) -> Tuple[CertEntry, LintReport]:
    """Certify the Section-3 SSSP network for ``graph`` against Thm 3.1.

    The graph *is* the network: ``n`` neurons (``2n`` with the Figure-1B
    one-shot gadgets), one synapse per non-self-loop edge (plus ``3n``
    gadget synapses), and a worst-case runtime of ``(n-1)·U + 1`` ticks.
    """
    from repro.algorithms.sssp_pseudo import sssp_network, sssp_plan

    net, node_ids = sssp_network(graph, use_gadgets=use_gadgets)
    compiled = net.compile()
    m_eff = sum(1 for (u, v, _w) in graph.edges() if u != v)
    n = graph.n
    budget = ResourceBudget(
        neurons=2 * n if use_gadgets else n,
        synapses=m_eff + 3 * n if use_gadgets else m_eff,
        runtime=(n - 1) * max(1, graph.max_length()) + 1,
        exact=True,
    )
    plan = sssp_plan(graph, 0, use_gadgets=use_gadgets)
    lint = lint_network(
        compiled,
        subject=f"sssp_pseudo(n={n}, gadgets={use_gadgets})",
        entries=[node_ids[0]],
    )
    scale = plan.scale
    runtime_budget = budget.runtime if scale == 1 else (n - 1) * max(1, graph.max_length()) * scale + 1
    # Temporal budgets (Thm 3.1): every spike happens by (n-1)·U·scale —
    # the chain bound telescopes over at most n-1 one-shot hops of delay
    # at most U·scale — and the longest in-flight delay adds one more
    # U·scale, so the engine is provably QUIESCENT by n·U·scale.  The
    # gadget variant is pinned *non-quiescent*: its one-shot latches
    # self-excite forever once set (Figure 1B), by construction.
    u_scaled = max(1, graph.max_length()) * scale
    budget = ResourceBudget(
        neurons=budget.neurons,
        synapses=budget.synapses,
        runtime=runtime_budget,
        settle=None if use_gadgets else (n - 1) * u_scaled,
        quiescence=None if use_gadgets else n * u_scaled,
        unbounded=use_gadgets,
        exact=budget.exact,
    )
    settle, quiescence, bounded = _measure_temporal(compiled, [node_ids[0]])
    entry = CertEntry(
        kind="sssp_pseudo" + ("+gadgets" if use_gadgets else ""),
        theorem="Thm 3.1 / Sec 3",
        params=(("n", n), ("m", graph.m), ("U", graph.max_length())),
        neurons=compiled.n,
        synapses=compiled.m,
        depth=None,
        runtime=plan.max_steps,
        budget=budget,
        violations=_check_budget(
            compiled.n,
            compiled.m,
            None,
            plan.max_steps,
            budget,
            settle=settle,
            quiescence=quiescence,
            bounded=bounded,
        ),
        lint_ok=lint.ok,
        settle=settle,
        quiescence=quiescence,
    )
    return entry, lint


def certify_khop(graph: "WeightedDigraph", k: int) -> Tuple[CertEntry, LintReport]:
    """Certify the unit-delay k-hop reachability network (Sec 4 variant)."""
    from repro.algorithms.reach import khop_reach_network, khop_reach_plan

    net, node_ids = khop_reach_network(graph)
    compiled = net.compile()
    m_eff = sum(1 for (u, v, _w) in graph.edges() if u != v)
    n = graph.n
    # Unit delays, one-shot neurons: every spike happens by hop n-1, so
    # the network quiesces by tick n regardless of k (the planned horizon
    # k deliberately truncates earlier when k < n - 1).
    budget = ResourceBudget(
        neurons=n,
        synapses=m_eff,
        runtime=int(k),
        settle=max(1, n - 1),
        quiescence=n,
        exact=True,
    )
    plan = khop_reach_plan(graph, 0, k)
    lint = lint_network(
        compiled, subject=f"khop_reach(n={n}, k={k})", entries=[node_ids[0]]
    )
    settle, quiescence, bounded = _measure_temporal(compiled, [node_ids[0]])
    entry = CertEntry(
        kind="khop_reach",
        theorem="Sec 4, k-hop",
        params=(("k", int(k)), ("n", n), ("m", graph.m)),
        neurons=compiled.n,
        synapses=compiled.m,
        depth=None,
        runtime=plan.max_steps,
        budget=budget,
        violations=_check_budget(
            compiled.n,
            compiled.m,
            None,
            plan.max_steps,
            budget,
            settle=settle,
            quiescence=quiescence,
            bounded=bounded,
        ),
        lint_ok=lint.ok,
        settle=settle,
        quiescence=quiescence,
    )
    return entry, lint


#: Default parameter grid certified by ``repro lint`` and CI.
DEFAULT_GRID: Dict[str, Sequence[Dict[str, int]]] = {
    "wired_or_max": [{"d": d, "lam": lam} for d in (2, 4) for lam in (2, 4, 6)],
    "brute_force_max": [{"d": d, "lam": lam} for d in (2, 4) for lam in (2, 4, 6)],
    "carry_lookahead_adder": [{"lam": lam} for lam in (2, 4, 8)],
    "siu_adder": [{"lam": lam} for lam in (2, 4, 8)],
    "ripple_adder": [{"lam": lam} for lam in (2, 4, 8)],
    "comparator_geq": [{"lam": lam} for lam in (2, 4, 8)],
}


def certify_library(
    grid: Optional[Dict[str, Sequence[Dict[str, int]]]] = None,
) -> CertificationReport:
    """Certify every registered circuit family over a parameter grid."""
    report = CertificationReport()
    for kind, param_sets in (grid or DEFAULT_GRID).items():
        for params in param_sets:
            entry, lint = certify_circuit(kind, **params)
            report.entries.append(entry)
            report.lint_reports.append(lint)
    return report
