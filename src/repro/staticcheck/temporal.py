"""Temporal abstract interpretation: sound spike-time intervals per neuron.

The linter's SC130/SC131 interval analysis answers *whether* a neuron can
ever fire (supremum-voltage argument over the LIF dynamics).  This module
generalizes it to *when*: for each neuron a sound interval
``[earliest, latest]`` such that every spike the engines can produce falls
inside it, plus a certified **quiescence bound** — a tick by which every
run (dense, event, or sparse; solo or batched) is provably silent.

The analysis rests on one causation lemma over the engine dynamics of
:mod:`repro.core.lif` (Eqs. 1-3, strict threshold):

    A non-pacemaker neuron (``v_reset <= v_threshold``, decay in
    ``[0, 1]``) entering any tick satisfies ``v <= v_threshold`` by
    induction (reset after a fire, sub-threshold otherwise), and
    ``v + (v_reset - v) * tau`` is a convex combination of two
    sub-threshold values.  Crossing the strict threshold therefore
    requires strictly positive net synaptic input that tick, which
    requires at least one **positive-weight delivery arriving at exactly
    that tick**.

Every spike thus traces back through a chain of positive-weight synapse
deliveries to a *forced origin*: an induced stimulus spike or a pacemaker.
Two consequences drive the two passes:

* **Earliest** (lower bounds): multi-source Dijkstra over the
  positive-weight synapse graph, seeded with each stimulated neuron's
  first stimulus tick and every pacemaker at tick 1 — no causal chain can
  outrun the shortest delay-weighted path.

* **Latest** (upper bounds): process the strongly connected components of
  the live positive subgraph in topological order.  A trivial SCC fires no
  later than its latest arriving cause.  Inside a non-trivial SCC every
  *caused* spike consumes one firing of its neuron, so when every member
  has a finite spike-count cap (``one_shot`` neurons cap at one; explicit
  construction contracts may cap others) a causal chain can linger at most
  ``(sum(caps) - 1) * max_internal_delay`` ticks past its entry.  A live
  cycle without such caps (or a pacemaker) is unbounded: ``latest = inf``
  for the component and everything downstream.

From the intervals: ``last_spike_bound = max(latest)`` over live neurons
and ``quiescence_bound = last_spike_bound + max_delay`` (all in-flight
deliveries from the last possible spike have landed; the dense engine's
quiescence stop triggers at or before that tick).

The model deliberately excludes **fault injection**: forced/spurious
spikes break the causation lemma, so admission decisions for fault-bearing
requests must keep their dynamic guards.  It assumes the structural
contract the linter enforces (finite params, decay in ``[0, 1]``, delays
``>= 1``); lint first.

:func:`repropagate` re-analyzes incrementally after a weight/delay patch:
only the *affected cone* — the forward closure of the patched synapses'
targets under positive synapses — can change, because no positive edge
leaves its own closure; values outside the cone are spliced from the
previous analysis and the two passes run restricted to the cone with
boundary seeding from the unchanged outside values.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.core.engine import StimulusSpec, _normalize_stimulus
from repro.core.network import CompiledNetwork, Network
from repro.errors import ValidationError
from repro.staticcheck.rules import _max_voltage
from repro.telemetry.metrics import counter_inc

__all__ = [
    "NO_SPIKE",
    "TemporalAnalysis",
    "analyze_temporal",
    "repropagate",
]

#: Sentinel in ``earliest`` / ``latest`` for provably-silent neurons.
NO_SPIKE: int = -1


@dataclass(frozen=True)
class TemporalAnalysis:
    """Per-neuron sound spike-time intervals for one (network, stimulus).

    ``earliest[v] <= t <= latest[v]`` for every tick ``t`` at which neuron
    ``v`` can fire in any fault-free run; ``live[v]`` is False when ``v``
    provably never fires (both sentinels are then :data:`NO_SPIKE`).
    ``latest`` is ``inf`` for neurons downstream of an uncapped live cycle
    or a pacemaker.
    """

    net: CompiledNetwork
    live: np.ndarray
    earliest: np.ndarray
    latest: np.ndarray
    #: per-neuron first/last stimulus tick (-1 where unstimulated); kept so
    #: :func:`repropagate` re-analyzes under the identical stimulus.
    stim_min: np.ndarray
    stim_max: np.ndarray
    #: extra per-neuron spike-count caps beyond ``one_shot`` (construction
    #: contracts, e.g. the Figure-1B latch gadget's relay), sorted.
    spike_caps: Tuple[Tuple[int, int], ...] = ()

    @property
    def n(self) -> int:
        return int(self.net.n)

    @property
    def live_count(self) -> int:
        return int(self.live.sum())

    @property
    def unbounded_count(self) -> int:
        """Live neurons whose latest-spike bound is infinite."""
        return int(np.isinf(self.latest[self.live]).sum())

    @property
    def bounded(self) -> bool:
        """True when every live neuron has a finite latest-spike tick."""
        return self.unbounded_count == 0

    @property
    def last_spike_bound(self) -> Optional[int]:
        """Tick after which no neuron can fire (None when unbounded)."""
        if not self.bounded:
            return None
        if not self.live.any():
            return NO_SPIKE
        return int(self.latest[self.live].max())

    @property
    def quiescence_bound(self) -> Optional[int]:
        """Tick by which every engine's quiescence stop has fired.

        The last possible spike lands its final delivery ``max_delay``
        ticks later; the dense/sparse loops then observe an empty buffer
        and stop (final tick never below 1).  ``None`` when the network is
        not provably quiescent (pacemakers or uncapped live cycles).
        """
        last = self.last_spike_bound
        if last is None:
            return None
        if last == NO_SPIKE:
            return 1
        return max(1, last + self.net.max_delay)

    def interval(self, nid: int) -> Optional[Tuple[int, Optional[int]]]:
        """``(earliest, latest)`` for one neuron; latest None when
        unbounded; the whole interval None when provably silent."""
        if not (0 <= nid < self.n):
            raise ValidationError(f"neuron id {nid} out of range for n={self.n}")
        if not self.live[nid]:
            return None
        hi = self.latest[nid]
        return int(self.earliest[nid]), (None if np.isinf(hi) else int(hi))

    def to_dict(self) -> Dict[str, object]:
        return {
            "neurons": self.n,
            "live": self.live_count,
            "never": self.n - self.live_count,
            "unbounded": self.unbounded_count,
            "bounded": self.bounded,
            "last_spike_bound": self.last_spike_bound,
            "quiescence_bound": self.quiescence_bound,
            "max_delay": int(self.net.max_delay),
        }

    def summary(self) -> str:
        q = self.quiescence_bound
        tail = f"quiesce<={q}" if q is not None else "unbounded"
        return (
            f"temporal: {self.live_count}/{self.n} live, "
            f"{self.unbounded_count} unbounded, {tail}"
        )


def _stim_bounds(
    stimulus: Optional[StimulusSpec], n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """First/last stimulus tick per neuron (-1 where unstimulated)."""
    stim = _normalize_stimulus(stimulus)
    stim_min = np.full(n, -1, dtype=np.int64)
    stim_max = np.full(n, -1, dtype=np.int64)
    for tick, ids in stim.items():
        if ids.size and (ids.min() < 0 or ids.max() >= n):
            raise ValidationError("stimulus neuron id out of range")
        cur = stim_min[ids]
        stim_min[ids] = np.where(cur < 0, tick, np.minimum(cur, tick))
        stim_max[ids] = np.maximum(stim_max[ids], tick)
    return stim_min, stim_max


def _normalize_caps(
    spike_caps: Optional[Mapping[int, int]], n: int
) -> Tuple[Tuple[int, int], ...]:
    if not spike_caps:
        return ()
    out: List[Tuple[int, int]] = []
    for nid, cap in spike_caps.items():
        nid, cap = int(nid), int(cap)
        if not (0 <= nid < n):
            raise ValidationError(f"spike-cap neuron id {nid} out of range")
        if cap < 1:
            raise ValidationError(f"spike cap for neuron {nid} must be >= 1")
        out.append((nid, cap))
    return tuple(sorted(out))


def analyze_temporal(
    network: Union[Network, CompiledNetwork],
    stimulus: Optional[StimulusSpec] = None,
    *,
    spike_caps: Optional[Mapping[int, int]] = None,
) -> TemporalAnalysis:
    """Compute sound per-neuron spike-time intervals for ``network``.

    ``stimulus`` uses the engine convention: a sequence of neuron ids
    induced to spike at tick 0, or a mapping ``{tick: ids}``.
    ``spike_caps`` optionally asserts construction contracts — per-neuron
    total spike-count caps beyond the automatic ``one_shot`` cap of 1 —
    which tighten the latest-pass bound inside cycles.  Caps are *trusted*
    (they come from a gadget's documented behaviour, not from this
    analysis); pass only caps you can argue for.
    """
    net = network.compile() if isinstance(network, Network) else network
    stim_min, stim_max = _stim_bounds(stimulus, net.n)
    caps = _normalize_caps(spike_caps, net.n)
    counter_inc("staticcheck.temporal.analyses", 1)
    counter_inc("staticcheck.temporal.nodes", net.n)
    return _analyze(net, stim_min, stim_max, caps, cone=None, prev=None)


def repropagate(
    prev: TemporalAnalysis,
    network: Union[Network, CompiledNetwork],
    changed_synapses: Iterable[int],
) -> TemporalAnalysis:
    """Incrementally re-analyze after a weight/delay patch.

    ``network`` must share ``prev.net``'s topology (same neuron count and
    synapse endpoints, same stimulus); only the weights/delays of
    ``changed_synapses`` (global synapse indices) may differ.  Values are
    recomputed only inside the affected cone — the forward closure of the
    changed synapses' target neurons under the new positive synapse graph
    — and spliced into the previous analysis; :func:`analyze_temporal`
    from scratch provably agrees (differential-tested).
    """
    net = network.compile() if isinstance(network, Network) else network
    if net.n != prev.net.n or net.m != prev.net.m:
        raise ValidationError(
            "repropagate requires an unchanged topology "
            f"(got n={net.n}/m={net.m}, previous n={prev.net.n}/m={prev.net.m})"
        )
    changed = np.unique(np.asarray(list(changed_synapses), dtype=np.int64))
    if changed.size and (changed[0] < 0 or changed[-1] >= net.m):
        raise ValidationError("changed synapse index out of range")
    counter_inc("staticcheck.temporal.incremental", 1)
    if changed.size == 0:
        return replace(prev, net=net)
    # Forward closure of the patched targets under positive synapses: no
    # positive edge leaves its own closure, so everything outside is
    # unaffected by construction.
    cone = np.zeros(net.n, dtype=bool)
    frontier = np.unique(net.syn_dst[changed])
    cone[frontier] = True
    while frontier.size:
        syn = net.gather_out_synapses(frontier)
        syn = syn[net.syn_weight[syn] > 0] if syn.size else syn
        dsts = np.unique(net.syn_dst[syn]) if syn.size else np.empty(0, np.int64)
        frontier = dsts[~cone[dsts]] if dsts.size else dsts
        cone[frontier] = True
    counter_inc("staticcheck.temporal.cone_nodes", int(cone.sum()))
    return _analyze(
        net, prev.stim_min, prev.stim_max, prev.spike_caps, cone=cone, prev=prev
    )


# --------------------------------------------------------------------------- #
# Core analysis
# --------------------------------------------------------------------------- #

_INF_TICK = np.iinfo(np.int64).max


def _analyze(
    net: CompiledNetwork,
    stim_min: np.ndarray,
    stim_max: np.ndarray,
    caps: Tuple[Tuple[int, int], ...],
    *,
    cone: Optional[np.ndarray],
    prev: Optional[TemporalAnalysis],
) -> TemporalAnalysis:
    n, m = net.n, net.m
    sup = _max_voltage(net)
    # can the neuron ever cross threshold from synaptic drive alone?
    can_fire = sup > net.v_threshold
    pacemaker = net.v_reset > net.v_threshold
    src_of = (
        np.repeat(np.arange(n), np.diff(net.indptr)) if m else np.empty(0, np.int64)
    )
    pos = net.syn_weight > 0 if m else np.zeros(0, dtype=bool)
    in_cone = cone if cone is not None else np.ones(n, dtype=bool)

    # ---- earliest pass: multi-source Dijkstra over positive synapses ---- #
    dist = np.full(n, _INF_TICK, dtype=np.int64)
    if prev is not None:
        outside = ~in_cone
        dist[outside] = np.where(prev.live[outside], prev.earliest[outside], _INF_TICK)
    heap: List[Tuple[int, int]] = []

    def push(v: int, t: int) -> None:
        if t < dist[v]:
            dist[v] = t
            heapq.heappush(heap, (t, v))

    for v in np.flatnonzero(in_cone & (stim_min >= 0)):
        push(int(v), int(stim_min[v]))
    for v in np.flatnonzero(in_cone & pacemaker):
        push(int(v), 1)
    if prev is not None and m:
        # boundary: positive edges entering the cone from unchanged nodes
        border = (
            pos
            & ~in_cone[src_of]
            & in_cone[net.syn_dst]
            & prev.live[src_of]
            & can_fire[net.syn_dst]
        )
        for s in np.flatnonzero(border):
            push(int(net.syn_dst[s]), int(prev.earliest[src_of[s]] + net.syn_delay[s]))

    while heap:
        t, u = heapq.heappop(heap)
        if t > dist[u]:
            continue  # stale entry
        sl = net.out_synapses(u)
        w = net.syn_weight[sl]
        d = net.syn_delay[sl]
        dsts = net.syn_dst[sl]
        ok = (w > 0) & in_cone[dsts] & can_fire[dsts]
        for v, delay in zip(dsts[ok], d[ok]):
            push(int(v), t + int(delay))

    live = dist < _INF_TICK

    # ---- latest pass: SCC condensation in topological order ------------- #
    latest = np.full(n, np.inf)
    if prev is not None:
        latest[~in_cone] = prev.latest[~in_cone]

    # spike-count cap per neuron: one_shot neurons fire at most once from
    # synaptic causes; explicit contracts may cap others.
    cap = np.where(net.one_shot, 1.0, np.inf)
    for nid, c in caps:
        cap[nid] = min(cap[nid], float(c))

    dst = net.syn_dst
    elig = (
        pos & live[src_of] & live[dst] & can_fire[dst] & in_cone[dst]
        if m
        else np.zeros(0, dtype=bool)
    )
    internal = elig & in_cone[src_of] if m else elig
    external = elig & ~in_cone[src_of] if m else elig

    # latest arrival from seeds and from outside the cone
    base = np.full(n, -np.inf)
    seeded = in_cone & (stim_max >= 0)
    base[seeded] = stim_max[seeded]
    base[in_cone & pacemaker] = np.inf
    if prev is not None and external.any():
        np.maximum.at(
            base,
            dst[external],
            prev.latest[src_of[external]] + net.syn_delay[external],
        )

    if internal.any():
        graph = sp.csr_matrix(
            (
                np.ones(int(internal.sum()), dtype=np.int8),
                (src_of[internal], dst[internal]),
            ),
            shape=(n, n),
        )
        ncomp, comp = connected_components(graph, directed=True, connection="strong")
    else:
        ncomp, comp = n, np.arange(n)

    intra = internal & (comp[src_of] == comp[dst]) if m else internal
    cross = internal & (comp[src_of] != comp[dst]) if m else internal

    comp_dmax = np.zeros(ncomp, dtype=np.int64)
    comp_cyclic = np.zeros(ncomp, dtype=bool)
    if intra.any():
        np.maximum.at(comp_dmax, comp[src_of[intra]], net.syn_delay[intra])
        comp_cyclic[comp[src_of[intra]]] = True
    comp_capsum = np.zeros(ncomp)
    live_cone = live & in_cone
    if live_cone.any():
        np.add.at(comp_capsum, comp[live_cone], cap[live_cone])

    # members per component, restricted to live cone nodes
    member_ids = np.flatnonzero(live_cone)
    member_order = np.argsort(comp[member_ids], kind="stable")
    member_ids = member_ids[member_order]
    member_ptr = np.searchsorted(comp[member_ids], np.arange(ncomp + 1))

    # Kahn over the condensation using cross edges
    cross_idx = np.flatnonzero(cross)
    indeg = np.bincount(comp[dst[cross_idx]], minlength=ncomp)
    order = np.argsort(comp[src_of[cross_idx]], kind="stable")
    cross_idx = cross_idx[order]
    cross_ptr = np.searchsorted(comp[src_of[cross_idx]], np.arange(ncomp + 1))

    queue: List[int] = np.flatnonzero(indeg == 0).tolist()
    while queue:
        c = queue.pop()
        members = member_ids[member_ptr[c] : member_ptr[c + 1]]
        if members.size:
            b = float(base[members].max())
            if comp_cyclic[c]:
                if np.isinf(b) or np.isinf(comp_capsum[c]):
                    hi = np.inf
                else:
                    hi = b + (comp_capsum[c] - 1.0) * float(comp_dmax[c])
            else:
                hi = b
            # a live node always has a seed or a live in-edge, so b is
            # finite-or-inf; clamp to earliest for interval well-formedness
            latest[members] = np.maximum(hi, dist[members].astype(np.float64))
            # relax this component's outgoing cross edges
            es = cross_idx[cross_ptr[c] : cross_ptr[c + 1]]
            if es.size:
                np.maximum.at(
                    base, dst[es], latest[src_of[es]] + net.syn_delay[es]
                )
        else:
            es = cross_idx[cross_ptr[c] : cross_ptr[c + 1]]
        for e in es:
            dc = int(comp[dst[e]])
            indeg[dc] -= 1
            if indeg[dc] == 0:
                queue.append(dc)

    earliest = np.where(live, dist, NO_SPIKE)
    latest = np.where(live, latest, float(NO_SPIKE))
    return TemporalAnalysis(
        net=net,
        live=live,
        earliest=earliest,
        latest=latest,
        stim_min=stim_min,
        stim_max=stim_max,
        spike_caps=caps,
    )
