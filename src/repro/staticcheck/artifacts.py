"""Artifact verifiers: every compiled representation is lint-gated.

The SC1xx rules check the *dense* compile.  Since PRs 7-9 the engines also
consume two derived representations — the per-delay CSR slices of
:mod:`repro.core.sparse` and the shard router's partition of
:mod:`repro.service.net.shard` — whose invariants the simulators rely on
silently (delivery order, fault identity, cross-edge relaxation).  These
verifiers cross-check each derived artifact against the dense compile it
claims to represent, so a bucketing or partitioning bug fails lint instead
of surfacing as a wrong raster three layers up.

Rule catalog (stable codes, continuing the SC1xx table):

========  =====================  ========  ====================================
Code      Rule                   Severity  Fires when
========  =====================  ========  ====================================
SC150     bucket-delays          error     artifact delays are not the sorted
                                           distinct synapse delays
SC151     syn-id-partition       error     bucket synapse ids do not partition
                                           ``[0, m)``
SC152     bucket-label           error     ``syn_bucket`` disagrees with
                                           ``searchsorted(delays, syn_delay)``
SC153     bucket-content         error     a bucket row's targets/weights/order
                                           disagree with the dense CSR arrays
SC154     bucket-shape           error     matrix shape/indptr inconsistent
SC155     stale-artifact         error     the artifact's network is not the
                                           network being verified
SC160     shard-range            error     shard vertex ranges do not tile
                                           ``[0, n)`` contiguously
SC161     edge-partition         error     graph edges are not exactly
                                           partitioned into local + cross
SC162     cross-edge             error     a cross edge has bad endpoints,
                                           nonpositive weight, or stays local
SC163     shard-net              error     a shard's compiled network disagrees
                                           with its local subgraph (or two
                                           different subgraphs collide on one
                                           structure key)
========  =====================  ========  ====================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.network import CompiledNetwork
from repro.core.sparse import SparseCompiledNetwork, sparse_compile
from repro.staticcheck.diagnostics import Diagnostic, LintReport, Severity

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.service.net.shard import ShardedGraph

__all__ = [
    "ARTIFACT_RULES",
    "verify_sparse_artifact",
    "verify_shard_partition",
]

#: code -> (rule name, default severity, one-line summary)
ARTIFACT_RULES: Dict[str, Tuple[str, Severity, str]] = {
    "SC150": ("bucket-delays", Severity.ERROR, "artifact delays wrong or unsorted"),
    "SC151": ("syn-id-partition", Severity.ERROR, "bucket syn ids do not partition [0, m)"),
    "SC152": ("bucket-label", Severity.ERROR, "syn_bucket disagrees with delays"),
    "SC153": ("bucket-content", Severity.ERROR, "bucket rows disagree with dense CSR"),
    "SC154": ("bucket-shape", Severity.ERROR, "bucket matrix shape/indptr inconsistent"),
    "SC155": ("stale-artifact", Severity.ERROR, "artifact bound to a different network"),
    "SC160": ("shard-range", Severity.ERROR, "shard ranges do not tile [0, n)"),
    "SC161": ("edge-partition", Severity.ERROR, "edges not partitioned local + cross"),
    "SC162": ("cross-edge", Severity.ERROR, "cross edge inconsistent"),
    "SC163": ("shard-net", Severity.ERROR, "shard network disagrees with subgraph"),
}

_MAX_LISTED = 8


def _diag(
    code: str,
    message: str,
    *,
    neurons: Iterable[int] = (),
    synapses: Iterable[int] = (),
    count: Optional[int] = None,
) -> Diagnostic:
    rule, severity, _ = ARTIFACT_RULES[code]
    return Diagnostic(
        code=code,
        rule=rule,
        severity=severity,
        message=message,
        neurons=tuple(int(v) for v in list(neurons)[:_MAX_LISTED]),
        synapses=tuple(int(v) for v in list(synapses)[:_MAX_LISTED]),
        count=count,
    )


def _report(subject: str, net_n: int, net_m: int, out: List[Diagnostic]) -> LintReport:
    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    out.sort(key=lambda d: (order[d.severity], d.code))
    return LintReport(
        subject=subject, neurons=net_n, synapses=net_m, diagnostics=out, skipped=()
    )


# --------------------------------------------------------------------------- #
# Sparse CSR artifact (SC15x)
# --------------------------------------------------------------------------- #


def verify_sparse_artifact(
    network: Union[CompiledNetwork, SparseCompiledNetwork],
    *,
    subject: str = "sparse_artifact",
    against: Optional[CompiledNetwork] = None,
) -> LintReport:
    """Cross-check a per-delay CSR artifact against its dense compile.

    Accepts either the :class:`~repro.core.sparse.SparseCompiledNetwork`
    itself or a :class:`~repro.core.network.CompiledNetwork` (whose
    memoized artifact is used, building it on demand).  Verifies the
    invariants :func:`~repro.core.sparse.simulate_sparse` silently relies
    on: ascending unique bucket delays, global-synapse-id partition,
    per-synapse bucket labels, within-bucket (source asc, CSR position
    asc) delivery order, and exact weight/target agreement with the dense
    CSR arrays — the properties that make sparse runs spike-for-spike and
    fault-for-fault identical to dense ones.

    ``against`` optionally names the compiled network the caller *believes*
    the artifact represents (e.g. the incremental recompiler's current
    resident).  Identity disagreement is SC155 — a memo carried across a
    recompile — and the content checks then run against ``against``, so a
    stale-but-lucky artifact still has to match the live arrays.
    """
    if isinstance(network, SparseCompiledNetwork):
        art = network
        net = art.net if against is None else against
    else:
        net = network if against is None else against
        art = sparse_compile(network)
    out: List[Diagnostic] = []
    n, m = net.n, net.m

    if art.net is not net:
        out.append(
            _diag(
                "SC155",
                "artifact's network is a different object than the network "
                "under verification; the memo was carried across a recompile "
                "incorrectly",
            )
        )

    # SC150: delays ascending, unique, and exactly the distinct delays
    delays = np.asarray(art.delays)
    expect = np.unique(net.syn_delay) if m else np.empty(0, np.int64)
    if delays.size != expect.size or (delays.size and not np.array_equal(delays, expect)):
        out.append(
            _diag(
                "SC150",
                f"artifact delay table {delays.tolist()[:8]} does not equal "
                f"the sorted distinct synapse delays ({expect.size} expected)",
                count=int(delays.size),
            )
        )
    bad_bucket_delay = [
        k for k, b in enumerate(art.buckets)
        if k >= delays.size or int(b.delay) != int(delays[k])
    ]
    if len(art.buckets) != delays.size or bad_bucket_delay:
        out.append(
            _diag(
                "SC150",
                f"{len(art.buckets)} bucket(s) for {delays.size} delay(s), or "
                f"bucket delay out of order",
                count=len(art.buckets),
            )
        )
        return _report(subject, n, m, out)  # downstream checks would misindex

    # SC151: bucket syn ids partition [0, m)
    all_syn = (
        np.concatenate([b.syn for b in art.buckets])
        if art.buckets
        else np.empty(0, np.int64)
    )
    if all_syn.size != m or (
        m and not np.array_equal(np.sort(all_syn), np.arange(m))
    ):
        seen = np.zeros(m, dtype=np.int64)
        valid = all_syn[(all_syn >= 0) & (all_syn < m)]
        np.add.at(seen, valid, 1)
        missing = np.flatnonzero(seen == 0)
        dupes = np.flatnonzero(seen > 1)
        out.append(
            _diag(
                "SC151",
                f"bucket synapse ids do not partition [0, {m}): "
                f"{missing.size} missing, {dupes.size} duplicated, "
                f"{all_syn.size - valid.size} out of range",
                synapses=np.concatenate([missing[:4], dupes[:4]]),
                count=int(missing.size + dupes.size),
            )
        )
        return _report(subject, n, m, out)

    # SC152: per-synapse bucket label and per-bucket delay membership
    expect_label = (
        np.searchsorted(delays, net.syn_delay) if m else np.empty(0, np.int64)
    )
    if art.syn_bucket.size != m or (
        m and not np.array_equal(art.syn_bucket, expect_label)
    ):
        bad = (
            np.flatnonzero(art.syn_bucket != expect_label)
            if art.syn_bucket.size == m
            else np.arange(min(m, 1))
        )
        out.append(
            _diag(
                "SC152",
                f"{bad.size} synapse bucket label(s) disagree with "
                f"searchsorted(delays, syn_delay)",
                synapses=bad,
                count=int(bad.size),
            )
        )
    src_of = (
        np.repeat(np.arange(n, dtype=np.int64), np.diff(net.indptr))
        if m
        else np.empty(0, np.int64)
    )
    for k, b in enumerate(art.buckets):
        if m and (net.syn_delay[b.syn] != b.delay).any():
            bad = b.syn[net.syn_delay[b.syn] != b.delay]
            out.append(
                _diag(
                    "SC152",
                    f"bucket {k} (delay {b.delay}) contains {bad.size} "
                    f"synapse(s) of a different delay",
                    synapses=bad,
                    count=int(bad.size),
                )
            )

        # SC154: shape/indptr consistency
        rows = int(b.srcs.size)
        if b.matrix.shape != (rows, n) or b.indptr.size != rows + 1 or not (
            np.array_equal(np.asarray(b.matrix.indptr, dtype=np.int64), b.indptr)
        ):
            out.append(
                _diag(
                    "SC154",
                    f"bucket {k}: matrix shape {b.matrix.shape} / indptr "
                    f"len {b.indptr.size} inconsistent with {rows} source "
                    f"row(s) over n = {n}",
                )
            )
            continue
        if b.syn.size != int(b.indptr[-1]):
            out.append(
                _diag(
                    "SC154",
                    f"bucket {k}: {b.syn.size} synapse id(s) but indptr "
                    f"counts {int(b.indptr[-1])} stored entries",
                )
            )
            continue

        # SC153: row sources, targets, weights, and delivery order
        if not b.syn.size:
            continue
        srcs_sorted = bool(np.all(np.diff(b.srcs) > 0))
        row_src = np.repeat(b.srcs, np.diff(b.indptr))
        order_ok = bool(np.all(np.diff(b.syn) > 0))  # (source asc, CSR pos asc)
        src_ok = np.array_equal(src_of[b.syn], row_src)
        dst_ok = np.array_equal(
            np.asarray(b.matrix.indices, dtype=np.int64), net.syn_dst[b.syn]
        )
        w_ok = np.array_equal(np.asarray(b.matrix.data), net.syn_weight[b.syn])
        if not (srcs_sorted and order_ok and src_ok and dst_ok and w_ok):
            broken = [
                lbl
                for lbl, ok in (
                    ("source rows", srcs_sorted and src_ok),
                    ("delivery order", order_ok),
                    ("targets", dst_ok),
                    ("weights", w_ok),
                )
                if not ok
            ]
            out.append(
                _diag(
                    "SC153",
                    f"bucket {k} (delay {b.delay}) disagrees with the dense "
                    f"CSR arrays: {', '.join(broken)}",
                    synapses=b.syn[:_MAX_LISTED],
                )
            )

    return _report(subject, n, m, out)


# --------------------------------------------------------------------------- #
# Shard-router partition (SC16x)
# --------------------------------------------------------------------------- #


def verify_shard_partition(
    sharded: "ShardedGraph",
    *,
    kind: str = "sssp",
    subject: str = "shard_partition",
    check_networks: bool = True,
) -> LintReport:
    """Verify a shard router partition against its source graph.

    Checks contiguous range coverage of ``[0, n)`` (SC160), that every
    edge of the source graph appears exactly once as shard-local or cross
    (SC161), cross-edge endpoint/weight consistency (SC162), and — with
    ``check_networks`` — that each shard's compiled network agrees with
    its local subgraph and that equal structure keys only ever alias
    equal subgraphs (SC163, the resident-collision contract of the
    process pool).
    """
    out: List[Diagnostic] = []
    g = sharded.graph
    n = g.n

    # SC160: contiguous tiling of [0, n)
    size = sharded.shard_size
    expect_size = -(-n // sharded.k) if sharded.k else 0
    covered = 0
    bad_ranges = []
    for s, shard in enumerate(sharded.shards):
        base = s * size
        hi = min(base + size, n) if s < sharded.k - 1 else n
        if shard.index != s or shard.base != base or shard.n != hi - base:
            bad_ranges.append(s)
        covered += shard.n
    if size != expect_size or covered != n or bad_ranges:
        out.append(
            _diag(
                "SC160",
                f"shard ranges do not tile [0, {n}) contiguously "
                f"(shard_size {size}, expected {expect_size}; covered "
                f"{covered} of {n}; bad shards {bad_ranges[:4]})",
                count=len(bad_ranges),
            )
        )
        return _report(subject, n, g.m, out)

    # SC162: cross-edge endpoint/weight consistency
    for shard in sharded.shards:
        cs, cd, cw = shard.cross_src, shard.cross_dst, shard.cross_w
        bad = np.zeros(cs.size, dtype=bool)
        bad |= (cs < 0) | (cs >= shard.n)
        bad |= (cd < 0) | (cd >= n)
        bad |= cw < 1
        if cd.size:
            stays = np.array([sharded.shard_of(int(v)) == shard.index for v in cd])
            bad |= stays
        if bad.any():
            out.append(
                _diag(
                    "SC162",
                    f"shard {shard.index}: {int(bad.sum())} cross edge(s) "
                    f"with out-of-range endpoints, nonpositive weight, or a "
                    f"target inside the shard's own range",
                    count=int(bad.sum()),
                )
            )

    # SC161: exact edge partition (multiset equality with the source graph)
    parts = []
    for shard in sharded.shards:
        lg = shard.graph
        parts.append(
            np.stack(
                [lg.tails + shard.base, lg.heads + shard.base, lg.lengths], axis=1
            ).astype(np.int64)
            if lg.m
            else np.empty((0, 3), np.int64)
        )
        parts.append(
            np.stack(
                [shard.cross_src + shard.base, shard.cross_dst, shard.cross_w],
                axis=1,
            ).astype(np.int64)
            if shard.cross_dst.size
            else np.empty((0, 3), np.int64)
        )
    mine = np.concatenate(parts) if parts else np.empty((0, 3), np.int64)
    theirs = np.stack([g.tails, g.heads, g.lengths], axis=1).astype(np.int64)
    if mine.shape != theirs.shape or not np.array_equal(
        mine[np.lexsort(mine.T[::-1])], theirs[np.lexsort(theirs.T[::-1])]
    ):
        out.append(
            _diag(
                "SC161",
                f"shard-local + cross edges ({mine.shape[0]}) are not an "
                f"exact partition of the {g.m} source edges",
                count=int(abs(mine.shape[0] - g.m)),
            )
        )

    # SC163: shard networks agree with their subgraphs; structure keys
    # never alias two different subgraphs
    if check_networks:
        from repro.algorithms.reach import khop_reach_network
        from repro.algorithms.sssp_pseudo import sssp_network
        from repro.staticcheck.rules import lint_network

        by_key: Dict[str, Tuple[int, int]] = {}
        for shard in sharded.shards:
            lg = shard.graph
            net, node_ids = (
                sssp_network(lg, use_gadgets=False)
                if kind == "sssp"
                else khop_reach_network(lg)
            )
            compiled = net.compile()
            sub = lint_network(
                compiled,
                subject=f"{subject}/shard{shard.index}",
                entries=list(node_ids),
            )
            if not sub.ok:
                out.append(
                    _diag(
                        "SC163",
                        f"shard {shard.index}: compiled {kind} network fails "
                        f"structural lint ({len(sub.errors)} error(s): "
                        f"{sub.errors[0].render()})",
                        count=len(sub.errors),
                    )
                )
            m_local = int(sum(1 for (u, v, _w) in lg.edges() if u != v))
            if compiled.n != lg.n or compiled.m != m_local or len(node_ids) != lg.n:
                out.append(
                    _diag(
                        "SC163",
                        f"shard {shard.index}: compiled {kind} network has "
                        f"{compiled.n} neurons / {compiled.m} synapses but the "
                        f"local subgraph has {lg.n} vertices / {m_local} "
                        f"non-self-loop edges",
                    )
                )
            key = lg.structure_key()
            sig = (lg.n, int(compiled.m))
            if key in by_key and by_key[key] != sig:
                out.append(
                    _diag(
                        "SC163",
                        f"structure key {key!r} aliases two different shard "
                        f"subgraphs ({by_key[key]} vs {sig}); resident slots "
                        f"in the worker pool would collide",
                    )
                )
            by_key[key] = sig

    return _report(subject, n, g.m, out)
