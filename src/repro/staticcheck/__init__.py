"""Static analysis over compiled spiking networks (lint + certification).

Three layers, all running *before* any spike is simulated:

1. :mod:`~repro.staticcheck.rules` — a structural linter enforcing the
   paper's Definitions 1-3 and the engines' assumptions (integer delays
   ``>= delta``, in-range endpoints, reachable outputs, no cycles in
   feed-forward circuits, no provably-dead or always-hot neurons).
2. :mod:`~repro.staticcheck.certifier` — a resource-bound certifier that
   measures each compiled circuit and algorithm network against the
   closed-form budgets of Theorems 3.1, 5.1, and 5.2, doubling as a CI
   size-regression gate.
3. Integration hooks — ``verify=True`` in the circuit runner and the
   algorithm drivers, lint-on-admission in :mod:`repro.service`, and the
   ``repro lint`` CLI.
"""

from repro.staticcheck.artifacts import (
    ARTIFACT_RULES,
    verify_shard_partition,
    verify_sparse_artifact,
)
from repro.staticcheck.certifier import (
    DEFAULT_GRID,
    CertEntry,
    CertificationReport,
    ResourceBudget,
    certify_circuit,
    certify_khop,
    certify_library,
    certify_sssp,
)
from repro.staticcheck.diagnostics import Diagnostic, LintReport, Severity
from repro.staticcheck.rules import RULES, lint_circuit, lint_network
from repro.staticcheck.temporal import (
    NO_SPIKE,
    TemporalAnalysis,
    analyze_temporal,
    repropagate,
)

__all__ = [
    "Severity",
    "Diagnostic",
    "LintReport",
    "RULES",
    "lint_network",
    "lint_circuit",
    "ResourceBudget",
    "CertEntry",
    "CertificationReport",
    "DEFAULT_GRID",
    "certify_circuit",
    "certify_library",
    "certify_sssp",
    "certify_khop",
    "NO_SPIKE",
    "TemporalAnalysis",
    "analyze_temporal",
    "repropagate",
    "ARTIFACT_RULES",
    "verify_sparse_artifact",
    "verify_shard_partition",
]
