"""Diagnostic model of the static-analysis subsystem.

A :class:`Diagnostic` is one finding of a lint rule: a stable code (the
rule catalog of :mod:`repro.staticcheck.rules` and
``docs/static_analysis.md``), a severity, a human-readable message, and
the neuron/synapse indices it points at.  A :class:`LintReport` collects
every finding of one lint pass over one network together with a summary
of the linted structure; ``report.ok`` is the CI gate ("no error-severity
diagnostics").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import StaticCheckError

__all__ = ["Severity", "Diagnostic", "LintReport"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` marks a definite violation of the model contract (paper
    Definitions 1-3 or an engine assumption) — the network must not be
    simulated or served.  ``WARNING`` marks structure that is legal but
    almost certainly unintended (a provably silent internal gate, a
    duplicated synapse).  ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``neurons`` / ``synapses`` carry the indices the finding points at
    (synapse indices are positions in the compiled CSR arrays).  Long index
    lists are truncated by the rules to keep reports readable; ``count``
    preserves the true number of offenders.
    """

    code: str
    rule: str
    severity: Severity
    message: str
    neurons: Tuple[int, ...] = ()
    synapses: Tuple[int, ...] = ()
    count: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.neurons:
            out["neurons"] = list(self.neurons)
        if self.synapses:
            out["synapses"] = list(self.synapses)
        if self.count is not None:
            out["count"] = self.count
        return out

    def render(self) -> str:
        return f"{self.code} [{self.severity.value}] {self.rule}: {self.message}"


@dataclass
class LintReport:
    """Every finding of one lint pass over one network.

    ``subject`` names what was linted (a circuit kind, an algorithm
    network, a served resident); ``neurons`` / ``synapses`` summarize the
    structure so the report is meaningful on its own in CI artifacts.
    """

    subject: str
    neurons: int
    synapses: int
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Rule codes that were skipped because their precondition did not hold
    #: (e.g. reachability analysis without known entry points).
    skipped: Tuple[str, ...] = ()

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True iff no error-severity diagnostic fired (warnings allowed)."""
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def raise_if_errors(self) -> "LintReport":
        """Raise :class:`~repro.errors.StaticCheckError` on any error finding."""
        errs = self.errors
        if errs:
            lines = "; ".join(d.render() for d in errs[:5])
            more = f" (+{len(errs) - 5} more)" if len(errs) > 5 else ""
            raise StaticCheckError(
                f"static check failed for {self.subject}: {lines}{more}",
                report=self,
            )
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "neurons": self.neurons,
            "synapses": self.synapses,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "skipped": list(self.skipped),
        }

    def render(self) -> str:
        head = (
            f"lint {self.subject}: "
            f"{'ok' if self.ok else 'FAILED'} — "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings "
            f"({self.neurons} neurons, {self.synapses} synapses)"
        )
        lines = [head] + [f"  {d.render()}" for d in self.diagnostics]
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line rendering for the ``repro profile`` footer."""
        status = "ok" if self.ok else "FAILED"
        return (
            f"lint: {status} — {len(self.errors)} errors, "
            f"{len(self.warnings)} warnings ({self.neurons} neurons, "
            f"{self.synapses} synapses)"
        )
