"""Structural lint rules over compiled spiking networks.

The rules turn the paper's structural contract — Definitions 1-3 (integer
synapse delays ``>= delta``, programmable reset/threshold/decay,
designated input/output/terminal neurons) — and the engines' assumptions
into machine-checked invariants that run *before* any spike is simulated.

Rule catalog (stable codes; see ``docs/static_analysis.md``):

========  ====================  ========  =============================================
Code      Rule                  Severity  Fires when
========  ====================  ========  =============================================
SC101     dangling-synapse      error     a synapse endpoint is outside ``[0, n)``
SC102     bad-delay             error     a synapse delay is ``< delta`` or non-integer
SC103     nonfinite-weight      error     a synapse weight is NaN or infinite
SC104     duplicate-synapse     warning   two synapses share (src, dst, weight, delay)
SC110     cycle-in-feedforward  error     a declared-feed-forward network has a cycle
SC120     unreachable-output    error     an output/terminal has no path from any entry
SC121     unreachable-neuron    warning   a non-entry neuron has no path from any entry
SC122     isolated-neuron       info      a neuron has no synapses and no designation
SC130     dead-neuron           warn/err  interval analysis proves the neuron can
                                          never cross threshold (error on outputs and
                                          the terminal, warning elsewhere)
SC131     hot-neuron            warning   the neuron provably fires every tick with no
                                          input (pacemaker, ``v_reset > v_threshold``)
SC140     bad-designation       error     an input/output/terminal id is out of range
SC141     nonfinite-params      error     a neuron's reset/threshold/decay is not
                                          finite, or decay lies outside ``[0, 1]``
========  ====================  ========  =============================================

Analyses that need to know where external stimulus can enter
(reachability SC120-SC122, dead-neuron SC130) use the network's marked
input neurons by default; algorithm networks that stimulate unmarked
neurons pass their stimulus ids via ``entries``.  When no entry points
are known those rules are skipped and recorded in
:attr:`~repro.staticcheck.diagnostics.LintReport.skipped` — without them
any neuron could be driven externally, so nothing is provably dead or
unreachable.

The dead/hot analysis is a sound interval argument over the LIF dynamics
of :mod:`repro.core.lif`: with per-tick positive synaptic input at most
``I+`` (the sum of positive incoming weights), the voltage excess over
``v_reset`` obeys ``e(t) = e(t-1) * (1 - tau) + I+``, whose supremum is
``I+ / tau`` for ``tau > 0`` and unbounded for a perfect integrator
(``tau = 0``) with ``I+ > 0``.  A neuron whose supremum voltage
``v_reset + sup(e)`` never strictly exceeds ``v_threshold`` can never
fire (Eq. 2 fires on the strict inequality).
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.lif import DEFAULT_DELTA
from repro.core.network import CompiledNetwork, Network
from repro.staticcheck.diagnostics import Diagnostic, LintReport, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.circuits.builder import CircuitBuilder

__all__ = ["RULES", "lint_network", "lint_circuit"]

#: code -> (rule name, default severity, one-line summary)
RULES: Dict[str, Tuple[str, Severity, str]] = {
    "SC101": ("dangling-synapse", Severity.ERROR, "synapse endpoint out of range"),
    "SC102": ("bad-delay", Severity.ERROR, f"synapse delay < {DEFAULT_DELTA} or non-integer"),
    "SC103": ("nonfinite-weight", Severity.ERROR, "synapse weight is NaN or infinite"),
    "SC104": ("duplicate-synapse", Severity.WARNING, "identical synapse appears twice"),
    "SC110": ("cycle-in-feedforward", Severity.ERROR, "cycle in a declared-feed-forward network"),
    "SC120": ("unreachable-output", Severity.ERROR, "output/terminal unreachable from entries"),
    "SC121": ("unreachable-neuron", Severity.WARNING, "neuron unreachable from entries"),
    "SC122": ("isolated-neuron", Severity.INFO, "neuron with no synapses and no designation"),
    "SC130": ("dead-neuron", Severity.WARNING, "membrane potential provably never crosses threshold"),
    "SC131": ("hot-neuron", Severity.WARNING, "neuron provably fires every tick (pacemaker)"),
    "SC140": ("bad-designation", Severity.ERROR, "input/output/terminal id out of range"),
    "SC141": ("nonfinite-params", Severity.ERROR, "neuron parameters not finite or decay out of range"),
}

#: Cap on how many offender indices a single diagnostic lists.
_MAX_LISTED = 8


def _ids(values: Iterable[int]) -> Tuple[int, ...]:
    return tuple(int(v) for v in list(values)[:_MAX_LISTED])


def _diag(
    code: str,
    message: str,
    *,
    severity: Optional[Severity] = None,
    neurons: Iterable[int] = (),
    synapses: Iterable[int] = (),
    count: Optional[int] = None,
) -> Diagnostic:
    rule, default_sev, _ = RULES[code]
    return Diagnostic(
        code=code,
        rule=rule,
        severity=severity or default_sev,
        message=message,
        neurons=_ids(neurons),
        synapses=_ids(synapses),
        count=count,
    )


def _name(net: CompiledNetwork, nid: int) -> str:
    names = net.names
    if 0 <= nid < len(names) and names[nid]:
        return f"{nid} ({names[nid]})"
    return str(nid)


# --------------------------------------------------------------------------- #
# Individual passes
# --------------------------------------------------------------------------- #


def _check_integrity(net: CompiledNetwork, out: List[Diagnostic]) -> bool:
    """SC101/SC102/SC103/SC140/SC141: array-level contract of Defs 1-3.

    Returns False when endpoints are corrupt, in which case the graph-based
    passes are skipped (they would index out of bounds).
    """
    n, m = net.n, net.m
    sound = True

    if m:
        src_of = np.repeat(np.arange(n), np.diff(net.indptr)) if n else np.empty(0, int)
        bad_ep = (net.syn_dst < 0) | (net.syn_dst >= n)
        if src_of.size != m or bad_ep.any():
            idx = np.flatnonzero(bad_ep) if bad_ep.any() else np.arange(min(m, 1))
            out.append(
                _diag(
                    "SC101",
                    f"{int(bad_ep.sum())} synapse(s) point at neurons outside [0, {n})",
                    synapses=idx,
                    count=int(bad_ep.sum()),
                )
            )
            sound = False

        delays = net.syn_delay
        if not np.issubdtype(delays.dtype, np.integer):
            frac = delays != np.floor(delays)
            if frac.any():
                idx = np.flatnonzero(frac)
                out.append(
                    _diag(
                        "SC102",
                        f"{idx.size} synapse delay(s) are non-integer "
                        f"(Definition 2 requires integer multiples of delta)",
                        synapses=idx,
                        count=int(idx.size),
                    )
                )
        low = delays < DEFAULT_DELTA
        if low.any():
            idx = np.flatnonzero(low)
            out.append(
                _diag(
                    "SC102",
                    f"{idx.size} synapse delay(s) below the hardware minimum "
                    f"delta = {DEFAULT_DELTA} (Section 2.2 prohibits them)",
                    synapses=idx,
                    count=int(idx.size),
                )
            )

        nonfinite = ~np.isfinite(net.syn_weight)
        if nonfinite.any():
            idx = np.flatnonzero(nonfinite)
            out.append(
                _diag(
                    "SC103",
                    f"{idx.size} synapse weight(s) are NaN or infinite",
                    synapses=idx,
                    count=int(idx.size),
                )
            )

    for label, arr in (("input", net.inputs), ("output", net.outputs)):
        arr = np.asarray(arr)
        if arr.size:
            bad = (arr < 0) | (arr >= n)
            if bad.any():
                out.append(
                    _diag(
                        "SC140",
                        f"{int(bad.sum())} designated {label} neuron id(s) out of "
                        f"range for n = {n}",
                        neurons=arr[bad],
                        count=int(bad.sum()),
                    )
                )
                sound = False
    if net.terminal is not None and not (0 <= net.terminal < n):
        out.append(
            _diag(
                "SC140",
                f"terminal neuron id {net.terminal} out of range for n = {n}",
                neurons=(net.terminal,) if n else (),
            )
        )
        sound = False

    bad_params = (
        ~np.isfinite(net.v_reset)
        | ~np.isfinite(net.v_threshold)
        | ~np.isfinite(net.tau)
        | (net.tau < 0.0)
        | (net.tau > 1.0)
    )
    if bad_params.any():
        idx = np.flatnonzero(bad_params)
        out.append(
            _diag(
                "SC141",
                f"{idx.size} neuron(s) have non-finite reset/threshold/decay "
                f"or decay outside [0, 1] (Definition 1)",
                neurons=idx,
                count=int(idx.size),
            )
        )
    return sound


def _check_duplicates(net: CompiledNetwork, out: List[Diagnostic]) -> None:
    """SC104: byte-identical synapses (same src, dst, weight, delay)."""
    m = net.m
    if m < 2:
        return
    src_of = np.repeat(np.arange(net.n), np.diff(net.indptr))
    rows = np.stack(
        [src_of, net.syn_dst, net.syn_delay, net.syn_weight.view(np.int64)], axis=1
    )
    _, first_idx, counts = np.unique(rows, axis=0, return_index=True, return_counts=True)
    dup_groups = counts > 1
    if dup_groups.any():
        n_extra = int((counts[dup_groups] - 1).sum())
        out.append(
            _diag(
                "SC104",
                f"{n_extra} synapse(s) duplicate another synapse exactly "
                f"(same source, target, weight, and delay); weights sum, "
                f"which is rarely intended",
                synapses=first_idx[dup_groups],
                count=n_extra,
            )
        )


def _check_cycles(net: CompiledNetwork, out: List[Diagnostic]) -> None:
    """SC110: Kahn's algorithm; residual nodes lie on or behind a cycle."""
    n = net.n
    indeg = np.bincount(net.syn_dst, minlength=n) if net.m else np.zeros(n, np.int64)
    indeg = indeg.copy()
    queue = deque(np.flatnonzero(indeg == 0).tolist())
    seen = 0
    while queue:
        u = queue.popleft()
        seen += 1
        sl = net.out_synapses(u)
        for v in net.syn_dst[sl]:
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(int(v))
    if seen < n:
        residual = np.flatnonzero(indeg > 0)
        out.append(
            _diag(
                "SC110",
                f"network was declared feed-forward but contains a cycle "
                f"through {residual.size} neuron(s), e.g. "
                f"{_name(net, int(residual[0]))}",
                neurons=residual,
                count=int(residual.size),
            )
        )


def _reachable_from(net: CompiledNetwork, entries: np.ndarray) -> np.ndarray:
    reached = np.zeros(net.n, dtype=bool)
    reached[entries] = True
    frontier = entries
    while frontier.size:
        syn_idx = net.gather_out_synapses(frontier)
        dsts = np.unique(net.syn_dst[syn_idx]) if syn_idx.size else np.empty(0, int)
        new = dsts[~reached[dsts]] if dsts.size else dsts
        reached[new] = True
        frontier = new
    return reached


def _check_reachability(
    net: CompiledNetwork, entries: np.ndarray, out: List[Diagnostic]
) -> None:
    """SC120/SC121: outputs and the terminal must be reachable from entries."""
    reached = _reachable_from(net, entries)
    designated = set(np.asarray(net.outputs).tolist())
    if net.terminal is not None:
        designated.add(int(net.terminal))
    dead_outputs = sorted(v for v in designated if not reached[v])
    if dead_outputs:
        out.append(
            _diag(
                "SC120",
                f"{len(dead_outputs)} output/terminal neuron(s) have no path "
                f"from any entry point, e.g. {_name(net, dead_outputs[0])} — "
                f"they can never answer",
                neurons=dead_outputs,
                count=len(dead_outputs),
            )
        )
    other = np.flatnonzero(~reached)
    other = other[~np.isin(other, sorted(designated))] if other.size else other
    if other.size:
        out.append(
            _diag(
                "SC121",
                f"{other.size} neuron(s) are unreachable from every entry "
                f"point and will never participate in a run",
                neurons=other,
                count=int(other.size),
            )
        )


def _check_isolated(
    net: CompiledNetwork, entries: Optional[np.ndarray], out: List[Diagnostic]
) -> None:
    """SC122: neurons with no synapses at all and no designated role."""
    n = net.n
    fan_out = np.diff(net.indptr)
    fan_in = np.bincount(net.syn_dst, minlength=n) if net.m else np.zeros(n, np.int64)
    isolated = (fan_out == 0) & (fan_in == 0)
    keep = np.ones(n, dtype=bool)
    for arr in (net.inputs, net.outputs):
        keep[np.asarray(arr, dtype=np.int64)] = False
    if net.terminal is not None:
        keep[net.terminal] = False
    if entries is not None and entries.size:
        keep[entries] = False
    idx = np.flatnonzero(isolated & keep)
    if idx.size:
        out.append(
            _diag(
                "SC122",
                f"{idx.size} neuron(s) have no synapses and no designated "
                f"role (dead weight in every engine)",
                neurons=idx,
                count=int(idx.size),
            )
        )


def _max_voltage(net: CompiledNetwork) -> np.ndarray:
    """Supremum of any attainable pre-threshold voltage, per neuron.

    Sound upper bound: assume every positive in-synapse delivers every
    tick and no inhibition arrives.  ``e(t) = e(t-1)(1-tau) + I+`` has
    supremum ``I+/tau`` (``tau > 0``) or ``inf`` (``tau = 0``, ``I+ > 0``).
    """
    n = net.n
    i_pos = np.zeros(n, dtype=np.float64)
    if net.m:
        pos = net.syn_weight > 0
        np.add.at(i_pos, net.syn_dst[pos], net.syn_weight[pos])
    sup = np.full(n, np.nan)
    with np.errstate(divide="ignore", invalid="ignore"):
        decaying = net.tau > 0.0
        sup[decaying] = net.v_reset[decaying] + i_pos[decaying] / net.tau[decaying]
    integrator = ~decaying
    sup[integrator & (i_pos > 0)] = np.inf
    sup[integrator & (i_pos == 0)] = net.v_reset[integrator & (i_pos == 0)]
    return sup


def _check_dead_hot(
    net: CompiledNetwork, entries: Optional[np.ndarray], out: List[Diagnostic]
) -> None:
    """SC130/SC131: interval analysis over weights, decay, and reset."""
    n = net.n
    hot = net.v_reset > net.v_threshold
    if hot.any():
        idx = np.flatnonzero(hot)
        out.append(
            _diag(
                "SC131",
                f"{idx.size} pacemaker neuron(s) fire every tick with no "
                f"input (v_reset > v_threshold); the event engine rejects "
                f"such networks",
                neurons=idx,
                count=int(idx.size),
            )
        )
    if entries is None:
        return  # any neuron could be driven externally; nothing is provably dead
    sup = _max_voltage(net)
    dead = sup <= net.v_threshold
    dead[entries] = False  # stimulated neurons are forced to fire directly
    if not dead.any():
        return
    designated = np.zeros(n, dtype=bool)
    designated[np.asarray(net.outputs, dtype=np.int64)] = True
    if net.terminal is not None:
        designated[net.terminal] = True
    dead_out = np.flatnonzero(dead & designated)
    dead_in = np.flatnonzero(dead & ~designated)
    if dead_out.size:
        out.append(
            _diag(
                "SC130",
                f"{dead_out.size} output/terminal neuron(s) can provably "
                f"never reach threshold (max attainable voltage <= "
                f"v_threshold), e.g. {_name(net, int(dead_out[0]))}",
                severity=Severity.ERROR,
                neurons=dead_out,
                count=int(dead_out.size),
            )
        )
    if dead_in.size:
        out.append(
            _diag(
                "SC130",
                f"{dead_in.size} neuron(s) can provably never reach "
                f"threshold and are structurally silent",
                neurons=dead_in,
                count=int(dead_in.size),
            )
        )


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #


def lint_network(
    network: Union[Network, CompiledNetwork],
    *,
    subject: str = "network",
    entries: Optional[Sequence[int]] = None,
    expect_feedforward: bool = False,
) -> LintReport:
    """Run every applicable lint rule over ``network``.

    Parameters
    ----------
    network:
        A builder :class:`~repro.core.network.Network` (compiled on the
        fly) or an already-compiled network.
    subject:
        Label for the report (a circuit kind, a resident id, ...).
    entries:
        Neuron ids where external stimulus can enter.  Defaults to the
        network's marked input neurons; pass the stimulus ids for
        algorithm networks that stimulate unmarked neurons.  When no
        entry points are known, reachability (SC120-SC122) and
        dead-neuron (SC130) analysis are skipped (recorded in
        ``report.skipped``).
    expect_feedforward:
        Check SC110 — the caller declares the network to be a
        feed-forward circuit (as every standalone
        :class:`~repro.circuits.builder.CircuitBuilder` product is), so
        any cycle is a construction bug.
    """
    from repro.core.sparse import SparseCompiledNetwork

    if isinstance(network, SparseCompiledNetwork):
        # Sparse-compiled networks share the dense CSR arrays; run the
        # structural rules on the underlying compile and append the
        # artifact cross-check so bucketing bugs fail the same gate.
        from repro.staticcheck.artifacts import verify_sparse_artifact

        report = lint_network(
            network.net,
            subject=subject,
            entries=entries,
            expect_feedforward=expect_feedforward,
        )
        art = verify_sparse_artifact(network, subject=subject)
        report.diagnostics.extend(art.diagnostics)
        return report
    if hasattr(network, "shards") and hasattr(network, "shard_of"):
        # Duck-typed ShardedGraph (repro.service.net.shard): verify the
        # partition, then lint every shard's compiled network.
        from repro.staticcheck.artifacts import verify_shard_partition

        return verify_shard_partition(network, subject=subject)

    net = network.compile() if isinstance(network, Network) else network
    diagnostics: List[Diagnostic] = []
    skipped: List[str] = []

    sound = _check_integrity(net, diagnostics)
    if sound:
        _check_duplicates(net, diagnostics)
        if expect_feedforward:
            _check_cycles(net, diagnostics)
        else:
            skipped.append("SC110")

        entry_arr: Optional[np.ndarray] = None
        if entries is not None:
            entry_arr = np.unique(np.asarray(list(entries), dtype=np.int64))
            if entry_arr.size and (
                (entry_arr < 0).any() or (entry_arr >= net.n).any()
            ):
                bad = entry_arr[(entry_arr < 0) | (entry_arr >= net.n)]
                diagnostics.append(
                    _diag(
                        "SC140",
                        f"{bad.size} entry-point id(s) out of range for "
                        f"n = {net.n}",
                        neurons=bad,
                        count=int(bad.size),
                    )
                )
                entry_arr = None
        elif np.asarray(net.inputs).size:
            entry_arr = np.asarray(net.inputs, dtype=np.int64)

        if entry_arr is not None and entry_arr.size:
            _check_reachability(net, entry_arr, diagnostics)
        else:
            skipped.extend(["SC120", "SC121"])
        _check_isolated(net, entry_arr, diagnostics)
        _check_dead_hot(net, entry_arr, diagnostics)
        if entry_arr is None:
            skipped.append("SC130")
    else:
        skipped.extend(["SC104", "SC110", "SC120", "SC121", "SC122", "SC130", "SC131"])

    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    diagnostics.sort(key=lambda d: (order[d.severity], d.code))
    return LintReport(
        subject=subject,
        neurons=net.n,
        synapses=net.m,
        diagnostics=diagnostics,
        skipped=tuple(dict.fromkeys(skipped)),
    )


def lint_circuit(builder: "CircuitBuilder", *, subject: Optional[str] = None) -> LintReport:
    """Lint a :class:`~repro.circuits.builder.CircuitBuilder` product.

    Standalone circuits are feed-forward by construction (every gate's
    offset strictly exceeds its inputs'), so SC110 is armed; entry points
    are the declared input groups (including the run line).  Builders
    that extend an existing recurrent network (the gate-level algorithm
    compilers) should lint the whole network with :func:`lint_network`
    instead.
    """
    entries = [
        sig.nid for group in builder.input_groups.values() for sig in group
    ]
    return lint_network(
        builder.net,
        subject=subject or "circuit",
        entries=entries,
        expect_feedforward=True,
    )


def is_finite_number(value: float) -> bool:
    """Shared finiteness predicate for construction-time validation."""
    return math.isfinite(value)
