"""Per-tick engine observation hooks.

Both simulation engines (:func:`~repro.core.engine.simulate_dense`,
:func:`~repro.core.event_engine.simulate_event_driven`) and the stepping
:class:`~repro.core.session.DenseSession` accept an optional ``hooks``
argument.  When given, the engine reports each observable event to the
corresponding callback; when ``None`` (the default), every call site is a
single ``if hooks is not None`` branch, which is what keeps the disabled
path effectively free.

The contract the engine-equivalence tests enforce: on any network both
engines support, equivalent runs report **identical totals** through this
API — same spike counts, same scheduled/dropped delivery counts, same
forced and suppressed fault realizations — even though the engines visit
the work in different orders (the dense engine aggregates each tick, the
event engine aggregates each active tick's batch).

This module deliberately imports nothing from :mod:`repro.core`, so the
engines can import it without cycles.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["EngineHooks", "compose_hooks"]


class EngineHooks:
    """Observer interface for engine events; every method is a no-op.

    Subclass and override the callbacks you need (see
    :class:`~repro.telemetry.trace.TraceRecorder` for the canonical
    consumer).  Engines only invoke callbacks for events that actually
    occur: ticks with no spikes, deliveries, faults, or probes are silent,
    which is what lets the event engine skip quiet stretches without
    breaking cross-engine totals.

    ``ids`` arguments are NumPy int arrays owned by the engine — copy them
    if you retain them beyond the callback.
    """

    def on_run_start(self, n_neurons: int, max_steps: int, engine: str) -> None:
        """A run (or stepping session) over ``n_neurons`` neurons began."""

    def on_spikes(self, tick: int, ids: np.ndarray) -> None:
        """``ids`` fired at ``tick`` (recorded spikes only, never empty)."""

    def on_deliveries(self, tick: int, scheduled: int, dropped: int) -> None:
        """Synaptic events emitted at ``tick``: ``scheduled`` survived
        fault masking and entered the delivery structure, ``dropped`` were
        lost to :class:`~repro.core.transient.SpikeDrop`-style faults."""

    def on_probe(self, tick: int, ids: Sequence[int], values: np.ndarray) -> None:
        """Voltages of the probed neurons after the ``tick`` update."""

    def on_fault_forced(self, tick: int, ids: np.ndarray) -> None:
        """The fault model forced ``ids`` to fire at ``tick`` (non-empty)."""

    def on_fault_suppressed(self, tick: int, ids: np.ndarray) -> None:
        """Would-be spikes of ``ids`` at ``tick`` were suppressed
        ("fired but lost") by the fault model (non-empty)."""

    def on_stop(self, tick: int, reason: object, diagnostic: object = None) -> None:
        """The run ended at ``tick`` with
        :class:`~repro.core.result.StopReason` ``reason``; ``diagnostic``
        carries the watchdog report when one was attached."""


class _MultiHooks(EngineHooks):
    """Fans every callback out to several observers, in order."""

    def __init__(self, parts: Sequence[EngineHooks]):
        self.parts = tuple(parts)

    def on_run_start(self, n_neurons, max_steps, engine):
        for p in self.parts:
            p.on_run_start(n_neurons, max_steps, engine)

    def on_spikes(self, tick, ids):
        for p in self.parts:
            p.on_spikes(tick, ids)

    def on_deliveries(self, tick, scheduled, dropped):
        for p in self.parts:
            p.on_deliveries(tick, scheduled, dropped)

    def on_probe(self, tick, ids, values):
        for p in self.parts:
            p.on_probe(tick, ids, values)

    def on_fault_forced(self, tick, ids):
        for p in self.parts:
            p.on_fault_forced(tick, ids)

    def on_fault_suppressed(self, tick, ids):
        for p in self.parts:
            p.on_fault_suppressed(tick, ids)

    def on_stop(self, tick, reason, diagnostic=None):
        for p in self.parts:
            p.on_stop(tick, reason, diagnostic)


def compose_hooks(*hooks: Optional[EngineHooks]) -> Optional[EngineHooks]:
    """Combine observers; ``None`` entries are skipped.

    Returns ``None`` when nothing remains (so the engines keep their
    zero-branch disabled path), the sole observer when one remains, and a
    fan-out wrapper otherwise.
    """
    parts = [h for h in hooks if h is not None]
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return _MultiHooks(parts)
