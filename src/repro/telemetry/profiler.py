"""Phase-timer profiling of algorithm entry points.

The algorithm runners (:mod:`repro.algorithms`, the circuit driver, the
NGA matvec executor) are instrumented with ``timer("phase.<name>")`` and
``counter_inc("spikes.total", ...)`` calls that report into the active
:class:`~repro.telemetry.metrics.MetricsRegistry`.  :class:`Profiler`
activates a fresh registry around a call, captures wall time, and turns
the result into a :class:`ProfileReport` whose spike-op counters are
reconciled against the run's :class:`~repro.core.cost.CostReport` — a
profile whose measured spikes disagree with the model cost accounting is
flagged rather than silently trusted.

    profiler = Profiler("sssp")
    result = profiler.run(spiking_sssp_pseudo, g, 0)
    print(profiler.report(cost=result.cost).render())
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.cost import CostReport
from repro.telemetry.metrics import MetricsRegistry, use_registry

__all__ = ["PhaseStat", "ProfileReport", "Profiler"]

#: Counter-name -> CostReport attribute pairs checked during reconciliation.
_RECONCILED = (
    ("spikes.total", "spike_count"),
    ("ticks.simulated", "simulated_ticks"),
)


@dataclass(frozen=True)
class PhaseStat:
    """Aggregated timings of one instrumented phase."""

    name: str
    seconds: float
    count: int


@dataclass
class ProfileReport:
    """Rendered outcome of one profiled call.

    ``reconciliation`` maps counter names to ``(measured, expected, ok)``
    against the supplied :class:`~repro.core.cost.CostReport`; counters the
    run never recorded are skipped rather than reported as mismatches.
    """

    name: str
    wall_seconds: float
    phases: List[PhaseStat]
    counters: Dict[str, float]
    cost: Optional[CostReport] = None
    reconciliation: Dict[str, Tuple[float, float, bool]] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        """True when every reconciled counter matches the cost report."""
        return all(ok for _, _, ok in self.reconciliation.values())

    def render(self) -> str:
        """Multi-line human-readable profile."""
        lines = [f"profile: {self.name}", f"wall time: {self.wall_seconds * 1e3:.2f} ms"]
        if self.phases:
            lines.append("phases:")
            width = max(len(p.name) for p in self.phases)
            for p in self.phases:
                share = (
                    f" ({100.0 * p.seconds / self.wall_seconds:5.1f}%)"
                    if self.wall_seconds > 0
                    else ""
                )
                lines.append(
                    f"  {p.name.ljust(width)}  {p.seconds * 1e3:9.3f} ms"
                    f"  x{p.count}{share}"
                )
        if self.counters:
            lines.append("counters:")
            width = max(len(k) for k in self.counters)
            for k in sorted(self.counters):
                v = self.counters[k]
                shown = f"{int(v):,}" if float(v).is_integer() else f"{v:.4g}"
                lines.append(f"  {k.ljust(width)}  {shown}")
        if self.cost is not None:
            c = self.cost
            lines.append("cost report:")
            lines.append(f"  algorithm       {c.algorithm}")
            lines.append(f"  simulated ticks {c.simulated_ticks:,}")
            lines.append(f"  loading ticks   {c.loading_ticks:,}")
            lines.append(f"  total time      {c.total_time:,}")
            lines.append(f"  neurons         {c.neuron_count:,}")
            lines.append(f"  synapses        {c.synapse_count:,}")
            lines.append(f"  spikes          {c.spike_count:,}")
        if self.reconciliation:
            lines.append("reconciliation (measured vs cost report):")
            for k, (measured, expected, ok) in sorted(self.reconciliation.items()):
                status = "ok" if ok else "MISMATCH"
                lines.append(
                    f"  {k}: {int(measured):,} vs {int(expected):,} [{status}]"
                )
        return "\n".join(lines)


class Profiler:
    """Run callables under a fresh registry and summarize what they did."""

    def __init__(self, name: str = "profile"):
        self.name = name
        self.registry = MetricsRegistry(name)
        self.wall_seconds = 0.0

    def phase(self, name: str):
        """Context manager timing an explicit caller-side phase."""
        return self.registry.timer(f"phase.{name}")

    def run(self, fn: Callable, *args, **kwargs):
        """Call ``fn`` with this profiler's registry active; returns its result.

        Wall time accumulates across calls, so a profiler may time several
        repetitions of the same entry point.
        """
        t0 = time.perf_counter()
        with use_registry(self.registry):
            out = fn(*args, **kwargs)
        self.wall_seconds += time.perf_counter() - t0
        return out

    def report(self, cost: Optional[CostReport] = None) -> ProfileReport:
        """Summarize everything recorded; reconcile against ``cost`` if given."""
        snap = self.registry.snapshot()
        phases = [
            PhaseStat(
                name=k[len("phase.") :],
                seconds=float(v["total"]),
                count=int(v["count"]),
            )
            for k, v in sorted(snap["timers"].items())
            if k.startswith("phase.")
        ]
        phases.sort(key=lambda p: p.seconds, reverse=True)
        counters = dict(snap["counters"])
        reconciliation: Dict[str, Tuple[float, float, bool]] = {}
        if cost is not None:
            for counter_name, attr in _RECONCILED:
                if counter_name not in counters:
                    continue
                measured = float(counters[counter_name])
                expected = float(getattr(cost, attr))
                reconciliation[counter_name] = (
                    measured,
                    expected,
                    measured == expected,
                )
        return ProfileReport(
            name=self.name,
            wall_seconds=self.wall_seconds,
            phases=phases,
            counters=counters,
            cost=cost,
            reconciliation=reconciliation,
        )
