"""Counters, gauges, histograms, and timers with a context-scoped registry.

Instrumentation sites inside the package call the module-level helpers
(:func:`counter_inc`, :func:`timer`, ...).  Each helper resolves the
*active* :class:`MetricsRegistry` from a :class:`contextvars.ContextVar`;
when none is active (the default) the helper returns immediately, so
uninstrumented runs pay one context-variable read and one ``None`` check
per site — no allocation, no locking, no I/O.

Activate a registry for a scope with :func:`use_registry`::

    reg = MetricsRegistry("sssp-profile")
    with use_registry(reg):
        spiking_sssp_pseudo(g, 0)
    print(reg.snapshot()["counters"]["spikes.total"])

Registries are plain in-process objects; they are not thread-registered
anywhere, and because the active registry is a context variable, concurrent
tasks each see their own activation.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "MetricsRegistry",
    "RollingWindow",
    "active_registry",
    "use_registry",
    "counter_inc",
    "gauge_set",
    "merge_raw_into_active",
    "observe",
    "timer",
]

_ACTIVE: contextvars.ContextVar[Optional["MetricsRegistry"]] = contextvars.ContextVar(
    "repro_telemetry_registry", default=None
)


class _NullTimer:
    """Reusable no-op context manager returned when no registry is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _Timer:
    """Times one ``with`` block and records the duration on exit."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._registry.timer_observe(self._name, time.perf_counter() - self._t0)
        return False


def _series_summary(values: List[float]) -> Dict[str, float]:
    n = len(values)
    ordered = sorted(values)
    return {
        "count": n,
        "total": float(sum(ordered)),
        "min": float(ordered[0]),
        "max": float(ordered[-1]),
        "mean": float(sum(ordered) / n),
        "p50": float(ordered[n // 2]),
        "p95": float(ordered[min(n - 1, (n * 95) // 100)]),
    }


class RollingWindow:
    """Fixed-capacity ring of float observations with O(1) mean.

    The building block for *rolling-rate* decisions (the serving layer's
    circuit breakers feed it 1.0 per failure and 0.0 per success and read
    :meth:`mean` as the windowed error rate).  Unlike a histogram it
    forgets: only the last ``capacity`` observations contribute, so a
    burst of old failures cannot pin a rate high forever.  Not
    thread-safe; callers serialize access (the breaker holds its own lock).
    """

    __slots__ = ("capacity", "_values", "_next", "_count", "_total")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"RollingWindow capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._values: List[float] = []
        self._next = 0
        self._count = 0
        self._total = 0.0

    def push(self, value: float) -> None:
        value = float(value)
        if self._count < self.capacity:
            self._values.append(value)
            self._count += 1
        else:
            self._total -= self._values[self._next]
            self._values[self._next] = value
        self._total += value
        self._next = (self._next + 1) % self.capacity

    def __len__(self) -> int:
        return self._count

    def mean(self) -> float:
        """Mean of the retained observations (0.0 when empty)."""
        if self._count == 0:
            return 0.0
        return self._total / self._count

    def reset(self) -> None:
        self._values.clear()
        self._next = 0
        self._count = 0
        self._total = 0.0


class MetricsRegistry:
    """In-process metric store: counters, gauges, histograms, timers.

    Counters accumulate (:meth:`counter_inc`), gauges hold the last value
    set (:meth:`gauge_set`), histograms keep every observation
    (:meth:`observe`) and summarize on export, and timers are histograms of
    seconds fed by the :meth:`timer` context manager.  :meth:`snapshot`
    renders everything to plain JSON-serializable dicts.
    """

    def __init__(self, name: str = "default"):
        self.name = name
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}
        self._timers: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------ #

    def counter_inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        self._histograms.setdefault(name, []).append(float(value))

    def timer(self, name: str) -> _Timer:
        return _Timer(self, name)

    def timer_observe(self, name: str, seconds: float) -> None:
        self._timers.setdefault(name, []).append(float(seconds))

    # ------------------------------------------------------------------ #

    def timer_total(self, name: str) -> float:
        """Total seconds recorded under ``name`` (0.0 if never observed)."""
        return float(sum(self._timers.get(name, ())))

    def timer_names(self) -> List[str]:
        return sorted(self._timers)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's observations into this one."""
        for k, v in other.counters.items():
            self.counter_inc(k, v)
        self.gauges.update(other.gauges)
        for k, vs in other._histograms.items():
            self._histograms.setdefault(k, []).extend(vs)
        for k, vs in other._timers.items():
            self._timers.setdefault(k, []).extend(vs)

    def export_raw(self) -> Dict[str, object]:
        """Lossless, picklable dump for cross-process transport.

        Unlike :meth:`snapshot` (which summarizes histogram/timer series),
        this keeps every raw observation so a parent process can
        :meth:`merge_raw` a worker's registry and still compute exact
        percentiles.  The format is plain dicts/lists of floats — safe to
        send over a ``multiprocessing`` pipe or as JSON.
        """
        return {
            "name": self.name,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: list(v) for k, v in self._histograms.items()},
            "timers": {k: list(v) for k, v in self._timers.items()},
        }

    def merge_raw(self, raw: Dict[str, object]) -> None:
        """Fold an :meth:`export_raw` dump (e.g. from a worker process) in."""
        counters = raw.get("counters", {})
        if isinstance(counters, dict):
            for k, v in counters.items():
                self.counter_inc(str(k), float(v))
        gauges = raw.get("gauges", {})
        if isinstance(gauges, dict):
            for k, v in gauges.items():
                self.gauge_set(str(k), float(v))
        for field, store in (
            ("histograms", self._histograms),
            ("timers", self._timers),
        ):
            series = raw.get(field, {})
            if isinstance(series, dict):
                for k, vs in series.items():
                    store.setdefault(str(k), []).extend(float(v) for v in vs)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self._histograms.clear()
        self._timers.clear()

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable summary of everything recorded so far."""
        return {
            "name": self.name,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                k: _series_summary(v) for k, v in self._histograms.items() if v
            },
            "timers": {k: _series_summary(v) for k, v in self._timers.items() if v},
        }


# --------------------------------------------------------------------- #
# Context-scoped activation and no-op module-level helpers
# --------------------------------------------------------------------- #


def active_registry() -> Optional[MetricsRegistry]:
    """The registry instrumentation currently reports into, if any."""
    return _ACTIVE.get()


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make ``registry`` the active registry within the ``with`` block.

    Activations nest; the previous registry is restored on exit.
    """
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)


def counter_inc(name: str, value: float = 1) -> None:
    """Increment ``name`` on the active registry; no-op when none is active."""
    reg = _ACTIVE.get()
    if reg is not None:
        reg.counter_inc(name, value)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` on the active registry; no-op when none is active."""
    reg = _ACTIVE.get()
    if reg is not None:
        reg.gauge_set(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation; no-op when no registry is active."""
    reg = _ACTIVE.get()
    if reg is not None:
        reg.observe(name, value)


def merge_raw_into_active(raw: Dict[str, object]) -> None:
    """Fold an :meth:`MetricsRegistry.export_raw` dump into the active
    registry; no-op when none is active (cross-process merge helper)."""
    reg = _ACTIVE.get()
    if reg is not None:
        reg.merge_raw(raw)


def timer(name: str):
    """Context manager timing a block on the active registry.

    Returns a shared no-op context manager when no registry is active, so
    ``with timer("phase.build"):`` costs a context-variable read on
    uninstrumented runs.
    """
    reg = _ACTIVE.get()
    if reg is None:
        return _NULL_TIMER
    return reg.timer(name)
