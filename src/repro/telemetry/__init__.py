"""Unified tracing, metrics, and profiling for the reproduction.

Three layers, each independently usable and all off by default:

* :mod:`repro.telemetry.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, histograms, and timers.  Instrumentation sites throughout the
  package report through module-level helpers (:func:`counter_inc`,
  :func:`timer`, ...) that resolve the *context-scoped active registry*;
  with no registry active every helper is a cheap no-op, so production
  paths pay only a context-variable read.
* :mod:`repro.telemetry.hooks` — the per-tick engine hook API.  Both
  simulation engines and the stepping session accept an optional
  :class:`EngineHooks` observer and report spikes fired, synaptic
  deliveries, voltage probes, fault realizations, and the stop reason.
  ``hooks=None`` (the default) costs one branch per event site.
* :mod:`repro.telemetry.trace` / :mod:`repro.telemetry.profiler` —
  consumers: a bounded ring-buffer :class:`TraceRecorder` exporting
  JSON / CSV / Chrome ``trace_event`` timelines, and a :class:`Profiler`
  that wraps algorithm entry points with phase timers and reconciles the
  measured spike counts against :class:`~repro.core.cost.CostReport`.

See ``docs/telemetry.md`` for the full schema and overhead guarantees.
"""

from repro.telemetry.metrics import (
    MetricsRegistry,
    RollingWindow,
    active_registry,
    counter_inc,
    gauge_set,
    observe,
    timer,
    use_registry,
)
from repro.telemetry.hooks import EngineHooks, compose_hooks
from repro.telemetry.trace import TraceEvent, TraceRecorder
from repro.telemetry.profiler import PhaseStat, Profiler, ProfileReport

__all__ = [
    "MetricsRegistry",
    "RollingWindow",
    "active_registry",
    "use_registry",
    "counter_inc",
    "gauge_set",
    "observe",
    "timer",
    "EngineHooks",
    "compose_hooks",
    "TraceEvent",
    "TraceRecorder",
    "Profiler",
    "ProfileReport",
    "PhaseStat",
]
