"""Bounded ring-buffer trace recording and machine-readable exports.

:class:`TraceRecorder` is the canonical :class:`~repro.telemetry.hooks.EngineHooks`
consumer: it appends one :class:`TraceEvent` per engine callback into a
ring buffer of fixed ``capacity`` (oldest events are discarded once full,
so memory stays bounded no matter how long the run) while maintaining
exact running totals that are *never* dropped.  The totals are what the
cross-engine equivalence and fault-accounting tests compare; the event
ring is for inspection and export.

Exports:

* :meth:`TraceRecorder.to_json` — ``{"summary": ..., "events": [...]}``;
* :meth:`TraceRecorder.to_csv` — one row per event (``tick, kind, count,
  ids``);
* :meth:`TraceRecorder.to_chrome_trace` — Chrome ``trace_event`` format
  (load in ``chrome://tracing`` or Perfetto): counter tracks for spikes
  and deliveries plus instant events for fault realizations, with one
  simulated tick mapped to one microsecond.
"""

from __future__ import annotations

import csv
import io
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.telemetry.hooks import EngineHooks

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded engine event.

    ``kind`` is one of ``"start"``, ``"spikes"``, ``"deliveries"``,
    ``"probe"``, ``"fault.forced"``, ``"fault.suppressed"``, ``"stop"``.
    ``count`` is the event's primary magnitude (spikes fired, deliveries
    scheduled, ...); ``data`` carries kind-specific extras.
    """

    tick: int
    kind: str
    count: int = 0
    data: Dict[str, object] = field(default_factory=dict)

    def to_row(self) -> Dict[str, object]:
        return {"tick": self.tick, "kind": self.kind, "count": self.count, **self.data}


class TraceRecorder(EngineHooks):
    """Record engine activity into a bounded ring buffer with exact totals.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events fall off the ring.  Totals
        (:attr:`total_spikes` and friends) keep counting regardless.
    keep_ids:
        Store the neuron-id arrays on spike/fault events (lists of ints in
        the export).  Off by default to keep events small.
    """

    def __init__(self, capacity: int = 65536, *, keep_ids: bool = False):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.keep_ids = bool(keep_ids)
        self.events: Deque[TraceEvent] = deque(maxlen=self.capacity)
        self.emitted = 0  # events seen, including ones the ring discarded
        self.runs = 0
        self.engine: Optional[str] = None
        self.total_spikes = 0
        self.total_deliveries = 0
        self.total_dropped_deliveries = 0
        self.total_forced = 0
        self.total_suppressed = 0
        self.total_probe_samples = 0
        self.stop_reason: Optional[object] = None
        self.final_tick: Optional[int] = None

    # ------------------------------------------------------------- hooks #

    def _record(self, event: TraceEvent) -> None:
        self.emitted += 1
        self.events.append(event)

    def on_run_start(self, n_neurons: int, max_steps: int, engine: str) -> None:
        self.runs += 1
        self.engine = engine
        self._record(
            TraceEvent(0, "start", n_neurons, {"max_steps": max_steps, "engine": engine})
        )

    def on_spikes(self, tick: int, ids: np.ndarray) -> None:
        self.total_spikes += int(ids.size)
        data = {"ids": [int(i) for i in ids]} if self.keep_ids else {}
        self._record(TraceEvent(tick, "spikes", int(ids.size), data))

    def on_deliveries(self, tick: int, scheduled: int, dropped: int) -> None:
        self.total_deliveries += int(scheduled)
        self.total_dropped_deliveries += int(dropped)
        self._record(
            TraceEvent(tick, "deliveries", int(scheduled), {"dropped": int(dropped)})
        )

    def on_probe(self, tick: int, ids: Sequence[int], values: np.ndarray) -> None:
        self.total_probe_samples += len(values)
        self._record(
            TraceEvent(
                tick,
                "probe",
                len(values),
                {"ids": [int(i) for i in ids], "values": [float(v) for v in values]},
            )
        )

    def on_fault_forced(self, tick: int, ids: np.ndarray) -> None:
        self.total_forced += int(ids.size)
        data = {"ids": [int(i) for i in ids]} if self.keep_ids else {}
        self._record(TraceEvent(tick, "fault.forced", int(ids.size), data))

    def on_fault_suppressed(self, tick: int, ids: np.ndarray) -> None:
        self.total_suppressed += int(ids.size)
        data = {"ids": [int(i) for i in ids]} if self.keep_ids else {}
        self._record(TraceEvent(tick, "fault.suppressed", int(ids.size), data))

    def on_stop(self, tick: int, reason: object, diagnostic: object = None) -> None:
        self.stop_reason = reason
        self.final_tick = tick
        data: Dict[str, object] = {"reason": getattr(reason, "value", str(reason))}
        if diagnostic is not None:
            data["diagnostic"] = str(diagnostic)
        self._record(TraceEvent(tick, "stop", 0, data))

    # ----------------------------------------------------------- queries #

    @property
    def dropped_events(self) -> int:
        """Events the ring discarded because ``capacity`` was exceeded."""
        return self.emitted - len(self.events)

    def fault_totals(self) -> Dict[str, int]:
        """Realized fault counts, comparable across engines and against
        :class:`~repro.core.transient.CountingFaults` counters."""
        return {
            "dropped_deliveries": self.total_dropped_deliveries,
            "forced_spikes": self.total_forced,
            "suppressed_spikes": self.total_suppressed,
        }

    def summary(self) -> Dict[str, object]:
        """Exact run totals (independent of ring-buffer eviction)."""
        return {
            "runs": self.runs,
            "engine": self.engine,
            "final_tick": self.final_tick,
            "stop_reason": getattr(self.stop_reason, "value", self.stop_reason),
            "spikes": self.total_spikes,
            "deliveries": self.total_deliveries,
            "dropped_deliveries": self.total_dropped_deliveries,
            "forced_spikes": self.total_forced,
            "suppressed_spikes": self.total_suppressed,
            "probe_samples": self.total_probe_samples,
            "events_recorded": len(self.events),
            "events_dropped": self.dropped_events,
        }

    def events_of(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    # ----------------------------------------------------------- exports #

    def to_json(self, path: Optional[str] = None) -> str:
        doc = {
            "schema": "repro.telemetry.trace/v1",
            "summary": self.summary(),
            "events": [e.to_row() for e in self.events],
        }
        text = json.dumps(doc, indent=2)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text

    def to_csv(self, path: Optional[str] = None) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["tick", "kind", "count", "extra"])
        for e in self.events:
            extra = {k: v for k, v in e.data.items()}
            writer.writerow([e.tick, e.kind, e.count, json.dumps(extra) if extra else ""])
        text = buf.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text

    def to_chrome_trace(self, path: Optional[str] = None) -> str:
        """Chrome ``trace_event`` JSON: one simulated tick = one microsecond.

        Spikes and deliveries render as counter tracks (``ph: "C"``); fault
        realizations and the stop render as instant events (``ph: "i"``).
        """
        pid = 1
        rows: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"repro:{self.engine or 'engine'}"},
            }
        ]
        for e in self.events:
            if e.kind == "spikes":
                rows.append(
                    {
                        "name": "spikes",
                        "ph": "C",
                        "ts": e.tick,
                        "pid": pid,
                        "args": {"fired": e.count},
                    }
                )
            elif e.kind == "deliveries":
                rows.append(
                    {
                        "name": "deliveries",
                        "ph": "C",
                        "ts": e.tick,
                        "pid": pid,
                        "args": {
                            "scheduled": e.count,
                            "dropped": e.data.get("dropped", 0),
                        },
                    }
                )
            elif e.kind in ("fault.forced", "fault.suppressed", "stop", "start"):
                rows.append(
                    {
                        "name": e.kind,
                        "ph": "i",
                        "s": "g",
                        "ts": e.tick,
                        "pid": pid,
                        "tid": 1,
                        "args": dict(e.to_row()),
                    }
                )
        text = json.dumps({"traceEvents": rows, "displayTimeUnit": "ms"}, indent=2)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text
