"""Crossbar topology and graph embedding (paper Section 4.4, Figure 2).

The *stacked grid* or *crossbar* ``H_n`` is the grid-like network the paper
assumes every neuromorphic architecture reasonably contains.  Any ``n``-
vertex graph embeds into ``H_n`` by programming delays: all within-vertex
edges get the minimum delay, and the dedicated Type-2 edge of graph edge
``ij`` gets delay ``l(ij) - 2|i - j| - 1`` after scaling all lengths so the
minimum is ``2n``.  Shortest paths between diagonal vertices of ``H_n``
then equal (scaled) shortest paths in the input graph, at the cost of an
``O(n)`` slowdown of the spiking portion — the *embedding cost* charged in
the with-data-movement half of Table 1.
"""

from repro.embedding.crossbar import Crossbar, CrossbarEdgeType
from repro.embedding.embed import (
    EmbeddedGraph,
    EmbeddingSession,
    embed_graph,
    embedded_sssp,
)
from repro.embedding.poly_crossbar import (
    compile_poly_sssp_on_crossbar,
    run_poly_crossbar,
)
from repro.embedding.ttl_crossbar import (
    compile_khop_ttl_on_crossbar,
    run_ttl_crossbar,
)
from repro.embedding.render import type2_delay_map

__all__ = [
    "Crossbar",
    "CrossbarEdgeType",
    "EmbeddedGraph",
    "EmbeddingSession",
    "embed_graph",
    "embedded_sssp",
    "compile_poly_sssp_on_crossbar",
    "run_poly_crossbar",
    "compile_khop_ttl_on_crossbar",
    "run_ttl_crossbar",
    "type2_delay_map",
]
