"""The Section 4.4 Remark, realized: lambda-bit messages on the crossbar.

"The above shows how to implement our pseudopolynomial time algorithms on
a crossbar.  For our polynomial time algorithms, extra care must be taken
since each message is now lambda bits.  In addition we must embed the
circuits used to perform arithmetic on the lambda-bit messages ...  this
can be done with logarithmic overhead."

This module compiles the Section 4.2 *value-carrying* SSSP onto the
crossbar topology ``H_n``:

* every crossbar vertex carries ``lambda + 1`` wires (value bits + valid)
  instead of one;
* **plus-layer** vertices are relays (messages fan out along the row,
  away from the diagonal, and never merge there);
* **minus-layer** vertices are where paths converge, so each carries a
  2-port valid-gated min circuit (column inflow vs. the vertex's Type-2
  inflow); the Type-2 port first passes through an add-the-edge-length
  circuit (depth-2 lookahead, Figure 4);
* every crossbar hop costs a uniform ``x`` ticks (one more than the
  deepest vertex circuit — the *logarithmic overhead*, since
  ``x = O(log nU)``); a Type-2 hop costs its embedded delay times ``x``.

A message reaching diagonal ``v`` therefore arrives at tick
``dist(v) * scale * x`` *carrying the binary value* ``dist(v)`` — time and
value encode the same answer redundantly, and the driver checks they
agree.  Distances are decoded from the first valid output of each
diagonal's min circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms.results import ShortestPathResult
from repro.circuits.adders import add_constant
from repro.circuits.builder import CircuitBuilder, Signal
from repro.circuits.encoding import bit_width_for, int_from_bits
from repro.core.cost import CostReport
from repro.core.network import Network
from repro.core.run import simulate
from repro.embedding.crossbar import Crossbar, CrossbarEdgeType
from repro.embedding.embed import embedding_scale
from repro.errors import EmbeddingError
from repro.workloads.graph import WeightedDigraph

__all__ = ["CompiledPolyCrossbar", "compile_poly_sssp_on_crossbar", "run_poly_crossbar"]

Wires = Tuple[List[Signal], Signal]  # (bits, valid)


@dataclass
class CompiledPolyCrossbar:
    """A value-carrying SSSP network laid out on the crossbar."""

    net: Network
    graph: WeightedDigraph
    crossbar: Crossbar
    source: int
    bits: int
    x: int  #: ticks per crossbar hop
    scale: int  #: graph-length scale (min scaled length >= 2n)
    #: per diagonal vertex: its min-circuit output wires
    out_of: Dict[int, Wires]
    stimulus: Dict[int, List[int]]
    max_steps: int

    def decode(self, spike_events: Dict[int, np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
        """First-arrival values and ticks per vertex: (dist, arrival_tick)."""
        n = self.graph.n
        dist = np.full(n, -1, dtype=np.int64)
        ticks = np.full(n, -1, dtype=np.int64)
        dist[self.source] = 0
        ticks[self.source] = 0
        by_tick = sorted(spike_events.items())
        for v, (bits, valid) in self.out_of.items():
            for t, ids in by_tick:
                fired = set(ids.tolist())
                if valid.nid in fired:
                    dist[v] = int_from_bits([b.nid in fired for b in bits])
                    ticks[v] = t
                    break
        return dist, ticks


def compile_poly_sssp_on_crossbar(
    graph: WeightedDigraph,
    source: int,
) -> CompiledPolyCrossbar:
    """Compile value-carrying SSSP onto ``H_n`` (lambda + 1 wires per vertex)."""
    if not (0 <= source < graph.n):
        raise EmbeddingError(f"source {source} out of range")
    n = graph.n
    xbar = Crossbar(n)
    scale = embedding_scale(graph)
    U = max(1, graph.max_length())
    bits = bit_width_for(max(1, (n - 1) * U))
    net = Network()
    clock = net.add_neuron("clock", v_threshold=0.5, tau=1.0)
    net.add_synapse(clock, clock, weight=1.0, delay=1)

    # graph edge per Type-2 slot (parallel edges collapse to min length)
    edge_len: Dict[Tuple[int, int], int] = {}
    for u, v, w in graph.edges():
        if u == v:
            continue
        key = (u, v)
        if key not in edge_len or w < edge_len[key]:
            edge_len[key] = int(w)

    from repro.circuits.max_circuits import masked_min

    # --- build per-vertex circuits (ports at relative offset 0) -------- #
    # plus vertices: relay wires; minus vertices: adder + min circuit.
    relay_ports: Dict[int, Wires] = {}  # plus vertex -> its (input) ports
    out_of_vertex: Dict[int, Wires] = {}  # any crossbar vertex -> output wires
    minus_ports: Dict[int, Dict[str, Wires]] = {}  # minus vertex -> named ports
    depth_of: Dict[int, int] = {}

    def new_ports(b: CircuitBuilder, label: str) -> Wires:
        pbits = b.input_bits(f"{label}.bits", bits)
        pvalid = b.input_bits(f"{label}.valid", 1)[0]
        return pbits, pvalid

    for i in range(n):
        for j in range(n):
            plus_id = xbar.plus(i, j)
            b = CircuitBuilder(net, prefix=f"p{i},{j}.")
            pb, pv = new_ports(b, "in")
            outs = b.align([b.buffer(s, name="rly") for s in pb + [pv]])
            relay_ports[plus_id] = (pb, pv)
            out_of_vertex[plus_id] = (outs[:bits], outs[bits])
            depth_of[plus_id] = outs[bits].offset

    for i in range(n):
        for j in range(n):
            minus_id = xbar.minus(i, j)
            if i == j and j == source:
                continue  # the source diagonal is driven by the stimulus
            b = CircuitBuilder(net, prefix=f"m{i},{j}.")
            b._run = Signal(clock, 0)
            ports: Dict[str, Wires] = {}
            candidates: List[List[Signal]] = []
            valids: List[Signal] = []
            if i != j and (i, j) in edge_len:
                eb, ev = new_ports(b, "edge")
                ports["edge"] = (eb, ev)
                summed, svalid = add_constant(
                    b, eb, edge_len[(i, j)], ev, name="add", out_width=bits
                )
                candidates.append(summed)
                valids.append(svalid)
            # column inflow port (toward the diagonal); the extreme rows
            # of a column have none, but keep the port for uniform wiring
            cb, cv = new_ports(b, "col")
            ports["col"] = (cb, cv)
            candidates.append(list(cb))
            valids.append(cv)
            res = masked_min(b, candidates, valids, style="wired")
            outs = b.align(list(res.out_bits) + [res.valid])
            minus_ports[minus_id] = ports
            out_of_vertex[minus_id] = (outs[:bits], outs[bits])
            depth_of[minus_id] = outs[bits].offset

    x = max(depth_of.values()) + 1

    # source diagonal output = stimulus wires (value 0: valid only)
    src_bits = [
        net.add_neuron(f"src.b{k}", v_threshold=0.5, tau=1.0) for k in range(bits)
    ]
    src_valid = net.add_neuron("src.valid", v_threshold=0.5, tau=1.0)
    out_of_vertex[xbar.minus(source, source)] = (
        [Signal(nid, 0) for nid in src_bits],
        Signal(src_valid, 0),
    )

    # --- wire the crossbar hops ---------------------------------------- #
    def connect(src: Wires, dst: Wires, delay: int) -> None:
        sb, sv = src
        db, dv = dst
        for a, b_ in zip(sb, db):
            net.add_synapse(a.nid, b_.nid, weight=1.0, delay=delay)
        net.add_synapse(sv.nid, dv.nid, weight=1.0, delay=delay)

    for a, b_, etype in xbar.structural_edges():
        src = out_of_vertex.get(a)
        if src is None:
            continue
        if etype == CrossbarEdgeType.DIAGONAL:
            dst = relay_ports[b_]
            pad = x - depth_of[b_]
        else:  # row moves feed plus relays; column moves feed minus col ports
            if b_ in relay_ports:
                dst = relay_ports[b_]
                pad = x - depth_of[b_]
            else:
                if b_ not in minus_ports:
                    continue  # the source diagonal consumes nothing
                dst = minus_ports[b_]["col"]
                pad = x - depth_of[b_]
        connect(src, dst, pad)
    for (i, j), w in edge_len.items():
        minus_id = xbar.minus(i, j)
        if minus_id not in minus_ports or "edge" not in minus_ports[minus_id]:
            continue
        hops = scale * w - xbar.type2_path_detour(i, j)
        if hops < 1:
            raise EmbeddingError("scaled edge too short for its detour")
        delay = hops * x - depth_of[minus_id]
        connect(out_of_vertex[xbar.plus(i, j)], minus_ports[minus_id]["edge"], delay)

    out_of = {
        v: out_of_vertex[xbar.minus(v, v)] for v in range(n) if v != source
    }
    horizon = (n - 1) * U * scale * x + x + 2
    return CompiledPolyCrossbar(
        net=net,
        graph=graph,
        crossbar=xbar,
        source=source,
        bits=bits,
        x=x,
        scale=scale,
        out_of=out_of,
        stimulus={0: [clock, src_valid]},
        max_steps=int(horizon),
    )


def run_poly_crossbar(compiled: CompiledPolyCrossbar) -> ShortestPathResult:
    """Execute the compiled crossbar network; decode values and check that
    arrival *times* tell the same story as the carried *values*."""
    result = simulate(
        compiled.net,
        compiled.stimulus,
        engine="dense",
        max_steps=compiled.max_steps,
        stop_when_quiescent=False,
        record_spikes=True,
    )
    assert result.spike_events is not None
    dist, ticks = compiled.decode(result.spike_events)
    # redundant encoding check: arrival tick == dist * scale * x
    for v in range(compiled.graph.n):
        if v != compiled.source and dist[v] >= 0:
            expected = dist[v] * compiled.scale * compiled.x
            if ticks[v] != expected:
                raise EmbeddingError(
                    f"time/value disagreement at vertex {v}: "
                    f"tick {ticks[v]} vs value {dist[v]} (expected {expected})"
                )
    cost = CostReport(
        algorithm="sssp_poly+crossbar_gates",
        simulated_ticks=int(ticks.max()) if (ticks >= 0).any() else 0,
        loading_ticks=compiled.net.n_synapses,
        neuron_count=compiled.net.n_neurons,
        synapse_count=compiled.net.n_synapses,
        spike_count=result.total_spikes,
        message_bits=compiled.bits,
        extras={"hop_ticks": float(compiled.x), "scale": float(compiled.scale)},
    )
    return ShortestPathResult(
        dist=dist, source=compiled.source, cost=cost, sim=result
    )
