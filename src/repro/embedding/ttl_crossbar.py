"""The Section 4.1 TTL algorithm deployed on the crossbar.

Companion to :mod:`repro.embedding.poly_crossbar`: where that module puts
the *value-carrying* (Section 4.2) messages on ``H_n``, this one puts the
*TTL-carrying* (Section 4.1) k-hop algorithm there.

Layout: every crossbar vertex carries ``ceil(log k) + 1`` wires (TTL bits
plus valid).  Plus-layer vertices and Type-2 ports are plain relays/wires
— the TTL rides unchanged along the row, through the graph edge, and down
the column.  Minus-layer vertices merge converging flows with a
valid-gated **max** (larger TTLs can travel further); the **diagonal**
vertex additionally decrements the winning TTL and gates its onward
broadcast on ``TTL >= 1``, exactly the per-vertex computation of the flat
Section 4.1 compiler.  First arrival at a diagonal (in scaled ticks) is
the vertex's ``<= k``-hop distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms.results import ShortestPathResult
from repro.circuits.adders import subtract_one
from repro.circuits.builder import CircuitBuilder, Signal
from repro.circuits.encoding import bit_width_for, bits_from_int
from repro.core.cost import CostReport
from repro.core.network import Network
from repro.core.run import simulate
from repro.embedding.crossbar import Crossbar, CrossbarEdgeType
from repro.embedding.embed import embedding_scale
from repro.errors import EmbeddingError
from repro.workloads.graph import WeightedDigraph

__all__ = ["CompiledTtlCrossbar", "compile_khop_ttl_on_crossbar", "run_ttl_crossbar"]

Wires = Tuple[List[Signal], Signal]


@dataclass
class CompiledTtlCrossbar:
    """The Section 4.1 network laid out on the crossbar."""

    net: Network
    graph: WeightedDigraph
    crossbar: Crossbar
    source: int
    k: int
    bits: int
    x: int  #: ticks per crossbar hop
    scale: int  #: graph-length scale
    arrival: Dict[int, int]  #: diagonal vertex -> arrival-detector neuron
    diag_depth: Dict[int, int]
    stimulus: Dict[int, List[int]]
    max_steps: int

    def decode(self, first_spike: np.ndarray) -> np.ndarray:
        n = self.graph.n
        dist = np.full(n, -1, dtype=np.int64)
        dist[self.source] = 0
        unit = self.scale * self.x
        for v, det in self.arrival.items():
            t = int(first_spike[det])
            if t >= 0:
                dist[v] = (t - 1 + self.diag_depth[v]) // unit
        return dist


def compile_khop_ttl_on_crossbar(
    graph: WeightedDigraph,
    source: int,
    k: int,
) -> CompiledTtlCrossbar:
    """Compile the TTL k-hop algorithm onto ``H_n``."""
    if not (0 <= source < graph.n):
        raise EmbeddingError(f"source {source} out of range")
    if k < 1:
        raise EmbeddingError(f"crossbar TTL compilation requires k >= 1, got {k}")
    n = graph.n
    xbar = Crossbar(n)
    scale = embedding_scale(graph)
    bits = bit_width_for(k - 1)
    net = Network()
    clock = net.add_neuron("clock", v_threshold=0.5, tau=1.0)
    net.add_synapse(clock, clock, weight=1.0, delay=1)

    edge_exists: Dict[Tuple[int, int], int] = {}
    for u, v, w in graph.edges():
        if u == v:
            continue
        key = (u, v)
        if key not in edge_exists or w < edge_exists[key]:
            edge_exists[key] = int(w)

    from repro.circuits.max_circuits import masked_max

    out_of_vertex: Dict[int, Wires] = {}
    minus_ports: Dict[int, List[Wires]] = {}
    depth_of: Dict[int, int] = {}
    arrival: Dict[int, int] = {}
    diag_depth: Dict[int, int] = {}

    def new_ports(b: CircuitBuilder, label: str) -> Wires:
        pbits = b.input_bits(f"{label}.bits", bits)
        pvalid = b.input_bits(f"{label}.valid", 1)[0]
        return pbits, pvalid

    # plus-layer relays
    for i in range(n):
        for j in range(n):
            plus_id = xbar.plus(i, j)
            b = CircuitBuilder(net, prefix=f"p{i},{j}.")
            pb, pv = new_ports(b, "in")
            outs = b.align([b.buffer(s, name="rly") for s in pb + [pv]])
            minus_ports[plus_id] = [(pb, pv)]
            out_of_vertex[plus_id] = (outs[:bits], outs[bits])
            depth_of[plus_id] = outs[bits].offset

    # minus-layer merge circuits; diagonals add decrement + gate
    for i in range(n):
        for j in range(n):
            minus_id = xbar.minus(i, j)
            if i == j and j == source:
                continue
            b = CircuitBuilder(net, prefix=f"m{i},{j}.")
            b._run = Signal(clock, 0)
            ports: List[Wires] = []
            # column inflow(s): one off-diagonal, up to two at the diagonal
            n_col = 2 if i == j else 1
            for c in range(n_col):
                ports.append(new_ports(b, f"col{c}"))
            if i != j and (i, j) in edge_exists:
                ports.append(new_ports(b, "edge"))
            res = masked_max(
                b, [pb for pb, _ in ports], [pv for _, pv in ports], style="wired"
            )
            if i == j:
                det = b.or_gate([pv for _, pv in ports], name="arrival")
                arrival[j] = det.nid
                ge1 = b.or_gate(res.out_bits, name="ge1")
                dec_bits, dec_valid = subtract_one(b, res.out_bits, ge1)
                outs = b.align(dec_bits + [dec_valid])
                diag_depth[j] = outs[bits].offset
            else:
                outs = b.align(list(res.out_bits) + [res.valid])
            minus_ports[minus_id] = ports
            out_of_vertex[minus_id] = (outs[:bits], outs[bits])
            depth_of[minus_id] = outs[bits].offset

    x = max(depth_of.values()) + 1

    src_bits = [
        net.add_neuron(f"src.b{b_}", v_threshold=0.5, tau=1.0) for b_ in range(bits)
    ]
    src_valid = net.add_neuron("src.valid", v_threshold=0.5, tau=1.0)
    out_of_vertex[xbar.minus(source, source)] = (
        [Signal(nid, 0) for nid in src_bits],
        Signal(src_valid, 0),
    )

    def connect(src: Wires, dst: Wires, delay: int) -> None:
        sb, sv = src
        db, dv = dst
        for a, b_ in zip(sb, db):
            net.add_synapse(a.nid, b_.nid, weight=1.0, delay=delay)
        net.add_synapse(sv.nid, dv.nid, weight=1.0, delay=delay)

    col_port_used: Dict[int, int] = {}
    for a, b_, etype in xbar.structural_edges():
        src = out_of_vertex.get(a)
        if src is None:
            continue
        if b_ not in minus_ports and b_ not in out_of_vertex:
            continue
        if etype in (
            CrossbarEdgeType.DIAGONAL,
            CrossbarEdgeType.ROW_RIGHT,
            CrossbarEdgeType.ROW_LEFT,
        ):
            # targets are plus-layer relays
            dst = minus_ports[b_][0]
        else:
            # column moves target minus-layer merge circuits
            if b_ not in minus_ports:
                continue  # the source diagonal consumes nothing
            idx = col_port_used.get(b_, 0)
            col_port_used[b_] = idx + 1
            dst = minus_ports[b_][idx]
        connect(src, dst, x - depth_of[b_])
    for (i, j), w in edge_exists.items():
        minus_id = xbar.minus(i, j)
        if minus_id not in minus_ports:
            continue
        # the edge port is the last one created for this vertex
        dst = minus_ports[minus_id][-1]
        hops = scale * w - xbar.type2_path_detour(i, j)
        if hops < 1:
            raise EmbeddingError("scaled edge too short for its detour")
        connect(out_of_vertex[xbar.plus(i, j)], dst, hops * x - depth_of[minus_id])

    stim_ids = [clock, src_valid] + [
        nid for nid, bit in zip(src_bits, bits_from_int(k - 1, bits)) if bit
    ]
    horizon = k * max(1, graph.max_length()) * scale * x + x + 2
    return CompiledTtlCrossbar(
        net=net,
        graph=graph,
        crossbar=xbar,
        source=source,
        k=k,
        bits=bits,
        x=x,
        scale=scale,
        arrival=arrival,
        diag_depth=diag_depth,
        stimulus={0: stim_ids},
        max_steps=int(horizon),
    )


def run_ttl_crossbar(compiled: CompiledTtlCrossbar) -> ShortestPathResult:
    """Execute the compiled crossbar TTL network and decode k-hop distances."""
    result = simulate(
        compiled.net,
        compiled.stimulus,
        engine="dense",
        max_steps=compiled.max_steps,
        stop_when_quiescent=False,
    )
    dist = compiled.decode(result.first_spike)
    reached = dist[dist >= 0]
    cost = CostReport(
        algorithm="khop_pseudo+crossbar_gates",
        simulated_ticks=int(reached.max()) * compiled.scale * compiled.x
        if reached.size
        else 0,
        loading_ticks=compiled.net.n_synapses,
        neuron_count=compiled.net.n_neurons,
        synapse_count=compiled.net.n_synapses,
        spike_count=result.total_spikes,
        message_bits=compiled.bits,
        extras={"hop_ticks": float(compiled.x), "scale": float(compiled.scale)},
    )
    return ShortestPathResult(
        dist=dist, source=compiled.source, cost=cost, k=compiled.k, sim=result
    )
