"""Text rendering of crossbar embeddings (the Figure-2 view, in ASCII).

A programmed crossbar differs from an empty one only in its Type-2 delays
— the matrix of per-graph-edge values.  :func:`type2_delay_map` renders
that matrix (rows = source vertex, columns = target; ``.`` marks an absent
edge and the diagonal is ``-``), which is the at-a-glance signature of
"what graph is loaded on this chip right now".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.embedding.crossbar import Crossbar
from repro.embedding.embed import EmbeddedGraph

__all__ = ["type2_delay_map"]


def type2_delay_map(embedded: EmbeddedGraph) -> str:
    """Render the programmed Type-2 delays as an n x n text matrix."""
    xbar = embedded.crossbar
    n = xbar.n
    # recover the programmed delays from the compiled network
    net = embedded.net.compile()
    plus_neuron: Dict[int, Tuple[int, int]] = {}
    for i in range(n):
        for j in range(n):
            if i != j:
                plus_neuron[embedded.neuron_of[xbar.plus(i, j)]] = (i, j)
    delays: Dict[Tuple[int, int], int] = {}
    for u in range(net.n):
        if u not in plus_neuron:
            continue
        i, j = plus_neuron[u]
        target = embedded.neuron_of[xbar.minus(i, j)]
        sl = net.out_synapses(u)
        for s in range(sl.start, sl.stop):
            if int(net.syn_dst[s]) == target:
                delays[(i, j)] = int(net.syn_delay[s])
    cells: List[List[str]] = []
    for i in range(n):
        row = []
        for j in range(n):
            if i == j:
                row.append("-")
            elif (i, j) in delays:
                row.append(str(delays[(i, j)]))
            else:
                row.append(".")
        cells.append(row)
    width = max(len(c) for row in cells for c in row)
    width = max(width, len(str(n - 1)))
    header = " " * (width + 2) + " ".join(str(j).rjust(width) for j in range(n))
    lines = [f"Type-2 delays of H_{n} (scale {embedded.scale}):", header]
    for i, row in enumerate(cells):
        lines.append(
            str(i).rjust(width) + "  " + " ".join(c.rjust(width) for c in row)
        )
    return "\n".join(lines)
