"""The crossbar (stacked grid) ``H_n`` of paper Section 4.4 / Figure 2.

Vertices come in two layers indexed by ``(i, j)`` pairs: the *minus* layer
``v-_{ij}`` (one column per target vertex) and the *plus* layer ``v+_{ij}``
(one row per source vertex).  The six edge types (paper numbering, indices
1-based there, 0-based here):

1. ``v-_{ii} -> v+_{ii}`` — hop from a vertex's in-column to its out-row;
2. ``v+_{ij} -> v-_{ij}`` (``i != j``) — the dedicated edge of graph edge
   ``ij``, the only type whose delay is programmed per graph;
3. ``v+_{ij} -> v+_{i(j+1)}`` for ``i <= j`` — rightward along the out-row,
   right of the diagonal;
4. ``v+_{i(j+1)} -> v+_{ij}`` for ``i > j`` — leftward along the out-row,
   left of the diagonal;
5. ``v-_{ij} -> v-_{(i+1)j}`` for ``i < j`` — downward along the in-column,
   above the diagonal;
6. ``v-_{(i+1)j} -> v-_{ij}`` for ``i >= j`` — upward along the in-column,
   below the diagonal.

Out-rows only lead *away* from their diagonal and in-columns only lead
*toward* theirs, so every path between diagonal vertices decomposes into
graph-edge traversals — the structural fact the embedding's correctness
rests on (and that the tests verify).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import EmbeddingError

__all__ = ["Crossbar", "CrossbarEdgeType"]


class CrossbarEdgeType(enum.IntEnum):
    """Paper's six edge types (values match its numbering)."""

    DIAGONAL = 1
    GRAPH_EDGE = 2
    ROW_RIGHT = 3
    ROW_LEFT = 4
    COLUMN_DOWN = 5
    COLUMN_UP = 6


@dataclass(frozen=True)
class Crossbar:
    """Structure of ``H_n`` (no delays; those belong to an embedding).

    Vertex ids: ``minus(i, j) = i * n + j`` and
    ``plus(i, j) = n^2 + i * n + j`` for ``0 <= i, j < n``.
    """

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise EmbeddingError(f"crossbar order must be >= 1, got {self.n}")

    @property
    def num_vertices(self) -> int:
        return 2 * self.n * self.n

    def minus(self, i: int, j: int) -> int:
        self._check(i, j)
        return i * self.n + j

    def plus(self, i: int, j: int) -> int:
        self._check(i, j)
        return self.n * self.n + i * self.n + j

    def diagonal(self, i: int) -> int:
        """The minus-layer diagonal vertex representing graph vertex ``i``."""
        return self.minus(i, i)

    def _check(self, i: int, j: int) -> None:
        if not (0 <= i < self.n and 0 <= j < self.n):
            raise EmbeddingError(f"crossbar index ({i}, {j}) out of range for n={self.n}")

    def structural_edges(self) -> Iterator[Tuple[int, int, CrossbarEdgeType]]:
        """All edges of types 1, 3, 4, 5, 6 (unit delay in any embedding)."""
        n = self.n
        for i in range(n):
            yield self.minus(i, i), self.plus(i, i), CrossbarEdgeType.DIAGONAL
        for i in range(n):
            for j in range(n - 1):
                if i <= j:
                    yield self.plus(i, j), self.plus(i, j + 1), CrossbarEdgeType.ROW_RIGHT
                else:
                    yield self.plus(i, j + 1), self.plus(i, j), CrossbarEdgeType.ROW_LEFT
        for j in range(n):
            for i in range(n - 1):
                if i < j:
                    yield self.minus(i, j), self.minus(i + 1, j), CrossbarEdgeType.COLUMN_DOWN
                else:
                    yield self.minus(i + 1, j), self.minus(i, j), CrossbarEdgeType.COLUMN_UP

    def graph_edge_endpoints(self, i: int, j: int) -> Tuple[int, int]:
        """Endpoints of the Type-2 edge carrying graph edge ``i -> j``."""
        if i == j:
            raise EmbeddingError("Type-2 edges exist only for i != j")
        return self.plus(i, j), self.minus(i, j)

    def type2_path_detour(self, i: int, j: int) -> int:
        """Unit-delay hops surrounding the Type-2 edge on the ``i -> j`` path.

        The canonical path ``v-_{ii} .. v-_{jj}`` spends ``1`` hop on the
        diagonal edge and ``|i - j|`` on each of the row and column runs, so
        a graph edge of (scaled) length ``l`` programs its Type-2 delay to
        ``l - (2 |i - j| + 1)``.
        """
        return 2 * abs(i - j) + 1
