"""Embedding graphs into the crossbar and running SSSP there (Section 4.4).

:func:`embed_graph` scales the input graph so its minimum edge length is at
least ``2n`` (making every Type-2 delay positive), programs the crossbar's
delays, and returns an :class:`EmbeddedGraph` whose SNN can run the
pseudopolynomial SSSP of Section 3 natively on crossbar hardware.

:class:`EmbeddingSession` embeds a sequence of graphs one after another in
the paper's unembed/re-embed style, charging ``O(m_i)`` delay
reprogrammings per switch (the simulator rebuilds the network object; the
*charged* cost is the count of Type-2 delays touched, which is what
hardware would pay).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.results import ShortestPathResult
from repro.core.cost import CostReport
from repro.core.network import Network
from repro.core.run import simulate
from repro.embedding.crossbar import Crossbar
from repro.errors import EmbeddingError
from repro.workloads.graph import WeightedDigraph

__all__ = ["EmbeddedGraph", "EmbeddingSession", "embed_graph", "embedded_sssp"]


@dataclass
class EmbeddedGraph:
    """A graph programmed into the crossbar ``H_n``.

    ``scale`` is the length multiplier applied so the minimum edge length
    reaches ``2n``; crossbar first-spike times divide by it to recover
    input-graph distances.
    """

    crossbar: Crossbar
    graph: WeightedDigraph
    scale: int
    net: Network
    #: neuron id of each crossbar vertex, indexed by crossbar vertex id
    neuron_of: List[int]
    #: number of Type-2 delays programmed (== m)
    programmed_edges: int

    def diagonal_neuron(self, v: int) -> int:
        return self.neuron_of[self.crossbar.diagonal(v)]


def embedding_scale(graph: WeightedDigraph) -> int:
    """Smallest integer scale making the minimum edge length >= 2n."""
    wmin = graph.min_length()
    if wmin <= 0:
        return 1
    return max(1, math.ceil(2 * graph.n / wmin))


def embed_graph(graph: WeightedDigraph, *, one_shot: bool = True) -> EmbeddedGraph:
    """Program ``graph`` into ``H_n`` (Section 4.4 delay assignment).

    All Type 1/3/4/5/6 edges get the minimum delay (1 tick); the Type-2
    edge of graph edge ``ij`` gets ``scale * l(ij) - 2|i - j| - 1``.
    Self-loops are skipped (they never shorten a path and have no Type-2
    edge).  Parallel edges program the same Type-2 edge; the smallest delay
    wins, preserving all shortest-path quantities.
    """
    if graph.n < 1:
        raise EmbeddingError("cannot embed an empty graph")
    xbar = Crossbar(graph.n)
    scale = embedding_scale(graph)
    net = Network()
    neuron_of = [
        net.add_neuron(f"x{vid}", one_shot=one_shot) for vid in range(xbar.num_vertices)
    ]
    for a, b, _t in xbar.structural_edges():
        net.add_synapse(neuron_of[a], neuron_of[b], weight=1.0, delay=1)
    type2_delay: Dict[Tuple[int, int], int] = {}
    for u, v, w in graph.edges():
        if u == v:
            continue
        d = scale * int(w) - xbar.type2_path_detour(u, v)
        if d < 1:
            raise EmbeddingError(
                f"scaled edge ({u}, {v}) too short for its detour; scale bug"
            )
        key = (u, v)
        if key not in type2_delay or d < type2_delay[key]:
            type2_delay[key] = d
    for (u, v), d in type2_delay.items():
        a, b = xbar.graph_edge_endpoints(u, v)
        net.add_synapse(neuron_of[a], neuron_of[b], weight=1.0, delay=d)
    return EmbeddedGraph(
        crossbar=xbar,
        graph=graph,
        scale=scale,
        net=net,
        neuron_of=neuron_of,
        programmed_edges=len(type2_delay),
    )


def embedded_sssp(
    graph: WeightedDigraph,
    source: int,
    *,
    target: Optional[int] = None,
    embedded: Optional[EmbeddedGraph] = None,
) -> ShortestPathResult:
    """Run the Section 3 spiking SSSP *on the crossbar embedding*.

    Stimulates the source's diagonal vertex and reads first-spike times at
    every diagonal; dividing by the scale recovers exact input-graph
    distances.  The cost report charges the actual crossbar simulated time
    (``Theta(n) * L`` — the embedding cost of Theorem 4.1) and the crossbar
    resource footprint (``Theta(n^2)`` neurons).
    """
    if not (0 <= source < graph.n):
        raise EmbeddingError(f"source {source} out of range")
    emb = embedded if embedded is not None else embed_graph(graph)
    diag = [emb.diagonal_neuron(v) for v in range(graph.n)]
    result = simulate(
        emb.net,
        [diag[source]],
        engine="event",
        max_steps=emb.scale * max(1, (graph.n - 1) * max(1, graph.max_length())) + 1,
        terminal=diag[target] if target is not None else None,
        watch=None if target is not None else diag,
    )
    first = result.first_spike[np.asarray(diag, dtype=np.int64)]
    dist = np.where(first >= 0, first // emb.scale, -1)
    reached = dist[dist >= 0]
    simulated = int(first.max()) if (first >= 0).any() else 0
    if target is not None and first[target] >= 0:
        simulated = int(first[target])
    cost = CostReport(
        algorithm="sssp_pseudo+crossbar",
        simulated_ticks=simulated,
        loading_ticks=graph.m,
        neuron_count=emb.net.n_neurons,
        synapse_count=emb.net.n_synapses,
        spike_count=result.total_spikes,
        extras={"embedding_scale": float(emb.scale)},
    )
    return ShortestPathResult(dist=dist, source=source, cost=cost, sim=result)


@dataclass
class EmbeddingSession:
    """Embed graphs one after another, charging the paper's switch cost.

    Section 4.4: unembedding ``G_{i-1}`` resets its ``m_{i-1}`` Type-2
    delays and embedding ``G_i`` programs ``m_i`` more — a constant-factor
    slowdown overall.  The session accumulates the charged reprogramming
    operations in :attr:`reprogram_ops`.
    """

    n: int
    reprogram_ops: int = 0
    current: Optional[EmbeddedGraph] = None
    history: List[int] = field(default_factory=list)

    def embed(self, graph: WeightedDigraph) -> EmbeddedGraph:
        if graph.n > self.n:
            raise EmbeddingError(
                f"graph has {graph.n} vertices; session crossbar holds {self.n}"
            )
        if self.current is not None:
            self.unembed()
        emb = embed_graph(graph)
        self.current = emb
        self.reprogram_ops += emb.programmed_edges
        self.history.append(emb.programmed_edges)
        return emb

    def unembed(self) -> None:
        if self.current is None:
            return
        self.reprogram_ops += self.current.programmed_edges
        self.current = None
