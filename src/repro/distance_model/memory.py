"""Lattice geometry and register layouts for the DISTANCE model.

Words occupy integer lattice points enumerated in concentric square rings
around the origin (so ``N`` words occupy an ``O(sqrt N)``-radius patch —
the densest packing up to constants, which is what the lower-bound argument
assumes).  Register placement is a pluggable layout:

* ``"block"`` — the ``c`` register cells closest to the origin (a compact
  register file beside which data is stacked; resembles a CPU die).
* ``"scattered"`` — registers spread evenly through the data extent
  (processing-in-memory flavor; the Conclusions discuss PIM as the model's
  escape hatch, and the ablation bench shows scattering only improves
  constants, not the ``m^{3/2}`` exponent, while the *number* of registers
  stays fixed).

3D variants stack ``z``-layers of the 2D spiral.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterator, List, Tuple

from repro.errors import MachineError

__all__ = ["spiral_positions", "GridMemory"]

Position = Tuple[int, ...]


def spiral_positions(count: int, dims: int = 2) -> List[Position]:
    """First ``count`` lattice points in concentric-ring order.

    2D: square rings by Chebyshev radius, deterministic order within a
    ring.  3D: the 2D enumeration replicated across ``z`` layers
    ``0, 1, -1, 2, -2, ...`` such that a prefix of ``N`` points spans
    ``O(N^{1/3})`` extent per axis.
    """
    if dims == 2:
        return list(itertools.islice(_spiral_2d(), count))
    if dims == 3:
        return _spiral_3d(count)
    raise MachineError(f"dims must be 2 or 3, got {dims}")


def _spiral_2d() -> Iterator[Tuple[int, int]]:
    yield (0, 0)
    r = 1
    while True:
        # ring of Chebyshev radius r, clockwise from the top-left corner
        for x in range(-r, r + 1):
            yield (x, r)
        for y in range(r - 1, -r - 1, -1):
            yield (r, y)
        for x in range(r - 1, -r - 1, -1):
            yield (x, -r)
        for y in range(-r + 1, r):
            yield (-r, y)
        r += 1


def _spiral_3d(count: int) -> List[Position]:
    # cube side ~ count^(1/3); fill z-layers with 2D spiral prefixes
    side = max(1, math.ceil(count ** (1 / 3)))
    per_layer = side * side
    layer_cells = list(itertools.islice(_spiral_2d(), per_layer))
    out: List[Position] = []
    z_order = [0]
    z = 1
    while len(z_order) * per_layer < count + per_layer:
        z_order.extend([z, -z])
        z += 1
    for z in z_order:
        for (x, y) in layer_cells:
            out.append((x, y, z))
            if len(out) == count:
                return out
    return out


def l1_distance(a: Position, b: Position) -> int:
    return sum(abs(x - y) for x, y in zip(a, b))


class GridMemory:
    """Placement of registers and data words on the lattice.

    Allocate arrays first, then :meth:`finalize` to fix every coordinate
    (Definition 5: register locations are fixed for the computation).
    """

    def __init__(self, num_registers: int, *, layout: str = "block", dims: int = 2):
        if num_registers < 1:
            raise MachineError(f"need at least 1 register, got {num_registers}")
        if layout not in ("block", "scattered"):
            raise MachineError(f"unknown layout {layout!r}; use 'block' or 'scattered'")
        self.c = int(num_registers)
        self.layout = layout
        self.dims = dims
        self._arrays: Dict[str, int] = {}
        self._order: List[str] = []
        self._finalized = False
        self.register_positions: List[Position] = []
        self._word_positions: Dict[str, List[Position]] = {}

    def alloc(self, name: str, size: int) -> str:
        if self._finalized:
            raise MachineError("cannot allocate after finalize()")
        if name in self._arrays:
            raise MachineError(f"duplicate array {name!r}")
        if size < 0:
            raise MachineError(f"array size must be >= 0, got {size}")
        self._arrays[name] = int(size)
        self._order.append(name)
        return name

    def finalize(self) -> None:
        if self._finalized:
            return
        total_words = sum(self._arrays.values())
        cells = spiral_positions(self.c + total_words, dims=self.dims)
        if self.layout == "block":
            self.register_positions = cells[: self.c]
            data_cells = cells[self.c :]
        else:  # scattered: every (total/c)-th cell is a register
            total = len(cells)
            stride = max(1, total // self.c)
            reg_idx = set()
            i = 0
            while len(reg_idx) < self.c and i < total:
                reg_idx.add(i)
                i += stride
            # top up in case of rounding
            j = 0
            while len(reg_idx) < self.c:
                if j not in reg_idx:
                    reg_idx.add(j)
                j += 1
            self.register_positions = [cells[i] for i in sorted(reg_idx)]
            data_cells = [cells[i] for i in range(total) if i not in reg_idx]
        pos = 0
        for name in self._order:
            size = self._arrays[name]
            self._word_positions[name] = data_cells[pos : pos + size]
            pos += size
        self._finalized = True

    def position_of(self, array: str, index: int) -> Position:
        if not self._finalized:
            raise MachineError("finalize() before querying positions")
        words = self._word_positions[array]
        if not (0 <= index < len(words)):
            raise MachineError(f"index {index} out of bounds for {array!r}")
        return words[index]

    def size_of(self, array: str) -> int:
        return self._arrays[array]

    def distance(self, a: Position, b: Position) -> int:
        return l1_distance(a, b)
