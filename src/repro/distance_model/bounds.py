"""Lower-bound formulas of Section 6 with the proofs' explicit constants.

Theorem 6.1: with ``c`` registers, any algorithm reading an ``m``-word
input incurs movement cost at least ``(m/2) * (sqrt(m/c)/4) =
m^{3/2} / (8 sqrt c)``: at most ``(m/(4c)) * c < m/2`` words lie within
``sqrt(m/c)/4`` of their nearest register, so at least ``m/2`` words each
travel at least that far.

Theorem 6.2: each of the ``k`` Bellman–Ford rounds re-reads all ``m`` edge
lengths, so the bound multiplies by ``k``.

The 3D variant replaces the square-counting with cube-counting: at most
``(m/(8c)) * c < m/2`` words lie within ``(m/c)^{1/3}/8`` of a register
(a radius-``r`` l1-ball holds fewer than ``(2r+1)^3 <= 8 (m/c)`` points for
``r = (m/c)^{1/3}/2``... we use the conservative constant ``1/16``),
giving ``Omega(m^{4/3})`` for constant ``c``.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError

__all__ = [
    "read_lower_bound_2d",
    "read_lower_bound_3d",
    "bellman_ford_lower_bound",
]


def _check(m: int, c: int) -> None:
    if m < 0:
        raise ValidationError(f"input size must be >= 0, got {m}")
    if c < 1:
        raise ValidationError(f"register count must be >= 1, got {c}")


def read_lower_bound_2d(m: int, c: int) -> float:
    """Theorem 6.1: ``m^{3/2} / (8 sqrt c)``."""
    _check(m, c)
    return (m / 2.0) * (math.sqrt(m / c) / 4.0)


def read_lower_bound_3d(m: int, c: int) -> float:
    """3D variant: ``Omega(m^{4/3})`` for ``c = O(1)``.

    Conservative constant: a radius-``r`` ball around each of ``c``
    registers covers at most ``c * (2r + 1)^3`` points; choosing
    ``r = ((m/c)^{1/3} - 1) / 2 >= (m/c)^{1/3} / 4`` (for ``m/c >= 8``)
    leaves at least ``m/2`` words at distance ``> r``.
    """
    _check(m, c)
    if m == 0:
        return 0.0
    r = max(0.0, ((m / c) ** (1.0 / 3.0) - 1.0) / 2.0)
    return (m / 2.0) * (r / 2.0)


def bellman_ford_lower_bound(m: int, k: int, c: int) -> float:
    """Theorem 6.2: ``k * m^{3/2} / (8 sqrt c)``."""
    _check(m, c)
    if k < 0:
        raise ValidationError(f"k must be >= 0, got {k}")
    return k * read_lower_bound_2d(m, c)
