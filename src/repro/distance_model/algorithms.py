"""Conventional shortest-path algorithms on the DISTANCE machine (Section 6).

These are the *same* algorithms as :mod:`repro.baselines`, rewritten so
every word access goes through :class:`DistanceMachine` and accumulates
Manhattan movement cost.  They are the measured counterparts of the
Theorem 6.1 / 6.2 lower bounds:

* :func:`read_input_distance` — just touch all ``m`` input words once
  (the Theorem 6.1 scenario: any algorithm that reads its input pays this);
* :func:`dijkstra_distance` — heap Dijkstra;
* :func:`bellman_ford_khop_distance` — ``k`` full relaxation rounds
  (the Theorem 6.2 object).

The graph is stored as the standard CSR arrays (``indptr``, ``heads``,
``lengths``) plus working arrays, laid out contiguously on the lattice.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.distance_model.machine import DistanceMachine
from repro.errors import ValidationError
from repro.workloads.graph import WeightedDigraph

__all__ = [
    "read_input_distance",
    "matvec_distance",
    "dijkstra_distance",
    "bellman_ford_khop_distance",
]

INF = np.iinfo(np.int64).max


def _load_graph(mc: DistanceMachine, graph: WeightedDigraph) -> None:
    mc.alloc_from("indptr", graph.indptr.tolist())
    mc.alloc_from("heads", graph.heads.tolist())
    mc.alloc_from("lengths", graph.lengths.tolist())


def read_input_distance(
    graph: WeightedDigraph,
    *,
    num_registers: int = 4,
    layout: str = "block",
    dims: int = 2,
) -> int:
    """Movement cost of touching every input word exactly once.

    This is the floor below any conventional algorithm (Theorem 6.1); the
    bench compares it against ``read_lower_bound_2d``.
    """
    mc = DistanceMachine(num_registers, layout=layout, dims=dims)
    _load_graph(mc, graph)
    mc.finalize()
    for i in range(graph.m):
        mc.read("heads", i)
        mc.read("lengths", i)
    for i in range(graph.n + 1):
        mc.read("indptr", i)
    return mc.movement_cost


def dijkstra_distance(
    graph: WeightedDigraph,
    source: int,
    *,
    target: Optional[int] = None,
    num_registers: int = 4,
    layout: str = "block",
    dims: int = 2,
) -> Tuple[np.ndarray, int]:
    """Heap Dijkstra on the DISTANCE machine; returns (dist, movement cost).

    The binary heap lives in machine memory (one (key, vertex) word per
    entry), so sift operations pay movement like everything else.
    """
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range")
    n = graph.n
    mc = DistanceMachine(num_registers, layout=layout, dims=dims)
    _load_graph(mc, graph)
    mc.alloc("dist", n, fill=INF)
    mc.alloc("done", n, fill=0)
    heap_cap = max(1, graph.m + 1)
    mc.alloc("heap", heap_cap, fill=None)
    mc.finalize()

    heap_size = 0

    def heap_push(key: int, vertex: int) -> None:
        nonlocal heap_size
        i = heap_size
        mc.write("heap", i, (key, vertex))
        heap_size += 1
        while i > 0:
            parent = (i - 1) // 2
            if mc.read("heap", parent) <= mc.read("heap", i):
                break
            a = mc.read("heap", parent)
            b = mc.read("heap", i)
            mc.write("heap", parent, b)
            mc.write("heap", i, a)
            i = parent

    def heap_pop() -> Tuple[int, int]:
        nonlocal heap_size
        top = mc.read("heap", 0)
        heap_size -= 1
        if heap_size > 0:
            mc.write("heap", 0, mc.read("heap", heap_size))
            i = 0
            while True:
                left, right = 2 * i + 1, 2 * i + 2
                smallest = i
                if left < heap_size and mc.read("heap", left) < mc.read("heap", smallest):
                    smallest = left
                if right < heap_size and mc.read("heap", right) < mc.read("heap", smallest):
                    smallest = right
                if smallest == i:
                    break
                a = mc.read("heap", i)
                mc.write("heap", i, mc.read("heap", smallest))
                mc.write("heap", smallest, a)
                i = smallest
        return top

    mc.write("dist", source, 0)
    heap_push(0, source)
    while heap_size > 0:
        d, u = heap_pop()
        if mc.read("done", u):
            continue
        mc.write("done", u, 1)
        if target is not None and u == target:
            break
        lo = mc.read("indptr", u)
        hi = mc.read("indptr", u + 1)
        for e in range(lo, hi):
            v = mc.read("heads", e)
            w = mc.read("lengths", e)
            cand = d + w
            if cand < mc.read("dist", v):
                mc.write("dist", v, cand)
                heap_push(cand, v)
    dist = np.asarray(mc.snapshot("dist"), dtype=np.int64)
    return np.where(dist == INF, -1, dist), mc.movement_cost


def bellman_ford_khop_distance(
    graph: WeightedDigraph,
    source: int,
    k: int,
    *,
    num_registers: int = 4,
    layout: str = "block",
    dims: int = 2,
) -> Tuple[np.ndarray, int]:
    """``k`` full Bellman–Ford rounds on the DISTANCE machine.

    Every round reads all ``m`` edges (the schedule Theorem 6.2 charges);
    returns (k-hop distances, movement cost).
    """
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range")
    if k < 0:
        raise ValidationError(f"k must be >= 0, got {k}")
    n = graph.n
    mc = DistanceMachine(num_registers, layout=layout, dims=dims)
    mc.alloc_from("tails", graph.tails.tolist())
    mc.alloc_from("heads", graph.heads.tolist())
    mc.alloc_from("lengths", graph.lengths.tolist())
    mc.alloc("prev", n, fill=INF)
    mc.alloc("cur", n, fill=INF)
    mc.finalize()
    mc.write("prev", source, 0)
    for _round in range(k):
        for v in range(n):
            mc.write("cur", v, mc.read("prev", v))
        for e in range(graph.m):
            u = mc.read("tails", e)
            v = mc.read("heads", e)
            w = mc.read("lengths", e)
            du = mc.read("prev", u)
            if du != INF and du + w < mc.read("cur", v):
                mc.write("cur", v, du + w)
        for v in range(n):
            mc.write("prev", v, mc.read("cur", v))
    dist = np.asarray(mc.snapshot("prev"), dtype=np.int64)
    return np.where(dist == INF, -1, dist), mc.movement_cost


def matvec_distance(
    A: np.ndarray,
    x: np.ndarray,
    *,
    num_registers: int = 4,
    layout: str = "block",
    dims: int = 2,
):
    """Dense matrix-vector product on the DISTANCE machine.

    Section 2.3: "the standard O(n^2) algorithm for computing a
    matrix-vector product with an n x n matrix becomes O(n^3) if
    data-movement is taken into account ... while a neuromorphic
    implementation remains an O(n^2) algorithm."  This is the conventional
    side: the textbook row-major accumulation, every word access paying
    Manhattan movement.  Returns ``(y, movement_cost)``.
    """
    A = np.asarray(A)
    x = np.asarray(x)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValidationError("A must be a square matrix")
    n = A.shape[0]
    if x.shape != (n,):
        raise ValidationError("x must have length n")
    mc = DistanceMachine(num_registers, layout=layout, dims=dims)
    mc.alloc_from("A", A.reshape(-1).tolist())
    mc.alloc_from("x", x.tolist())
    mc.alloc("y", n, fill=0)
    mc.finalize()
    for i in range(n):
        acc = 0
        for j in range(n):
            acc += mc.read("A", i * n + j) * mc.read("x", j)
        mc.write("y", i, acc)
    y = np.asarray(mc.snapshot("y"))
    return y, mc.movement_cost
