"""The instrumented DISTANCE machine (paper Definition 5, Section 6.1).

Every value must travel to a register before being operated on; an
operation computing ``f(v1, v2)`` at register ``p_r`` and storing at
``p_3`` costs ``l1(p1, p_r) + l1(p2, p_r) + l1(p_r, p3)``.  The machine
keeps a register file: a word already resident in a register costs
nothing to touch again — the measured algorithms are thereby given every
reasonable caching advantage, making the measured-vs-lower-bound
comparisons conservative.

Register assignment is *placement-aware*: Definition 5 lets an operation
happen at any register, so a sensible implementation routes each word to
the register nearest to it — that is what the machine charges on a miss
(evicting that register's previous occupant).  This keeps every measured
cost an upper bound a real algorithm could achieve while never dropping
below the nearest-register distance the Theorem 6.1 counting argument is
about.

Values themselves are ordinary Python objects held per array; the machine
tracks *where* each word lives and what movement the access pattern costs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.distance_model.memory import GridMemory
from repro.errors import MachineError

__all__ = ["DistanceMachine"]

WordRef = Tuple[str, int]


class DistanceMachine:
    """A RAM whose every access pays Manhattan data-movement cost.

    Usage::

        mc = DistanceMachine(num_registers=4)
        dist = mc.alloc("dist", n, fill=INF)
        ...
        mc.finalize()
        v = mc.read("dist", 3)
        mc.write("dist", 3, 7)
        mc.binop(min, ("dist", 3), ("len", 9), ("dist", 3))
        mc.movement_cost
    """

    def __init__(
        self, num_registers: int = 4, *, layout: str = "block", dims: int = 2
    ):
        self.memory = GridMemory(num_registers, layout=layout, dims=dims)
        self._values: Dict[str, List[Any]] = {}
        self.movement_cost: int = 0
        self.op_count: int = 0
        # resident words: WordRef -> register slot, plus the reverse map
        self._resident: Dict[WordRef, int] = {}
        self._slot_word: List[Optional[WordRef]] = []
        self._finalized = False

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    @property
    def num_registers(self) -> int:
        return self.memory.c

    def alloc(self, name: str, size: int, *, fill: Any = 0) -> str:
        self.memory.alloc(name, size)
        self._values[name] = [fill] * size
        return name

    def alloc_from(self, name: str, data) -> str:
        data = list(data)
        self.memory.alloc(name, len(data))
        self._values[name] = data
        return name

    def finalize(self) -> None:
        self.memory.finalize()
        self._slot_word = [None] * self.memory.c
        self._finalized = True

    def _nearest_slot(self, pos) -> int:
        """Register slot closest to ``pos`` (the Definition-5 free choice)."""
        best, best_d = 0, None
        for slot, reg in enumerate(self.memory.register_positions):
            d = self.memory.distance(pos, reg)
            if best_d is None or d < best_d:
                best, best_d = slot, d
        return best

    def _claim(self, ref: WordRef, slot: int) -> None:
        old = self._slot_word[slot]
        if old is not None:
            del self._resident[old]
        self._slot_word[slot] = ref
        self._resident[ref] = slot

    # ------------------------------------------------------------------ #
    # register file
    # ------------------------------------------------------------------ #

    def _touch(self, ref: WordRef) -> int:
        """Ensure ``ref`` is resident; return its register slot.

        On a miss, the word travels to its *nearest* register (whose
        previous occupant is evicted); hits are free.
        """
        if not self._finalized:
            raise MachineError("finalize() the machine before operating")
        if ref in self._resident:
            return self._resident[ref]
        src = self.memory.position_of(*ref)
        slot = self._nearest_slot(src)
        self.movement_cost += self.memory.distance(
            src, self.memory.register_positions[slot]
        )
        self._claim(ref, slot)
        return slot

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def read(self, array: str, index: int) -> Any:
        """Load one word into a register (charging its travel) and return it."""
        self._touch((array, index))
        self.op_count += 1
        return self._values[array][index]

    def write(self, array: str, index: int, value: Any) -> None:
        """Store a register-resident value to a word (charging the travel).

        The result is produced at the register nearest the destination
        among currently-used registers (write-through; the copy also stays
        resident).
        """
        ref = (array, index)
        slot = self._touch_for_write(ref)
        reg = self.memory.register_positions[slot]
        dst = self.memory.position_of(array, index)
        self.movement_cost += self.memory.distance(reg, dst)
        self._values[array][index] = value
        self.op_count += 1

    def _touch_for_write(self, ref: WordRef) -> int:
        if ref in self._resident:
            return self._resident[ref]
        # a write produces the value at the register: no inbound charge;
        # the value materializes at the register nearest its destination
        slot = self._nearest_slot(self.memory.position_of(*ref))
        self._claim(ref, slot)
        return slot

    def binop(
        self,
        f: Callable[[Any, Any], Any],
        a: WordRef,
        b: WordRef,
        out: Optional[WordRef] = None,
    ) -> Any:
        """Definition-5 operation: ``out <- f(a, b)``.

        Charges ``l1(p_a, p_r) + l1(p_b, p_r) + l1(p_r, p_out)`` (with the
        register-file hits free as documented).  Without ``out`` the result
        stays in a register and only the operand movement is charged.
        """
        va = self.read(*a)
        vb = self.read(*b)
        result = f(va, vb)
        self.op_count += 1
        if out is not None:
            self.write(out[0], out[1], result)
        return result

    # raw (cost-free) access for result extraction after the run
    def snapshot(self, array: str) -> List[Any]:
        return list(self._values[array])
