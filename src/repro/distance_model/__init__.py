"""The DISTANCE data-movement model for conventional algorithms
(paper Definition 5 and Section 6).

Memory is a 2D (optionally 3D) integer lattice; each lattice point holds
one word; ``c`` of the points are *registers*, chosen up front and fixed.
Every operation happens at a register and pays the Manhattan (``l1``)
distances its operands and result travel (Definition of *movement cost*,
Section 6.1).

Contents:

* :mod:`~repro.distance_model.memory` — lattice geometry, register
  layouts, word placement.
* :mod:`~repro.distance_model.machine` — the instrumented machine: reads,
  writes, and binary operations with an LRU register file, accumulating
  movement cost.
* :mod:`~repro.distance_model.algorithms` — Dijkstra, k-hop Bellman–Ford,
  and whole-input reads implemented against the machine.
* :mod:`~repro.distance_model.bounds` — the lower-bound formulas of
  Theorems 6.1 and 6.2 (and the 3D variant), with the proofs' explicit
  constants so measured costs can be checked against them.
"""

from repro.distance_model.memory import GridMemory, spiral_positions
from repro.distance_model.machine import DistanceMachine
from repro.distance_model.algorithms import (
    bellman_ford_khop_distance,
    matvec_distance,
    dijkstra_distance,
    read_input_distance,
)
from repro.distance_model.bounds import (
    read_lower_bound_2d,
    read_lower_bound_3d,
    bellman_ford_lower_bound,
)

__all__ = [
    "GridMemory",
    "spiral_positions",
    "DistanceMachine",
    "dijkstra_distance",
    "bellman_ford_khop_distance",
    "matvec_distance",
    "read_input_distance",
    "read_lower_bound_2d",
    "read_lower_bound_3d",
    "bellman_ford_lower_bound",
]
