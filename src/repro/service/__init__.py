"""repro.service: concurrent graph-query serving with micro-batch coalescing.

The serving layer turns the repo's one-shot algorithm drivers into a
long-lived query server over *resident* graphs and circuits.  Concurrent
requests that are batch-compatible — same graph structure, same engine
configuration — are coalesced into micro-batches and dispatched through
:func:`~repro.core.run.simulate_batch`, amortizing per-tick sweep overhead
across riders while keeping every answer spike-for-spike identical to a
solo run (the batched dense engine is per-item exact, and the adapters
reuse the solo drivers' plan/decode code verbatim).

Layers, bottom up:

- :mod:`~repro.service.schema` — :class:`QueryRequest` /
  :class:`QueryResult`, validation, JSONL parsing.
- :mod:`~repro.service.adapters` — request → :class:`RequestPlan` (batch
  key, stimuli, decode), plus the naive :func:`execute_solo` reference.
- :mod:`~repro.service.queue` — bounded admission with backpressure and
  linger-based coalescing.
- :mod:`~repro.service.resultcache` — TTL-LRU cache of served answers,
  with amortized expiry purging and an optional stale-grace window.
- :mod:`~repro.service.breaker` — per-``(kind, graph_id)``
  :class:`CircuitBreaker` (closed/open/half-open on rolling error rate).
- :mod:`~repro.service.retry` — client-side :class:`RetryPolicy`
  (jittered exponential backoff over structured error codes).
- :mod:`~repro.service.server` — :class:`QueryServer`: supervised worker
  pool, dispatch, degradation ladder, telemetry.
- :mod:`~repro.service.client` — in-process :class:`ServiceClient` facade
  with retries and hedged submission.
- :mod:`~repro.service.chaos` — deterministic fault injection
  (:class:`ChaosPolicy`) and the ``repro chaos`` recovery harness
  (the ``BENCH_chaos.json`` artifact).
- :mod:`~repro.service.loadgen` — closed-loop benchmark behind
  ``repro loadgen`` (the ``BENCH_serving.json`` artifact).
- :mod:`~repro.service.net` — the deployable tier: JSONL socket front end
  (``repro serve --net``), process-pool workers with resident compiled
  networks, and the fixpoint shard router for huge graphs.

See ``docs/serving.md`` for the architecture, tuning, and failure-mode
guide (including the network protocol).
"""

from repro.service.adapters import RequestPlan, execute_solo, plan_request
from repro.service.breaker import BreakerPolicy, CircuitBreaker
from repro.service.chaos import SCENARIOS, ChaosPolicy, InjectedWorkerCrash, run_chaos
from repro.service.client import ServiceClient
from repro.service.loadgen import generate_requests, results_equal, run_loadgen
from repro.service.queue import Batch, CoalescingQueue
from repro.service.resultcache import TTLResultCache
from repro.service.retry import RetryPolicy
from repro.service.schema import (
    MUTATION_KINDS,
    QUERY_KINDS,
    QueryRequest,
    QueryResult,
    QueryStatus,
    fault_from_spec,
    request_from_dict,
    request_to_dict,
)
from repro.service.server import QueryServer, QueryTicket

__all__ = [
    "MUTATION_KINDS",
    "QUERY_KINDS",
    "SCENARIOS",
    "Batch",
    "BreakerPolicy",
    "ChaosPolicy",
    "CircuitBreaker",
    "CoalescingQueue",
    "InjectedWorkerCrash",
    "QueryRequest",
    "QueryResult",
    "QueryServer",
    "QueryStatus",
    "QueryTicket",
    "RequestPlan",
    "RetryPolicy",
    "ServiceClient",
    "TTLResultCache",
    "execute_solo",
    "fault_from_spec",
    "generate_requests",
    "plan_request",
    "request_from_dict",
    "request_to_dict",
    "results_equal",
    "run_chaos",
    "run_loadgen",
]
