"""Per-query-family circuit breakers for the serving layer.

A :class:`CircuitBreaker` guards one ``(kind, graph_id)`` family of
requests.  It watches a rolling window of outcomes
(:class:`~repro.telemetry.metrics.RollingWindow`) and moves through the
classic three states:

``closed``
    Normal service.  Every outcome is recorded; once at least
    ``min_samples`` outcomes are in the window and the windowed error rate
    reaches ``error_threshold``, the breaker **opens**.
``open``
    Fast shedding: :meth:`allow` returns ``False`` without touching the
    queue, so a failing family cannot occupy batch slots that healthy
    families need.  After ``open_s`` the breaker becomes half-open.
``half_open``
    Up to ``half_open_trials`` probe requests are admitted.  If all of
    them succeed the breaker closes (window reset); any failure reopens it
    for another full ``open_s``.

The server raises :class:`~repro.errors.CircuitOpenError` (carrying the
remaining cool-down as ``retry_after_s``) when :meth:`allow` refuses, so
clients back off exactly as they do for queue backpressure.  All methods
are thread-safe; the clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import ValidationError
from repro.telemetry.metrics import RollingWindow

__all__ = ["BreakerPolicy", "CircuitBreaker"]


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning of one breaker; shared by every family of a server.

    The defaults are deliberately conservative: half the last ``window``
    outcomes must fail (with at least ``min_samples`` observed) before any
    load is shed, so isolated failures and cold starts never trip it.
    """

    window: int = 32
    error_threshold: float = 0.5
    min_samples: int = 8
    open_s: float = 1.0
    half_open_trials: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValidationError(f"window must be >= 1, got {self.window}")
        if not (0.0 < self.error_threshold <= 1.0):
            raise ValidationError(
                f"error_threshold must be in (0, 1], got {self.error_threshold}"
            )
        if self.min_samples < 1:
            raise ValidationError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.open_s <= 0:
            raise ValidationError(f"open_s must be > 0, got {self.open_s}")
        if self.half_open_trials < 1:
            raise ValidationError(
                f"half_open_trials must be >= 1, got {self.half_open_trials}"
            )


class CircuitBreaker:
    """Rolling-error-rate breaker: closed / open / half-open."""

    def __init__(
        self,
        policy: BreakerPolicy = BreakerPolicy(),
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._window = RollingWindow(policy.window)
        self._state = "closed"
        self._opened_at = 0.0
        self._trials = 0
        self._trial_successes = 0
        self.opens = 0  # lifetime count of closed/half-open -> open transitions

    # ------------------------------------------------------------------ #

    @property
    def state(self) -> str:
        with self._lock:
            return self._probe_state(self._clock())

    def _probe_state(self, now: float) -> str:
        """Advance open -> half-open if the cool-down elapsed (lock held)."""
        if self._state == "open" and now >= self._opened_at + self.policy.open_s:
            self._state = "half_open"
            self._trials = 0
            self._trial_successes = 0
        return self._state

    def _open(self, now: float) -> None:
        self._state = "open"
        self._opened_at = now
        self.opens += 1

    # ------------------------------------------------------------------ #

    def allow(self) -> bool:
        """May one request of this family be admitted right now?

        In half-open state each ``True`` consumes one of the probe slots;
        callers must follow up with :meth:`record` so the probe's outcome
        decides the next transition.
        """
        with self._lock:
            now = self._clock()
            state = self._probe_state(now)
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._trials >= self.policy.half_open_trials:
                return False
            self._trials += 1
            return True

    def retry_after_s(self) -> float:
        """Remaining cool-down of an open breaker (0 when not open)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(self._opened_at + self.policy.open_s - self._clock(), 0.0)

    def record(self, ok: bool) -> None:
        """Feed one outcome (cache hits excluded; sheds are not outcomes)."""
        with self._lock:
            now = self._clock()
            state = self._probe_state(now)
            if state == "half_open":
                if not ok:
                    self._open(now)
                    return
                self._trial_successes += 1
                if self._trial_successes >= self.policy.half_open_trials:
                    self._state = "closed"
                    self._window.reset()
                return
            self._window.push(0.0 if ok else 1.0)
            if (
                state == "closed"
                and len(self._window) >= self.policy.min_samples
                and self._window.mean() >= self.policy.error_threshold
            ):
                self._open(now)

    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._probe_state(self._clock()),
                "error_rate": round(self._window.mean(), 4),
                "samples": len(self._window),
                "opens": self.opens,
            }
