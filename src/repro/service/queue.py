"""Bounded admission queue with micro-batch coalescing.

:class:`CoalescingQueue` is the heart of the serving layer's scheduling: it
admits work up to a bounded number of batch *items* (backpressure —
over-capacity offers raise
:class:`~repro.errors.ServiceOverloadedError` with a retry hint), groups
pending tickets by their *batch key* (same graph structure + identical
engine configuration — the compatibility condition for
:func:`~repro.core.batch.simulate_dense_batch`), and releases a group to a
worker when it is **full** (``max_batch`` items) or its oldest ticket has
**lingered** ``linger_s`` seconds.  The linger bound caps the latency cost
of coalescing: a lone request waits at most ``linger_s`` before running
solo.

Tickets whose deadline expires while queued are never dispatched; they are
handed back in :attr:`Batch.expired` so the worker can answer them with
``TIMEOUT`` without paying for a simulation.

Groups offered with ``serial=True`` (graph mutations) additionally dispatch
**one batch at a time**: while a serial group's batch is in flight, the
group is invisible to :meth:`next_batch` until the dispatching worker calls
:meth:`release`.  Within a batch, tickets stay in admission order, so writes
on one graph apply in the order they were submitted; reads admitted between
two writes batch under the earlier version's key and therefore observe a
coherent version.

The queue is a plain condition-variable monitor; workers call
:meth:`next_batch` directly (no separate scheduler thread), so a ready
batch is picked up by whichever worker is free first.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ServiceOverloadedError, ValidationError

__all__ = ["CoalescingQueue", "Batch"]


@dataclass
class Batch:
    """One dispatchable unit: compatible tickets plus any expired ones."""

    key: Tuple
    tickets: List[object] = field(default_factory=list)
    expired: List[object] = field(default_factory=list)

    @property
    def n_items(self) -> int:
        return sum(t.n_items for t in self.tickets)


class CoalescingQueue:
    """Bounded, batch-key-grouped admission queue (thread-safe monitor).

    Parameters
    ----------
    limit_items:
        Admission bound counted in batch items (an apsp slice of 8 sources
        occupies 8).  Offers that would exceed it are rejected.
    max_batch:
        Release a group as soon as it holds at least this many items.  A
        single ticket larger than ``max_batch`` still dispatches (alone).
    linger_s:
        Maximum time the oldest ticket of a group may wait for company.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        *,
        limit_items: int = 256,
        max_batch: int = 16,
        linger_s: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
    ):
        if limit_items < 1:
            raise ValidationError(f"limit_items must be >= 1, got {limit_items}")
        if max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch}")
        if linger_s < 0:
            raise ValidationError(f"linger_s must be >= 0, got {linger_s}")
        self.limit_items = int(limit_items)
        self.max_batch = int(max_batch)
        self.linger_s = float(linger_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: batch key -> [(admit time, ticket), ...] in admission order
        self._groups: Dict[Tuple, List[Tuple[float, object]]] = {}
        self._depth = 0
        self._closed = False
        #: keys whose groups dispatch one batch at a time (mutations)
        self._serial: set = set()
        #: serial keys with a batch currently in flight
        self._inflight: set = set()

    # ------------------------------------------------------------------ #

    def depth(self) -> int:
        """Currently queued batch items."""
        with self._lock:
            return self._depth

    def offer(self, key: Tuple, ticket, *, serial: bool = False) -> None:
        """Admit ``ticket`` under ``key`` or reject with backpressure.

        Rejection raises :class:`~repro.errors.ServiceOverloadedError`
        carrying ``retry_after_s`` — the linger bound, i.e. the longest a
        present batch can take to start draining — so clients can back off
        precisely instead of guessing.

        ``serial=True`` marks the group as dispatch-one-batch-at-a-time:
        once a batch of the group is handed to a worker, the group stays
        parked until that worker calls :meth:`release` — the mechanism that
        serializes writes per graph.
        """
        n = ticket.n_items
        with self._cond:
            if self._closed:
                raise ServiceOverloadedError("service is shutting down")
            if self._depth + n > self.limit_items:
                raise ServiceOverloadedError(
                    f"admission queue full ({self._depth}/{self.limit_items} items)",
                    retry_after_s=max(self.linger_s, 0.001),
                    queue_depth=self._depth,
                )
            if serial:
                self._serial.add(key)
            self._groups.setdefault(key, []).append((self._clock(), ticket))
            self._depth += n
            self._cond.notify()

    def release(self, key: Tuple) -> None:
        """Mark a serial group's in-flight batch finished (idempotent).

        Workers call this after dispatching a batch (success, crash
        recovery, or wedge recovery); for non-serial keys it is a no-op.
        """
        with self._cond:
            if key in self._inflight:
                self._inflight.discard(key)
                self._cond.notify_all()

    def requeue(self, key: Tuple, ticket) -> None:
        """Put a recovered in-flight ticket back at the *front* of its group.

        The supervisor's recovery path after a worker crash: the ticket was
        already admitted once, so this bypasses the ``limit_items`` bound
        and the closed check (recovery must still work while :meth:`close`
        is draining).  The admit time is backdated by ``linger_s`` so the
        group releases immediately instead of lingering a second time.
        """
        n = ticket.n_items
        with self._cond:
            backdated = self._clock() - self.linger_s
            self._groups.setdefault(key, []).insert(0, (backdated, ticket))
            self._depth += n
            self._cond.notify()

    def close(self) -> None:
        """Stop admitting; pending groups drain immediately (no linger)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drained(self) -> bool:
        """True once the queue is closed and holds no tickets."""
        with self._lock:
            return self._closed and not self._groups

    # ------------------------------------------------------------------ #

    def _pop_group(self, key: Tuple, now: float) -> Batch:
        """Extract up to ``max_batch`` items from ``key`` (caller holds lock)."""
        entries = self._groups[key]
        batch = Batch(key=key)
        taken = 0
        while entries:
            _admit, ticket = entries[0]
            if ticket.expired(now):
                entries.pop(0)
                self._depth -= ticket.n_items
                batch.expired.append(ticket)
                continue
            if batch.tickets and taken + ticket.n_items > self.max_batch:
                break  # never split a ticket across batches
            entries.pop(0)
            self._depth -= ticket.n_items
            batch.tickets.append(ticket)
            taken += ticket.n_items
            if taken >= self.max_batch:
                break
        if not entries:
            del self._groups[key]
        return batch

    def next_batch(self) -> Optional[Batch]:
        """Block until a group is ready; ``None`` once closed and drained.

        A group is ready when it holds ``max_batch`` items, when its oldest
        ticket has lingered ``linger_s``, when any queued ticket's deadline
        has expired (so timeouts are answered promptly), or when the queue
        is closed (drain).  Multiple waiting workers each receive distinct
        batches.
        """
        with self._cond:
            while True:
                now = self._clock()
                ready_key: Optional[Tuple] = None
                next_wake: Optional[float] = None
                for key, entries in self._groups.items():
                    if key in self._inflight:
                        continue  # serial group with a batch in flight
                    items = sum(t.n_items for _, t in entries)
                    oldest = entries[0][0]
                    release_at = oldest + self.linger_s
                    deadlines = [
                        t.deadline for _, t in entries if t.deadline is not None
                    ]
                    if deadlines:
                        release_at = min(release_at, min(deadlines))
                    if items >= self.max_batch or release_at <= now or self._closed:
                        ready_key = key
                        break
                    next_wake = release_at if next_wake is None else min(next_wake, release_at)
                if ready_key is not None:
                    batch = self._pop_group(ready_key, now)
                    if batch.tickets or batch.expired:
                        if ready_key in self._serial and batch.tickets:
                            self._inflight.add(ready_key)
                        return batch
                    continue  # group was entirely consumed by expiry races
                if self._closed and not self._groups:
                    return None
                self._cond.wait(
                    timeout=None if next_wake is None else max(0.0, next_wake - now)
                )
