"""Client-side retry discipline for served queries.

:class:`RetryPolicy` is the contract half the server publishes through its
structured errors: backpressure rejections
(:class:`~repro.errors.ServiceOverloadedError`) and open breakers
(:class:`~repro.errors.CircuitOpenError`) carry ``retry_after_s``; ERROR
results carry a stable :attr:`~repro.service.schema.QueryResult.error_code`
that :data:`~repro.errors.RETRYABLE_ERROR_CODES` splits into transient and
permanent.  The policy turns those signals into a bounded, jittered
exponential backoff:

* **idempotent-only** — a request is only ever resubmitted when
  :attr:`~repro.service.schema.QueryRequest.idempotent` is true (every
  current query kind is a pure read; future mutation ops opt out);
* **code-gated** — ERROR/TIMEOUT results retry only when their
  ``error_code`` is in :attr:`RetryPolicy.retry_codes`; a deterministic
  failure (validation, simulation bug) is returned immediately;
* **server-hinted** — the backoff never undercuts the server's
  ``retry_after_s`` hint, so a shedding server is not hammered;
* **budget-capped** — both an attempt cap and a wall-clock budget bound
  the total time a caller can spend retrying one request.

Jitter is *deterministic*: a counter-hash of ``(seed, attempt)`` through
the same splitmix64 finalizer the transient fault models use, so two runs
of a seeded workload produce identical backoff schedules — the property
the chaos harness's reproducibility rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

import numpy as np

from repro.core.transient import _uniform_hash
from repro.errors import RETRYABLE_ERROR_CODES, ValidationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered-exponential retry schedule for idempotent queries.

    Parameters
    ----------
    max_attempts:
        Total submission attempts (1 = no retries).
    base_backoff_s / max_backoff_s:
        Attempt ``k`` (1-based) backs off
        ``min(base * 2**(k-1), max)``, then jitter and the server hint
        are applied.
    jitter:
        Symmetric jitter fraction: the backoff is scaled by a
        deterministic factor in ``[1 - jitter, 1 + jitter]``.
    budget_s:
        Wall-clock retry budget measured from the first attempt; once
        exhausted no further retry is scheduled regardless of attempts
        left.
    retry_codes:
        Error codes eligible for retry (default: the library's
        :data:`~repro.errors.RETRYABLE_ERROR_CODES`).
    seed:
        Jitter seed (counter-hashed per attempt, never a sequential RNG).
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    jitter: float = 0.2
    budget_s: float = 30.0
    retry_codes: FrozenSet[str] = field(default_factory=lambda: RETRYABLE_ERROR_CODES)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValidationError("backoff bounds must be >= 0")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValidationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.budget_s <= 0:
            raise ValidationError(f"budget_s must be > 0, got {self.budget_s}")

    # ------------------------------------------------------------------ #

    def backoff_s(self, attempt: int, *, hint_s: Optional[float] = None) -> float:
        """Sleep before retry number ``attempt`` (1-based, deterministic).

        ``hint_s`` is the server's ``retry_after_s`` when one was given;
        the returned delay is never below it (jitter only ever extends a
        hint, so a fleet of clients still de-synchronizes).
        """
        base = min(self.base_backoff_s * (2.0 ** max(attempt - 1, 0)), self.max_backoff_s)
        u = float(_uniform_hash(self.seed, attempt, np.array([0], dtype=np.uint64))[0])
        jittered = base * (1.0 + self.jitter * (2.0 * u - 1.0))
        if hint_s is not None and hint_s > 0:
            jittered = max(jittered, hint_s * (1.0 + self.jitter * u))
        return max(jittered, 0.0)

    def should_retry(
        self, *, attempt: int, elapsed_s: float, error_code: Optional[str], idempotent: bool
    ) -> bool:
        """May attempt ``attempt`` (just failed with ``error_code``) be retried?"""
        if not idempotent:
            return False
        if attempt >= self.max_attempts:
            return False
        if elapsed_s >= self.budget_s:
            return False
        return error_code in self.retry_codes
