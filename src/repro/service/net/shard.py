"""Graph sharding: partition a huge graph and route one query across shards.

A graph too large (or too hot) for one worker is split into ``K`` shards of
contiguous vertex ranges.  Each shard compiles its *local* subgraph into
the usual Section-3 delay-encoded network; edges crossing a shard boundary
are kept aside as relaxation lists.  A single sssp/khop query then runs as
a **fixpoint over shard-local spiking runs**: every round re-stimulates the
dirty shards with their currently-known tentative distances as *spike-time
offsets* (the stimulus mapping form ``{tick: [neuron ids]}``), reads first
spikes back as candidate distances, and relaxes the cross edges — exactly
Bellman-Ford at shard granularity, with the intra-shard work done by the
SNN.  Offsets make the merge exact: a neuron's first spike in round ``r``
is ``min over seeds (dist[seed] + local distance)``, so tentative values
only ever decrease toward the true distance, and the loop terminates after
at most one round per boundary crossing on a shortest path.

Per-shard runs can fan out across the process pool
(:class:`~repro.service.net.procpool.ProcessWorkerPool`); their telemetry
registries and model costs are merged into one
:class:`~repro.core.cost.CostReport` so a sharded query reports the same
shape of accounting as a solo one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.cost import CostReport
from repro.core.network import CompiledNetwork
from repro.core.result import SimulationResult
from repro.core.run import simulate
from repro.errors import ValidationError
from repro.service.net.procpool import ExecJob, ProcessWorkerPool
from repro.telemetry.metrics import counter_inc, merge_raw_into_active
from repro.workloads.graph import WeightedDigraph

if TYPE_CHECKING:  # lazy at runtime: adapters is imported by the server
    from repro.service.adapters import RequestPlan
    from repro.service.schema import QueryRequest

__all__ = [
    "Shard",
    "ShardedGraph",
    "ShardQueryResult",
    "partition_graph",
    "plan_sharded_request",
    "sharded_khop",
    "sharded_sssp",
]

#: Tentative-distance infinity; far above any true distance (``n * U``)
#: yet safely below int64 overflow when an edge weight is added.
_INF: int = 1 << 62


@dataclass(frozen=True)
class Shard:
    """One contiguous vertex range with its local subgraph and cross edges.

    ``cross_src`` holds *local* source ids, ``cross_dst`` *global* target
    ids — a cross edge is relaxed in the parent against the global
    tentative-distance array, never simulated.
    """

    index: int
    base: int
    graph: WeightedDigraph
    cross_src: np.ndarray
    cross_dst: np.ndarray
    cross_w: np.ndarray

    @property
    def n(self) -> int:
        return self.graph.n


@dataclass(frozen=True)
class ShardedGraph:
    """A graph partitioned into ``k`` contiguous vertex-range shards."""

    graph: WeightedDigraph
    shards: Tuple[Shard, ...]
    shard_size: int

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def k(self) -> int:
        return len(self.shards)

    @property
    def cross_edges(self) -> int:
        return int(sum(s.cross_dst.size for s in self.shards))

    def shard_of(self, v: int) -> int:
        return min(int(v) // self.shard_size, self.k - 1)


@dataclass(frozen=True)
class ShardQueryResult:
    """Merged outcome of one sharded query: exact distances + one report."""

    dist: np.ndarray
    cost: CostReport
    rounds: int
    local_runs: int


def partition_graph(graph: WeightedDigraph, k: int) -> ShardedGraph:
    """Split ``graph`` into ``k`` shards of contiguous vertex ranges."""
    if k < 1:
        raise ValidationError(f"shard count must be >= 1, got {k}")
    if graph.n == 0:
        raise ValidationError("cannot shard an empty graph")
    if k > graph.n:
        raise ValidationError(
            f"shard count {k} exceeds vertex count {graph.n}"
        )
    size = -(-graph.n // k)  # ceil division
    tails = graph.tails
    heads = graph.heads
    lengths = graph.lengths
    src_shard = np.minimum(tails // size, k - 1)
    dst_shard = np.minimum(heads // size, k - 1)
    shards: List[Shard] = []
    for s in range(k):
        base = s * size
        hi = min(base + size, graph.n)
        mine = src_shard == s
        local = mine & (dst_shard == s)
        cross = mine & (dst_shard != s)
        shards.append(
            Shard(
                index=s,
                base=base,
                graph=WeightedDigraph.from_arrays(
                    hi - base,
                    tails[local] - base,
                    heads[local] - base,
                    lengths[local],
                ),
                cross_src=np.ascontiguousarray(tails[cross] - base),
                cross_dst=np.ascontiguousarray(heads[cross]),
                cross_w=np.ascontiguousarray(lengths[cross]),
            )
        )
    return ShardedGraph(graph=graph, shards=tuple(shards), shard_size=size)


def _shard_networks(
    sharded: ShardedGraph, kind: str
) -> List[Tuple[Any, List[int]]]:
    """(network, node_ids) per shard, via the shared build cache."""
    from repro.algorithms.reach import khop_reach_network
    from repro.algorithms.sssp_pseudo import sssp_network

    if kind == "sssp":
        return [sssp_network(s.graph, use_gadgets=False) for s in sharded.shards]
    return [khop_reach_network(s.graph) for s in sharded.shards]


def _run_local(
    pool: Optional[ProcessWorkerPool],
    jobs: List[ExecJob],
) -> List[SimulationResult]:
    """One fixpoint round's shard-local runs (pool fan-out or in-process)."""
    if pool is not None:
        out: List[SimulationResult] = []
        for results, raw in pool.execute_many(jobs):
            merge_raw_into_active(raw)
            out.extend(results)
        return out
    solo: List[SimulationResult] = []
    for job in jobs:
        net = job["network"]
        (stimulus,) = job["stimuli"]
        solo.append(simulate(net, stimulus, **job["sim_kwargs"]))
    return solo


def _fixpoint(
    sharded: ShardedGraph,
    source: int,
    *,
    kind: str,
    max_steps: int,
    engine: str,
    hop_limit: Optional[int],
    pool: Optional[ProcessWorkerPool],
) -> ShardQueryResult:
    """Bellman-Ford at shard granularity with SNN shard-local relaxation."""
    n = sharded.n
    if not (0 <= source < n):
        raise ValidationError(f"source {source} out of range for n={n}")
    nets = _shard_networks(sharded, kind)
    dist = np.full(n, _INF, dtype=np.int64)
    dist[source] = 0
    dirty: Set[int] = {sharded.shard_of(source)}
    rounds = 0
    local_runs = 0
    spike_count = 0
    while dirty:
        rounds += 1
        run_order = sorted(dirty)
        jobs: List[ExecJob] = []
        ran: List[int] = []
        for s in run_order:
            shard = sharded.shards[s]
            net, node_ids = nets[s]
            seg = dist[shard.base : shard.base + shard.n]
            seeded = np.nonzero(
                (seg < _INF) if hop_limit is None else (seg < hop_limit)
            )[0]
            if seeded.size == 0:
                continue
            stimulus: Dict[int, List[int]] = {}
            for local_v in seeded:
                stimulus.setdefault(int(seg[local_v]), []).append(
                    int(node_ids[int(local_v)])
                )
            compiled: CompiledNetwork = net.compile()
            jobs.append(
                {
                    # structure-keyed, not (k, s)-keyed: two sharded graphs
                    # sharing a pool must never collide on a resident slot
                    "net_key": ("shard", kind, shard.graph.structure_key()),
                    "network": compiled,
                    "stimuli": [stimulus],
                    "faults": None,
                    "sim_kwargs": {
                        "max_steps": max_steps,
                        "engine": engine,
                        "stop_when_quiescent": True,
                    },
                }
            )
            ran.append(s)
        results = _run_local(pool, jobs)
        local_runs += len(results)
        for s, res in zip(ran, results):
            shard = sharded.shards[s]
            _net, node_ids = nets[s]
            first = res.first_spike[np.asarray(node_ids, dtype=np.int64)]
            cand = np.where(first >= 0, first, _INF)
            seg = dist[shard.base : shard.base + shard.n]
            np.minimum(seg, cand, out=seg)
            spike_count += res.total_spikes
        # relax every cross edge against the updated tentative distances
        next_dirty: Set[int] = set()
        for shard in sharded.shards:
            if shard.cross_dst.size == 0:
                continue
            du = dist[shard.base + shard.cross_src]
            weight = (
                shard.cross_w
                if hop_limit is None
                else np.ones_like(shard.cross_w)
            )
            cand = np.where(du < _INF, du + weight, _INF)
            if hop_limit is not None:
                cand = np.where(cand <= hop_limit, cand, _INF)
            better = cand < dist[shard.cross_dst]
            if not bool(better.any()):
                continue
            targets = shard.cross_dst[better]
            np.minimum.at(dist, targets, cand[better])
            for t in np.unique(
                np.minimum(targets // sharded.shard_size, sharded.k - 1)
            ):
                next_dirty.add(int(t))
        dirty = next_dirty
    counter_inc("shard.queries", 1)
    counter_inc("shard.rounds", rounds)
    counter_inc("shard.local_runs", local_runs)
    reached = dist[dist < _INF]
    out = np.where(dist < _INF, dist, -1).astype(np.int64)
    neuron_count = sum(net.compile().n_neurons for net, _ids in nets)
    synapse_count = sum(net.compile().n_synapses for net, _ids in nets)
    cost = CostReport(
        algorithm=f"sharded_{kind}",
        simulated_ticks=int(reached.max()) if reached.size else 0,
        loading_ticks=sharded.graph.m,
        neuron_count=int(neuron_count),
        synapse_count=int(synapse_count),
        spike_count=int(spike_count),
        rounds=rounds,
        extras={
            "shards": float(sharded.k),
            "cross_edges": float(sharded.cross_edges),
            "local_runs": float(local_runs),
        },
    )
    return ShardQueryResult(
        dist=out, cost=cost, rounds=rounds, local_runs=local_runs
    )


def sharded_sssp(
    sharded: ShardedGraph,
    source: int,
    *,
    engine: str = "event",
    pool: Optional[ProcessWorkerPool] = None,
) -> ShardQueryResult:
    """Exact single-source shortest paths on a sharded graph.

    Distances agree exactly with the solo
    :func:`~repro.algorithms.sssp_pseudo.spiking_sssp_pseudo` run on the
    unsharded graph (``-1`` for unreachable).  The default engine is the
    activity-driven event engine: seed offsets reach ``O(nU)``, whose quiet
    ticks a dense sweep would step through one by one.
    """
    horizon = sharded.n * max(1, sharded.graph.max_length()) + 1
    return _fixpoint(
        sharded,
        source,
        kind="sssp",
        max_steps=horizon,
        engine=engine,
        hop_limit=None,
        pool=pool,
    )


#: Uniquifies runner batch keys so sharded plans never coalesce (each is
#: a whole multi-round fan-out, not a batchable single simulation).
_RUNNER_SEQ = itertools.count()


def plan_sharded_request(
    request: "QueryRequest", sharded: ShardedGraph
) -> "RequestPlan":
    """Build the self-executing :class:`~repro.service.adapters.RequestPlan`
    that routes ``request`` through the shard router.

    The plan's ``runner`` receives the server's process pool (or ``None``)
    at dispatch time, so the same plan serves pooled and in-process
    servers.  Only :func:`repro.service.server._sharded_eligible` shapes
    reach this; validation here covers what the router itself requires.
    """
    from repro.service.adapters import RequestPlan

    source = int(request.source) if request.source is not None else -1
    if not (0 <= source < sharded.n):
        raise ValidationError(
            f"source {request.source} out of range for sharded graph "
            f"{request.graph_id!r} (n={sharded.n})"
        )
    if request.kind == "khop":
        hops = int(request.k)

        def runner(pool: Optional[ProcessWorkerPool]) -> Dict[str, Any]:
            res = sharded_khop(sharded, source, hops, pool=pool)
            return {"dist": res.dist, "cost": res.cost}

    else:

        def runner(pool: Optional[ProcessWorkerPool]) -> Dict[str, Any]:
            res = sharded_sssp(sharded, source, pool=pool)
            return {"dist": res.dist, "cost": res.cost}

    return RequestPlan(
        batch_key=(
            "sharded",
            request.kind,
            request.graph_id,
            next(_RUNNER_SEQ),
        ),
        network=None,
        stimuli=[],
        faults=[],
        sim_kwargs={},
        decode=lambda results: {},
        runner=runner,
    )


def sharded_khop(
    sharded: ShardedGraph,
    source: int,
    k: int,
    *,
    engine: str = "auto",
    pool: Optional[ProcessWorkerPool] = None,
) -> ShardQueryResult:
    """Exact k-hop reachability (hop counts, ``-1`` beyond ``k`` hops).

    The unit-delay reach network is hop-budget-independent, so the same
    shard networks serve every ``k``; offsets carry the hops already spent
    and ``max_steps=k`` bounds the remainder, which keeps the sharded
    answer exactly equal to the solo one.
    """
    if k < 0:
        raise ValidationError(f"hop budget must be >= 0, got {k}")
    return _fixpoint(
        sharded,
        source,
        kind="khop",
        max_steps=int(k),
        engine=engine,
        hop_limit=int(k),
        pool=pool,
    )
