"""Spawn-based process-pool worker tier with resident compiled networks.

The thread workers of :class:`repro.service.server.QueryServer` are
GIL-bound: a CPU-heavy batch on one thread stalls every other.  This module
adds a tier of **worker processes** beneath them — each dispatcher thread
checks a process out of the pool, ships it a coalesced batch over a pipe,
and blocks (GIL released) until the results come back.  Worker processes
hold *resident* compiled networks keyed by the batch's structure-derived
key, so a hot graph crosses the pipe once and every later batch sends only
stimuli.

Crash semantics are the load-bearing part.  A worker process that dies (or
hangs past ``exec_timeout_s``) mid-job is respawned and the in-flight job
surfaces as :class:`WorkerProcessDied` — deliberately a ``BaseException``
subclass so it escapes the dispatch path's ``except Exception`` batch
guard, kills the owning dispatcher *thread*, and thereby hands recovery to
the existing thread-level supervisor: crash detection, backoff restart, and
exactly-once ticket requeue all carry over across process death unchanged.
Idle-process death is caught by :meth:`ProcessWorkerPool.heartbeat`, which
the supervisor drives on its cadence.

The pool uses the ``spawn`` start method (fork is unsafe under the
server's threads) with a module-level entry point, so it works from any
parent — CLI, pytest, or an embedding application.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from multiprocessing import get_context
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from typing import Any, Dict, List, NoReturn, Optional, Sequence, Set, Tuple, Union

from repro.core.cache import default_build_cache
from repro.core.network import CompiledNetwork, Network
from repro.core.result import SimulationResult
from repro.core.run import simulate_batch
from repro.errors import RemoteWorkerError, ValidationError, classify_exception
from repro.telemetry.metrics import MetricsRegistry, use_registry

__all__ = ["ExecJob", "ProcessWorkerPool", "WorkerProcessDied"]

#: A network-identity key: the structure-derived prefix of a batch key.
NetKey = Tuple[Any, ...]

#: One remote simulation job: ``(results, raw metrics)`` comes back.
ExecJob = Dict[str, Any]


class WorkerProcessDied(BaseException):
    """A worker process died or hung past its deadline mid-job.

    Deliberately a ``BaseException`` subclass (mirroring the chaos
    harness's ``InjectedWorkerCrash``): it must bypass the serving layer's
    per-batch ``except Exception`` guard so that process death is handled
    by the supervisor's crash path — dispatcher-thread restart plus
    idempotent ticket requeue — rather than answered as a per-ticket
    error.  The pool has already respawned the process by the time this
    propagates.
    """

    def __init__(self, message: str, *, pid: Optional[int] = None):
        super().__init__(message)
        self.pid = pid


def _worker_main(conn: Connection) -> None:
    """Worker-process entry point (module-level: ``spawn`` re-imports it).

    Serves a strict request/reply loop over ``conn``; replies are sent in
    request order, which is what lets the parent use fire-and-forget
    messages (seeds, pings) with deferred ack draining.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    resident: Dict[NetKey, CompiledNetwork] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent went away
            return
        op = str(msg[0])
        if op == "stop":
            try:
                conn.send(("ok", "bye"))
            except (OSError, BrokenPipeError):  # pragma: no cover
                pass
            return
        if op == "ping":
            conn.send(("pong", msg[1], os.getpid(), len(resident)))
            continue
        if op == "seed":
            try:
                count = default_build_cache.seed_entries(list(msg[1]))
                conn.send(("ok", count))
            except Exception as exc:
                code, _ = classify_exception(exc)
                conn.send(("err", (type(exc).__name__, str(exc), code)))
            continue
        if op == "exec":
            conn.send(_execute_job(resident, msg[1]))
            continue
        conn.send(("err", ("ValidationError", f"unknown op {op!r}", "INVALID")))


def _execute_job(
    resident: Dict[NetKey, CompiledNetwork], job: ExecJob
) -> Tuple[str, Any]:
    """Run one simulation batch; never raises (errors travel as tuples)."""
    try:
        key: NetKey = tuple(job["net_key"])
        shipped = job.get("net")
        if shipped is not None:
            resident[key] = (
                shipped.compile() if isinstance(shipped, Network) else shipped
            )
        network = resident.get(key)
        if network is None:
            raise ValidationError(f"no resident network for key {key!r}")
        reg = MetricsRegistry("procpool-worker")
        with use_registry(reg):
            results = simulate_batch(
                network,
                job["stimuli"],
                faults=job.get("faults"),
                **job["sim_kwargs"],
            )
        reg.counter_inc("service.proc.batches", 1)
        return ("ok", (results, reg.export_raw()))
    except Exception as exc:
        code, _ = classify_exception(exc)
        return ("err", (type(exc).__name__, str(exc), code))


class _Worker:
    """Parent-side handle for one worker process (guarded by the pool lock)."""

    __slots__ = ("proc", "conn", "resident", "busy", "pending_acks")

    def __init__(self, proc: BaseProcess, conn: Connection):
        self.proc = proc
        self.conn = conn
        self.resident: Set[NetKey] = set()
        self.busy = False
        self.pending_acks = 0


class ProcessWorkerPool:
    """Fixed-size pool of spawn-started simulation worker processes.

    Thread-safe: the serving layer's dispatcher threads concurrently check
    workers out (:meth:`execute` blocks while all are busy), and the
    supervisor thread drives :meth:`heartbeat`.  A checked-out worker is
    owned exclusively by one thread, so each pipe ever has one reader.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        exec_timeout_s: float = 120.0,
        heartbeat_interval_s: float = 1.0,
    ):
        if workers < 1:
            raise ValidationError(f"pool needs >= 1 worker, got {workers}")
        self.size = int(workers)
        self.exec_timeout_s = float(exec_timeout_s)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self._ctx = get_context("spawn")
        self._cond = threading.Condition(threading.Lock())
        self._closed = False
        self._kill_next = False
        self._seeds: List[Tuple[Any, Any]] = []
        self._last_heartbeat = 0.0
        self.restarts = 0
        self.jobs = 0
        self.kills = 0
        self._workers: List[_Worker] = [self._spawn() for _ in range(self.size)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        worker = _Worker(proc, parent_conn)
        if self._seeds:
            try:
                worker.conn.send(("seed", list(self._seeds)))
                worker.pending_acks += 1
            except (OSError, BrokenPipeError):  # pragma: no cover - spawn race
                pass
        return worker

    def prewarm(self, entries: Sequence[Tuple[Any, Any]]) -> None:
        """Seed every worker's build cache with picklable ``(key, value)``
        entries (compiled-network handoff); replayed into respawns too."""
        picklable = [(tuple(k), v) for k, v in entries]
        with self._cond:
            self._seeds.extend(picklable)
            for worker in self._workers:
                if worker.busy:
                    continue
                try:
                    worker.conn.send(("seed", picklable))
                    worker.pending_acks += 1
                except (OSError, BrokenPipeError):
                    continue

    def close(self) -> None:
        """Stop every worker process (politely, then forcefully)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            self._cond.notify_all()
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for worker in workers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Supervision
    # ------------------------------------------------------------------ #

    def heartbeat(self, *, force: bool = False) -> None:
        """Probe idle workers; respawn any that died while unattended.

        Called by the serving layer's supervisor thread on its cadence
        (rate-limited here to ``heartbeat_interval_s``).  Busy workers are
        not probed — their owning dispatcher thread detects death through
        the in-flight job itself.
        """
        now = time.monotonic()
        with self._cond:
            if self._closed:
                return
            if not force and now - self._last_heartbeat < self.heartbeat_interval_s:
                return
            self._last_heartbeat = now
            for idx, worker in enumerate(self._workers):
                if worker.busy:
                    continue
                if not worker.proc.is_alive():
                    self._respawn_locked(idx)
                    continue
                try:
                    worker.conn.send(("ping", self.jobs))
                    worker.pending_acks += 1
                except (OSError, BrokenPipeError):
                    self._respawn_locked(idx)

    def chaos_kill_next(self) -> None:
        """Arm the chaos hook: SIGKILL the worker serving the next job."""
        with self._cond:
            self._kill_next = True

    def _respawn_locked(self, idx: int) -> None:
        old = self._workers[idx]
        if old.proc.is_alive():  # pragma: no cover - defensive
            old.proc.kill()
        try:
            old.conn.close()
        except OSError:  # pragma: no cover
            pass
        if self._closed:
            return
        self._workers[idx] = self._spawn()
        self.restarts += 1
        self._cond.notify_all()

    def _fail_worker(self, idx: int, worker: _Worker, reason: str) -> NoReturn:
        """Respawn a dead/hung checked-out worker and surface the crash."""
        pid = worker.proc.pid
        with self._cond:
            if self._workers[idx] is worker:
                self._respawn_locked(idx)
        raise WorkerProcessDied(
            f"worker process {pid} died mid-job: {reason}", pid=pid
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _checkout(self) -> Tuple[int, _Worker]:
        with self._cond:
            while True:
                if self._closed:
                    raise ValidationError("process pool is closed")
                for idx, worker in enumerate(self._workers):
                    if worker.busy:
                        continue
                    if not worker.proc.is_alive():
                        self._respawn_locked(idx)
                        worker = self._workers[idx]
                    worker.busy = True
                    return idx, worker
                self._cond.wait(0.25)

    def _checkin(self, idx: int, worker: _Worker) -> None:
        with self._cond:
            if self._workers[idx] is worker:
                worker.busy = False
                self._cond.notify_all()

    def _recv_reply(self, idx: int, worker: _Worker) -> Tuple[str, Any]:
        deadline = time.monotonic() + self.exec_timeout_s
        drained = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._fail_worker(
                    idx, worker, f"no reply within {self.exec_timeout_s}s"
                )
            try:
                if not worker.conn.poll(min(remaining, 0.25)):
                    continue
                reply = worker.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                self._fail_worker(idx, worker, f"pipe closed ({type(exc).__name__})")
            if worker.pending_acks > drained:
                drained += 1  # stale ack from a seed/ping fire-and-forget
                continue
            worker.pending_acks -= drained
            return (str(reply[0]), reply[1])

    def execute(
        self,
        net_key: NetKey,
        network: Union[Network, CompiledNetwork],
        stimuli: Sequence[Any],
        faults: Any,
        sim_kwargs: Dict[str, Any],
        *,
        kill_mid_batch: bool = False,
    ) -> Tuple[List[SimulationResult], Dict[str, object]]:
        """Run one batch on some worker process; returns results + metrics.

        Ships the compiled network only when the chosen worker does not
        already hold ``net_key`` resident.  Raises
        :class:`~repro.errors.RemoteWorkerError` for failures *inside* the
        simulation (classified, per-ticket) and :class:`WorkerProcessDied`
        when the process itself is lost (supervisor-level recovery).
        """
        with self._cond:
            if self._kill_next:
                self._kill_next = False
                kill_mid_batch = True
        idx, worker = self._checkout()
        try:
            shipped: Optional[CompiledNetwork] = None
            if net_key not in worker.resident:
                shipped = (
                    network.compile() if isinstance(network, Network) else network
                )
            job: ExecJob = {
                "net_key": net_key,
                "net": shipped,
                "stimuli": list(stimuli),
                "faults": faults,
                "sim_kwargs": dict(sim_kwargs),
            }
            if kill_mid_batch and worker.proc.pid is not None:
                self.kills += 1
                os.kill(worker.proc.pid, signal.SIGKILL)
                worker.proc.join(timeout=5.0)
            try:
                worker.conn.send(("exec", job))
            except (OSError, BrokenPipeError, ValueError) as exc:
                self._fail_worker(idx, worker, f"send failed ({type(exc).__name__})")
            status, payload = self._recv_reply(idx, worker)
            if status == "err":
                remote_type, message, code = payload
                raise RemoteWorkerError(
                    f"worker pid={worker.proc.pid} {remote_type}: {message}",
                    error_code=str(code),
                    remote_type=str(remote_type),
                )
            if shipped is not None:
                worker.resident.add(net_key)
            with self._cond:
                self.jobs += 1
            results, raw_metrics = payload
            return list(results), dict(raw_metrics)
        finally:
            self._checkin(idx, worker)

    def execute_many(
        self, jobs: Sequence[ExecJob]
    ) -> List[Tuple[List[SimulationResult], Dict[str, object]]]:
        """Fan a list of jobs out across the pool; results in job order.

        Used by the shard router: each round's per-shard runs are
        independent, so they ride separate worker processes concurrently.
        The first failure (including :class:`WorkerProcessDied`) is
        re-raised after all threads join.
        """
        if len(jobs) <= 1 or self.size == 1:
            return [self.execute(**job) for job in jobs]
        results: List[Optional[Tuple[List[SimulationResult], Dict[str, object]]]] = [
            None
        ] * len(jobs)
        failures: List[BaseException] = []

        def _run(i: int, job: ExecJob) -> None:
            try:
                results[i] = self.execute(**job)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failures.append(exc)

        threads = [
            threading.Thread(target=_run, args=(i, job), daemon=True)
            for i, job in enumerate(jobs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if failures:
            raise failures[0]
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        with self._cond:
            alive = sum(1 for w in self._workers if w.proc.is_alive())
            return {
                "workers": self.size,
                "alive": alive,
                "restarts": self.restarts,
                "jobs": self.jobs,
                "kills": self.kills,
                "resident_networks": sum(len(w.resident) for w in self._workers),
                "pids": [w.proc.pid for w in self._workers],
            }
