"""Blocking JSONL socket client with request-id multiplexing.

One :class:`NetClient` owns one TCP connection.  A background reader
thread decodes response frames and files them by ``request_id``, so any
number of caller threads can :meth:`submit` requests and :meth:`result`
them later — deep pipelining over a single connection, matching the
server's out-of-order response writes.  Used by ``repro loadgen --net``,
the differential tests, and anything else that wants to talk to a
:class:`~repro.service.net.server.NetServer` without an event loop.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro.errors import ValidationError
from repro.service.net.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    encode_frame,
)

__all__ = ["NetClient", "wait_for_port"]


class NetClient:
    """Blocking multiplexed client for the JSONL serving protocol."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout_s: float = 10.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = int(port)
        self._sock = socket.create_connection(
            (host, int(port)), timeout=connect_timeout_s
        )
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._cond = threading.Condition(threading.Lock())
        self._results: Dict[str, Dict[str, Any]] = {}
        self._anonymous: List[Dict[str, Any]] = []
        self._eof = False
        self._decoder = FrameDecoder(max_frame_bytes)
        self._seq = itertools.count()
        self._reader = threading.Thread(
            target=self._read_loop, name="net-client-reader", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------ #

    def _read_loop(self) -> None:
        try:
            while True:
                data = self._sock.recv(65536)
                if not data:
                    break
                docs = self._decoder.feed(data)
                with self._cond:
                    for item in docs:
                        if isinstance(item, FrameError):  # pragma: no cover
                            self._anonymous.append(item.payload())
                            continue
                        rid = item.get("request_id")
                        if isinstance(rid, str):
                            self._results[rid] = item
                        else:
                            self._anonymous.append(item)
                    self._cond.notify_all()
        except OSError:
            pass
        finally:
            with self._cond:
                self._eof = True
                self._cond.notify_all()

    # ------------------------------------------------------------------ #

    def submit(self, doc: Dict[str, Any]) -> str:
        """Send one request frame; returns its (possibly assigned) id."""
        doc = dict(doc)
        rid = doc.get("request_id")
        if not isinstance(rid, str) or not rid:
            rid = f"c{next(self._seq)}"
            doc["request_id"] = rid
        data = encode_frame(doc)
        # _send_lock is a leaf lock whose sole purpose is keeping frames
        # atomic on the wire; blocking under it only serializes writers on
        # this one connection, which is inherent to a single TCP stream.
        with self._send_lock:
            self._sock.sendall(data)  # sc2xx: allow sc203
        return rid

    def send_raw(self, data: bytes) -> None:
        """Ship raw bytes (framing-edge-case tests: partial/oversized)."""
        with self._send_lock:
            self._sock.sendall(data)  # sc2xx: allow sc203

    def result(self, request_id: str, *, timeout_s: float = 60.0) -> Dict[str, Any]:
        """Block until the response for ``request_id`` arrives."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while request_id not in self._results:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"no response for {request_id!r} within {timeout_s}s"
                    )
                if self._eof and request_id not in self._results:
                    raise ConnectionError(
                        f"connection closed before {request_id!r} was answered"
                    )
                self._cond.wait(min(remaining, 0.25))
            return self._results.pop(request_id)

    def call(self, doc: Dict[str, Any], *, timeout_s: float = 60.0) -> Dict[str, Any]:
        """Submit one request and block for its response."""
        return self.result(self.submit(doc), timeout_s=timeout_s)

    def pop_anonymous(self, *, timeout_s: float = 10.0) -> Dict[str, Any]:
        """Next response without a usable ``request_id`` (frame errors)."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while not self._anonymous:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"no anonymous response within {timeout_s}s"
                    )
                self._cond.wait(min(remaining, 0.25))
            return self._anonymous.pop(0)

    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        return self._eof

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(timeout=5.0)

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def wait_for_port(
    host: str, port: int, *, timeout_s: float = 30.0
) -> None:
    """Poll until a TCP listener answers (subprocess-startup helper)."""
    deadline = time.monotonic() + timeout_s
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, int(port)), timeout=1.0):
                return
        except OSError as exc:
            last = exc
            time.sleep(0.1)
    raise ValidationError(
        f"no listener on {host}:{port} within {timeout_s}s ({last})"
    )
