"""Newline-delimited JSON wire framing for the socket serving front end.

One request or response per line, UTF-8, ``\\n``-terminated.  The framing
layer is deliberately dumb: it splits the byte stream into frames, bounds
frame size, and turns malformed input into *structured* error values
(:class:`FrameError`) instead of exceptions, so a hostile or buggy client
can never crash a reader task.  Error payloads reuse the stable error-code
taxonomy of :mod:`repro.errors` (malformed frames are always ``INVALID``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.errors import ValidationError, classify_exception

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameDecoder",
    "FrameError",
    "encode_frame",
    "error_payload",
]

#: Default hard bound on one frame (1 MiB).  A request document is a few
#: hundred bytes; anything near the bound is a protocol violation, not a
#: big query.
DEFAULT_MAX_FRAME_BYTES: int = 1 << 20


def encode_frame(doc: Dict[str, Any]) -> bytes:
    """Serialize one document as a compact, key-sorted JSONL frame.

    Key-sorted so that byte-identical results encode to byte-identical
    frames — the differential tests compare raw wire bytes.
    """
    return json.dumps(doc, separators=(",", ":"), sort_keys=True).encode("utf-8") + b"\n"


def error_payload(
    exc: BaseException, request_id: Optional[str] = None
) -> Dict[str, Any]:
    """Structured error response for ``exc``, reusing the stable taxonomy."""
    code, retryable = classify_exception(exc)
    doc: Dict[str, Any] = {
        "status": "error",
        "request_id": request_id,
        "error_code": code,
        "error": str(exc),
        "error_type": type(exc).__name__,
        "retryable": retryable,
    }
    retry_after = getattr(exc, "retry_after_s", None)
    if retry_after is not None:
        doc["retry_after_s"] = float(retry_after)
    return doc


@dataclass(frozen=True)
class FrameError:
    """A malformed inbound frame, reported without killing the connection.

    ``request_id`` is best-effort: it is only present when the frame parsed
    far enough to recover one (it never does today, but the field keeps the
    response shape uniform with :func:`error_payload`).
    """

    message: str
    request_id: Optional[str] = None
    code: str = "INVALID"

    def payload(self) -> Dict[str, Any]:
        """The structured error document written back to the client."""
        return {
            "status": "error",
            "request_id": self.request_id,
            "error_code": self.code,
            "error": self.message,
            "error_type": "FrameError",
            "retryable": False,
        }


class FrameDecoder:
    """Incremental JSONL decoder with a hard per-frame size bound.

    Feed it raw socket reads; it buffers partial lines across calls and
    yields, in arrival order, either parsed ``dict`` documents or
    :class:`FrameError` values for malformed input (bad JSON, non-object
    frames, oversized frames).  An oversized frame is reported exactly once
    and the remainder of that line is discarded, so the decoder resyncs on
    the next newline instead of poisoning the connection.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 2:
            raise ValidationError(
                f"max_frame_bytes must be >= 2, got {max_frame_bytes}"
            )
        self.max_frame_bytes = int(max_frame_bytes)
        self._buf = bytearray()
        self._discarding = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a newline (0 when between frames)."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[Union[Dict[str, Any], FrameError]]:
        """Consume ``data``; return every complete frame it finished."""
        out: List[Union[Dict[str, Any], FrameError]] = []
        self._buf += data
        while True:
            idx = self._buf.find(b"\n")
            if idx < 0:
                if self._discarding:
                    self._buf.clear()
                elif len(self._buf) > self.max_frame_bytes:
                    out.append(
                        FrameError(
                            "frame exceeds max_frame_bytes="
                            f"{self.max_frame_bytes}"
                        )
                    )
                    self._discarding = True
                    self._buf.clear()
                break
            line = bytes(self._buf[:idx])
            del self._buf[: idx + 1]
            if self._discarding:
                # tail of an oversized frame whose error was already emitted
                self._discarding = False
                continue
            if not line.strip():
                continue
            if len(line) > self.max_frame_bytes:
                out.append(
                    FrameError(
                        f"frame of {len(line)} bytes exceeds "
                        f"max_frame_bytes={self.max_frame_bytes}"
                    )
                )
                continue
            out.append(self._parse(line))
        return out

    @staticmethod
    def _parse(line: bytes) -> Union[Dict[str, Any], FrameError]:
        try:
            doc = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return FrameError(f"malformed JSON frame: {exc}")
        if not isinstance(doc, dict):
            return FrameError(
                f"frame must be a JSON object, got {type(doc).__name__}"
            )
        return doc
