"""Socket load generation and the pool-tier benchmark rows.

Two benchmarks share the ``BENCH_serving.json`` artifact written by
``repro loadgen --net``:

- :func:`run_net_loadgen` drives the deterministic mixed workload of
  :func:`~repro.service.loadgen.generate_requests` **over a real socket**
  against a running :class:`~repro.service.net.server.NetServer`:
  ``connections`` client threads each pipeline ``depth`` requests over one
  multiplexed connection, and every wire answer is optionally verified
  against a solo in-process run of the same query — the socket hop, the
  JSON round trip, and the server's batching must not change a single
  distance.
- :func:`run_pool_comparison` serves one CPU-bound all-pairs workload
  three ways — thread-pool workers, process-pool workers, and the sharded
  fixpoint router — and reports one row per tier (wall, throughput,
  p50/p99) plus the process-vs-thread speedup.  The rows answer the
  question the process tier exists for: with real CPUs, batched
  simulation in worker processes sidesteps the GIL that makes thread
  workers serialize.  ``cpu_count`` is recorded because the speedup is
  machine-dependent — on a single-CPU container the process tier can only
  add overhead, which is why CI gates its ≥2x assertion on ``cpu_count``.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.service.adapters import execute_solo, plan_request
from repro.service.loadgen import _percentile, generate_requests
from repro.service.net.client import NetClient
from repro.service.net.procpool import ProcessWorkerPool
from repro.service.schema import QueryRequest, QueryResult, request_to_dict
from repro.service.server import QueryServer
from repro.workloads.graph import WeightedDigraph

__all__ = ["run_net_loadgen", "run_pool_comparison", "NET_BENCH_SCHEMA"]

NET_BENCH_SCHEMA = "repro.serving.netbench/v1"


def run_net_loadgen(
    host: str,
    port: int,
    graphs: Mapping[str, WeightedDigraph],
    *,
    n_requests: int = 200,
    connections: int = 4,
    depth: int = 16,
    seed: int = 0,
    mix: Optional[Mapping[str, float]] = None,
    timeout_s: float = 120.0,
    verify: bool = True,
) -> Dict[str, object]:
    """Drive the seeded workload over a socket; report wire-level serving.

    ``graphs`` must be the same residents (same ids, same graphs) the
    target server registered — the workload generator draws sources from
    them, and with ``verify`` each wire answer is compared against a solo
    in-process run on the local copy.
    """
    if connections < 1:
        raise ValidationError(f"connections must be >= 1, got {connections}")
    if depth < 1:
        raise ValidationError(f"depth must be >= 1, got {depth}")
    requests = generate_requests(graphs, n_requests, seed=seed, mix=mix)
    docs = [request_to_dict(r) for r in requests]

    results: List[Optional[Dict[str, Any]]] = [None] * len(docs)
    latencies: List[float] = [0.0] * len(docs)
    errors: List[str] = []
    cursor = [0]
    lock = threading.Lock()
    t_start = time.monotonic()

    def client() -> None:
        with NetClient(host, port) as conn:
            window: List[Tuple[int, str, float]] = []  # (index, rid, t_submit)
            while True:
                while len(window) < depth:
                    with lock:
                        i = cursor[0]
                        if i >= len(docs):
                            break
                        cursor[0] += 1
                    window.append((i, conn.submit(docs[i]), time.monotonic()))
                if not window:
                    return
                i, rid, t0 = window.pop(0)
                try:
                    results[i] = conn.result(rid, timeout_s=timeout_s)
                except (TimeoutError, ConnectionError) as exc:
                    with lock:
                        errors.append(f"{type(exc).__name__}: {exc}")
                latencies[i] = time.monotonic() - t0

    threads = [
        threading.Thread(target=client, name=f"net-loadgen-{c}", daemon=True)
        for c in range(connections)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.monotonic() - t_start

    answered = [r for r in results if r is not None]
    n_ok = sum(1 for r in answered if r.get("status") == "ok")
    statuses: Dict[str, int] = {}
    for r in results:
        key = str(r.get("status", "?")) if r is not None else "lost"
        statuses[key] = statuses.get(key, 0) + 1
    batch_sizes = [int(r.get("batch_size", 0)) for r in answered]
    coalesced = sum(1 for b in batch_sizes if b > 1)

    mismatches = 0
    if verify:
        graphs_d = dict(graphs)
        for req, r in zip(requests, results):
            if r is None or r.get("status") != "ok":
                mismatches += 1
                continue
            solo = execute_solo(plan_request(req, graphs_d, {}))
            if not _wire_equal(r, solo):
                mismatches += 1

    return {
        "target": f"{host}:{port}",
        "wall_s": round(wall_s, 6),
        "throughput_rps": round(len(docs) / wall_s, 3) if wall_s > 0 else None,
        "latency_p50_s": round(_percentile(latencies, 0.50), 6),
        "latency_p99_s": round(_percentile(latencies, 0.99), 6),
        "requests": len(docs),
        "connections": connections,
        "depth": depth,
        "ok": n_ok,
        "errors": len(docs) - n_ok,
        "lost": sum(1 for r in results if r is None),
        "transport_errors": errors[:8],
        "statuses": statuses,
        "coalesced_answers": coalesced,
        "mean_batch_size": round(float(np.mean(batch_sizes)), 3)
        if batch_sizes
        else 0.0,
        "equality": {"checked": bool(verify), "mismatches": mismatches},
    }


def _wire_equal(payload: Mapping[str, Any], solo: Mapping[str, Any]) -> bool:
    """Does a wire answer equal its solo twin (post-JSON resolution)?"""
    dist = solo.get("dist")
    if dist is not None and payload.get("dist") != [int(x) for x in dist]:
        return False
    matrix = solo.get("matrix")
    if matrix is not None and payload.get("matrix") != [
        [int(x) for x in row] for row in matrix
    ]:
        return False
    outputs = solo.get("outputs")
    if outputs is not None and payload.get("outputs") != dict(outputs):
        return False
    return True


# --------------------------------------------------------------------- #
# Pool-tier comparison rows
# --------------------------------------------------------------------- #


def _apsp_requests(
    graph: WeightedDigraph, n_sources: int, slice_width: int
) -> List[QueryRequest]:
    """The CPU-bound workload: apsp slices covering ``n_sources`` sources."""
    sources = list(range(min(n_sources, graph.n)))
    return [
        QueryRequest(
            kind="apsp",
            graph_id="g",
            sources=tuple(sources[i : i + slice_width]),
        )
        for i in range(0, len(sources), slice_width)
    ]


def _serve_row(
    requests: List[QueryRequest],
    make_server: Callable[[], QueryServer],
    register: Callable[[QueryServer], None],
    *,
    timeout_s: float,
) -> Tuple[List[QueryResult], Dict[str, object]]:
    """Serve one workload on a fresh server; return results + the row."""
    server = make_server()
    register(server)
    latencies: List[float] = []
    t0 = time.monotonic()
    with server:
        tickets = []
        for req in requests:
            tickets.append((server.submit(req), time.monotonic()))
        results = []
        for ticket, t_sub in tickets:
            results.append(ticket.result(timeout_s))
            latencies.append(time.monotonic() - t_sub)
    wall_s = time.monotonic() - t0
    row: Dict[str, object] = {
        "wall_s": round(wall_s, 6),
        "throughput_rps": round(len(requests) / wall_s, 3) if wall_s > 0 else None,
        "latency_p50_s": round(_percentile(latencies, 0.50), 6),
        "latency_p99_s": round(_percentile(latencies, 0.99), 6),
        "requests": len(requests),
        "ok": sum(1 for r in results if r.ok),
    }
    return results, row


def run_pool_comparison(
    *,
    graph: Optional[WeightedDigraph] = None,
    n_sources: int = 24,
    slice_width: int = 4,
    workers: int = 2,
    process_workers: Optional[int] = None,
    shards: int = 4,
    seed: int = 7,
    timeout_s: float = 300.0,
    verify: bool = True,
) -> Dict[str, object]:
    """Thread-pool vs process-pool vs sharded rows on one all-pairs workload.

    All three tiers must produce exactly the same distances (checked
    against each other row-by-row with ``verify``); the rows differ only
    in wall clock.  The process row reuses the thread row's requests
    verbatim; the sharded row serves the same sources as single-source
    queries through the fixpoint router, since that is the shape the
    shard tier serves.
    """
    if process_workers is None:
        # Threads serialize on the GIL regardless of worker count, so the
        # thread row is a fixed baseline; the process tier should get the
        # machine's actual parallelism (bounded — spawn cost is real).
        process_workers = max(2, min(4, os.cpu_count() or 1))
    if graph is None:
        from repro.workloads import gnp_graph

        graph = gnp_graph(192, 0.035, max_length=9, seed=seed)
    n_sources = min(n_sources, graph.n)
    apsp = _apsp_requests(graph, n_sources, slice_width)
    sssp = [
        QueryRequest(kind="sssp", graph_id="g", source=s) for s in range(n_sources)
    ]

    def fresh(pool: Optional[ProcessWorkerPool]) -> Callable[[], QueryServer]:
        return lambda: QueryServer(
            workers=workers,
            max_batch=max(4, slice_width),
            linger_s=0.005,
            result_cache_size=0,
            process_pool=pool,
        )

    def register_plain(server: QueryServer) -> None:
        server.register_graph("g", graph)

    def register_sharded(server: QueryServer) -> None:
        server.register_sharded_graph("g", graph, shards)

    thread_results, thread_row = _serve_row(
        apsp, fresh(None), register_plain, timeout_s=timeout_s
    )
    pool = ProcessWorkerPool(workers=process_workers)
    try:
        # Untimed warmup: spawn cost (interpreter + imports) and the one-time
        # network handoff must not be billed to the timed process row.
        _serve_row(apsp[:1], fresh(pool), register_plain, timeout_s=timeout_s)
        proc_results, proc_row = _serve_row(
            apsp, fresh(pool), register_plain, timeout_s=timeout_s
        )
        shard_results, shard_row = _serve_row(
            sssp, fresh(pool), register_sharded, timeout_s=timeout_s
        )
        pool_stats = pool.stats()
    finally:
        pool.close()

    thread_wall = float(thread_row["wall_s"])  # type: ignore[arg-type]
    proc_wall = float(proc_row["wall_s"])  # type: ignore[arg-type]
    proc_row["speedup_vs_thread"] = (
        round(thread_wall / proc_wall, 3) if proc_wall > 0 else None
    )
    shard_row["shards"] = shards
    proc_row["process_workers"] = process_workers
    thread_row["workers"] = workers

    mismatches = 0
    if verify:
        by_source: Dict[int, np.ndarray] = {}
        for req, res in zip(apsp, thread_results):
            assert res.matrix is not None and req.sources is not None
            for j, s in enumerate(req.sources):
                by_source[int(s)] = res.matrix[j]
        for req, res in zip(apsp, proc_results):
            if res.matrix is None:
                mismatches += 1
                continue
            for j, s in enumerate(req.sources or ()):
                if not np.array_equal(res.matrix[j], by_source[int(s)]):
                    mismatches += 1
        for req, res in zip(sssp, shard_results):
            if res.dist is None or not np.array_equal(
                res.dist, by_source[int(req.source or 0)]
            ):
                mismatches += 1

    return {
        "schema": NET_BENCH_SCHEMA,
        "cpu_count": os.cpu_count(),
        "workload": {
            "graph": {"n": graph.n, "m": graph.m},
            "n_sources": n_sources,
            "slice_width": slice_width,
            "seed": seed,
        },
        "rows": {
            "thread_pool": thread_row,
            "process_pool": proc_row,
            "sharded": shard_row,
        },
        "process_pool_stats": pool_stats,
        "equality": {"checked": bool(verify), "mismatches": mismatches},
    }
