"""Multi-process sharded serving with a real socket front end.

The in-process serving layer (:mod:`repro.service.server`) batches and
supervises queries behind a Python API.  This package turns it into a
deployable service tier:

- :mod:`repro.service.net.framing` — newline-delimited JSON wire framing
  with a hard frame-size bound and structured ``INVALID`` error payloads.
- :mod:`repro.service.net.server` — an asyncio socket front end feeding
  the existing :class:`~repro.service.server.QueryServer` (request ids,
  out-of-order responses, graceful drain on ``SIGTERM``).
- :mod:`repro.service.net.client` — a blocking multiplexing client used
  by ``repro loadgen --net`` and the differential tests.
- :mod:`repro.service.net.procpool` — a spawn-based process-pool worker
  tier holding resident compiled networks, with heartbeats and respawn so
  the thread-level supervisor semantics carry over across process death.
- :mod:`repro.service.net.shard` — contiguous vertex partitioning plus a
  fixpoint shard router that fans one sssp/khop query out across shard
  subnetworks and merges per-shard telemetry into one cost report.
- :mod:`repro.service.net.bench` — socket loadgen and the thread-pool vs
  process-pool vs sharded benchmark rows of ``BENCH_serving.json``.

The whole package is fully type-annotated and part of the strict-mypy set.
"""

from repro.service.net.bench import (
    NET_BENCH_SCHEMA,
    run_net_loadgen,
    run_pool_comparison,
)
from repro.service.net.client import NetClient, wait_for_port
from repro.service.net.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    encode_frame,
    error_payload,
)
from repro.service.net.procpool import ProcessWorkerPool, WorkerProcessDied
from repro.service.net.server import NetServer
from repro.service.net.shard import (
    ShardedGraph,
    ShardQueryResult,
    partition_graph,
    plan_sharded_request,
    sharded_khop,
    sharded_sssp,
)

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameDecoder",
    "NET_BENCH_SCHEMA",
    "FrameError",
    "NetClient",
    "NetServer",
    "ProcessWorkerPool",
    "ShardQueryResult",
    "ShardedGraph",
    "WorkerProcessDied",
    "encode_frame",
    "error_payload",
    "partition_graph",
    "plan_sharded_request",
    "run_net_loadgen",
    "run_pool_comparison",
    "sharded_khop",
    "sharded_sssp",
    "wait_for_port",
]
