"""Asyncio JSONL socket front end over :class:`~repro.service.server.QueryServer`.

One TCP connection carries many concurrent requests: each inbound frame is
a request document (see :func:`repro.service.schema.request_from_dict`),
each outbound frame a result or structured error document keyed by
``request_id``.  Responses are written **as they complete** — out of order
relative to submission — which is what lets one connection pipeline deeply
enough to fill the coalescing window.

The event loop never blocks on a query: frames are parsed on the loop,
then handed to a bounded thread-pool executor that performs the blocking
``submit``/``ticket.result`` dance against the in-process
:class:`~repro.service.server.QueryServer` (whose own dispatcher threads —
and optionally the process-pool tier beneath them — do the simulation
work).  Malformed frames become :class:`~repro.service.net.framing.FrameError`
payloads; a client that disconnects mid-request costs nothing — its
tickets still settle in the query server (exactly-once, no leak) and only
the response writes are suppressed.

Graceful drain: on ``SIGTERM``/``SIGINT`` (or :meth:`NetServer.shutdown`)
the listener closes, frames still arriving on open connections are
rejected with a structured ``SHUTDOWN`` error, in-flight requests are
answered, and only then does the query server stop.  :meth:`NetServer.run`
returns the delivering signal number so CLI wrappers can honor the
``128 + signum`` exit-code contract.
"""

from __future__ import annotations

import asyncio
import signal
import socket
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set

from repro.service.net.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    encode_frame,
    error_payload,
)
from repro.service.schema import request_from_dict
from repro.service.server import QueryServer

__all__ = ["NetServer"]


class NetServer:
    """Socket front end feeding an (already started) :class:`QueryServer`.

    Parameters
    ----------
    server:
        The query server that owns batching, supervision, caching, and the
        optional process-pool/shard tiers.  The net server does not start
        or stop it except during :meth:`shutdown` (``stop_server=True``).
    host, port:
        Bind address; ``port=0`` picks a free port (read :attr:`port`
        after :meth:`start`).
    executor_threads:
        Concurrency bound on blocking submit/await work; effectively the
        per-server in-flight request window.
    result_timeout_s:
        Upper bound one request may spend queued + in service before the
        front end answers with a ``TIMEOUT`` error.
    """

    def __init__(
        self,
        server: QueryServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        executor_threads: int = 32,
        result_timeout_s: float = 300.0,
        drain_timeout_s: float = 30.0,
    ):
        self.server = server
        self.host = host
        self.port = int(port)
        self.max_frame_bytes = int(max_frame_bytes)
        self.result_timeout_s = float(result_timeout_s)
        self.drain_timeout_s = float(drain_timeout_s)
        self._executor = ThreadPoolExecutor(
            max_workers=int(executor_threads), thread_name_prefix="net-serve"
        )
        self._listener: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._inflight: Set["asyncio.Task[None]"] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._draining = False
        self._signum = 0
        self.frames_in = 0
        self.frame_errors = 0
        self.responses = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._listener is not None:
            return
        self._listener = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        sockets = self._listener.sockets or []
        for sock in sockets:
            if sock.family in (socket.AF_INET, socket.AF_INET6):
                self.port = int(sock.getsockname()[1])
                break

    async def run(self, *, install_signal_handlers: bool = True) -> int:
        """Serve until a signal (or :meth:`request_shutdown`); returns the
        delivering signal number (0 for a programmatic shutdown)."""
        await self.start()
        self._stop_event = asyncio.Event()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(sig, self._on_signal, sig)
        await self._stop_event.wait()
        await self.shutdown()
        return self._signum

    def _on_signal(self, signum: int) -> None:
        self._signum = int(signum)
        self._stop_event.set()

    def request_shutdown(self) -> None:
        """Programmatic equivalent of a signal (usable cross-thread via
        ``loop.call_soon_threadsafe``)."""
        event = getattr(self, "_stop_event", None)
        if event is not None:
            event.set()

    async def shutdown(self, *, stop_server: bool = True) -> None:
        """Graceful drain: refuse new work, answer in-flight, then stop."""
        self._draining = True
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        if self._inflight:
            await asyncio.wait(
                set(self._inflight), timeout=self.drain_timeout_s
            )
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(set(self._conn_tasks), timeout=5.0)
        if stop_server:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.server.stop)
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------ #
    # Per-connection protocol
    # ------------------------------------------------------------------ #

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        decoder = FrameDecoder(self.max_frame_bytes)
        write_lock = asyncio.Lock()
        conn_inflight: Set["asyncio.Task[None]"] = set()
        try:
            while True:
                try:
                    data = await reader.read(65536)
                except (ConnectionResetError, OSError):
                    break
                if not data:
                    break
                for item in decoder.feed(data):
                    self.frames_in += 1
                    if isinstance(item, FrameError):
                        self.frame_errors += 1
                        await self._write(writer, write_lock, item.payload())
                        continue
                    if self._draining:
                        await self._write(
                            writer, write_lock, _shutdown_payload(item)
                        )
                        continue
                    serve = asyncio.ensure_future(
                        self._serve_one(item, writer, write_lock)
                    )
                    conn_inflight.add(serve)
                    self._inflight.add(serve)
                    serve.add_done_callback(conn_inflight.discard)
                    serve.add_done_callback(self._inflight.discard)
        finally:
            # Mid-request disconnect: the tickets settle regardless (the
            # query server owns them); only response writes are dropped.
            if conn_inflight:
                await asyncio.gather(*conn_inflight, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_one(
        self,
        doc: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(
                self._executor, self._execute_blocking, doc
            )
        except Exception as exc:  # defensive: _execute_blocking shields
            payload = error_payload(exc, _request_id_of(doc))
        await self._write(writer, write_lock, payload)

    def _execute_blocking(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Submit + await one request on an executor thread; never raises."""
        rid = _request_id_of(doc)
        try:
            request = request_from_dict(doc)
            ticket = self.server.submit(request)
            result = ticket.result(timeout=self.result_timeout_s)
            return result.to_dict()
        except Exception as exc:
            return error_payload(exc, rid)

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: Dict[str, Any],
    ) -> None:
        frame = encode_frame(payload)
        async with write_lock:
            try:
                writer.write(frame)
                await writer.drain()
                self.responses += 1
            except (ConnectionResetError, BrokenPipeError, RuntimeError, OSError):
                pass  # peer is gone; the ticket already settled

    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "port": self.port,
            "frames_in": self.frames_in,
            "frame_errors": self.frame_errors,
            "responses": self.responses,
            "inflight": len(self._inflight),
            "connections": len(self._writers),
            "draining": self._draining,
        }


def _request_id_of(doc: Dict[str, Any]) -> Optional[str]:
    rid = doc.get("request_id")
    return str(rid) if rid is not None else None


def _shutdown_payload(doc: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "status": "error",
        "request_id": _request_id_of(doc),
        "error_code": "SHUTDOWN",
        "error": "server is draining; connection will close",
        "error_type": "ShutdownError",
        "retryable": False,
    }
