"""The concurrent query server: admission, coalescing, dispatch, resilience.

:class:`QueryServer` owns a :class:`~repro.service.queue.CoalescingQueue`,
a pool of *supervised* worker threads, and a
:class:`~repro.service.resultcache.TTLResultCache`.  Callers register
graphs/circuits up front (making them *resident*), then :meth:`submit`
requests; each submit plans the request in the caller's thread (so
malformed queries fail synchronously), checks the result cache, and
enqueues a :class:`QueryTicket`.  Workers pull micro-batches of compatible
tickets and dispatch them through one
:func:`~repro.core.run.simulate_batch` call, so N coalesced requests pay
one batched sweep instead of N solo simulations while each item's spikes
remain exactly those of a solo run.

Resilience (the failure contract; see ``docs/serving.md``):

* **Supervision** — a supervisor thread watches per-worker heartbeats.  A
  worker that dies mid-batch (its loop raised — e.g. a chaos-injected
  :class:`~repro.service.chaos.InjectedWorkerCrash`) or wedges (no
  heartbeat for ``wedge_timeout_s`` while holding a batch) is detected;
  its in-flight tickets are recovered **exactly once** — idempotent
  tickets are re-enqueued at the front of their group (at most
  ``max_requeues`` times each), the rest are error-completed with a
  structured ``WORKER_CRASH``/``WORKER_WEDGED`` code — and a replacement
  thread is started in the same slot after capped exponential backoff.
  Exactly-once is enforced by :meth:`QueryTicket.complete`'s atomic claim:
  a late completion from an abandoned (wedged) worker is a no-op.
* **Circuit breakers** — each ``(kind, graph_id)`` family is guarded by a
  :class:`~repro.service.breaker.CircuitBreaker`; once its rolling error
  rate trips, submits of that family raise
  :class:`~repro.errors.CircuitOpenError` without touching the queue.
* **Degradation ladder** — with ``degraded_serving=True``, an admission
  rejection (queue full) is answered by (1) a stale-but-marked result
  cache entry within its grace window, then (2) for plain ``sssp``, the
  Section-7 approximate driver run synchronously in the submitter's
  thread (``degraded=True`` on the result), before (3) surfacing the
  :class:`~repro.errors.ServiceOverloadedError`.
* **Chaos hooks** — an optional
  :class:`~repro.service.chaos.ChaosPolicy` injects crashes / slow
  batches / pickup stalls / telemetry clock skew as pure functions of the
  global batch sequence number, making recovery properties replayable.

Telemetry: workers run each batch under a private
:class:`~repro.telemetry.metrics.MetricsRegistry` (context variables do not
propagate into threads, and the registry's dict updates are not atomic),
then merge it into the server registry under a lock together with the
serving metrics.  :meth:`stats` snapshots everything, including supervisor
counters/incidents, breaker states, and the cache counters.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.circuits.builder import CircuitBuilder
from repro.core.cache import default_build_cache
from repro.core.run import simulate_batch
from repro.errors import (
    CircuitOpenError,
    ReproError,
    ServiceOverloadedError,
    TemporalBudgetError,
    ValidationError,
    classify_exception,
)
from repro.service.adapters import RequestPlan, plan_request
from repro.service.breaker import BreakerPolicy, CircuitBreaker
from repro.service.queue import CoalescingQueue
from repro.service.resultcache import TTLResultCache
from repro.service.schema import MUTATION_KINDS, QueryRequest, QueryResult, QueryStatus
from repro.telemetry.metrics import MetricsRegistry, use_registry
from repro.workloads.graph import WeightedDigraph

if TYPE_CHECKING:  # imported lazily at runtime: chaos -> loadgen -> server
    from repro.dynamic.graph import MutableGraph
    from repro.dynamic.recompile import IncrementalRecompiler
    from repro.service.chaos import ChaosPolicy

__all__ = ["QueryServer", "QueryTicket"]

#: Retained incident-log length (oldest entries are dropped beyond this).
_MAX_INCIDENTS = 256


def _sharded_eligible(request: QueryRequest) -> bool:
    """Request shapes the shard router serves exactly.

    Everything else (targets, faults, watchdogs, spike recording, gadget
    encodings, apsp slices) falls back to the whole-graph resident that
    :meth:`QueryServer.register_sharded_graph` also installs.
    """
    return (
        request.kind in ("sssp", "khop")
        and request.target is None
        and request.faults is None
        and request.watchdog is None
        and not request.record_spikes
        and not request.use_gadgets
    )


class QueryTicket:
    """One in-flight request: plan, deadline, and a completion event.

    The ticket is the queue's unit of admission (``n_items`` batch items —
    more than one for an apsp slice) and the caller's handle on the answer:
    :meth:`result` blocks until a worker (or the submitter, on a cache hit)
    completes it.  Completion is an atomic *claim*: under supervision the
    same ticket can be visible to a crashed worker's recovery path and to
    an abandoned-but-still-running worker, and :meth:`complete` guarantees
    exactly one of them wins (the loser's result is discarded and reported
    by the ``False`` return, which also gates metrics and cache fills).
    """

    __slots__ = (
        "request",
        "plan",
        "admitted_at",
        "deadline",
        "dispatched_at",
        "requeues",
        "cache_key",
        "graph_version",
        "_lock",
        "_event",
        "_result",
    )

    def __init__(
        self,
        request: QueryRequest,
        plan: Optional[RequestPlan],
        *,
        admitted_at: float,
        deadline: Optional[float] = None,
    ):
        self.request = request
        self.plan = plan
        self.admitted_at = admitted_at
        self.deadline = deadline  # absolute monotonic time, or None
        self.dispatched_at: Optional[float] = None
        self.requeues = 0  # crash-recovery resubmissions so far
        # Result-cache key, resolved once at submit time against the
        # resident version the plan was built from.  The dispatcher fills
        # the cache under this stashed key — never a recomputed one — so a
        # mutation landing between plan and fill cannot poison the *new*
        # version's cache with a result computed on the old version.
        self.cache_key: Optional[Tuple] = None
        # Dynamic-graph version the plan is pinned to (None for static
        # residents); surfaced on results as ``graph_version``.
        self.graph_version: Optional[int] = None
        self._lock = threading.Lock()
        self._event = threading.Event()
        self._result: Optional[QueryResult] = None

    @property
    def n_items(self) -> int:
        return self.plan.n_items if self.plan is not None else 1

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def complete(self, result: QueryResult) -> bool:
        """Atomically claim completion; ``False`` if already completed."""
        with self._lock:
            if self._result is not None:
                return False
            self._result = result
        self._event.set()
        return True

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block until the ticket completes; raise if ``timeout`` elapses."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id} not completed in {timeout}s"
            )
        assert self._result is not None
        return self._result


class _WorkerState:
    """Supervision view of one worker thread (one generation, one slot)."""

    __slots__ = (
        "slot",
        "thread",
        "busy",
        "heartbeat_at",
        "inflight",
        "batches",
        "started_at",
        "clean_exit",
        "crashed",
        "crash_error",
        "crash_handled",
        "abandoned",
    )

    def __init__(self, slot: int, started_at: float):
        self.slot = slot
        self.thread: Optional[threading.Thread] = None
        self.busy = False
        self.heartbeat_at = started_at
        self.inflight: List[QueryTicket] = []
        self.batches = 0
        self.started_at = started_at
        self.clean_exit = False
        self.crashed = False
        self.crash_error: Optional[str] = None
        self.crash_handled = False
        self.abandoned = False


class QueryServer:
    """Thread-based graph-query server with coalescing and supervision.

    Parameters
    ----------
    workers:
        Dispatch threads.  Each independently pulls ready batches, so two
        incompatible request streams do not serialize behind each other.
    max_batch / linger_s:
        Coalescing knobs, forwarded to the queue: release a batch at
        ``max_batch`` items or once its oldest request waited ``linger_s``.
    queue_limit:
        Admission bound in batch items; beyond it, submits raise
        :class:`~repro.errors.ServiceOverloadedError` (backpressure) — or
        walk the degradation ladder when ``degraded_serving`` is on.
    result_cache_size / result_cache_ttl_s / result_cache_stale_grace_s:
        TTL-LRU result cache dimensions; ``result_cache_size=0`` disables
        caching entirely (every request simulates).  The stale grace
        defaults to ``5 * ttl`` when degraded serving is on (expired
        entries stay servable under overload, marked ``stale=True``) and
        to 0 otherwise.
    lint_admission:
        When True (the default), every submit runs the
        :mod:`repro.staticcheck` linter over the resident network it
        targets (memoized per resident key) and rejects structurally
        invalid queries synchronously with a
        :class:`~repro.errors.StaticCheckError` carrying the full lint
        report — a diagnostic instead of a watchdog timeout.
    temporal_admission:
        When True (the default), every simulating submit also consults
        the temporal abstract interpretation
        (:mod:`repro.staticcheck.temporal`, memoized per resident): the
        planned tick horizon is clamped to the certified quiescence
        bound (the engine provably stops by then, so the clamp never
        changes an answer — it only prevents burning a huge ``max_steps``
        budget on a network that settled long before), and with a
        configured ``tick_rate`` a request whose certified run length
        cannot fit its ``deadline_s`` is rejected synchronously with a
        :class:`~repro.errors.TemporalBudgetError` — without running the
        simulator.  Fault-carrying requests skip the temporal gate:
        injected spikes break the causal model the bound is proved in.
    tick_rate:
        Simulated ticks per wall-clock second used to convert
        ``deadline_s`` into a tick budget for the static rejection above.
        ``None`` (default) disables deadline conversion; clamping still
        applies.
    breaker_policy:
        Per-``(kind, graph_id)`` circuit-breaker tuning; ``None`` disables
        breakers.  The default :class:`~repro.service.breaker.BreakerPolicy`
        needs >= 8 outcomes at >= 50% error rate to trip.
    degraded_serving:
        Enables the overload degradation ladder (stale cache -> approx
        sssp -> reject).  Off by default: plain backpressure semantics.
    supervise:
        Run the supervisor thread (heartbeat watching, crash recovery,
        restarts).  On by default; disable for single-shot tests that
        want the raw worker pool.
    wedge_timeout_s:
        A busy worker whose heartbeat is older than this is declared
        wedged: abandoned, its tickets recovered, its slot restarted.
    restart_backoff_s / restart_backoff_max_s / max_restarts:
        Capped exponential backoff between restarts of one slot, and the
        per-slot lifetime restart budget.
    max_requeues:
        Crash-recovery resubmission budget per ticket; beyond it the
        ticket is error-completed instead (exactly-once either way).
    supervise_interval_s:
        Supervisor scan period (also bounds crash-detection latency).
    chaos:
        Optional :class:`~repro.service.chaos.ChaosPolicy`; injections are
        no-ops when absent.
    process_pool:
        Optional :class:`~repro.service.net.procpool.ProcessWorkerPool`.
        When set, sssp/khop-family batches execute in worker *processes*
        (resident compiled networks cached per worker, telemetry merged
        back raw) and sharded fan-outs run their shard-local simulations
        there too.  The pool is borrowed: the server heartbeats it from
        the supervisor but never closes it.
    clock:
        Monotonic time source, injectable for deterministic queue tests.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        max_batch: int = 16,
        linger_s: float = 0.002,
        queue_limit: int = 256,
        result_cache_size: int = 1024,
        result_cache_ttl_s: float = 60.0,
        result_cache_stale_grace_s: Optional[float] = None,
        lint_admission: bool = True,
        temporal_admission: bool = True,
        tick_rate: Optional[float] = None,
        breaker_policy: Optional[BreakerPolicy] = BreakerPolicy(),
        degraded_serving: bool = False,
        supervise: bool = True,
        wedge_timeout_s: float = 30.0,
        restart_backoff_s: float = 0.01,
        restart_backoff_max_s: float = 1.0,
        max_restarts: int = 8,
        max_requeues: int = 2,
        supervise_interval_s: float = 0.02,
        chaos: Optional["ChaosPolicy"] = None,
        process_pool: Optional[Any] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if wedge_timeout_s <= 0:
            raise ValidationError(f"wedge_timeout_s must be > 0, got {wedge_timeout_s}")
        if max_restarts < 0 or max_requeues < 0:
            raise ValidationError("max_restarts and max_requeues must be >= 0")
        if supervise_interval_s <= 0:
            raise ValidationError(
                f"supervise_interval_s must be > 0, got {supervise_interval_s}"
            )
        self._clock = clock
        self._queue = CoalescingQueue(
            limit_items=queue_limit,
            max_batch=max_batch,
            linger_s=linger_s,
            clock=clock,
        )
        self._result_cache: Optional[TTLResultCache] = None
        self._degraded_serving = bool(degraded_serving)
        if result_cache_size > 0:
            if result_cache_stale_grace_s is None:
                result_cache_stale_grace_s = (
                    5.0 * result_cache_ttl_s if self._degraded_serving else 0.0
                )
            self._result_cache = TTLResultCache(
                maxsize=result_cache_size,
                ttl_s=result_cache_ttl_s,
                stale_grace_s=result_cache_stale_grace_s,
                clock=clock,
            )
        self._graphs: Dict[str, WeightedDigraph] = {}
        self._circuits: Dict[str, Tuple[CircuitBuilder, str]] = {}
        self._resident_keys: Dict[str, Tuple] = {}
        # Dynamic residents: the mutable graph, its recompiler, and the
        # version the published snapshot corresponds to (None = static).
        # _resident_lock makes (snapshot, resident key, version) reads and
        # swaps atomic, so a submit never pairs one version's snapshot with
        # another version's cache key.
        self._dynamic: Dict[str, "MutableGraph"] = {}
        self._recompilers: Dict[str, "IncrementalRecompiler"] = {}
        self._graph_versions: Dict[str, Optional[int]] = {}
        # Sharded residents (ShardedGraph, duck-typed to keep the import
        # lazy: repro.service.net imports this module).  The process pool
        # is likewise duck-typed and *borrowed* — callers own its lifecycle.
        self._sharded: Dict[str, Any] = {}
        self._process_pool = process_pool
        self._resident_lock = threading.Lock()
        self._lint_admission = bool(lint_admission)
        #: (resident key, plan family) -> memoized LintReport
        self._lint_cache: Dict[Tuple, Any] = {}
        if tick_rate is not None and tick_rate <= 0:
            raise ValidationError(f"tick_rate must be > 0, got {tick_rate}")
        self._temporal_admission = bool(temporal_admission)
        self._tick_rate = None if tick_rate is None else float(tick_rate)
        #: (resident key, plan family) -> certified quiescence tick, or None
        #: when the temporal analysis cannot bound the resident (pacemakers,
        #: uncapped excitatory cycles).
        self._temporal_cache: Dict[Tuple, Optional[int]] = {}
        self._epoch = 0
        self.registry = MetricsRegistry("service")
        self._reg_lock = threading.Lock()
        self._n_workers = int(workers)
        self._started = False
        self._stopped = False

        # breakers
        self._breaker_policy = breaker_policy
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()

        # supervision
        self._supervise = bool(supervise)
        self._wedge_timeout_s = float(wedge_timeout_s)
        self._restart_backoff_s = float(restart_backoff_s)
        self._restart_backoff_max_s = float(restart_backoff_max_s)
        self._max_restarts = int(max_restarts)
        self._max_requeues = int(max_requeues)
        self._supervise_interval_s = float(supervise_interval_s)
        self._chaos = chaos
        self._batch_counter = itertools.count(1)  # global dispatch order, 1-based
        self._sup_lock = threading.Lock()
        self._sup_stop = threading.Event()
        self._sup_thread: Optional[threading.Thread] = None
        self._states: List[_WorkerState] = []
        self._slot_restarts: List[int] = []
        self._slot_restart_at: List[Optional[float]] = []
        self._sup_counts = {
            "crashes": 0,
            "restarts": 0,
            "wedged": 0,
            "requeued": 0,
            "error_completed": 0,
        }
        self._incidents: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #
    # Residents

    def register_graph(self, graph_id: str, graph: WeightedDigraph) -> str:
        """Make ``graph`` queryable as ``graph_id`` (static); returns the id."""
        with self._resident_lock:
            self._graphs[graph_id] = graph
            self._resident_keys[graph_id] = ("graph", graph.structure_key())
            self._graph_versions[graph_id] = None
        return graph_id

    def register_dynamic_graph(
        self, graph_id: str, graph: "WeightedDigraph | MutableGraph"
    ) -> str:
        """Make ``graph`` resident as a *mutable* graph; returns the id.

        Accepts a :class:`~repro.dynamic.graph.MutableGraph` or a plain
        :class:`~repro.workloads.graph.WeightedDigraph` (wrapped; it must
        then contain no parallel edges).  Mutation kinds are accepted only
        for graphs registered through this method.  An
        :class:`~repro.dynamic.recompile.IncrementalRecompiler` is primed
        for the SSSP and k-hop families, so the very first read already
        hits a seeded build-cache entry and every later mutation advances
        the compiled networks incrementally.
        """
        from repro.dynamic.graph import MutableGraph
        from repro.dynamic.recompile import IncrementalRecompiler

        if isinstance(graph, WeightedDigraph):
            graph = MutableGraph(graph)
        if not isinstance(graph, MutableGraph):
            raise ValidationError(
                f"register_dynamic_graph needs a MutableGraph or WeightedDigraph, "
                f"got {type(graph).__name__}"
            )
        recompiler = IncrementalRecompiler(graph)
        recompiler.prime()
        snap = graph.snapshot()
        with self._resident_lock:
            self._dynamic[graph_id] = graph
            self._recompilers[graph_id] = recompiler
            self._graphs[graph_id] = snap
            self._resident_keys[graph_id] = ("graph", snap.structure_key())
            self._graph_versions[graph_id] = graph.version
        return graph_id

    def register_sharded_graph(
        self, graph_id: str, graph: WeightedDigraph, shards: int
    ) -> str:
        """Make ``graph`` resident *sharded* across ``shards`` partitions.

        Plain shard-eligible ``sssp``/``khop`` queries fan out across the
        shard subnetworks via the fixpoint router
        (:mod:`repro.service.net.shard`) — in the process pool when the
        server holds one, in-process otherwise.  Every other request shape
        (apsp slices, targets, faults, spike recording, circuits) falls
        back transparently to the whole-graph resident, which is also
        registered under the same id.
        """
        from repro.service.net.shard import partition_graph

        sharded = partition_graph(graph, shards)
        with self._resident_lock:
            self._graphs[graph_id] = graph
            self._resident_keys[graph_id] = ("graph", graph.structure_key())
            self._graph_versions[graph_id] = None
            self._sharded[graph_id] = sharded
        return graph_id

    def register_circuit(self, circuit_id: str, builder: CircuitBuilder) -> str:
        """Make a built circuit queryable as ``circuit_id``.

        The resident key carries a registration epoch, so re-registering
        under the same id invalidates previously cached evaluations.
        """
        self._epoch += 1
        key = f"circuit:{circuit_id}:{self._epoch}"
        self._circuits[circuit_id] = (builder, key)
        self._resident_keys[circuit_id] = ("circuit", key)
        return circuit_id

    def graph_ids(self) -> List[str]:
        return sorted(self._graphs)

    # ------------------------------------------------------------------ #
    # Lifecycle

    def start(self) -> "QueryServer":
        if self._started:
            return self
        self._started = True
        now = self._clock()
        with self._sup_lock:
            for slot in range(self._n_workers):
                self._slot_restarts.append(0)
                self._slot_restart_at.append(None)
                self._states.append(self._spawn_worker_locked(slot, now))
        if self._supervise:
            self._sup_thread = threading.Thread(
                target=self._supervisor_loop, name="repro-service-supervisor", daemon=True
            )
            self._sup_thread.start()
        return self

    def _spawn_worker_locked(self, slot: int, now: float) -> _WorkerState:
        """Create and start a fresh worker generation for ``slot`` (lock held)."""
        state = _WorkerState(slot, now)
        gen = self._slot_restarts[slot]
        t = threading.Thread(
            target=self._worker_run,
            args=(state,),
            name=f"repro-service-worker-{slot}g{gen}",
            daemon=True,
        )
        state.thread = t
        t.start()
        return state

    def stop(self) -> None:
        """Close admission, drain pending batches, stop workers + supervisor.

        The drain guarantee: after ``stop()`` returns, **every** ticket ever
        accepted by :meth:`submit` has a result — dispatched batches
        complete normally, queued tickets past their deadline complete as
        TIMEOUT, and (only if every worker slot exhausts its restart
        budget mid-drain) stranded tickets are error-completed by the
        failsafe sweep.  No ``ticket.result()`` call can hang.
        """
        if not self._started or self._stopped:
            self._stopped = True
            return
        self._stopped = True
        self._queue.close()
        if self._supervise:
            # Workers may crash mid-drain and be restarted by the
            # supervisor; wait until no live worker remains and either the
            # queue is fully drained or no restart is ever coming.
            while True:
                # Scan directly (not just via the supervisor thread): a
                # worker that crashed an instant ago may be dead with its
                # in-flight tickets unrecovered, and waiting only on
                # alive/pending would break out before the supervisor's
                # next tick notices.  _supervise_once is idempotent and
                # lock-guarded, so racing the supervisor thread is safe.
                self._supervise_once()
                with self._sup_lock:
                    alive = any(
                        s.thread is not None and s.thread.is_alive() and not s.abandoned
                        for s in self._states
                    )
                    pending = any(at is not None for at in self._slot_restart_at)
                if not alive and not pending:
                    # Pending restarts always spawn (a replacement facing a
                    # drained queue just exits cleanly), so the restart
                    # counter is a deterministic function of the fault
                    # schedule, not of drain timing.
                    break
                time.sleep(min(self._supervise_interval_s, 0.005))
            self._sup_stop.set()
            if self._sup_thread is not None:
                self._sup_thread.join()
        else:
            for s in list(self._states):
                if s.thread is not None:
                    s.thread.join()
        self._drain_failsafe()

    def _drain_failsafe(self) -> None:
        """Answer anything still queued once no worker can ever serve it."""
        while not self._queue.drained():
            batch = self._queue.next_batch()
            if batch is None:
                return
            now = self._clock()
            for t in batch.expired:
                self._complete_timeout(t, now)
            for t in batch.tickets:
                self._complete_error(
                    t,
                    now,
                    error="server stopped before the request could be dispatched",
                    error_code="SHUTDOWN",
                )

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Breakers

    def _breaker_for(self, kind: str, graph_id: str) -> CircuitBreaker:
        key = (kind, graph_id)
        with self._breaker_lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(self._breaker_policy, clock=self._clock)
                self._breakers[key] = breaker
            return breaker

    # ------------------------------------------------------------------ #
    # Submission

    def _cache_key(
        self, request: QueryRequest, resident_key: Tuple
    ) -> Optional[Tuple]:
        if self._result_cache is None:
            return None
        params = request.cache_params()
        if params is None:
            return None
        return (resident_key, params)

    def submit(self, request: QueryRequest) -> QueryTicket:
        """Plan, cache-check, breaker-check, and enqueue ``request``.

        Raises synchronously: :class:`~repro.errors.ValidationError` for a
        request the resident graph cannot answer,
        :class:`~repro.errors.StaticCheckError` when admission linting is
        on and the resident network has error-severity structural
        violations, :class:`~repro.errors.CircuitOpenError` when the
        ``(kind, graph_id)`` family's breaker is shedding, and
        :class:`~repro.errors.ServiceOverloadedError` when the admission
        queue is full (unless the degradation ladder produced an answer).
        Everything downstream (deadline expiry, execution failure, worker
        death) is reported through the returned ticket's
        :class:`~repro.service.schema.QueryResult` instead.
        """
        if not self._started or self._stopped:
            raise ReproError("QueryServer is not running; use 'with QueryServer(...)'")
        with self._resident_lock:
            if request.graph_id not in self._resident_keys:
                raise ValidationError(
                    f"unknown graph or circuit {request.graph_id!r}"
                )
            resident_key = self._resident_keys[request.graph_id]
            graph = self._graphs.get(request.graph_id)
            graph_version = self._graph_versions.get(request.graph_id)
            sharded = self._sharded.get(request.graph_id)

        now = self._clock()
        cache_key = self._cache_key(request, resident_key)
        if cache_key is not None:
            hit = self._result_cache.get(cache_key)
            if hit is not None:
                with self._reg_lock:
                    self.registry.counter_inc("service.cache.result.hits")
                    self.registry.counter_inc("service.requests.accepted")
                    self.registry.counter_inc("service.requests.completed")
                ticket = QueryTicket(request, None, admitted_at=now)
                ticket.complete(
                    dataclasses.replace(
                        hit,
                        request_id=request.request_id,
                        cached=True,
                        queued_s=0.0,
                        service_s=0.0,
                    )
                )
                return ticket
            with self._reg_lock:
                self.registry.counter_inc("service.cache.result.misses")

        # Cache hits above are always served (a healthy answer is a healthy
        # answer); anything that would *execute* must pass the breaker.
        if self._breaker_policy is not None:
            breaker = self._breaker_for(request.kind, request.graph_id)
            if not breaker.allow():
                with self._reg_lock:
                    self.registry.counter_inc("service.requests.rejected")
                    self.registry.counter_inc("service.breaker.rejections")
                raise CircuitOpenError(
                    f"circuit breaker open for ({request.kind}, {request.graph_id})",
                    retry_after_s=breaker.retry_after_s(),
                    kind=request.kind,
                    graph_id=request.graph_id,
                )

        serial = False
        if request.kind in MUTATION_KINDS:
            if request.graph_id not in self._dynamic:
                raise ValidationError(
                    f"{request.kind} requires a dynamic graph; "
                    f"{request.graph_id!r} was not registered with "
                    "register_dynamic_graph"
                )
            # Writes on one graph share one serial batch key, so they apply
            # strictly in admission order and never run concurrently.
            plan = RequestPlan(
                batch_key=("mutate", request.graph_id),
                network=None,
                stimuli=[],
                faults=[],
                sim_kwargs={},
                decode=lambda results: {},
                mutation=True,
            )
            serial = True
        elif sharded is not None and _sharded_eligible(request):
            # Shard-eligible reads route through the fixpoint shard router
            # as self-executing runner plans.  The shard subnetworks are
            # the same build-cache-backed constructions the whole-graph
            # plan would lint, so admission linting is skipped here.
            from repro.service.net.shard import plan_sharded_request

            plan = plan_sharded_request(request, sharded)
        else:
            # Plan against the snapshot resolved atomically with the
            # resident key above, so the (plan, cache key, version) triple
            # is coherent even while mutations race this submit.
            graphs_view = (
                {request.graph_id: graph} if graph is not None else {}
            )
            plan = plan_request(request, graphs_view, self._circuits)
            if self._lint_admission:
                self._check_admission(request, plan, resident_key)
            if self._temporal_admission:
                self._check_temporal(request, plan, resident_key)
        deadline = None if request.deadline_s is None else now + request.deadline_s
        ticket = QueryTicket(request, plan, admitted_at=now, deadline=deadline)
        ticket.cache_key = cache_key
        ticket.graph_version = graph_version
        try:
            self._queue.offer(plan.batch_key, ticket, serial=serial)
        except ServiceOverloadedError:
            if self._degraded_serving:
                degraded = self._try_degrade(request, cache_key, now)
                if degraded is not None:
                    return degraded
            with self._reg_lock:
                self.registry.counter_inc("service.requests.rejected")
            raise
        except Exception:
            with self._reg_lock:
                self.registry.counter_inc("service.requests.rejected")
            raise
        with self._reg_lock:
            self.registry.counter_inc("service.requests.accepted")
            self.registry.gauge_set("service.queue.depth", self._queue.depth())
        return ticket

    def serve(
        self, request: QueryRequest, timeout: Optional[float] = None
    ) -> QueryResult:
        """Submit and block for the answer (the in-process convenience path)."""
        return self.submit(request).result(timeout)

    def _try_degrade(
        self, request: QueryRequest, cache_key: Optional[Tuple], now: float
    ) -> Optional[QueryTicket]:
        """The overload ladder: stale cache, then approx sssp, else ``None``.

        Both rungs answer in the submitter's thread without touching the
        (full) queue; every answer is marked ``degraded=True`` so callers
        and the differential harness can tell it from the exact path.
        """
        # Rung 1: a stale-but-in-grace cached answer for this exact query.
        if cache_key is not None:
            stale = self._result_cache.get_stale(cache_key)
            if stale is not None:
                ticket = QueryTicket(request, None, admitted_at=now)
                ticket.complete(
                    dataclasses.replace(
                        stale,
                        request_id=request.request_id,
                        cached=True,
                        stale=True,
                        degraded=True,
                        queued_s=0.0,
                        service_s=0.0,
                    )
                )
                with self._reg_lock:
                    self.registry.counter_inc("service.requests.accepted")
                    self.registry.counter_inc("service.requests.completed")
                    self.registry.counter_inc("service.requests.degraded")
                    self.registry.counter_inc("service.degraded.stale")
                return ticket
        # Rung 2: plain sssp downgrades to the Section-7 (1+eps)-approximate
        # k-hop driver, run synchronously (the submitter pays, shedding load
        # from the worker pool).  Only the exact-semantics-free shape is
        # eligible: no target/faults/watchdog/spike recording.
        if (
            request.kind == "sssp"
            and request.target is None
            and request.faults is None
            and request.watchdog is None
            and not request.record_spikes
            and request.graph_id in self._graphs
        ):
            from repro.algorithms.approx import spiking_khop_approx

            graph = self._graphs[request.graph_id]
            t0 = self._clock()
            try:
                res = spiking_khop_approx(graph, request.source, max(1, graph.n - 1))
            except Exception:
                return None  # fall through to the overload rejection
            ticket = QueryTicket(request, None, admitted_at=now)
            ticket.complete(
                QueryResult(
                    request_id=request.request_id,
                    kind=request.kind,
                    status=QueryStatus.OK,
                    dist=res.dist,
                    cost=res.cost,
                    batch_size=1,
                    queued_s=0.0,
                    service_s=self._clock() - t0,
                    degraded=True,
                )
            )
            with self._reg_lock:
                self.registry.counter_inc("service.requests.accepted")
                self.registry.counter_inc("service.requests.completed")
                self.registry.counter_inc("service.requests.degraded")
                self.registry.counter_inc("service.degraded.approx")
            return ticket
        return None

    def _check_admission(
        self, request: QueryRequest, plan: RequestPlan, resident_key: Tuple
    ) -> None:
        """Reject requests whose resident network fails the static linter.

        The report is memoized per (resident key, plan family) — one lint
        per resident graph/circuit, not per request — so the steady-state
        admission cost is a dict lookup.  Circuit residents are linted as
        feed-forward circuits (entry points = declared input groups);
        graph residents are linted structurally only, since any vertex
        neuron may be stimulated by some future query.
        """
        family = plan.batch_key[0]
        key = (resident_key, family)
        report = self._lint_cache.get(key)
        if report is None:
            if family == "circuit":
                builder, _ = self._circuits[request.graph_id]
                report = builder.lint(subject=f"resident circuit {request.graph_id!r}")
            else:
                from repro.staticcheck.rules import lint_network

                net = plan.network
                net = net.compile() if hasattr(net, "compile") else net
                report = lint_network(
                    net, subject=f"resident {request.graph_id!r} ({family})"
                )
            self._lint_cache[key] = report
            with self._reg_lock:
                self.registry.counter_inc("service.lint.checked")
        if not report.ok:
            with self._reg_lock:
                self.registry.counter_inc("service.requests.rejected")
                self.registry.counter_inc("service.lint.rejections")
            report.raise_if_errors()

    def _certified_bound(self, plan: RequestPlan) -> Optional[int]:
        """Worst-case quiescence tick of the plan's resident, or ``None``.

        The analysis stimulates *every* neuron at tick 0 — a superset of
        any stimulus a request of this family can carry, and the temporal
        lattice is monotone in the stimulus set, so one memoized bound is
        sound for the whole resident.
        """
        from repro.staticcheck.temporal import analyze_temporal

        net = plan.network
        if net is None:
            return None
        net = net.compile() if hasattr(net, "compile") else net
        try:
            analysis = analyze_temporal(net, stimulus=list(range(net.n)))
        except Exception:
            return None
        if not analysis.bounded:
            return None
        return analysis.quiescence_bound

    def _check_temporal(
        self, request: QueryRequest, plan: RequestPlan, resident_key: Tuple
    ) -> None:
        """Static time-budget admission: clamp horizons, reject deadlines.

        Runs after the structural lint.  The certified bound is memoized
        per (resident key, plan family) exactly like the lint report, so
        the steady-state cost is a dict lookup.  Fault-carrying requests
        are exempt: injected spikes violate the causation lemma the bound
        rests on.
        """
        if plan.mutation or plan.runner is not None:
            return
        if request.faults is not None:
            return
        family = plan.batch_key[0]
        key = (resident_key, family)
        if key in self._temporal_cache:
            bound = self._temporal_cache[key]
        else:
            bound = self._certified_bound(plan)
            self._temporal_cache[key] = bound
            with self._reg_lock:
                self.registry.counter_inc("service.temporal.analyzed")
        if bound is None:
            return
        max_steps = plan.sim_kwargs.get("max_steps")
        if (
            plan.sim_kwargs.get("stop_when_quiescent")
            and max_steps is not None
            and max_steps > bound
        ):
            # Sound: the engine provably reports QUIESCENT by `bound`, so
            # truncating the budget there cannot change any result.  Plans
            # sharing this batch key share the resident, hence the clamp.
            plan.sim_kwargs["max_steps"] = bound
            with self._reg_lock:
                self.registry.counter_inc("service.temporal.clamped")
        if request.deadline_s is None or self._tick_rate is None:
            return
        predicted = bound if max_steps is None else min(bound, int(max_steps))
        budget_ticks = int(request.deadline_s * self._tick_rate)
        if predicted > budget_ticks:
            with self._reg_lock:
                self.registry.counter_inc("service.requests.rejected")
                self.registry.counter_inc("service.temporal.rejections")
            raise TemporalBudgetError(
                f"certified run length of {predicted} ticks exceeds the "
                f"{budget_ticks}-tick budget of deadline_s="
                f"{request.deadline_s} at {self._tick_rate} ticks/s; "
                "rejected without simulating",
                certified_ticks=predicted,
                budget_ticks=budget_ticks,
            )

    # ------------------------------------------------------------------ #
    # Dispatch

    def _worker_run(self, state: _WorkerState) -> None:
        """Thread target: the loop plus the crash boundary the supervisor sees."""
        try:
            self._worker_loop(state)
            state.clean_exit = True
        except BaseException as exc:  # includes InjectedWorkerCrash
            state.crashed = True
            state.crash_error = f"{type(exc).__name__}: {exc}"

    def _worker_loop(self, state: _WorkerState) -> None:
        while True:
            if state.abandoned:
                return
            batch = self._queue.next_batch()
            if batch is None:
                return
            seq = next(self._batch_counter)
            with self._sup_lock:
                state.busy = True
                state.heartbeat_at = self._clock()
                state.inflight = list(batch.tickets) + list(batch.expired)
                state.batches += 1
            try:
                skew = 0.0
                if self._chaos is not None:
                    from repro.service.chaos import InjectedWorkerCrash

                    stall = self._chaos.stall_s_for(seq)
                    if stall > 0:
                        time.sleep(stall)
                    if self._chaos.crash(seq):
                        raise InjectedWorkerCrash(seq)
                    skew = self._chaos.skew_s(seq)
                now = self._clock()
                for ticket in batch.expired:
                    self._complete_timeout(ticket, now)
                if batch.tickets:
                    self._dispatch(batch.tickets, seq, skew)
            finally:
                # Serial (mutation) groups are parked while their batch is
                # in flight; release on every exit path — success, chaos
                # crash (the exception keeps propagating), anything — so a
                # dead worker can never strand a graph's write stream.
                self._queue.release(batch.key)
            with self._sup_lock:
                state.busy = False
                state.inflight = []
                state.heartbeat_at = self._clock()
            if state.abandoned:
                return

    def _complete_timeout(self, ticket: QueryTicket, now: float) -> None:
        claimed = ticket.complete(
            QueryResult(
                request_id=ticket.request.request_id,
                kind=ticket.request.kind,
                status=QueryStatus.TIMEOUT,
                queued_s=now - ticket.admitted_at,
                error=f"deadline of {ticket.request.deadline_s}s expired in queue",
                error_type="TimeoutError",
                error_code="TIMEOUT",
            )
        )
        if not claimed:
            return
        with self._reg_lock:
            self.registry.counter_inc("service.requests.timeout")
            self.registry.timer_observe(
                "service.latency.total", now - ticket.admitted_at
            )

    def _complete_error(
        self, ticket: QueryTicket, now: float, *, error: str, error_code: str
    ) -> bool:
        """Error-complete one undispatched ticket (recovery/shutdown path)."""
        claimed = ticket.complete(
            QueryResult(
                request_id=ticket.request.request_id,
                kind=ticket.request.kind,
                status=QueryStatus.ERROR,
                queued_s=now - ticket.admitted_at,
                error=error,
                error_code=error_code,
            )
        )
        if claimed:
            with self._reg_lock:
                self.registry.counter_inc("service.requests.errors")
                self.registry.timer_observe(
                    "service.latency.total", now - ticket.admitted_at
                )
        return claimed

    def _dispatch(self, tickets: List[QueryTicket], seq: int, skew: float) -> None:
        tickets = [t for t in tickets if not t.done()]  # requeue duplicates
        if not tickets:
            return
        if tickets[0].plan is not None and tickets[0].plan.mutation:
            self._dispatch_mutations(tickets, skew)
            return
        if tickets[0].plan is not None and tickets[0].plan.runner is not None:
            self._dispatch_runners(tickets, seq, skew)
            return
        dispatch_t = self._clock()
        plan0 = tickets[0].plan
        stimuli: List[Any] = []
        faults: List[Any] = []
        for t in tickets:
            t.dispatched_at = dispatch_t
            stimuli.extend(t.plan.stimuli)
            faults.extend(t.plan.faults)
        total_items = len(stimuli)

        batch_reg = MetricsRegistry("service-batch")
        error: Optional[str] = None
        error_type: Optional[str] = None
        error_code: Optional[str] = None
        results: List[Any] = []
        pool = self._process_pool
        use_pool = pool is not None and plan0.batch_key[0] in ("sssp", "khop")
        try:
            with use_registry(batch_reg):
                if use_pool:
                    # Ship the batch to a worker process holding the
                    # resident compiled network for this structure key.
                    # A WorkerProcessDied (BaseException) escapes this
                    # handler, crashes this worker thread, and hands the
                    # tickets to the supervisor's exactly-once recovery —
                    # the pool has already respawned the process.
                    if self._chaos is not None and self._chaos.kill_process(seq):
                        pool.chaos_kill_next()
                    net_key = (
                        plan0.batch_key[:3]
                        if plan0.batch_key[0] == "sssp"
                        else plan0.batch_key[:2]
                    )
                    results, raw = pool.execute(
                        net_key, plan0.network, stimuli, faults, plan0.sim_kwargs
                    )
                    batch_reg.merge_raw(raw)
                else:
                    results = simulate_batch(
                        plan0.network, stimuli, faults=faults, **plan0.sim_kwargs
                    )
        except Exception as exc:  # answer every rider, never kill the worker
            error = f"{type(exc).__name__}: {exc}"
            error_type = type(exc).__name__
            error_code, _retryable = classify_exception(exc)
        if self._chaos is not None:
            slow = self._chaos.slow_s_for(seq)
            if slow > 0:
                time.sleep(slow)

        done_t = self._clock()
        # Chaos clock skew perturbs the *telemetry* timestamps only; the
        # clamp keeps latency accounting sane under a lying clock.
        dispatch_tel = dispatch_t + skew
        offset = 0
        outcomes: List[Tuple[QueryTicket, QueryResult]] = []
        for t in tickets:
            n = t.plan.n_items
            queued_s = max(0.0, dispatch_tel - t.admitted_at)
            service_s = max(0.0, done_t - dispatch_tel)
            if error is not None:
                qr = QueryResult(
                    request_id=t.request.request_id,
                    kind=t.request.kind,
                    status=QueryStatus.ERROR,
                    batch_size=total_items,
                    queued_s=queued_s,
                    service_s=service_s,
                    error=error,
                    error_type=error_type,
                    error_code=error_code,
                )
            else:
                chunk = results[offset : offset + n]
                try:
                    with use_registry(batch_reg):
                        decoded = t.plan.decode(chunk)
                    qr = QueryResult(
                        request_id=t.request.request_id,
                        kind=t.request.kind,
                        status=QueryStatus.OK,
                        dist=decoded.get("dist"),
                        matrix=decoded.get("matrix"),
                        outputs=decoded.get("outputs"),
                        cost=decoded.get("cost"),
                        sims=chunk,
                        batch_size=total_items,
                        queued_s=queued_s,
                        service_s=service_s,
                        graph_version=t.graph_version,
                    )
                except Exception as exc:
                    code, _retryable = classify_exception(exc)
                    qr = QueryResult(
                        request_id=t.request.request_id,
                        kind=t.request.kind,
                        status=QueryStatus.ERROR,
                        batch_size=total_items,
                        queued_s=queued_s,
                        service_s=service_s,
                        error=f"{type(exc).__name__}: {exc}",
                        error_type=type(exc).__name__,
                        error_code=code,
                    )
            offset += n
            outcomes.append((t, qr))

        claimed: List[Tuple[QueryTicket, QueryResult]] = []
        for t, qr in outcomes:
            if not t.complete(qr):
                continue  # an abandoned worker lost the completion race
            claimed.append((t, qr))
            if qr.ok and t.cache_key is not None:
                # The submit-time key: pins the fill to the resident
                # version the plan was built from (see QueryTicket).
                self._result_cache.put(t.cache_key, qr)
            if self._breaker_policy is not None:
                self._breaker_for(t.request.kind, t.request.graph_id).record(qr.ok)

        with self._reg_lock:
            self.registry.merge(batch_reg)
            self.registry.counter_inc("service.batches")
            if len(tickets) > 1:
                self.registry.counter_inc("service.batches.coalesced")
            self.registry.observe("service.batch.items", total_items)
            self.registry.observe("service.batch.requests", len(tickets))
            self.registry.gauge_set("service.queue.depth", self._queue.depth())
            for t, qr in claimed:
                self.registry.counter_inc(
                    "service.requests.completed"
                    if qr.ok
                    else "service.requests.errors"
                )
                self.registry.timer_observe("service.latency.queue", qr.queued_s)
                self.registry.timer_observe("service.latency.service", qr.service_s)
                self.registry.timer_observe(
                    "service.latency.total", qr.queued_s + qr.service_s
                )

    def _dispatch_runners(
        self, tickets: List[QueryTicket], seq: int, skew: float
    ) -> None:
        """Execute self-running plans (sharded fan-outs), one per ticket.

        Runner batch keys are per-request, so a batch normally holds one
        ticket; the loop form keeps the invariants (atomic claim, cache
        fill, breaker record, telemetry) identical to :meth:`_dispatch`
        regardless.  A :class:`~repro.service.net.procpool.WorkerProcessDied`
        escaping the runner crashes this worker thread and routes the
        tickets through the supervisor's exactly-once recovery, exactly as
        for pooled batches.
        """
        pool = self._process_pool
        if (
            pool is not None
            and self._chaos is not None
            and self._chaos.kill_process(seq)
        ):
            pool.chaos_kill_next()
        total = len(tickets)
        batch_reg = MetricsRegistry("service-batch")
        outcomes: List[Tuple[QueryTicket, QueryResult]] = []
        for t in tickets:
            dispatch_t = self._clock()
            t.dispatched_at = dispatch_t
            queued_s = max(0.0, (dispatch_t + skew) - t.admitted_at)
            try:
                with use_registry(batch_reg):
                    decoded = t.plan.runner(pool)
                qr = QueryResult(
                    request_id=t.request.request_id,
                    kind=t.request.kind,
                    status=QueryStatus.OK,
                    dist=decoded.get("dist"),
                    matrix=decoded.get("matrix"),
                    cost=decoded.get("cost"),
                    batch_size=total,
                    queued_s=queued_s,
                    service_s=max(0.0, self._clock() - dispatch_t),
                    graph_version=t.graph_version,
                )
            except Exception as exc:
                code, _retryable = classify_exception(exc)
                qr = QueryResult(
                    request_id=t.request.request_id,
                    kind=t.request.kind,
                    status=QueryStatus.ERROR,
                    batch_size=total,
                    queued_s=queued_s,
                    service_s=max(0.0, self._clock() - dispatch_t),
                    error=f"{type(exc).__name__}: {exc}",
                    error_type=type(exc).__name__,
                    error_code=code,
                )
            outcomes.append((t, qr))
        if self._chaos is not None:
            slow = self._chaos.slow_s_for(seq)
            if slow > 0:
                time.sleep(slow)

        claimed: List[Tuple[QueryTicket, QueryResult]] = []
        for t, qr in outcomes:
            if not t.complete(qr):
                continue
            claimed.append((t, qr))
            if qr.ok and t.cache_key is not None:
                self._result_cache.put(t.cache_key, qr)
            if self._breaker_policy is not None:
                self._breaker_for(t.request.kind, t.request.graph_id).record(qr.ok)

        with self._reg_lock:
            self.registry.merge(batch_reg)
            self.registry.counter_inc("service.batches")
            self.registry.counter_inc("service.batches.sharded", len(tickets))
            self.registry.gauge_set("service.queue.depth", self._queue.depth())
            for t, qr in claimed:
                self.registry.counter_inc(
                    "service.requests.completed"
                    if qr.ok
                    else "service.requests.errors"
                )
                self.registry.timer_observe("service.latency.queue", qr.queued_s)
                self.registry.timer_observe("service.latency.service", qr.service_s)
                self.registry.timer_observe(
                    "service.latency.total", qr.queued_s + qr.service_s
                )

    # ------------------------------------------------------------------ #
    # Mutations

    def _dispatch_mutations(self, tickets: List[QueryTicket], skew: float) -> None:
        """Apply a serial batch of writes to one dynamic graph, in order.

        Each ticket is applied individually (mutation + incremental
        recompile + snapshot publish as one atomic step under the graph's
        lock), so a failed write leaves the graph exactly as the previous
        write left it and later writes in the batch still apply.  Results
        carry the post-apply ``graph_version``.
        """
        total = len(tickets)
        for t in tickets:
            start = self._clock()
            t.dispatched_at = start
            queued_s = max(0.0, (start + skew) - t.admitted_at)
            try:
                outputs, version = self._apply_mutation(t.request)
                qr = QueryResult(
                    request_id=t.request.request_id,
                    kind=t.request.kind,
                    status=QueryStatus.OK,
                    outputs=outputs,
                    batch_size=total,
                    queued_s=queued_s,
                    service_s=max(0.0, self._clock() - start),
                    graph_version=version,
                )
            except Exception as exc:
                code, _retryable = classify_exception(exc)
                qr = QueryResult(
                    request_id=t.request.request_id,
                    kind=t.request.kind,
                    status=QueryStatus.ERROR,
                    batch_size=total,
                    queued_s=queued_s,
                    service_s=max(0.0, self._clock() - start),
                    error=f"{type(exc).__name__}: {exc}",
                    error_type=type(exc).__name__,
                    error_code=code,
                )
            if not t.complete(qr):
                continue
            if self._breaker_policy is not None:
                self._breaker_for(t.request.kind, t.request.graph_id).record(qr.ok)
            with self._reg_lock:
                self.registry.counter_inc(
                    "service.requests.completed" if qr.ok else "service.requests.errors"
                )
                self.registry.counter_inc("service.mutations.applied" if qr.ok else "service.mutations.failed")
                self.registry.timer_observe("service.latency.queue", qr.queued_s)
                self.registry.timer_observe("service.latency.service", qr.service_s)
                self.registry.timer_observe(
                    "service.latency.total", qr.queued_s + qr.service_s
                )
        with self._reg_lock:
            self.registry.counter_inc("service.batches")
            self.registry.counter_inc("service.batches.mutation")
            self.registry.gauge_set("service.queue.depth", self._queue.depth())

    def _apply_mutation(
        self, request: QueryRequest
    ) -> Tuple[Dict[str, int], int]:
        """Apply one write; returns ``(outputs, new graph version)``.

        Mutation + incremental recompile + snapshot happen under the
        graph's lock; the resident view (snapshot, resident key, version)
        swaps atomically under ``_resident_lock``; then exactly the
        superseded version's result-cache and lint-memo entries are
        dropped.  Build-cache movement (seed new key, invalidate old) is
        done inside :meth:`IncrementalRecompiler.refresh`.
        """
        gid = request.graph_id
        graph = self._dynamic[gid]
        recompiler = self._recompilers[gid]
        kind = request.kind
        with graph.lock:
            if kind == "add_node":
                node = graph.add_node()
                outputs = {"node": node}
            elif kind == "remove_node":
                dropped = graph.remove_node(request.u)
                outputs = {"node": int(request.u), "removed_edges": dropped}
            elif kind == "add_edge":
                graph.add_edge(request.u, request.v, request.weight)
                outputs = {"u": int(request.u), "v": int(request.v), "weight": int(request.weight)}
            elif kind == "remove_edge":
                graph.remove_edge(request.u, request.v)
                outputs = {"u": int(request.u), "v": int(request.v)}
            else:  # reweight — the only remaining MUTATION_KIND
                graph.reweight(request.u, request.v, request.weight)
                outputs = {"u": int(request.u), "v": int(request.v), "weight": int(request.weight)}
            recompiler.refresh()
            snap = graph.snapshot()
            version = graph.version
        with self._resident_lock:
            old_resident = self._resident_keys[gid]
            self._graphs[gid] = snap
            self._resident_keys[gid] = ("graph", snap.structure_key())
            self._graph_versions[gid] = version
        # Partial invalidation: only the superseded version's entries go.
        if self._result_cache is not None:
            self._result_cache.invalidate(old_resident)
        for key in [k for k in self._lint_cache if k[0] == old_resident]:
            self._lint_cache.pop(key, None)
        for key in [k for k in self._temporal_cache if k[0] == old_resident]:
            self._temporal_cache.pop(key, None)
        return outputs, version

    # ------------------------------------------------------------------ #
    # Supervision

    def _supervisor_loop(self) -> None:
        while not self._sup_stop.wait(self._supervise_interval_s):
            try:
                self._supervise_once()
            except Exception:
                # The watcher must outlive anything it watches; a scan
                # failure is dropped and the next tick retries.
                pass

    def _supervise_once(self) -> None:
        pool = self._process_pool
        if pool is not None:
            try:
                # Rate-limited inside the pool: respawns idle workers that
                # died between batches, pings the rest.
                pool.heartbeat()
            except Exception:
                pass
        now = self._clock()
        with self._sup_lock:
            for slot in range(self._n_workers):
                restart_at = self._slot_restart_at[slot]
                if restart_at is not None:
                    if now >= restart_at:
                        self._slot_restart_at[slot] = None
                        self._slot_restarts[slot] += 1
                        self._sup_counts["restarts"] += 1
                        self._incident("restart", slot, now)
                        self._states[slot] = self._spawn_worker_locked(slot, now)
                    continue
                state = self._states[slot]
                thread = state.thread
                if thread is None:
                    continue
                if not thread.is_alive():
                    if state.clean_exit or state.crash_handled:
                        continue
                    state.crash_handled = True
                    self._sup_counts["crashes"] += 1
                    self._incident("crash", slot, now, error=state.crash_error)
                    self._recover_inflight(state, now, error_code="WORKER_CRASH")
                    self._schedule_restart(slot, now)
                elif (
                    state.busy
                    and not state.abandoned
                    and now - state.heartbeat_at >= self._wedge_timeout_s
                ):
                    # Wedged: abandon the thread (it exits at its next loop
                    # top — or loses every completion race if it ever
                    # finishes the stuck batch) and refill the slot.
                    state.abandoned = True
                    self._sup_counts["wedged"] += 1
                    self._incident("wedge", slot, now)
                    self._recover_inflight(state, now, error_code="WORKER_WEDGED")
                    self._schedule_restart(slot, now)

    def _schedule_restart(self, slot: int, now: float) -> None:
        """Queue a capped-exponential-backoff restart for ``slot`` (lock held)."""
        restarts = self._slot_restarts[slot]
        if restarts >= self._max_restarts:
            return  # slot's restart budget is spent; stop() failsafe covers it
        backoff = min(
            self._restart_backoff_s * (2.0 ** restarts), self._restart_backoff_max_s
        )
        self._slot_restart_at[slot] = now + backoff

    def _recover_inflight(
        self, state: _WorkerState, now: float, *, error_code: str
    ) -> None:
        """Settle a dead/abandoned worker's tickets exactly once (lock held).

        Idempotent tickets inside their requeue budget go back to the front
        of their queue group; the rest are error-completed with a
        structured, retryable code.  Tickets the worker already answered
        (or that a wedged worker answers later) are skipped by the
        completion claim.
        """
        tickets, state.inflight = state.inflight, []
        # Un-park the serial groups the dead/wedged worker was holding so
        # the graph's write stream keeps moving.  (For a *wedged* worker
        # that later comes back to life, its own finally-release could
        # momentarily un-park a successor's in-flight batch; per-mutation
        # state stays consistent regardless because every apply runs under
        # the graph's own lock.)
        released = set()
        for ticket in tickets:
            if ticket.plan is not None and ticket.plan.batch_key not in released:
                released.add(ticket.plan.batch_key)
                self._queue.release(ticket.plan.batch_key)
        for ticket in tickets:
            if ticket.done():
                continue
            if ticket.expired(now):
                self._complete_timeout(ticket, now)
                continue
            if (
                ticket.plan is not None
                and ticket.request.idempotent
                and ticket.requeues < self._max_requeues
            ):
                ticket.requeues += 1
                self._sup_counts["requeued"] += 1
                self._queue.requeue(ticket.plan.batch_key, ticket)
            else:
                cause = "died" if error_code == "WORKER_CRASH" else "wedged"
                if self._complete_error(
                    ticket,
                    now,
                    error=(
                        f"worker {state.slot} {cause} mid-batch and the request's "
                        f"requeue budget is spent"
                    ),
                    error_code=error_code,
                ):
                    self._sup_counts["error_completed"] += 1

    def _incident(
        self, event: str, slot: int, now: float, *, error: Optional[str] = None
    ) -> None:
        doc: Dict[str, object] = {"t": now, "event": event, "worker": slot}
        if error:
            doc["error"] = error
        self._incidents.append(doc)
        if len(self._incidents) > _MAX_INCIDENTS:
            del self._incidents[: len(self._incidents) - _MAX_INCIDENTS]

    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """Serving metrics, queue depth, supervision, breakers, and caches."""
        with self._reg_lock:
            snap = self.registry.snapshot()
        now = self._clock()
        with self._sup_lock:
            sup: Dict[str, object] = dict(self._sup_counts)
            sup["enabled"] = self._supervise
            sup["incidents"] = [dict(ev) for ev in self._incidents]
            sup["workers"] = [
                {
                    "slot": s.slot,
                    "alive": bool(s.thread is not None and s.thread.is_alive()),
                    "busy": s.busy,
                    "abandoned": s.abandoned,
                    "restarts": self._slot_restarts[s.slot],
                    "batches": s.batches,
                    "age_s": round(now - s.started_at, 6),
                }
                for s in self._states
            ]
        out: Dict[str, object] = {
            "metrics": snap,
            "queue_depth": self._queue.depth(),
            "workers": self._n_workers,
            "graphs": self.graph_ids(),
            "circuits": sorted(self._circuits),
            "build_cache": default_build_cache.stats(),
            "supervisor": sup,
            "lint": {
                "enabled": self._lint_admission,
                "residents": {r.subject: r.ok for r in self._lint_cache.values()},
            },
            "temporal": {
                "enabled": self._temporal_admission,
                "tick_rate": self._tick_rate,
                "bounds": {
                    "/".join(str(p) for p in key): bound
                    for key, bound in sorted(
                        self._temporal_cache.items(), key=lambda kv: str(kv[0])
                    )
                },
            },
        }
        with self._breaker_lock:
            out["breakers"] = {
                f"{kind}:{graph_id}": b.snapshot()
                for (kind, graph_id), b in sorted(self._breakers.items())
            }
        if self._result_cache is not None:
            out["result_cache"] = self._result_cache.stats()
        if self._process_pool is not None:
            out["process_pool"] = self._process_pool.stats()
        with self._resident_lock:
            sharded_view = {
                gid: {"shards": sg.k, "n": sg.n, "cross_edges": sg.cross_edges}
                for gid, sg in sorted(self._sharded.items())
            }
        if sharded_view:
            out["sharded"] = sharded_view
        with self._resident_lock:
            dynamic_ids = sorted(self._dynamic)
        if dynamic_ids:
            dynamic: Dict[str, object] = {}
            for gid in dynamic_ids:
                graph = self._dynamic[gid]
                dynamic[gid] = {
                    "uid": graph.uid,
                    "version": graph.version,
                    "ops": graph.stats(),
                    "recompile": self._recompilers[gid].stats(),
                }
            out["dynamic"] = dynamic
        return out
