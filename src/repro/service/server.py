"""The concurrent query server: admission, coalescing, dispatch, caching.

:class:`QueryServer` owns a :class:`~repro.service.queue.CoalescingQueue`,
a pool of worker threads, and a :class:`~repro.service.resultcache.TTLResultCache`.
Callers register graphs/circuits up front (making them *resident*), then
:meth:`submit` requests; each submit plans the request in the caller's
thread (so malformed queries fail synchronously), checks the result cache,
and enqueues a :class:`QueryTicket`.  Workers pull micro-batches of
compatible tickets and dispatch them through one
:func:`~repro.core.run.simulate_batch` call, so N coalesced requests pay
one batched sweep instead of N solo simulations while each item's spikes
remain exactly those of a solo run.

Telemetry: workers run each batch under a private
:class:`~repro.telemetry.metrics.MetricsRegistry` (context variables do not
propagate into threads, and the registry's dict updates are not atomic),
then merge it into the server registry under a lock together with the
serving metrics — queue-depth gauge, batch-occupancy histograms, and
queue/service/total latency timers.  :meth:`stats` snapshots everything,
including the build-cache and result-cache counters.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.circuits.builder import CircuitBuilder
from repro.core.cache import default_build_cache
from repro.core.run import simulate_batch
from repro.errors import ReproError, ValidationError
from repro.service.adapters import RequestPlan, plan_request
from repro.service.queue import CoalescingQueue
from repro.service.resultcache import TTLResultCache
from repro.service.schema import QueryRequest, QueryResult, QueryStatus
from repro.telemetry.metrics import MetricsRegistry, use_registry
from repro.workloads.graph import WeightedDigraph

__all__ = ["QueryServer", "QueryTicket"]


class QueryTicket:
    """One in-flight request: plan, deadline, and a completion event.

    The ticket is the queue's unit of admission (``n_items`` batch items —
    more than one for an apsp slice) and the caller's handle on the answer:
    :meth:`result` blocks until a worker (or the submitter, on a cache hit)
    completes it.
    """

    __slots__ = (
        "request",
        "plan",
        "admitted_at",
        "deadline",
        "dispatched_at",
        "_event",
        "_result",
    )

    def __init__(
        self,
        request: QueryRequest,
        plan: Optional[RequestPlan],
        *,
        admitted_at: float,
        deadline: Optional[float] = None,
    ):
        self.request = request
        self.plan = plan
        self.admitted_at = admitted_at
        self.deadline = deadline  # absolute monotonic time, or None
        self.dispatched_at: Optional[float] = None
        self._event = threading.Event()
        self._result: Optional[QueryResult] = None

    @property
    def n_items(self) -> int:
        return self.plan.n_items if self.plan is not None else 1

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def complete(self, result: QueryResult) -> None:
        self._result = result
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block until the ticket completes; raise if ``timeout`` elapses."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id} not completed in {timeout}s"
            )
        assert self._result is not None
        return self._result


class QueryServer:
    """Thread-based graph-query server with micro-batch coalescing.

    Parameters
    ----------
    workers:
        Dispatch threads.  Each independently pulls ready batches, so two
        incompatible request streams do not serialize behind each other.
    max_batch / linger_s:
        Coalescing knobs, forwarded to the queue: release a batch at
        ``max_batch`` items or once its oldest request waited ``linger_s``.
    queue_limit:
        Admission bound in batch items; beyond it, submits raise
        :class:`~repro.errors.ServiceOverloadedError` (backpressure).
    result_cache_size / result_cache_ttl_s:
        TTL-LRU result cache dimensions; ``result_cache_size=0`` disables
        caching entirely (every request simulates).
    lint_admission:
        When True (the default), every submit runs the
        :mod:`repro.staticcheck` linter over the resident network it
        targets (memoized per resident key) and rejects structurally
        invalid queries synchronously with a
        :class:`~repro.errors.StaticCheckError` carrying the full lint
        report — a diagnostic instead of a watchdog timeout.
    clock:
        Monotonic time source, injectable for deterministic queue tests.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        max_batch: int = 16,
        linger_s: float = 0.002,
        queue_limit: int = 256,
        result_cache_size: int = 1024,
        result_cache_ttl_s: float = 60.0,
        lint_admission: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ):
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        self._clock = clock
        self._queue = CoalescingQueue(
            limit_items=queue_limit,
            max_batch=max_batch,
            linger_s=linger_s,
            clock=clock,
        )
        self._result_cache: Optional[TTLResultCache] = None
        if result_cache_size > 0:
            self._result_cache = TTLResultCache(
                maxsize=result_cache_size, ttl_s=result_cache_ttl_s, clock=clock
            )
        self._graphs: Dict[str, WeightedDigraph] = {}
        self._circuits: Dict[str, Tuple[CircuitBuilder, str]] = {}
        self._resident_keys: Dict[str, Tuple] = {}
        self._lint_admission = bool(lint_admission)
        #: (resident key, plan family) -> memoized LintReport
        self._lint_cache: Dict[Tuple, Any] = {}
        self._epoch = 0
        self.registry = MetricsRegistry("service")
        self._reg_lock = threading.Lock()
        self._n_workers = int(workers)
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Residents

    def register_graph(self, graph_id: str, graph: WeightedDigraph) -> str:
        """Make ``graph`` queryable as ``graph_id``; returns the id."""
        self._graphs[graph_id] = graph
        self._resident_keys[graph_id] = ("graph", graph.structure_key())
        return graph_id

    def register_circuit(self, circuit_id: str, builder: CircuitBuilder) -> str:
        """Make a built circuit queryable as ``circuit_id``.

        The resident key carries a registration epoch, so re-registering
        under the same id invalidates previously cached evaluations.
        """
        self._epoch += 1
        key = f"circuit:{circuit_id}:{self._epoch}"
        self._circuits[circuit_id] = (builder, key)
        self._resident_keys[circuit_id] = ("circuit", key)
        return circuit_id

    def graph_ids(self) -> List[str]:
        return sorted(self._graphs)

    # ------------------------------------------------------------------ #
    # Lifecycle

    def start(self) -> "QueryServer":
        if self._started:
            return self
        self._started = True
        for i in range(self._n_workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def stop(self) -> None:
        """Close admission, drain pending batches, join the workers."""
        if not self._started or self._stopped:
            self._stopped = True
            return
        self._stopped = True
        self._queue.close()
        for t in self._threads:
            t.join()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Submission

    def _cache_key(self, request: QueryRequest) -> Optional[Tuple]:
        if self._result_cache is None:
            return None
        params = request.cache_params()
        if params is None:
            return None
        return (self._resident_keys[request.graph_id], params)

    def submit(self, request: QueryRequest) -> QueryTicket:
        """Plan, cache-check, and enqueue ``request``.

        Raises synchronously: :class:`~repro.errors.ValidationError` for a
        request the resident graph cannot answer,
        :class:`~repro.errors.StaticCheckError` when admission linting is
        on and the resident network has error-severity structural
        violations, and :class:`~repro.errors.ServiceOverloadedError` when
        the admission queue is full.  Everything downstream (deadline
        expiry, execution
        failure) is reported through the returned ticket's
        :class:`~repro.service.schema.QueryResult` instead.
        """
        if not self._started or self._stopped:
            raise ReproError("QueryServer is not running; use 'with QueryServer(...)'")
        if request.graph_id not in self._resident_keys:
            raise ValidationError(f"unknown graph or circuit {request.graph_id!r}")

        now = self._clock()
        cache_key = self._cache_key(request)
        if cache_key is not None:
            hit = self._result_cache.get(cache_key)
            if hit is not None:
                with self._reg_lock:
                    self.registry.counter_inc("service.cache.result.hits")
                    self.registry.counter_inc("service.requests.accepted")
                    self.registry.counter_inc("service.requests.completed")
                ticket = QueryTicket(request, None, admitted_at=now)
                ticket.complete(
                    dataclasses.replace(
                        hit,
                        request_id=request.request_id,
                        cached=True,
                        queued_s=0.0,
                        service_s=0.0,
                    )
                )
                return ticket
            with self._reg_lock:
                self.registry.counter_inc("service.cache.result.misses")

        plan = plan_request(request, self._graphs, self._circuits)
        if self._lint_admission:
            self._check_admission(request, plan)
        deadline = None if request.deadline_s is None else now + request.deadline_s
        ticket = QueryTicket(request, plan, admitted_at=now, deadline=deadline)
        try:
            self._queue.offer(plan.batch_key, ticket)
        except Exception:
            with self._reg_lock:
                self.registry.counter_inc("service.requests.rejected")
            raise
        with self._reg_lock:
            self.registry.counter_inc("service.requests.accepted")
            self.registry.gauge_set("service.queue.depth", self._queue.depth())
        return ticket

    def serve(
        self, request: QueryRequest, timeout: Optional[float] = None
    ) -> QueryResult:
        """Submit and block for the answer (the in-process convenience path)."""
        return self.submit(request).result(timeout)

    def _check_admission(self, request: QueryRequest, plan: RequestPlan) -> None:
        """Reject requests whose resident network fails the static linter.

        The report is memoized per (resident key, plan family) — one lint
        per resident graph/circuit, not per request — so the steady-state
        admission cost is a dict lookup.  Circuit residents are linted as
        feed-forward circuits (entry points = declared input groups);
        graph residents are linted structurally only, since any vertex
        neuron may be stimulated by some future query.
        """
        family = plan.batch_key[0]
        key = (self._resident_keys[request.graph_id], family)
        report = self._lint_cache.get(key)
        if report is None:
            if family == "circuit":
                builder, _ = self._circuits[request.graph_id]
                report = builder.lint(subject=f"resident circuit {request.graph_id!r}")
            else:
                from repro.staticcheck.rules import lint_network

                net = plan.network
                net = net.compile() if hasattr(net, "compile") else net
                report = lint_network(
                    net, subject=f"resident {request.graph_id!r} ({family})"
                )
            self._lint_cache[key] = report
            with self._reg_lock:
                self.registry.counter_inc("service.lint.checked")
        if not report.ok:
            with self._reg_lock:
                self.registry.counter_inc("service.requests.rejected")
                self.registry.counter_inc("service.lint.rejections")
            report.raise_if_errors()

    # ------------------------------------------------------------------ #
    # Dispatch

    def _worker_loop(self) -> None:
        while True:
            batch = self._queue.next_batch()
            if batch is None:
                return
            now = self._clock()
            for ticket in batch.expired:
                self._complete_timeout(ticket, now)
            if batch.tickets:
                self._dispatch(batch.tickets)

    def _complete_timeout(self, ticket: QueryTicket, now: float) -> None:
        ticket.complete(
            QueryResult(
                request_id=ticket.request.request_id,
                kind=ticket.request.kind,
                status=QueryStatus.TIMEOUT,
                queued_s=now - ticket.admitted_at,
                error=f"deadline of {ticket.request.deadline_s}s expired in queue",
            )
        )
        with self._reg_lock:
            self.registry.counter_inc("service.requests.timeout")
            self.registry.timer_observe(
                "service.latency.total", now - ticket.admitted_at
            )

    def _dispatch(self, tickets: List[QueryTicket]) -> None:
        dispatch_t = self._clock()
        plan0 = tickets[0].plan
        stimuli: List[Any] = []
        faults: List[Any] = []
        for t in tickets:
            t.dispatched_at = dispatch_t
            stimuli.extend(t.plan.stimuli)
            faults.extend(t.plan.faults)
        total_items = len(stimuli)

        batch_reg = MetricsRegistry("service-batch")
        error: Optional[str] = None
        results: List[Any] = []
        try:
            with use_registry(batch_reg):
                results = simulate_batch(
                    plan0.network, stimuli, faults=faults, **plan0.sim_kwargs
                )
        except Exception as exc:  # answer every rider, never kill the worker
            error = f"{type(exc).__name__}: {exc}"

        done_t = self._clock()
        offset = 0
        outcomes: List[Tuple[QueryTicket, QueryResult]] = []
        for t in tickets:
            n = t.plan.n_items
            if error is not None:
                qr = QueryResult(
                    request_id=t.request.request_id,
                    kind=t.request.kind,
                    status=QueryStatus.ERROR,
                    batch_size=total_items,
                    queued_s=dispatch_t - t.admitted_at,
                    service_s=done_t - dispatch_t,
                    error=error,
                )
            else:
                chunk = results[offset : offset + n]
                try:
                    with use_registry(batch_reg):
                        decoded = t.plan.decode(chunk)
                    qr = QueryResult(
                        request_id=t.request.request_id,
                        kind=t.request.kind,
                        status=QueryStatus.OK,
                        dist=decoded.get("dist"),
                        matrix=decoded.get("matrix"),
                        outputs=decoded.get("outputs"),
                        cost=decoded.get("cost"),
                        sims=chunk,
                        batch_size=total_items,
                        queued_s=dispatch_t - t.admitted_at,
                        service_s=done_t - dispatch_t,
                    )
                except Exception as exc:
                    qr = QueryResult(
                        request_id=t.request.request_id,
                        kind=t.request.kind,
                        status=QueryStatus.ERROR,
                        batch_size=total_items,
                        queued_s=dispatch_t - t.admitted_at,
                        service_s=done_t - dispatch_t,
                        error=f"{type(exc).__name__}: {exc}",
                    )
            offset += n
            outcomes.append((t, qr))

        for t, qr in outcomes:
            if qr.ok:
                key = self._cache_key(t.request)
                if key is not None:
                    self._result_cache.put(key, qr)
            t.complete(qr)

        with self._reg_lock:
            self.registry.merge(batch_reg)
            self.registry.counter_inc("service.batches")
            if len(tickets) > 1:
                self.registry.counter_inc("service.batches.coalesced")
            self.registry.observe("service.batch.items", total_items)
            self.registry.observe("service.batch.requests", len(tickets))
            self.registry.gauge_set("service.queue.depth", self._queue.depth())
            for t, qr in outcomes:
                self.registry.counter_inc(
                    "service.requests.completed"
                    if qr.ok
                    else "service.requests.errors"
                )
                self.registry.timer_observe("service.latency.queue", qr.queued_s)
                self.registry.timer_observe("service.latency.service", qr.service_s)
                self.registry.timer_observe(
                    "service.latency.total", qr.queued_s + qr.service_s
                )

    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """Serving metrics, queue depth, and cache counters in one snapshot."""
        with self._reg_lock:
            snap = self.registry.snapshot()
        out: Dict[str, object] = {
            "metrics": snap,
            "queue_depth": self._queue.depth(),
            "workers": self._n_workers,
            "graphs": self.graph_ids(),
            "circuits": sorted(self._circuits),
            "build_cache": default_build_cache.stats(),
            "lint": {
                "enabled": self._lint_admission,
                "residents": {r.subject: r.ok for r in self._lint_cache.values()},
            },
        }
        if self._result_cache is not None:
            out["result_cache"] = self._result_cache.stats()
        return out
