"""TTL-bounded LRU result cache for served queries.

Keys are ``(resident key, query params, fault fingerprint)`` tuples built
by the server (see :meth:`repro.service.schema.QueryRequest.cache_params`);
values are frozen :class:`~repro.service.schema.QueryResult` objects.
Entries expire ``ttl_s`` seconds after insertion (checked lazily on read)
and the least-recently-used entry is evicted once ``maxsize`` is exceeded.
Thread-safe: one lock around every transition, mirroring
:class:`~repro.core.cache.BuildCache`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ValidationError

__all__ = ["TTLResultCache"]


class TTLResultCache:
    """Bounded LRU with per-entry time-to-live."""

    def __init__(
        self,
        *,
        maxsize: int = 1024,
        ttl_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if maxsize < 1:
            raise ValidationError(f"result cache maxsize must be >= 1, got {maxsize}")
        if ttl_s <= 0:
            raise ValidationError(f"result cache ttl_s must be > 0, got {ttl_s}")
        self.maxsize = int(maxsize)
        self.ttl_s = float(ttl_s)
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (expiry time, value)
        self._entries: "OrderedDict[Tuple, Tuple[float, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Tuple) -> Optional[Any]:
        """The live entry for ``key`` (refreshed to MRU), else ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            expires, value = entry
            if expires <= self._clock():
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Tuple, value: Any) -> None:
        with self._lock:
            self._entries[key] = (self._clock() + self.ttl_s, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "expirations": self.expirations,
                "evictions": self.evictions,
            }
