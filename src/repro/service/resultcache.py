"""TTL-bounded LRU result cache for served queries.

Keys are ``(resident key, query params, fault fingerprint)`` tuples built
by the server (see :meth:`repro.service.schema.QueryRequest.cache_params`);
values are frozen :class:`~repro.service.schema.QueryResult` objects.
Entries expire ``ttl_s`` seconds after insertion and the
least-recently-used entry is evicted once ``maxsize`` is exceeded.

Expiry is enforced two ways.  Reads check lazily (:meth:`get` never
returns an expired value), and — because a key that is never read again
would otherwise pin its dead entry until LRU pressure happens to reach it
— every :meth:`put` also runs an **amortized purge**: it probes a bounded
number of least-recently-used entries and drops the expired ones, so a
steady insert stream keeps the cache free of unbounded staleness at O(1)
amortized cost per insert (counted in ``stats()['purges']``).

With a positive ``stale_grace_s``, expired entries linger (invisible to
:meth:`get`) for that long and are servable through :meth:`get_stale` —
the first rung of the server's overload degradation ladder: a
stale-but-marked answer beats a rejection.  Beyond ``ttl_s +
stale_grace_s`` entries are unconditionally dead.

Thread-safe: one lock around every transition, mirroring
:class:`~repro.core.cache.BuildCache`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ValidationError

__all__ = ["TTLResultCache"]

#: LRU-front entries probed per insert; bounds the purge cost per put.
_PURGE_PROBES = 8


class TTLResultCache:
    """Bounded LRU with per-entry time-to-live and optional stale grace."""

    def __init__(
        self,
        *,
        maxsize: int = 1024,
        ttl_s: float = 60.0,
        stale_grace_s: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if maxsize < 1:
            raise ValidationError(f"result cache maxsize must be >= 1, got {maxsize}")
        if ttl_s <= 0:
            raise ValidationError(f"result cache ttl_s must be > 0, got {ttl_s}")
        if stale_grace_s < 0:
            raise ValidationError(
                f"result cache stale_grace_s must be >= 0, got {stale_grace_s}"
            )
        self.maxsize = int(maxsize)
        self.ttl_s = float(ttl_s)
        self.stale_grace_s = float(stale_grace_s)
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (expiry time, value); expired entries may linger within grace
        self._entries: "OrderedDict[Tuple, Tuple[float, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.expirations = 0
        self.evictions = 0
        self.purges = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #

    def _drop_expired(self, key: Tuple, expires: float, now: float) -> bool:
        """Remove ``key`` if it is past TTL *and* grace (lock held)."""
        if now >= expires + self.stale_grace_s:
            del self._entries[key]
            self.expirations += 1
            return True
        return False

    def get(self, key: Tuple) -> Optional[Any]:
        """The live entry for ``key`` (refreshed to MRU), else ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            expires, value = entry
            now = self._clock()
            if expires <= now:
                # expired: invisible to fresh reads, kept only within grace
                self._drop_expired(key, expires, now)
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def get_stale(self, key: Tuple) -> Optional[Any]:
        """An expired-but-in-grace entry for ``key``, else ``None``.

        The degraded-serving read: only consulted when the fresh path is
        unavailable (overload), so it neither refreshes recency nor counts
        as a hit/miss — stale serves are tracked separately.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            expires, value = entry
            now = self._clock()
            if expires > now:  # still fresh — callers should use get()
                self.hits += 1
                return value
            if now >= expires + self.stale_grace_s:
                self._drop_expired(key, expires, now)
                return None
            self.stale_hits += 1
            return value

    def put(self, key: Tuple, value: Any) -> None:
        with self._lock:
            now = self._clock()
            self._entries[key] = (now + self.ttl_s, value)
            self._entries.move_to_end(key)
            # amortized purge: probe the LRU front so entries whose keys
            # are never read again cannot survive past TTL + grace
            for probe_key in list(self._entries)[:_PURGE_PROBES]:
                expires, _ = self._entries[probe_key]
                if probe_key != key and self._drop_expired(probe_key, expires, now):
                    self.purges += 1
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, resident_key: Any) -> int:
        """Drop every entry cached under ``resident_key`` (partial flush).

        Cache keys lead with the resident key ``("graph", structure_key)``,
        and dynamic graphs use *versioned* structure keys — so when a graph
        mutates, the server invalidates exactly the superseded version's
        results while every other resident's entries (and the grace-window
        stale entries it still wants for degraded serving) survive.
        Returns the number of entries removed.
        """
        with self._lock:
            doomed = [k for k in self._entries if k and k[0] == resident_key]
            for k in doomed:
                del self._entries[k]
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "stale_hits": self.stale_hits,
                "expirations": self.expirations,
                "evictions": self.evictions,
                "purges": self.purges,
                "invalidations": self.invalidations,
            }
