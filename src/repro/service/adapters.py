"""Batchable query adapters: request → simulation plan → decoded answer.

Each adapter turns one :class:`~repro.service.schema.QueryRequest` into a
:class:`RequestPlan`: the resident network to run on, one stimulus (and
optional fault model) per batch *item*, the engine keyword arguments shared
by every item, a **batch key** (two plans with equal keys may be coalesced
into one :func:`~repro.core.run.simulate_batch` call), and a decoder from
the per-item :class:`~repro.core.result.SimulationResult`\\ s back to the
query answer.

The adapters deliberately contain no simulation logic of their own: plans
and decoders are the exact ones the solo drivers use
(:func:`~repro.algorithms.sssp_pseudo.sssp_plan` /
:func:`~repro.algorithms.sssp_pseudo.sssp_decode`,
:func:`~repro.algorithms.reach.khop_reach_plan` /
:func:`~repro.algorithms.reach.khop_reach_decode`, and the circuit
runner's :func:`~repro.circuits.runner.wave_stimulus` /
:func:`~repro.circuits.runner.decode_waves`), and the batched dense engine
is per-item identical to solo dense runs — so a served answer is
spike-for-spike the solo answer, which :func:`execute_solo` computes for
the differential tests and the naive load-generator baseline.

An ``apsp`` slice expands into one item per source on the *same* plan (and
the same batch key) as plain no-target ``sssp`` queries, so slices and
single-source queries coalesce together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.reach import khop_reach_decode, khop_reach_plan
from repro.algorithms.sssp_pseudo import sssp_decode, sssp_plan
from repro.circuits.builder import CircuitBuilder
from repro.circuits.runner import decode_waves, wave_horizon, wave_stimulus
from repro.core.cost import CostReport
from repro.core.result import SimulationResult
from repro.core.run import simulate
from repro.core.transient import FaultModel
from repro.errors import ValidationError
from repro.service.schema import QueryRequest
from repro.workloads.graph import WeightedDigraph

__all__ = ["RequestPlan", "plan_request", "execute_solo"]


@dataclass
class RequestPlan:
    """One request's executable form, ready for coalescing.

    ``stimuli[i]`` / ``faults[i]`` describe batch item ``i`` of this
    request; ``sim_kwargs`` are shared by every item and are part of
    ``batch_key``, so only identically-configured plans coalesce.
    ``decode`` maps this request's slice of the batch results to
    ``{"dist" | "matrix" | "outputs": ..., "cost": CostReport}``.

    ``mutation=True`` marks a write plan (graph mutation): it has no
    stimuli or network, is dispatched by
    :meth:`~repro.service.server.QueryServer._dispatch_mutations` instead
    of the batched engine, and its group is offered *serial* so writes on
    one graph never run concurrently.

    ``runner`` (when set) marks a *self-executing* plan — the sharded
    fan-out path of :mod:`repro.service.net.shard`: instead of the shared
    ``simulate_batch`` call, the dispatcher invokes
    ``runner(process_pool)`` and builds the result from the decoded dict
    it returns.  Runner plans never coalesce (their batch keys are
    per-request) and are idempotent, so the supervisor's crash-requeue
    semantics apply to them unchanged.
    """

    batch_key: Tuple
    network: Any  # Network | CompiledNetwork, frozen (from the build cache)
    stimuli: List[Any]
    faults: List[Optional[FaultModel]]
    sim_kwargs: Dict[str, Any]
    decode: Callable[[List[SimulationResult]], Dict[str, Any]]
    mutation: bool = False
    runner: Optional[Callable[[Any], Dict[str, Any]]] = None

    @property
    def n_items(self) -> int:
        """Batch items this plan occupies (mutations count as one)."""
        return max(1, len(self.stimuli))


def _watchdog_key(request: QueryRequest) -> Optional[Tuple]:
    # Watchdog is a frozen dataclass; its field tuple identifies the config.
    wd = request.watchdog
    if wd is None:
        return None
    return (wd.window, wd.max_spikes_per_neuron, wd.top_k, wd.ignore, wd.raise_on_trip)


def _sssp_items(
    graph: WeightedDigraph, request: QueryRequest, sources: Sequence[int]
) -> Tuple[Any, List[Any], Dict[str, Any], Tuple, List[Any]]:
    """Shared plan construction for ``sssp`` and ``apsp`` requests."""
    plans = [
        sssp_plan(
            graph,
            s,
            target=request.target,
            use_gadgets=request.use_gadgets,
        )
        for s in sources
    ]
    p0 = plans[0]
    sim_kwargs = dict(
        max_steps=p0.max_steps,
        terminal=p0.terminal,
        watch=None if p0.watch is None else list(p0.watch),
        stop_when_quiescent=True,
        record_spikes=request.record_spikes,
        watchdog=request.watchdog,
        engine=request.engine,
    )
    batch_key = (
        "sssp",
        graph.structure_key(),
        request.use_gadgets,
        request.target,
        p0.max_steps,
        request.engine,
        request.record_spikes,
        _watchdog_key(request),
    )
    return p0.net, [list(p.stimulus) for p in plans], sim_kwargs, batch_key, plans


def plan_request(
    request: QueryRequest,
    graphs: Dict[str, WeightedDigraph],
    circuits: Dict[str, Tuple[CircuitBuilder, str]],
) -> RequestPlan:
    """Resolve ``request`` against the resident graphs/circuits.

    ``circuits`` maps id to ``(builder, resident key)``.  Raises
    :class:`~repro.errors.ValidationError` for unknown residents or
    graph-incompatible parameters (out-of-range source, unknown input
    group) — the serving layer surfaces those synchronously at submit.
    """
    if request.kind == "circuit":
        if request.graph_id not in circuits:
            raise ValidationError(f"unknown circuit {request.graph_id!r}")
        builder, resident_key = circuits[request.graph_id]
        stimulus = wave_stimulus(builder, [request.inputs])
        horizon = wave_horizon(builder, 1)
        n_synapses = builder.net.n_synapses
        n_neurons = builder.net.n_neurons

        def decode_circuit(results: List[SimulationResult]) -> Dict[str, Any]:
            outputs = decode_waves(builder, results[0], 1)[0]
            cost = CostReport(
                algorithm="circuit",
                simulated_ticks=results[0].final_tick,
                loading_ticks=n_synapses,
                neuron_count=n_neurons,
                synapse_count=n_synapses,
                spike_count=results[0].total_spikes,
            )
            return {"outputs": outputs, "cost": cost}

        return RequestPlan(
            batch_key=(
                "circuit",
                resident_key,
                horizon,
                _watchdog_key(request),
            ),
            network=builder.net,
            stimuli=[stimulus],
            faults=[request.faults],
            sim_kwargs=dict(
                max_steps=horizon,
                stop_when_quiescent=False,
                # circuit decoding reads the raster, so spikes are always on
                record_spikes=True,
                watchdog=request.watchdog,
                engine="dense",
            ),
            decode=decode_circuit,
        )

    if request.graph_id not in graphs:
        raise ValidationError(f"unknown graph {request.graph_id!r}")
    graph = graphs[request.graph_id]

    vertices = [request.source] if request.kind in ("sssp", "khop") else list(
        request.sources
    )
    if request.target is not None:
        vertices.append(request.target)
    for v in vertices:
        if not 0 <= v < graph.n:
            raise ValidationError(
                f"vertex {v} out of range for graph {request.graph_id!r} (n={graph.n})"
            )

    if request.kind == "khop":
        plan = khop_reach_plan(graph, request.source, request.k)
        sim_kwargs = dict(
            max_steps=plan.max_steps,
            watch=list(plan.watch),
            stop_when_quiescent=True,
            record_spikes=request.record_spikes,
            watchdog=request.watchdog,
            engine=request.engine,
        )
        return RequestPlan(
            batch_key=(
                "khop",
                graph.structure_key(),
                request.k,
                request.engine,
                request.record_spikes,
                _watchdog_key(request),
            ),
            network=plan.net,
            stimuli=[list(plan.stimulus)],
            faults=[request.faults],
            sim_kwargs=sim_kwargs,
            decode=lambda results: {
                "dist": (r := khop_reach_decode(plan, results[0])).dist,
                "cost": r.cost,
            },
        )

    if request.kind == "sssp":
        net, stimuli, sim_kwargs, batch_key, plans = _sssp_items(
            graph, request, [request.source]
        )
        return RequestPlan(
            batch_key=batch_key,
            network=net,
            stimuli=stimuli,
            faults=[request.faults],
            sim_kwargs=sim_kwargs,
            decode=lambda results: {
                "dist": (r := sssp_decode(plans[0], results[0])).dist,
                "cost": r.cost,
            },
        )

    # apsp slice: one item per source, batch-compatible with plain sssp
    if request.target is not None:
        raise ValidationError("apsp slices do not take a target")
    net, stimuli, sim_kwargs, batch_key, plans = _sssp_items(
        graph, request, list(request.sources)
    )

    def decode_apsp(results: List[SimulationResult]) -> Dict[str, Any]:
        rows = [sssp_decode(p, r) for p, r in zip(plans, results)]
        matrix = np.stack([r.dist for r in rows])
        cost = CostReport(
            algorithm="apsp_slice",
            simulated_ticks=sum(r.cost.simulated_ticks for r in rows),
            loading_ticks=graph.m,  # the resident graph loads once
            neuron_count=rows[0].cost.neuron_count,
            synapse_count=rows[0].cost.synapse_count,
            spike_count=sum(r.cost.spike_count for r in rows),
            extras={"sources": float(len(rows))},
        )
        return {"matrix": matrix, "cost": cost}

    return RequestPlan(
        batch_key=batch_key,
        network=net,
        stimuli=stimuli,
        faults=[request.faults] * len(stimuli),
        sim_kwargs=sim_kwargs,
        decode=decode_apsp,
    )


def execute_solo(plan: RequestPlan) -> Dict[str, Any]:
    """Run a plan one simulation per item — the naive, uncoalesced path.

    This is the reference the differential tests and the load generator's
    baseline use: per-item :func:`~repro.core.run.simulate` calls with the
    plan's exact arguments, then the plan's own decoder.
    """
    results = [
        simulate(plan.network, stim, faults=f, **plan.sim_kwargs)
        for stim, f in zip(plan.stimuli, plan.faults)
    ]
    decoded = plan.decode(results)
    decoded["sims"] = results
    return decoded
