"""Closed-loop load generator and serving benchmark.

:func:`run_loadgen` drives a mixed SSSP / k-hop / all-pairs-slice workload
through a :class:`~repro.service.server.QueryServer` with a pool of
closed-loop client threads (each submits, blocks for the answer, submits
the next; an optional ``rate`` switches to open-loop pacing against a
precomputed arrival schedule), then replays the *same* requests through
the naive one-request-one-simulation loop
(:func:`~repro.service.adapters.execute_solo`) and reports both sides:
throughput, p50/p99 latency, mean micro-batch occupancy, coalesced batch
count, and the speedup.  Every served answer is checked for exact equality
(distances, matrices, outputs, cost totals, spike counts) against its
naive twin — a throughput number from a server returning different answers
would be meaningless.

The workload is deterministic in ``seed``: same seed, same graphs, same
request sequence.  The benchmark server runs with its result cache
disabled so the comparison isolates coalescing; enable it separately to
measure cache effects.

The report is the ``BENCH_serving.json`` artifact
(schema ``repro.serving.bench/v1``) emitted by ``repro loadgen``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServiceOverloadedError, ValidationError
from repro.service.adapters import execute_solo, plan_request
from repro.service.schema import QueryRequest, QueryResult, fault_from_spec
from repro.service.server import QueryServer
from repro.workloads.graph import WeightedDigraph

__all__ = ["generate_requests", "run_loadgen", "results_equal", "DEFAULT_MIX"]

BENCH_SCHEMA = "repro.serving.bench/v1"

#: Default query mix (relative weights; apsp slices are intentionally rare
#: because each one occupies several batch items).
DEFAULT_MIX: Dict[str, float] = {"sssp": 0.6, "khop": 0.3, "apsp": 0.1}


def generate_requests(
    graphs: Mapping[str, WeightedDigraph],
    n_requests: int,
    *,
    seed: int = 0,
    mix: Optional[Mapping[str, float]] = None,
    fault_spec: Optional[Mapping[str, object]] = None,
    deadline_s: Optional[float] = None,
) -> List[QueryRequest]:
    """A deterministic mixed workload over the registered graphs.

    Sources (and k values, and apsp slice sizes) are drawn from a seeded
    generator, so two calls with the same arguments produce the same query
    sequence — the property the served-vs-naive comparison relies on.
    """
    if not graphs:
        raise ValidationError("loadgen requires at least one registered graph")
    mix = dict(mix or DEFAULT_MIX)
    unknown = set(mix) - {"sssp", "khop", "apsp"}
    if unknown:
        raise ValidationError(f"unknown mix kinds: {sorted(unknown)}")
    kinds = sorted(k for k, w in mix.items() if w > 0)
    if not kinds:
        raise ValidationError("query mix has no positive weights")
    weights = np.array([mix[k] for k in kinds], dtype=float)
    weights /= weights.sum()

    rng = np.random.default_rng(seed)
    ids = sorted(graphs)
    requests: List[QueryRequest] = []
    for _ in range(n_requests):
        gid = ids[int(rng.integers(len(ids)))]
        g = graphs[gid]
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        faults = fault_from_spec(fault_spec) if fault_spec else None
        if kind == "sssp":
            req = QueryRequest(
                kind="sssp",
                graph_id=gid,
                source=int(rng.integers(g.n)),
                faults=faults,
                deadline_s=deadline_s,
            )
        elif kind == "khop":
            # k comes from a small tier set: the hop bound is part of the
            # batch key, so a workload with arbitrary k never coalesces its
            # khop queries — tiered bounds model real services and batch well
            k = int(rng.choice([4, 8, 16]))
            req = QueryRequest(
                kind="khop",
                graph_id=gid,
                source=int(rng.integers(g.n)),
                k=max(1, min(k, g.n - 1)),
                faults=faults,
                deadline_s=deadline_s,
            )
        else:
            width = int(rng.integers(2, max(3, min(6, g.n) + 1)))
            sources = tuple(
                int(s) for s in rng.choice(g.n, size=min(width, g.n), replace=False)
            )
            req = QueryRequest(
                kind="apsp",
                graph_id=gid,
                sources=sources,
                faults=faults,
                deadline_s=deadline_s,
            )
        requests.append(req)
    return requests


def results_equal(served: QueryResult, naive: Dict[str, Any]) -> bool:
    """Exact equality of a served answer and its solo-run twin.

    Arrays compare element-wise (``inf`` positions included), circuit
    outputs compare as dicts, and the cost report must agree on total time
    and spike count — the quantities a coalesced run could plausibly
    corrupt.  Raw per-item engine results compare on first-spike vectors
    and spike counts, i.e. the full raster at first-spike resolution.
    """
    if not served.ok:
        return False
    if served.dist is not None and not np.array_equal(served.dist, naive.get("dist")):
        return False
    if served.matrix is not None and not np.array_equal(
        served.matrix, naive.get("matrix")
    ):
        return False
    if served.outputs is not None and served.outputs != naive.get("outputs"):
        return False
    c0, c1 = served.cost, naive.get("cost")
    if (c0 is None) != (c1 is None):
        return False
    if c0 is not None and (
        c0.total_time != c1.total_time or c0.spike_count != c1.spike_count
    ):
        return False
    sims0, sims1 = served.sims, naive.get("sims")
    if sims0 is not None and sims1 is not None:
        if len(sims0) != len(sims1):
            return False
        for r0, r1 in zip(sims0, sims1):
            if (
                r0.final_tick != r1.final_tick
                or r0.stop_reason is not r1.stop_reason
                or not np.array_equal(r0.first_spike, r1.first_spike)
                or not np.array_equal(r0.spike_counts, r1.spike_counts)
            ):
                return False
    return True


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return float(ordered[idx])


def _drive_clients(
    server: QueryServer,
    requests: List[QueryRequest],
    *,
    clients: int,
    depth: int,
    rate: Optional[float],
    max_retries: int,
) -> Tuple[List[Optional[QueryResult]], List[float], int, float]:
    """Run the serving side; returns (results, latencies, retries, wall).

    Each client thread keeps up to ``depth`` requests outstanding (an
    async client pipelining over one connection), so total in-flight work
    is ``clients * depth`` without paying for that many OS threads.
    """
    results: List[Optional[QueryResult]] = [None] * len(requests)
    latencies: List[float] = [0.0] * len(requests)
    retries = [0]
    cursor = [0]
    lock = threading.Lock()
    t_start = time.monotonic()
    # open-loop pacing: request i may not be submitted before schedule[i]
    schedule = None if rate is None else [t_start + i / rate for i in range(len(requests))]

    def submit_one(i: int):
        if schedule is not None:
            delay = schedule[i] - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        t0 = time.monotonic()
        attempt = 0
        while True:
            try:
                return server.submit(requests[i]), t0
            except ServiceOverloadedError as exc:
                attempt += 1
                with lock:
                    retries[0] += 1
                if attempt > max_retries:
                    raise
                time.sleep(max(exc.retry_after_s, 0.001))

    def client() -> None:
        window: List[Tuple[int, Any, float]] = []  # (index, ticket, t_submit)
        while True:
            while len(window) < depth:
                with lock:
                    i = cursor[0]
                    if i >= len(requests):
                        break
                    cursor[0] += 1
                window.append((i, *submit_one(i)))
            if not window:
                return
            i, ticket, t0 = window.pop(0)
            results[i] = ticket.result(timeout=120.0)
            latencies[i] = time.monotonic() - t0

    threads = [
        threading.Thread(target=client, name=f"loadgen-client-{c}", daemon=True)
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, latencies, retries[0], time.monotonic() - t_start


def run_loadgen(
    graphs: Mapping[str, WeightedDigraph],
    *,
    n_requests: int = 200,
    clients: int = 8,
    depth: int = 32,
    workers: int = 1,
    max_batch: int = 64,
    linger_s: float = 0.02,
    queue_limit: int = 1024,
    rate: Optional[float] = None,
    seed: int = 0,
    mix: Optional[Mapping[str, float]] = None,
    fault_spec: Optional[Mapping[str, object]] = None,
    deadline_s: Optional[float] = None,
    max_retries: int = 50,
    verify: bool = True,
    skip_naive: bool = False,
) -> Dict[str, object]:
    """Benchmark coalesced serving against the naive sequential loop.

    Returns the ``repro.serving.bench/v1`` report.  ``skip_naive`` omits
    the baseline (and the speedup) for quick smoke runs; ``verify=False``
    skips the per-request equality check (it re-simulates every request
    solo, so it is exactly as expensive as the baseline).

    The defaults are tuned for throughput on a single hot workload:
    ``clients * depth`` (256) requests in flight keeps batches near
    ``max_batch``, and a **single** worker, counter-intuitively, beats two
    here — a second worker splits a hot batch key's queue into half-size
    batches, lowering occupancy and with it the amortization win.
    """
    if clients < 1:
        raise ValidationError(f"clients must be >= 1, got {clients}")
    if depth < 1:
        raise ValidationError(f"depth must be >= 1, got {depth}")
    requests = generate_requests(
        graphs,
        n_requests,
        seed=seed,
        mix=mix,
        fault_spec=fault_spec,
        deadline_s=deadline_s,
    )

    server = QueryServer(
        workers=workers,
        max_batch=max_batch,
        linger_s=linger_s,
        queue_limit=queue_limit,
        result_cache_size=0,  # isolate coalescing; no answers from cache
    )
    for gid, g in graphs.items():
        server.register_graph(gid, g)
    with server:
        results, latencies, retries, serve_wall = _drive_clients(
            server,
            requests,
            clients=clients,
            depth=depth,
            rate=rate,
            max_retries=max_retries,
        )
    stats = server.stats()
    metrics = stats["metrics"]
    batch_hist = metrics["histograms"].get("service.batch.items", {})

    statuses = [r.status.value for r in results if r is not None]
    n_ok = sum(1 for r in results if r is not None and r.ok)
    n_err = len(requests) - n_ok

    # Per-query-kind latency/error breakdown: a mixed workload's aggregate
    # p99 hides which kind is slow or failing.
    per_kind: Dict[str, Dict[str, object]] = {}
    for kind in sorted({req.kind for req in requests}):
        idx = [i for i, req in enumerate(requests) if req.kind == kind]
        lats = [latencies[i] for i in idx if results[i] is not None]
        kind_ok = sum(1 for i in idx if results[i] is not None and results[i].ok)
        error_codes: Dict[str, int] = {}
        for i in idx:
            r = results[i]
            if r is None or r.ok:
                continue
            code = r.error_code or "UNKNOWN"
            error_codes[code] = error_codes.get(code, 0) + 1
        per_kind[kind] = {
            "requests": len(idx),
            "ok": kind_ok,
            "errors": len(idx) - kind_ok,
            "error_codes": error_codes,
            "latency_p50_s": round(_percentile(lats, 0.50), 6),
            "latency_p99_s": round(_percentile(lats, 0.99), 6),
        }

    mismatches = 0
    naive_report: Optional[Dict[str, object]] = None
    speedup: Optional[float] = None
    if not skip_naive or verify:
        # one plan+solo execution per request — the baseline and the oracle
        naive_lat: List[float] = []
        t0 = time.monotonic()
        solo_answers: List[Dict[str, Any]] = []
        graphs_d = dict(graphs)
        for req in requests:
            t1 = time.monotonic()
            solo_answers.append(execute_solo(plan_request(req, graphs_d, {})))
            naive_lat.append(time.monotonic() - t1)
        naive_wall = time.monotonic() - t0
        if not skip_naive:
            naive_report = {
                "wall_s": round(naive_wall, 6),
                "throughput_rps": round(len(requests) / naive_wall, 3)
                if naive_wall > 0
                else None,
                "latency_p50_s": round(_percentile(naive_lat, 0.50), 6),
                "latency_p99_s": round(_percentile(naive_lat, 0.99), 6),
            }
            if naive_wall > 0 and serve_wall > 0:
                speedup = round(naive_wall / serve_wall, 3)
        if verify:
            for r, solo in zip(results, solo_answers):
                if r is None or not results_equal(r, solo):
                    mismatches += 1

    report: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "config": {
            "n_requests": len(requests),
            "clients": clients,
            "depth": depth,
            "workers": workers,
            "max_batch": max_batch,
            "linger_s": linger_s,
            "queue_limit": queue_limit,
            "rate_rps": rate,
            "seed": seed,
            "mix": dict(mix or DEFAULT_MIX),
            "fault_spec": dict(fault_spec) if fault_spec else None,
            "graphs": {gid: {"n": g.n, "m": g.m} for gid, g in sorted(graphs.items())},
        },
        "serving": {
            "wall_s": round(serve_wall, 6),
            "throughput_rps": round(len(requests) / serve_wall, 3)
            if serve_wall > 0
            else None,
            "latency_p50_s": round(_percentile(latencies, 0.50), 6),
            "latency_p99_s": round(_percentile(latencies, 0.99), 6),
            "batches": int(metrics["counters"].get("service.batches", 0)),
            "coalesced_batches": int(
                metrics["counters"].get("service.batches.coalesced", 0)
            ),
            "mean_batch_occupancy": round(float(batch_hist.get("mean", 0.0)), 3),
            "max_batch_occupancy": int(batch_hist.get("max", 0)),
            "ok": n_ok,
            "errors": n_err,
            "overload_retries": retries,
            "statuses": {s: statuses.count(s) for s in sorted(set(statuses))},
            "per_kind": per_kind,
        },
        "naive": naive_report,
        "speedup": speedup,
        "equality": {"checked": bool(verify), "mismatches": mismatches},
    }
    return report
