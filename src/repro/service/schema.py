"""Request/result schema of the graph-query serving layer.

A :class:`QueryRequest` names a *resident* graph or circuit (registered
with the server under a ``graph_id``) and one query against it; a
:class:`QueryResult` carries the decoded answer, the model-level
:class:`~repro.core.cost.CostReport`, the raw engine result(s), and serving
metadata (queue/service latency, the occupancy of the micro-batch the
request rode in, whether the answer came from the result cache).

Four query kinds are served:

``sssp``
    Section-3 single-source shortest paths (optionally single-target).
``khop``
    k-hop reachability on the unit-delay hop-metric network.
``apsp``
    An all-pairs *slice*: SSSP rows for an explicit list of sources,
    expanded into one batch item per source.
``circuit``
    One evaluation of a registered threshold-gate circuit.

Dynamic (mutable) graphs additionally accept five **mutation kinds** —
``add_node`` / ``remove_node`` / ``add_edge`` / ``remove_edge`` /
``reweight`` — that change the resident graph itself.  Mutations are
serialized per graph through the coalescing queue (writes on one graph
never interleave with each other), are never cached, retried, or hedged
(:attr:`QueryRequest.idempotent` is ``False``), and their results carry
the post-mutation :attr:`QueryResult.graph_version`.  Read results on a
dynamic graph carry the version their plan was pinned to.  The JSONL
op-stream front end (:mod:`repro.dynamic.stream`) spells these
``{"type": "ADD_EDGE", ...}``; :func:`repro.dynamic.stream.op_to_request`
maps op records onto this schema.

Validation is structural (field presence, ranges that do not need the
graph); graph-dependent checks (unknown resident, out-of-range source,
unknown input group) happen at plan time in :mod:`repro.service.adapters`,
which runs in the submitter's thread so they still raise synchronously
from :meth:`~repro.service.server.QueryServer.submit`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.cost import CostReport
from repro.core.result import SimulationResult
from repro.core.transient import FaultModel, SpikeDrop, SpuriousSpikes, WeightDrift, compose
from repro.core.watchdog import Watchdog
from repro.errors import ValidationError

__all__ = [
    "QueryRequest",
    "QueryResult",
    "QueryStatus",
    "QUERY_KINDS",
    "MUTATION_KINDS",
    "request_from_dict",
    "request_to_dict",
    "fault_from_spec",
]

QUERY_KINDS: Tuple[str, ...] = ("sssp", "khop", "apsp", "circuit")

#: Write kinds accepted only for graphs registered as *dynamic*
#: (:meth:`repro.service.server.QueryServer.register_dynamic_graph`).
MUTATION_KINDS: Tuple[str, ...] = (
    "add_node",
    "remove_node",
    "add_edge",
    "remove_edge",
    "reweight",
)

_ids = itertools.count(1)


def _next_request_id() -> str:
    return f"q{next(_ids):06d}"


class QueryStatus(enum.Enum):
    """Terminal state of one served request."""

    #: Executed (or answered from the result cache) successfully.
    OK = "ok"
    #: The per-request deadline expired before the query was dispatched.
    TIMEOUT = "timeout"
    #: Planning or execution raised; ``error`` carries the message.
    ERROR = "error"


@dataclass
class QueryRequest:
    """One graph-algorithm query against a registered graph or circuit.

    ``faults`` and ``watchdog`` are in-process objects (the JSONL front end
    builds ``faults`` from a plain spec via :func:`fault_from_spec`).  A
    request carrying a ``watchdog`` is still accepted but cannot ride the
    batched dense engine — the dispatcher groups it into a batch whose
    items run through the per-item watchdog fallback, preserving exact
    watchdog semantics at solo speed.  ``deadline_s`` is a wall-clock
    budget measured from admission; requests still queued when it expires
    are answered with :attr:`QueryStatus.TIMEOUT`.
    """

    kind: str
    graph_id: str
    source: Optional[int] = None
    target: Optional[int] = None
    k: Optional[int] = None
    sources: Optional[Tuple[int, ...]] = None
    inputs: Optional[Dict[str, int]] = None
    u: Optional[int] = None
    v: Optional[int] = None
    weight: Optional[int] = None
    use_gadgets: bool = False
    engine: str = "auto"
    record_spikes: bool = False
    faults: Optional[FaultModel] = None
    watchdog: Optional[Watchdog] = None
    deadline_s: Optional[float] = None
    request_id: str = field(default_factory=_next_request_id)

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS and self.kind not in MUTATION_KINDS:
            raise ValidationError(
                f"unknown query kind {self.kind!r}; expected one of "
                f"{QUERY_KINDS + MUTATION_KINDS}"
            )
        if self.engine not in ("auto", "dense", "event"):
            raise ValidationError(f"unknown engine {self.engine!r}")
        if self.kind in MUTATION_KINDS:
            self._validate_mutation()
            return
        if self.kind in ("sssp", "khop"):
            if self.source is None:
                raise ValidationError(f"{self.kind} query requires a source")
            self.source = int(self.source)
        if self.kind == "khop":
            if self.k is None or int(self.k) < 0:
                raise ValidationError("khop query requires k >= 0")
            self.k = int(self.k)
        if self.kind == "apsp":
            if not self.sources:
                raise ValidationError("apsp query requires a non-empty sources list")
            self.sources = tuple(int(s) for s in self.sources)
        if self.kind == "circuit":
            if self.inputs is None:
                raise ValidationError("circuit query requires an inputs mapping")
            self.inputs = {str(g): int(v) for g, v in self.inputs.items()}
        if self.target is not None:
            self.target = int(self.target)
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValidationError(f"deadline_s must be > 0, got {self.deadline_s}")

    def _validate_mutation(self) -> None:
        if self.faults is not None or self.watchdog is not None or self.record_spikes:
            raise ValidationError(
                f"{self.kind} is a mutation; faults/watchdog/record_spikes "
                "do not apply"
            )
        if self.kind in ("add_edge", "remove_edge", "reweight"):
            if self.u is None or self.v is None:
                raise ValidationError(f"{self.kind} requires endpoints u and v")
            self.u = int(self.u)
            self.v = int(self.v)
        if self.kind in ("add_edge", "reweight"):
            if self.weight is None or int(self.weight) <= 0:
                raise ValidationError(
                    f"{self.kind} requires a positive integer weight"
                )
            self.weight = int(self.weight)
        if self.kind == "remove_node":
            if self.u is None:
                raise ValidationError("remove_node requires u")
            self.u = int(self.u)
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValidationError(f"deadline_s must be > 0, got {self.deadline_s}")

    @property
    def idempotent(self) -> bool:
        """May this request be transparently resubmitted (retry, hedge, requeue)?

        Query kinds are pure reads over a resident graph or circuit, so
        re-executing them is always safe.  Mutation kinds are **not**
        idempotent (``add_node`` applied twice adds two nodes) and are
        never silently retried, hedged, or requeued after a worker crash —
        a crashed mutation is answered with an error instead.
        """
        return self.kind not in MUTATION_KINDS

    def cache_params(self) -> Optional[Tuple]:
        """Query-parameter component of the result-cache key, or ``None``.

        ``None`` marks the request uncacheable: it is a mutation (writes
        are executed exactly once, never answered from cache), it records
        spikes (large payloads the cache should not pin), carries a
        watchdog (stateful runs), or uses a fault model without a
        deterministic fingerprint.
        """
        if self.kind in MUTATION_KINDS:
            return None
        if self.record_spikes or self.watchdog is not None:
            return None
        fault_key: Optional[Tuple] = ()
        if self.faults is not None:
            fp = self.faults.fingerprint()
            if fp is None:
                return None
            fault_key = fp
        if self.kind == "circuit":
            params: Tuple = tuple(sorted(self.inputs.items()))
        elif self.kind == "apsp":
            params = self.sources
        else:
            params = (self.source, self.target, self.k, self.use_gadgets)
        return (self.kind, self.engine, params, fault_key)


@dataclass
class QueryResult:
    """Answer and serving metadata of one request.

    Exactly one of ``dist`` (sssp/khop), ``matrix`` (apsp), or ``outputs``
    (circuit) is populated on success.  ``sims`` holds the raw engine
    result per batch item of this request (one for sssp/khop/circuit, one
    per source for apsp) — the arrays a differential test compares against
    solo runs.  ``batch_size`` is the total occupancy of the micro-batch
    the request was dispatched in (1 when it ran alone); ``queued_s`` and
    ``service_s`` split the observed latency at dispatch time.  Treat
    results as frozen — cached entries are shared between callers.

    Failures are structured: ``error`` is the human-readable message,
    ``error_type`` the raising exception class name, and ``error_code`` a
    stable code from :func:`repro.errors.classify_exception` — the field
    retry policies branch on (:data:`~repro.errors.RETRYABLE_ERROR_CODES`
    membership), so clients never parse messages.  ``degraded`` marks an
    answer served through the overload degradation ladder (a stale cache
    entry or the approximate SSSP fallback) rather than the full
    simulation path; ``stale`` additionally marks a cache entry served
    past its TTL.
    """

    request_id: str
    kind: str
    status: QueryStatus
    dist: Optional[np.ndarray] = None
    matrix: Optional[np.ndarray] = None
    outputs: Optional[Dict[str, int]] = None
    cost: Optional[CostReport] = None
    sims: Optional[List[SimulationResult]] = None
    batch_size: int = 0
    queued_s: float = 0.0
    service_s: float = 0.0
    cached: bool = False
    degraded: bool = False
    stale: bool = False
    error: Optional[str] = None
    error_type: Optional[str] = None
    error_code: Optional[str] = None
    #: For requests against a dynamic graph: the graph version the answer
    #: corresponds to (reads: the version the plan was pinned to;
    #: mutations: the version the write produced).  ``None`` for static
    #: residents.
    graph_version: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status is QueryStatus.OK

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable rendering (the ``repro serve`` output lines)."""
        out: Dict[str, object] = {
            "request_id": self.request_id,
            "kind": self.kind,
            "status": self.status.value,
            "batch_size": self.batch_size,
            "queued_s": round(self.queued_s, 6),
            "service_s": round(self.service_s, 6),
            "cached": self.cached,
        }
        if self.degraded:
            out["degraded"] = True
        if self.stale:
            out["stale"] = True
        if self.error_type is not None:
            out["error_type"] = self.error_type
        if self.error_code is not None:
            out["error_code"] = self.error_code
        if self.dist is not None:
            out["dist"] = self.dist.tolist()
        if self.matrix is not None:
            out["matrix"] = self.matrix.tolist()
        if self.outputs is not None:
            out["outputs"] = dict(self.outputs)
        if self.graph_version is not None:
            out["graph_version"] = self.graph_version
        if self.cost is not None:
            out["cost"] = self.cost.to_dict()
        if self.error is not None:
            out["error"] = self.error
        return out


def fault_from_spec(spec: Mapping[str, object]) -> Optional[FaultModel]:
    """Build a (composed) fault model from a plain JSON-able spec.

    Recognized keys: ``drop_p``, ``spurious_rate``, ``drift_rate``, and a
    shared ``seed`` (default 0).  Returns ``None`` for an empty spec.
    """
    seed = int(spec.get("seed", 0))
    parts: List[FaultModel] = []
    if float(spec.get("drop_p", 0.0)):
        parts.append(SpikeDrop(float(spec["drop_p"]), seed=seed))
    if float(spec.get("spurious_rate", 0.0)):
        parts.append(SpuriousSpikes(float(spec["spurious_rate"]), seed=seed + 1))
    if float(spec.get("drift_rate", 0.0)):
        parts.append(WeightDrift(float(spec["drift_rate"]), seed=seed + 2))
    unknown = set(spec) - {"drop_p", "spurious_rate", "drift_rate", "seed"}
    if unknown:
        raise ValidationError(f"unknown fault spec keys: {sorted(unknown)}")
    if not parts:
        return None
    return compose(*parts)


def request_from_dict(doc: Mapping[str, object]) -> QueryRequest:
    """Parse one JSONL request document into a :class:`QueryRequest`."""
    known = {
        "kind", "graph_id", "source", "target", "k", "sources", "inputs",
        "u", "v", "weight",
        "use_gadgets", "engine", "record_spikes", "fault", "deadline_s",
        "request_id",
    }
    unknown = set(doc) - known
    if unknown:
        raise ValidationError(f"unknown request fields: {sorted(unknown)}")
    if "kind" not in doc or "graph_id" not in doc:
        raise ValidationError("request requires 'kind' and 'graph_id'")
    faults = None
    if doc.get("fault"):
        faults = fault_from_spec(doc["fault"])  # type: ignore[arg-type]
    kwargs = dict(
        kind=str(doc["kind"]),
        graph_id=str(doc["graph_id"]),
        source=doc.get("source"),
        target=doc.get("target"),
        k=doc.get("k"),
        sources=tuple(doc["sources"]) if doc.get("sources") else None,
        inputs=dict(doc["inputs"]) if doc.get("inputs") else None,
        u=doc.get("u"),
        v=doc.get("v"),
        weight=doc.get("weight"),
        use_gadgets=bool(doc.get("use_gadgets", False)),
        engine=str(doc.get("engine", "auto")),
        record_spikes=bool(doc.get("record_spikes", False)),
        faults=faults,
        deadline_s=doc.get("deadline_s"),
    )
    if doc.get("request_id"):
        kwargs["request_id"] = str(doc["request_id"])
    return QueryRequest(**kwargs)


def request_to_dict(
    request: QueryRequest, *, fault_spec: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """Render a request as the wire document :func:`request_from_dict` parses.

    The inverse for every JSON-able field.  ``faults`` and ``watchdog``
    are in-process objects with no canonical wire form, so a request
    carrying either is rejected unless the caller passes the original
    ``fault_spec`` it was built from (round-tripped as the ``fault``
    field); watchdogs never cross the wire.  Used by the socket load
    generator and the differential tests to replay in-process workloads
    against a :class:`~repro.service.net.server.NetServer`.
    """
    if request.watchdog is not None:
        raise ValidationError("watchdog-carrying requests have no wire form")
    if request.faults is not None and fault_spec is None:
        raise ValidationError(
            "request carries an in-process fault model; pass fault_spec to "
            "round-trip it over the wire"
        )
    doc: Dict[str, object] = {
        "kind": request.kind,
        "graph_id": request.graph_id,
        "request_id": request.request_id,
    }
    for name in ("source", "target", "k", "u", "v", "weight", "deadline_s"):
        value = getattr(request, name)
        if value is not None:
            doc[name] = value
    if request.sources is not None:
        doc["sources"] = list(request.sources)
    if request.inputs is not None:
        doc["inputs"] = dict(request.inputs)
    if request.use_gadgets:
        doc["use_gadgets"] = True
    if request.engine != "auto":
        doc["engine"] = request.engine
    if request.record_spikes:
        doc["record_spikes"] = True
    if fault_spec:
        doc["fault"] = dict(fault_spec)
    return doc
