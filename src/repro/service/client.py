"""In-process client facade over :class:`~repro.service.server.QueryServer`.

The client is a thin convenience layer: each method builds the matching
:class:`~repro.service.schema.QueryRequest` and either blocks for the
answer (``sssp``/``khop``/``apsp``/``circuit``) or returns the
:class:`~repro.service.server.QueryTicket` (the ``submit_*`` variants) so
callers can fan out many queries and collect results later — the pattern
that actually exercises coalescing.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.transient import FaultModel
from repro.core.watchdog import Watchdog
from repro.service.schema import QueryRequest, QueryResult
from repro.service.server import QueryServer, QueryTicket

__all__ = ["ServiceClient"]


class ServiceClient:
    """Typed request builders bound to one server."""

    def __init__(self, server: QueryServer, *, timeout: Optional[float] = None):
        self.server = server
        #: default blocking timeout for the synchronous methods
        self.timeout = timeout

    # -- asynchronous (ticket-returning) ------------------------------- #

    def submit_sssp(
        self,
        graph_id: str,
        source: int,
        *,
        target: Optional[int] = None,
        use_gadgets: bool = False,
        engine: str = "auto",
        record_spikes: bool = False,
        faults: Optional[FaultModel] = None,
        watchdog: Optional[Watchdog] = None,
        deadline_s: Optional[float] = None,
    ) -> QueryTicket:
        return self.server.submit(
            QueryRequest(
                kind="sssp",
                graph_id=graph_id,
                source=source,
                target=target,
                use_gadgets=use_gadgets,
                engine=engine,
                record_spikes=record_spikes,
                faults=faults,
                watchdog=watchdog,
                deadline_s=deadline_s,
            )
        )

    def submit_khop(
        self,
        graph_id: str,
        source: int,
        k: int,
        *,
        engine: str = "auto",
        record_spikes: bool = False,
        faults: Optional[FaultModel] = None,
        watchdog: Optional[Watchdog] = None,
        deadline_s: Optional[float] = None,
    ) -> QueryTicket:
        return self.server.submit(
            QueryRequest(
                kind="khop",
                graph_id=graph_id,
                source=source,
                k=k,
                engine=engine,
                record_spikes=record_spikes,
                faults=faults,
                watchdog=watchdog,
                deadline_s=deadline_s,
            )
        )

    def submit_apsp(
        self,
        graph_id: str,
        sources: Iterable[int],
        *,
        use_gadgets: bool = False,
        engine: str = "auto",
        faults: Optional[FaultModel] = None,
        deadline_s: Optional[float] = None,
    ) -> QueryTicket:
        return self.server.submit(
            QueryRequest(
                kind="apsp",
                graph_id=graph_id,
                sources=tuple(sources),
                use_gadgets=use_gadgets,
                engine=engine,
                faults=faults,
                deadline_s=deadline_s,
            )
        )

    def submit_circuit(
        self,
        circuit_id: str,
        inputs: Dict[str, int],
        *,
        faults: Optional[FaultModel] = None,
        deadline_s: Optional[float] = None,
    ) -> QueryTicket:
        return self.server.submit(
            QueryRequest(
                kind="circuit",
                graph_id=circuit_id,
                inputs=dict(inputs),
                faults=faults,
                deadline_s=deadline_s,
            )
        )

    # -- synchronous --------------------------------------------------- #

    def sssp(self, graph_id: str, source: int, **kw) -> QueryResult:
        return self.submit_sssp(graph_id, source, **kw).result(self.timeout)

    def khop(self, graph_id: str, source: int, k: int, **kw) -> QueryResult:
        return self.submit_khop(graph_id, source, k, **kw).result(self.timeout)

    def apsp(self, graph_id: str, sources: Iterable[int], **kw) -> QueryResult:
        return self.submit_apsp(graph_id, sources, **kw).result(self.timeout)

    def circuit(self, circuit_id: str, inputs: Dict[str, int], **kw) -> QueryResult:
        return self.submit_circuit(circuit_id, inputs, **kw).result(self.timeout)
