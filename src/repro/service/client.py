"""In-process client facade over :class:`~repro.service.server.QueryServer`.

The client is a thin convenience layer: each method builds the matching
:class:`~repro.service.schema.QueryRequest` and either blocks for the
answer (``sssp``/``khop``/``apsp``/``circuit``) or returns the
:class:`~repro.service.server.QueryTicket` (the ``submit_*`` variants) so
callers can fan out many queries and collect results later — the pattern
that actually exercises coalescing.

The synchronous methods are where the client-side half of the resilience
contract lives:

* With a :class:`~repro.service.retry.RetryPolicy`, transient failures are
  retried under jittered exponential backoff: synchronous rejections
  (:class:`~repro.errors.ServiceOverloadedError`,
  :class:`~repro.errors.CircuitOpenError` — both carrying a
  ``retry_after_s`` hint the backoff never undercuts) and ERROR/TIMEOUT
  results whose structured ``error_code`` the policy declares retryable.
  Only :attr:`~repro.service.schema.QueryRequest.idempotent` requests are
  ever resubmitted, and both an attempt cap and a wall-clock budget bound
  the loop.
* With ``hedge_after_s``, a synchronous call that has not completed within
  that delay submits one *hedge* duplicate (idempotent requests only) and
  returns whichever copy finishes first — the classic tail-latency
  mitigation: a request stuck behind a slow batch or a crashed worker is
  answered by its duplicate instead of waiting out recovery.  The loser is
  left to complete in the background (results are shared, not cancelled).

The ``submit_*`` ticket variants stay raw single-shot submissions; callers
who fan out manually own their own retry discipline.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, Optional

from repro.core.transient import FaultModel
from repro.core.watchdog import Watchdog
from repro.errors import CircuitOpenError, ServiceOverloadedError, classify_exception
from repro.service.retry import RetryPolicy
from repro.service.schema import QueryRequest, QueryResult, QueryStatus
from repro.service.server import QueryServer, QueryTicket

__all__ = ["ServiceClient"]

#: Polling period while racing a primary ticket against its hedge.
_HEDGE_POLL_S = 0.001


class ServiceClient:
    """Typed request builders bound to one server, with optional resilience.

    Parameters
    ----------
    server:
        The in-process :class:`~repro.service.server.QueryServer`.
    timeout:
        Default blocking timeout for the synchronous methods.
    retry:
        Optional :class:`~repro.service.retry.RetryPolicy` applied by the
        synchronous methods; ``None`` means single-shot.
    hedge_after_s:
        Optional hedging delay for the synchronous methods; ``None``
        disables hedging.
    sleep / clock:
        Injectable timing (deterministic tests patch these).
    """

    def __init__(
        self,
        server: QueryServer,
        *,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        hedge_after_s: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.server = server
        #: default blocking timeout for the synchronous methods
        self.timeout = timeout
        self.retry = retry
        self.hedge_after_s = hedge_after_s
        self._sleep = sleep
        self._clock = clock
        #: client-side resilience counters (monotonic over the client's life)
        self.stats: Dict[str, int] = {"attempts": 0, "retries": 0, "hedges": 0, "hedge_wins": 0}

    # -- asynchronous (ticket-returning) ------------------------------- #

    def submit_sssp(
        self,
        graph_id: str,
        source: int,
        *,
        target: Optional[int] = None,
        use_gadgets: bool = False,
        engine: str = "auto",
        record_spikes: bool = False,
        faults: Optional[FaultModel] = None,
        watchdog: Optional[Watchdog] = None,
        deadline_s: Optional[float] = None,
    ) -> QueryTicket:
        return self.server.submit(
            QueryRequest(
                kind="sssp",
                graph_id=graph_id,
                source=source,
                target=target,
                use_gadgets=use_gadgets,
                engine=engine,
                record_spikes=record_spikes,
                faults=faults,
                watchdog=watchdog,
                deadline_s=deadline_s,
            )
        )

    def submit_khop(
        self,
        graph_id: str,
        source: int,
        k: int,
        *,
        engine: str = "auto",
        record_spikes: bool = False,
        faults: Optional[FaultModel] = None,
        watchdog: Optional[Watchdog] = None,
        deadline_s: Optional[float] = None,
    ) -> QueryTicket:
        return self.server.submit(
            QueryRequest(
                kind="khop",
                graph_id=graph_id,
                source=source,
                k=k,
                engine=engine,
                record_spikes=record_spikes,
                faults=faults,
                watchdog=watchdog,
                deadline_s=deadline_s,
            )
        )

    def submit_apsp(
        self,
        graph_id: str,
        sources: Iterable[int],
        *,
        use_gadgets: bool = False,
        engine: str = "auto",
        faults: Optional[FaultModel] = None,
        deadline_s: Optional[float] = None,
    ) -> QueryTicket:
        return self.server.submit(
            QueryRequest(
                kind="apsp",
                graph_id=graph_id,
                sources=tuple(sources),
                use_gadgets=use_gadgets,
                engine=engine,
                faults=faults,
                deadline_s=deadline_s,
            )
        )

    def submit_circuit(
        self,
        circuit_id: str,
        inputs: Dict[str, int],
        *,
        faults: Optional[FaultModel] = None,
        deadline_s: Optional[float] = None,
    ) -> QueryTicket:
        return self.server.submit(
            QueryRequest(
                kind="circuit",
                graph_id=circuit_id,
                inputs=dict(inputs),
                faults=faults,
                deadline_s=deadline_s,
            )
        )

    # -- resilience core ----------------------------------------------- #

    def call(self, request: QueryRequest) -> QueryResult:
        """Serve ``request`` under this client's retry/hedging discipline.

        The terminal behavior mirrors single-shot serving: a permanent (or
        budget-exhausted) ERROR/TIMEOUT result is *returned* for the caller
        to inspect, while a rejection that never produced a result
        (overload/open breaker on the last attempt) is *raised*.
        """
        policy = self.retry
        t0 = self._clock()
        attempt = 0
        while True:
            attempt += 1
            self.stats["attempts"] += 1
            result: Optional[QueryResult] = None
            error_code: Optional[str] = None
            hint_s: Optional[float] = None
            rejection: Optional[BaseException] = None
            try:
                result = self._attempt(request)
            except (ServiceOverloadedError, CircuitOpenError) as exc:
                rejection = exc
                error_code, _retryable = classify_exception(exc)
                hint_s = exc.retry_after_s
            if result is not None:
                if result.status is QueryStatus.OK:
                    return result
                error_code = result.error_code or (
                    "TIMEOUT" if result.status is QueryStatus.TIMEOUT else "INTERNAL"
                )
            if policy is None or not policy.should_retry(
                attempt=attempt,
                elapsed_s=self._clock() - t0,
                error_code=error_code,
                idempotent=request.idempotent,
            ):
                if result is not None:
                    return result
                assert rejection is not None
                raise rejection
            self.stats["retries"] += 1
            self._sleep(policy.backoff_s(attempt, hint_s=hint_s))

    def _attempt(self, request: QueryRequest) -> QueryResult:
        """One submission, hedged with a duplicate when it runs long."""
        primary = self.server.submit(request)
        if self.hedge_after_s is None or not request.idempotent:
            return primary.result(self.timeout)
        try:
            return primary.result(self.hedge_after_s)
        except TimeoutError:
            pass
        self.stats["hedges"] += 1
        try:
            hedge = self.server.submit(request)
        except (ServiceOverloadedError, CircuitOpenError):
            # No capacity for a duplicate; fall back to waiting the primary.
            return primary.result(self.timeout)
        waited = self._clock()
        while True:
            if primary.done():
                return primary.result(0.0)
            if hedge.done():
                self.stats["hedge_wins"] += 1
                return hedge.result(0.0)
            if (
                self.timeout is not None
                and self._clock() - waited >= self.timeout
            ):
                raise TimeoutError(
                    f"request {request.request_id} (and its hedge) not completed "
                    f"in {self.timeout}s"
                )
            self._sleep(_HEDGE_POLL_S)

    # -- synchronous --------------------------------------------------- #

    def sssp(self, graph_id: str, source: int, **kw) -> QueryResult:
        return self.call(self._request("sssp", graph_id, source=source, **kw))

    def khop(self, graph_id: str, source: int, k: int, **kw) -> QueryResult:
        return self.call(self._request("khop", graph_id, source=source, k=k, **kw))

    def apsp(self, graph_id: str, sources: Iterable[int], **kw) -> QueryResult:
        return self.call(self._request("apsp", graph_id, sources=tuple(sources), **kw))

    def circuit(self, circuit_id: str, inputs: Dict[str, int], **kw) -> QueryResult:
        return self.call(self._request("circuit", circuit_id, inputs=dict(inputs), **kw))

    @staticmethod
    def _request(kind: str, graph_id: str, **kw) -> QueryRequest:
        return QueryRequest(kind=kind, graph_id=graph_id, **kw)
