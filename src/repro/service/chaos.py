"""Deterministic chaos harness for the serving plane.

:mod:`repro.core.transient` perturbs *simulations*; this module perturbs
the *server*: worker crashes mid-batch, slow batches, queue-pickup stalls,
and skewed latency clocks.  The same philosophy carries over — every
injection decision is a counter-based hash (splitmix64) of
``(seed, channel, batch sequence number)``, a pure function of *which*
batch is being dispatched, never of thread timing.  Replaying a scenario
with the same seed injects the same faults at the same batch sequence
numbers, which is what lets CI assert exact recovery properties
("batch #2 crashes its worker; zero tickets are lost; the supervisor
restarts exactly one worker").

:class:`ChaosPolicy` is consumed by
:class:`~repro.service.server.QueryServer` behind test hooks that are
no-ops when no policy is given.  :class:`InjectedWorkerCrash` derives from
``BaseException`` deliberately, mirroring ``KeyboardInterrupt``: the
dispatch path's ``except Exception`` rider-protection must *not* absorb an
injected crash — the whole point is to kill the worker loop and exercise
the supervisor.

:func:`run_chaos` replays a named scenario against a seeded workload and
reports losses (must be zero), supervisor counters, recovery time, and
tail latency under fault — the ``BENCH_chaos.json`` artifact written by
``repro chaos``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.transient import _uniform_hash
from repro.errors import ValidationError
from repro.service.adapters import execute_solo, plan_request
from repro.service.loadgen import _percentile, generate_requests, results_equal
from repro.service.schema import QueryResult
from repro.workloads.graph import WeightedDigraph

__all__ = ["ChaosPolicy", "InjectedWorkerCrash", "SCENARIOS", "run_chaos"]

BENCH_SCHEMA = "repro.chaos.bench/v1"

# Hash channels: one independent decision stream per fault type.
_CH_CRASH, _CH_SLOW, _CH_STALL, _CH_SKEW, _CH_KILL = 1, 2, 3, 4, 5


class InjectedWorkerCrash(BaseException):
    """A chaos-injected worker death (BaseException: bypasses rider guards)."""

    def __init__(self, batch_seq: int):
        super().__init__(f"chaos: injected worker crash on batch #{batch_seq}")
        self.batch_seq = int(batch_seq)


@dataclass(frozen=True)
class ChaosPolicy:
    """Counter-seeded fault injection plan for a :class:`QueryServer`.

    Explicit ``*_batches`` tuples name exact batch sequence numbers
    (1-based, in dispatch order across all workers) to fault; the ``*_p``
    probabilities additionally fault each batch independently via a
    counter-hash of ``(seed, channel, batch seq)``.  Both forms are pure
    functions of the batch sequence number, so a scenario replays
    identically regardless of thread scheduling.

    ``crash``: the worker thread dies after pulling the batch (tickets are
    in flight) and before dispatching it.  ``slow``: the batch's service
    time is inflated by ``slow_s`` (sleep inside dispatch) — the wedge
    detector's food.  ``stall``: the worker sleeps before acting on the
    pulled batch, inflating queue latency.  ``clock_skew_s``: per-batch
    additive skew (in ``[-amp, +amp]``) applied to the worker's latency
    timestamps only — results must survive a lying telemetry clock, but
    correctness-relevant decisions (deadlines, TTLs) keep the true clock.
    ``kill``: when the server runs a process pool, the worker *process*
    serving the batch is SIGKILLed mid-batch (see :meth:`kill_process`).
    """

    seed: int = 0
    crash_batches: Tuple[int, ...] = ()
    crash_p: float = 0.0
    slow_batches: Tuple[int, ...] = ()
    slow_p: float = 0.0
    slow_s: float = 0.05
    stall_batches: Tuple[int, ...] = ()
    stall_p: float = 0.0
    stall_s: float = 0.02
    clock_skew_s: float = 0.0
    kill_batches: Tuple[int, ...] = ()
    kill_p: float = 0.0

    def __post_init__(self) -> None:
        for name in ("crash_p", "slow_p", "stall_p", "kill_p"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ValidationError(f"{name} must be in [0, 1], got {v}")
        for name in ("slow_s", "stall_s", "clock_skew_s"):
            if getattr(self, name) < 0:
                raise ValidationError(f"{name} must be >= 0")

    # ------------------------------------------------------------------ #

    def _u(self, channel: int, seq: int) -> float:
        ids = np.array([seq], dtype=np.uint64)
        return float(_uniform_hash(self.seed ^ (channel * 0x9E3779B9), channel, ids)[0])

    def crash(self, seq: int) -> bool:
        """Does the worker pulling batch ``seq`` die mid-batch?"""
        if seq in self.crash_batches:
            return True
        return self.crash_p > 0.0 and self._u(_CH_CRASH, seq) < self.crash_p

    def slow_s_for(self, seq: int) -> float:
        """Extra service seconds injected into batch ``seq`` (0 = none)."""
        if seq in self.slow_batches:
            return self.slow_s
        if self.slow_p > 0.0 and self._u(_CH_SLOW, seq) < self.slow_p:
            return self.slow_s
        return 0.0

    def stall_s_for(self, seq: int) -> float:
        """Queue-pickup stall injected before batch ``seq`` is acted on."""
        if seq in self.stall_batches:
            return self.stall_s
        if self.stall_p > 0.0 and self._u(_CH_STALL, seq) < self.stall_p:
            return self.stall_s
        return 0.0

    def kill_process(self, seq: int) -> bool:
        """Is the worker *process* serving batch ``seq`` SIGKILLed mid-batch?

        Consumed by the dispatcher only when the server holds a process
        pool: the pool's next :meth:`execute` SIGKILLs its checked-out
        worker before shipping the batch, raising
        :class:`~repro.service.net.procpool.WorkerProcessDied` — the
        process-tier analogue of :meth:`crash`.
        """
        if seq in self.kill_batches:
            return True
        return self.kill_p > 0.0 and self._u(_CH_KILL, seq) < self.kill_p

    def skew_s(self, seq: int) -> float:
        """Telemetry-clock skew for batch ``seq``, in ``[-amp, +amp]``."""
        if self.clock_skew_s == 0.0:
            return 0.0
        return self.clock_skew_s * (2.0 * self._u(_CH_SKEW, seq) - 1.0)

    def any_active(self) -> bool:
        return bool(
            self.crash_batches
            or self.crash_p
            or self.slow_batches
            or self.slow_p
            or self.stall_batches
            or self.stall_p
            or self.clock_skew_s
            or self.kill_batches
            or self.kill_p
        )


# --------------------------------------------------------------------- #
# Named scenarios
# --------------------------------------------------------------------- #

#: Replayable scenarios: chaos policy + server shape.  ``worker-crash`` is
#: the CI acceptance scenario: batch #2 kills 1 of 4 workers mid-batch;
#: its tickets are re-enqueued and every request must still complete, with
#: exactly one supervisor restart and solo-identical answers.
SCENARIOS: Dict[str, Dict[str, Any]] = {
    "worker-crash": {
        "description": "kill 1 of 4 workers mid-batch (batch #2); zero losses",
        "workers": 4,
        "chaos": {"crash_batches": (2,)},
    },
    "crash-storm": {
        "description": "every batch crashes its worker with p=0.15",
        "workers": 4,
        "chaos": {"crash_p": 0.15},
    },
    "slow-batch": {
        "description": "30% of batches serve 50 ms slow (tail-latency fault)",
        "workers": 2,
        "chaos": {"slow_p": 0.3, "slow_s": 0.05},
    },
    "queue-stall": {
        "description": "30% of batch pickups stall 20 ms before dispatch",
        "workers": 2,
        "chaos": {"stall_p": 0.3, "stall_s": 0.02},
    },
    "wedged-worker": {
        "description": "one 300 ms batch against a 100 ms wedge timeout",
        "workers": 2,
        "chaos": {"slow_batches": (2,), "slow_s": 0.3},
        "server": {"wedge_timeout_s": 0.1},
    },
    "clock-skew": {
        "description": "±20 ms telemetry clock skew per batch",
        "workers": 2,
        "chaos": {"clock_skew_s": 0.02},
    },
    "worker-process-kill": {
        "description": "SIGKILL 1 of 2 worker processes mid-batch (batch #2); zero losses",
        "workers": 2,
        "processes": 2,
        "chaos": {"kill_batches": (2,)},
    },
}


def _default_graphs() -> Dict[str, WeightedDigraph]:
    from repro.workloads import gnp_graph, grid_graph

    return {
        "grid": grid_graph(8, 8, max_length=7, seed=2),
        "gnp": gnp_graph(64, 0.06, max_length=9, seed=1),
    }


def run_chaos(
    scenario: str = "worker-crash",
    *,
    graphs: Optional[Mapping[str, WeightedDigraph]] = None,
    n_requests: int = 64,
    seed: int = 0,
    workers: Optional[int] = None,
    max_batch: int = 4,
    linger_s: float = 0.005,
    verify: bool = True,
    result_timeout_s: float = 60.0,
) -> Dict[str, object]:
    """Replay ``scenario`` against a seeded workload; report recovery.

    Every submitted ticket is awaited with ``result_timeout_s``; a ticket
    that hangs counts as **lost**, and the loss count is the harness's
    primary assertion (it must be 0: supervision re-enqueues or
    error-completes every in-flight ticket of a dead worker, and
    ``stop()`` drains the rest).  With ``verify`` (default), every OK
    non-degraded answer is compared byte-for-byte against a solo run of
    the same query — recovery must not change a single spike.
    """
    from repro.service.server import QueryServer

    if scenario not in SCENARIOS:
        raise ValidationError(
            f"unknown chaos scenario {scenario!r}; expected one of {sorted(SCENARIOS)}"
        )
    spec = SCENARIOS[scenario]
    n_workers = int(workers if workers is not None else spec["workers"])
    policy = ChaosPolicy(seed=seed, **spec["chaos"])
    server_kw: Dict[str, Any] = dict(spec.get("server", {}))

    graphs = dict(graphs) if graphs else _default_graphs()
    requests = generate_requests(graphs, n_requests, seed=seed)

    # Scenarios with a "processes" count run the process-pool tier so the
    # kill channel has real worker processes to SIGKILL.
    n_processes = int(spec.get("processes", 0))
    pool = None
    if n_processes > 0:
        from repro.service.net.procpool import ProcessWorkerPool

        pool = ProcessWorkerPool(workers=n_processes)

    server = QueryServer(
        workers=n_workers,
        max_batch=max_batch,
        linger_s=linger_s,
        queue_limit=65536,  # the harness measures recovery, not backpressure
        result_cache_size=0,  # every answer simulates: the differential oracle
        chaos=policy,
        process_pool=pool,
        **server_kw,
    )
    for gid, g in graphs.items():
        server.register_graph(gid, g)

    t0 = time.monotonic()
    results: List[Optional[QueryResult]] = [None] * len(requests)
    lost = 0
    try:
        with server:
            tickets = [server.submit(req) for req in requests]
            for i, ticket in enumerate(tickets):
                try:
                    results[i] = ticket.result(result_timeout_s)
                except TimeoutError:
                    lost += 1
        wall_s = time.monotonic() - t0

        stats = server.stats()
        pool_stats = pool.stats() if pool is not None else None
    finally:
        if pool is not None:
            pool.close()
    sup = stats["supervisor"]
    latencies = [r.queued_s + r.service_s for r in results if r is not None]
    n_ok = sum(1 for r in results if r is not None and r.ok)
    n_degraded = sum(1 for r in results if r is not None and r.degraded)
    statuses: Dict[str, int] = {}
    for r in results:
        key = r.status.value if r is not None else "lost"
        statuses[key] = statuses.get(key, 0) + 1

    mismatches = 0
    if verify:
        graphs_d = dict(graphs)
        for req, r in zip(requests, results):
            if r is None or not r.ok or r.degraded:
                continue
            solo = execute_solo(plan_request(req, graphs_d, {}))
            if not results_equal(r, solo):
                mismatches += 1

    recoveries = _recovery_times(sup["incidents"])
    report: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "scenario": scenario,
        "description": spec["description"],
        "config": {
            "n_requests": len(requests),
            "workers": n_workers,
            "processes": n_processes,
            "max_batch": max_batch,
            "linger_s": linger_s,
            "seed": seed,
            "chaos": {k: list(v) if isinstance(v, tuple) else v for k, v in spec["chaos"].items()},
            "graphs": {gid: {"n": g.n, "m": g.m} for gid, g in sorted(graphs.items())},
        },
        "outcome": {
            "wall_s": round(wall_s, 6),
            "submitted": len(requests),
            "completed": len(requests) - lost,
            "lost": lost,
            "ok": n_ok,
            "degraded": n_degraded,
            "statuses": statuses,
            "latency_p50_s": round(_percentile(latencies, 0.50), 6),
            "latency_p99_s": round(_percentile(latencies, 0.99), 6),
        },
        "supervisor": {
            "crashes": sup["crashes"],
            "restarts": sup["restarts"],
            "wedged": sup["wedged"],
            "requeued": sup["requeued"],
            "recovery_mean_s": round(float(np.mean(recoveries)), 6) if recoveries else None,
            "recovery_max_s": round(max(recoveries), 6) if recoveries else None,
        },
        "equality": {"checked": bool(verify), "mismatches": mismatches},
    }
    if pool_stats is not None:
        report["process_pool"] = pool_stats
    return report


def _recovery_times(incidents: List[Dict[str, object]]) -> List[float]:
    """Crash/wedge -> matching restart latency, per worker slot."""
    down_at: Dict[int, float] = {}
    out: List[float] = []
    for ev in incidents:
        worker = int(ev["worker"])  # type: ignore[arg-type]
        t = float(ev["t"])  # type: ignore[arg-type]
        if ev["event"] in ("crash", "wedge"):
            down_at.setdefault(worker, t)
        elif ev["event"] == "restart" and worker in down_at:
            out.append(t - down_at.pop(worker))
    return out
