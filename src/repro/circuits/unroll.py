"""Unrolling recurrent SNNs into feed-forward threshold circuits.

Section 1: "SNNs where spike times are discretized may be simulated, with
polynomial overhead, in TC by using layers of a threshold gate circuit to
simulate discrete time steps."  This module performs that construction for
*memoryless* networks (every neuron ``tau = 1``): gate ``(i, t)`` of the
unrolled circuit fires iff neuron ``i`` of the recurrent network fires at
tick ``t``, with synapses of delay ``d`` becoming wires from layer
``t - d``.

The paper's caveat — "some care needs to be taken to ensure that LIF
dynamics are properly simulated" — is exactly the ``tau < 1`` case, where
a neuron's real-valued voltage would have to be carried between layers;
networks with integrator neurons are rejected with a pointer to this note.
One-shot neurons are likewise stateful and rejected.

Size of the unrolled circuit: ``n * (T + 1)`` gates for horizon ``T`` — the
polynomial overhead the paper mentions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.builder import CircuitBuilder, Signal
from repro.core.network import Network
from repro.errors import CircuitError

__all__ = ["UnrolledCircuit", "unroll_to_feedforward"]


class UnrolledCircuit:
    """A feed-forward circuit computing ``T`` ticks of a recurrent SNN.

    ``signal_of(i, t)`` returns the gate standing for "neuron ``i`` fires
    at tick ``t``" (``None`` when that event is structurally impossible —
    no stimulus and no in-wires reach it).
    """

    def __init__(self, builder: CircuitBuilder, signals, horizon: int, n: int):
        self.builder = builder
        self._signals: Dict[Tuple[int, int], Signal] = signals
        self.horizon = horizon
        self.n = n

    def signal_of(self, neuron: int, tick: int) -> Optional[Signal]:
        return self._signals.get((neuron, tick))

    @property
    def gate_count(self) -> int:
        return self.builder.size

    def run(self, stimulated: Sequence[int]) -> Dict[Tuple[int, int], bool]:
        """Execute the unrolled circuit; returns the fired map.

        ``stimulated`` selects which of the recurrent network's stimulus
        neurons actually receive the tick-0 spike (a subset of the
        ``stimulus`` the circuit was unrolled for).
        """
        from repro.circuits.runner import run_circuit

        stim_set = set(int(s) for s in stimulated)
        unknown = stim_set - {
            i for (i, t) in self._signals if t == 0
        }
        if unknown:
            raise CircuitError(f"neurons {sorted(unknown)} were not unrolled as inputs")
        inputs = {}
        for (i, t), sig in self._signals.items():
            if t == 0:
                inputs[f"stim{i}"] = 1 if i in stim_set else 0
        outs = run_circuit(self.builder, inputs)
        fired: Dict[Tuple[int, int], bool] = {}
        for (i, t), _sig in self._signals.items():
            fired[(i, t)] = bool(outs[f"n{i}@{t}"])
        return fired


def unroll_to_feedforward(
    network: Network,
    stimulus: Sequence[int],
    horizon: int,
) -> UnrolledCircuit:
    """Build the layered threshold circuit simulating ``horizon`` ticks.

    ``stimulus`` lists the neurons that may be induced at tick 0 (they
    become circuit inputs; :meth:`UnrolledCircuit.run` chooses which fire).
    """
    net = network.compile()
    if bool(np.any(net.tau != 1.0)):
        raise CircuitError(
            "unrolling requires tau = 1 everywhere: integrator neurons carry "
            "real-valued voltage between ticks (the paper's 'care needs to "
            "be taken' case) and are out of scope for this construction"
        )
    if bool(net.one_shot.any()):
        raise CircuitError("one-shot neurons are stateful; unroll their gadget form")
    if horizon < 0:
        raise CircuitError(f"horizon must be >= 0, got {horizon}")

    builder = CircuitBuilder()
    signals: Dict[Tuple[int, int], Signal] = {}
    # layer 0: stimulus inputs
    for i in sorted(set(int(s) for s in stimulus)):
        (sig,) = builder.input_bits(f"stim{i}", 1)
        signals[(i, 0)] = sig
    # reverse wiring: for each neuron, its incoming synapses
    incoming: List[List[Tuple[int, float, int]]] = [[] for _ in range(net.n)]
    for u in range(net.n):
        sl = net.out_synapses(u)
        for s in range(sl.start, sl.stop):
            incoming[int(net.syn_dst[s])].append(
                (u, float(net.syn_weight[s]), int(net.syn_delay[s]))
            )
    for t in range(1, horizon + 1):
        for j in range(net.n):
            inputs = []
            for (u, w, d) in incoming[j]:
                src = signals.get((u, t - d))
                if src is not None:
                    inputs.append((src, w))
            if not inputs:
                continue  # structurally silent at tick t
            signals[(j, t)] = builder.gate(
                inputs,
                float(net.v_threshold[j]),
                name=f"n{j}@{t}",
                at_offset=t,
            )
    for (i, t), sig in signals.items():
        builder.output_bits(f"n{i}@{t}", [sig], aligned=False)
    return UnrolledCircuit(builder, signals, horizon, net.n)
