"""Max/min circuits over ``d`` ``lambda``-bit numbers (Section 5, Theorems 5.1–5.2).

Two designs, reproducing Table 2's tradeoff:

* **Brute force** (Theorem 5.2, Figure 5): all pairwise single-gate
  comparisons, a per-input "wins all comparisons" conjunction ``M_x`` with
  ties broken toward the smallest index, then value selection.  Constant
  depth, ``O(d^2 + d*lambda)`` neurons, exponential weights.
* **Wired-OR / bit-by-bit** (Theorem 5.1, Figure 3): numbers are
  deactivated most-significant-bit first whenever some still-active number
  has a 1 where they have a 0 — the Connection Machine global-OR method.
  Depth ``O(lambda)``, ``O(d*lambda)`` neurons, unit weights.

Min variants run the same circuits on bitwise-complemented values
(the paper: "negate each input bit ... to compute the minimum").

The ``masked_*`` variants take a per-input *valid* wire and ignore invalid
inputs; they are what the Section 4 algorithm compilers instantiate at graph
nodes, where "no message on this in-edge" must not influence the min/max
(an SNN's all-zeros message is the absence of spikes, Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.circuits.builder import CircuitBuilder, Signal
from repro.circuits.comparators import comparator_geq, comparator_gt
from repro.errors import CircuitError

__all__ = [
    "MaxResult",
    "brute_force_max",
    "brute_force_min",
    "wired_or_max",
    "wired_or_min",
    "masked_max",
    "masked_min",
]


@dataclass(frozen=True)
class MaxResult:
    """Output of a max/min circuit.

    ``out_bits`` carry the extreme value (LSB first, common offset).
    ``winners`` (when provided by the design) has one signal per input that
    fires iff that input attains the extreme value — the brute-force design
    marks exactly one winner (smallest index), the wired-OR design marks
    every tied input, matching the two figures.  ``valid`` is set by the
    masked variants: it fires iff at least one input was valid.
    """

    out_bits: List[Signal]
    winners: Optional[List[Signal]] = None
    valid: Optional[Signal] = None


def _check_inputs(inputs: Sequence[Sequence[Signal]]) -> int:
    if not inputs:
        raise CircuitError("max circuit requires at least one input number")
    width = len(inputs[0])
    if width == 0 or any(len(b) != width for b in inputs):
        raise CircuitError("all inputs must share one positive bit width")
    return width


def brute_force_max(
    builder: CircuitBuilder,
    inputs: Sequence[Sequence[Signal]],
    name: str = "bfmax",
    *,
    largest: bool = True,
) -> MaxResult:
    """Constant-depth max (Theorem 5.2).  ``largest=False`` computes min.

    Input ``x`` beats ``y`` iff ``x >= y`` when ``x`` has the smaller index
    and strictly otherwise, so exactly one winner fires even under ties.
    """
    width = _check_inputs(inputs)
    d = len(inputs)
    aligned = [builder.align(list(bits), name=f"{name}.in") for bits in inputs]
    if d == 1:
        # a single input always wins; its winner flag is the run line
        outs = [builder.buffer(b, name=f"{name}.out") for b in aligned[0]]
        run = builder.run_line()
        winners = [builder.buffer(run, to_offset=outs[0].offset, name=f"{name}.win")]
        return MaxResult(out_bits=outs, winners=winners)
    # Layer 1: all ordered pairwise comparisons.
    comp = {}
    for x in range(d):
        for y in range(d):
            if x == y:
                continue
            if largest:
                a, b = aligned[x], aligned[y]
            else:
                a, b = aligned[y], aligned[x]
            if x < y:
                comp[(x, y)] = comparator_geq(builder, a, b, name=f"{name}.C{x},{y}")
            else:
                comp[(x, y)] = comparator_gt(builder, a, b, name=f"{name}.C{x},{y}")
    # Layer 2: M_x fires iff input x wins all its d-1 comparisons.
    winners = [
        builder.and_gate([comp[(x, y)] for y in range(d) if y != x], name=f"{name}.M{x}")
        for x in range(d)
    ]
    # Layers 3-4: select the winner's bits onto the output.
    selected = [
        [builder.and_gate([winners[x], bit], name=f"{name}.sel{x}") for bit in aligned[x]]
        for x in range(d)
    ]
    out_bits = [
        builder.or_gate([selected[x][j] for x in range(d)], name=f"{name}.out{j}")
        for j in range(width)
    ]
    return MaxResult(out_bits=out_bits, winners=winners)


def brute_force_min(
    builder: CircuitBuilder,
    inputs: Sequence[Sequence[Signal]],
    name: str = "bfmin",
) -> MaxResult:
    """Constant-depth min: brute force with reversed comparisons."""
    return brute_force_max(builder, inputs, name=name, largest=False)


def wired_or_max(
    builder: CircuitBuilder,
    inputs: Sequence[Sequence[Signal]],
    name: str = "womax",
) -> MaxResult:
    """Bit-by-bit max (Theorem 5.1, Figure 3).

    Processes bits most-significant first.  At each bit ``j`` a number is
    *guaranteed active* (``V``) if it is still active and has a 1 there; if
    any number is guaranteed active (global ``OR``), every active number
    with a 0 is knocked out (``I``).  After the last bit, the surviving
    ``a`` flags mark (possibly tied) maxima, whose bits are merged onto the
    output.
    """
    width = _check_inputs(inputs)
    d = len(inputs)
    aligned = [builder.align(list(bits), name=f"{name}.in") for bits in inputs]
    run = builder.run_line()
    # active[i] = a_{i, j+1}; initially everything is active (run line).
    active: List[Signal] = [run for _ in range(d)]
    for j in reversed(range(width)):  # MSB (width-1) down to LSB (0)
        guaranteed = [
            builder.and_gate([active[i], aligned[i][j]], name=f"{name}.V{i},{j}")
            for i in range(d)
        ]
        any_active = builder.or_gate(guaranteed, name=f"{name}.OR{j}")
        knocked = [
            builder.gate(
                [(any_active, 1.0), (guaranteed[i], -1.0)],
                0.5,
                name=f"{name}.I{i},{j}",
            )
            for i in range(d)
        ]
        active = [
            builder.gate(
                [(active[i], 1.0), (knocked[i], -1.0)],
                0.5,
                name=f"{name}.a{i},{j}",
                at_offset=knocked[i].offset + 1,
            )
            for i in range(d)
        ]
    # Filter (Figure 3C) and merge (Figure 3D).
    selected = [
        [builder.and_gate([active[i], aligned[i][j]], name=f"{name}.c{i},{j}") for j in range(width)]
        for i in range(d)
    ]
    out_bits = [
        builder.or_gate([selected[i][j] for i in range(d)], name=f"{name}.out{j}")
        for j in range(width)
    ]
    return MaxResult(out_bits=out_bits, winners=active)


def wired_or_min(
    builder: CircuitBuilder,
    inputs: Sequence[Sequence[Signal]],
    name: str = "womin",
) -> MaxResult:
    """Bit-by-bit min: wired-OR max over complemented bits (Theorem 5.1)."""
    width = _check_inputs(inputs)
    complemented = [
        [builder.not_gate(b, name=f"{name}.nb") for b in bits] for bits in inputs
    ]
    inner = wired_or_max(builder, complemented, name=f"{name}.max")
    out_bits = [builder.not_gate(b, name=f"{name}.out") for b in inner.out_bits]
    return MaxResult(out_bits=out_bits, winners=inner.winners)


def masked_max(
    builder: CircuitBuilder,
    inputs: Sequence[Sequence[Signal]],
    valids: Sequence[Signal],
    name: str = "mmax",
    *,
    style: str = "wired",
) -> MaxResult:
    """Max over the *valid* inputs; invalid inputs are forced to zero.

    The output ``valid`` wire fires iff any input was valid.  An all-zero
    valid value and "no valid inputs" both produce all-zero output bits —
    callers distinguish them via the valid wire, which is how the TTL
    algorithm of Section 4.1 detects whether any message arrived at all.
    """
    width = _check_inputs(inputs)
    if len(valids) != len(inputs):
        raise CircuitError("one valid wire per input required")
    gated = [
        [builder.and_gate([valids[i], b], name=f"{name}.g{i}") for b in bits]
        for i, bits in enumerate(inputs)
    ]
    inner = _dispatch(builder, gated, style, name)
    out_valid = builder.or_gate(list(valids), name=f"{name}.valid")
    out_bits, (out_valid,) = _coalign(builder, inner.out_bits, [out_valid], name)
    return MaxResult(out_bits=out_bits, winners=inner.winners, valid=out_valid)


def masked_min(
    builder: CircuitBuilder,
    inputs: Sequence[Sequence[Signal]],
    valids: Sequence[Signal],
    name: str = "mmin",
    *,
    style: str = "wired",
) -> MaxResult:
    """Min over the *valid* inputs.

    Works on valid-gated complements: an invalid input complements to zero
    and therefore never wins unless every valid value is the all-ones
    maximum — in which case the resulting output (all ones) is that correct
    minimum anyway.  Output bits are re-complemented gated by the output
    valid wire, so "no valid inputs" yields all-zero (silent) outputs.
    """
    width = _check_inputs(inputs)
    if len(valids) != len(inputs):
        raise CircuitError("one valid wire per input required")
    complemented = [
        [
            builder.gate([(valids[i], 1.0), (b, -1.0)], 0.5, name=f"{name}.cb{i}")
            for b in bits
        ]
        for i, bits in enumerate(inputs)
    ]
    inner = _dispatch(builder, complemented, style, name)
    out_valid = builder.or_gate(list(valids), name=f"{name}.valid")
    inner_bits, (out_valid,) = _coalign(builder, inner.out_bits, [out_valid], name)
    out_bits = [
        builder.gate([(out_valid, 1.0), (b, -1.0)], 0.5, name=f"{name}.out{j}")
        for j, b in enumerate(inner_bits)
    ]
    out_valid = builder.buffer(out_valid, to_offset=out_bits[0].offset, name=f"{name}.validout")
    return MaxResult(out_bits=out_bits, winners=inner.winners, valid=out_valid)


def _dispatch(
    builder: CircuitBuilder,
    inputs: Sequence[Sequence[Signal]],
    style: str,
    name: str,
) -> MaxResult:
    if style == "wired":
        return wired_or_max(builder, inputs, name=f"{name}.inner")
    if style == "brute":
        return brute_force_max(builder, inputs, name=f"{name}.inner")
    raise CircuitError(f"unknown max-circuit style {style!r}; use 'wired' or 'brute'")


def _coalign(
    builder: CircuitBuilder,
    bits: Sequence[Signal],
    extra: Sequence[Signal],
    name: str,
):
    """Align a bit vector and auxiliary wires to one common offset."""
    allsigs = builder.align(list(bits) + list(extra), name=f"{name}.co")
    return allsigs[: len(bits)], allsigs[len(bits) :]
