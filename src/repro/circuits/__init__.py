"""Neuromorphic circuit library (paper Section 5 and Figure 1).

Circuits are feed-forward networks of memoryless threshold gates — LIF
neurons with decay ``tau = 1`` — assembled with :class:`CircuitBuilder`,
which tracks at which tick-offset each signal is available and programs
synaptic delays so that all inputs of a gate arrive simultaneously (the
paper's "using delays and dummy neurons, feed-forward circuits of threshold
gates run in time proportional to depth").

Because every gate resets each tick, circuits are *pipelined*: independent
input waves presented on consecutive ticks flow through without interfering,
which is exactly the property the k-hop algorithms rely on when spike
messages arrive at a node at many different times.

Contents:

* :mod:`~repro.circuits.gates` — Figure 1 gadgets: simulated synaptic delay,
  latch memory, one-shot relay.
* :mod:`~repro.circuits.comparators` — Figure 5A threshold comparators.
* :mod:`~repro.circuits.max_circuits` — Theorem 5.1 wired-OR max
  (``O(d*lambda)`` neurons, ``O(lambda)`` depth) and Theorem 5.2 brute-force
  max (``O(d^2)`` neurons, constant depth), min variants, and the
  valid-gated variants used by the Section 4 algorithms.
* :mod:`~repro.circuits.adders` — Figure 4 carry-lookahead depth-2 adder
  (Ramos–Bohórquez style), ripple adder, add-constant, subtract-one.
* :mod:`~repro.circuits.encoding` — integer <-> spike-pattern codecs.
* :mod:`~repro.circuits.runner` — drive a built circuit through the LIF
  engine and decode its outputs.
* :mod:`~repro.circuits.tmr` — triple-modular-redundancy wrapping: replicate
  a circuit behind per-bit majority votes so faults confined to a minority
  of replicas are masked.
"""

from repro.circuits.builder import CircuitBuilder, Signal
from repro.circuits.encoding import bits_from_int, int_from_bits
from repro.circuits.runner import run_circuit
from repro.circuits.tmr import TMRCircuit, tmr
from repro.circuits.gates import (
    build_delay_gadget,
    build_latch,
    build_one_shot_gadget,
)
from repro.circuits.comparators import comparator_geq, comparator_gt
from repro.circuits.max_circuits import (
    brute_force_max,
    brute_force_min,
    masked_min,
    masked_max,
    wired_or_max,
    wired_or_min,
)
from repro.circuits.adders import (
    add_constant,
    carry_lookahead_adder,
    ripple_adder,
    siu_adder,
    subtract_one,
)

__all__ = [
    "CircuitBuilder",
    "Signal",
    "bits_from_int",
    "int_from_bits",
    "run_circuit",
    "tmr",
    "TMRCircuit",
    "build_delay_gadget",
    "build_latch",
    "build_one_shot_gadget",
    "comparator_geq",
    "comparator_gt",
    "brute_force_max",
    "brute_force_min",
    "wired_or_max",
    "wired_or_min",
    "masked_min",
    "masked_max",
    "add_constant",
    "carry_lookahead_adder",
    "siu_adder",
    "ripple_adder",
    "subtract_one",
]
