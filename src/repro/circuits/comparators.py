"""Single-gate magnitude comparators (Figure 5A).

A comparison of two ``lambda``-bit numbers is one threshold gate whose
synaptic weights are the bits' place values: the gate sums
``sum_j 2^(j-1) * (x_j - y_j) = x - y`` and thresholds it.  The
greater-or-equal variant must also fire on ties (``x - y = 0``), which the
paper arranges with an always-1 ``Eq`` input; here the circuit run line
plays that role, keeping Eq. (2)'s strict comparison intact.

These gates use exponentially large weights (in ``lambda``), the tradeoff
Table 2 notes for the brute-force max circuit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.circuits.builder import CircuitBuilder, Signal
from repro.errors import CircuitError

__all__ = ["comparator_geq", "comparator_gt"]


def _weighted(bits: Sequence[Signal], sign: float) -> List[Tuple[Signal, float]]:
    return [(b, sign * float(1 << j)) for j, b in enumerate(bits)]


def comparator_geq(
    builder: CircuitBuilder,
    x_bits: Sequence[Signal],
    y_bits: Sequence[Signal],
    name: str = "geq",
) -> Signal:
    """One gate firing iff ``x >= y`` (LSB-first bit signals, equal widths)."""
    if len(x_bits) != len(y_bits):
        raise CircuitError("comparator operands must have equal widths")
    run = builder.run_line()
    inputs = _weighted(x_bits, +1.0) + _weighted(y_bits, -1.0) + [(run, 1.0)]
    # fires iff (x - y) + 1 > 0.5, i.e. x - y >= 0 for integers
    return builder.gate(inputs, 0.5, name)


def comparator_gt(
    builder: CircuitBuilder,
    x_bits: Sequence[Signal],
    y_bits: Sequence[Signal],
    name: str = "gt",
) -> Signal:
    """One gate firing iff ``x > y`` (no bias needed: x - y >= 1)."""
    if len(x_bits) != len(y_bits):
        raise CircuitError("comparator operands must have equal widths")
    inputs = _weighted(x_bits, +1.0) + _weighted(y_bits, -1.0)
    return builder.gate(inputs, 0.5, name)
