"""Figure 1 gadgets: simulated synaptic delay, latch memory, one-shot relay.

These are *recurrent* mini-networks (they use self-loops and integrator
neurons, unlike the ``tau = 1`` feed-forward gates of the rest of the
circuit library), built directly on a :class:`~repro.core.network.Network`.

* :func:`build_delay_gadget` — Figure 1A: architectures without native
  programmable delays can simulate an ``O(d)`` delay with two neurons and a
  feedback loop.
* :func:`build_latch` — Figure 1B: a self-looping neuron ``M`` fires
  indefinitely once set; a recall input ``C`` propagates its value to the
  output; an inhibitory ``C -> M`` link optionally clears it.
* :func:`build_one_shot_gadget` — relay + inhibiting latch realizing the
  "propagate only the first incoming spike" behavior of the Section 3
  algorithm; the engines' ``one_shot`` neuron flag is the abstracted form of
  this gadget (tested equivalent).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lif import threshold_for_count
from repro.core.network import Network
from repro.errors import ValidationError

__all__ = [
    "DelayGadget",
    "Latch",
    "OneShotGadget",
    "build_delay_gadget",
    "build_latch",
    "build_one_shot_gadget",
]


@dataclass(frozen=True)
class DelayGadget:
    """Handles of a Figure-1A delay gadget: feed ``entry``, read ``exit``."""

    entry: int
    exit: int
    delay: int


def build_delay_gadget(net: Network, d: int, name: str = "delay") -> DelayGadget:
    """Simulate a synaptic delay of ``d`` ticks using two neurons (Fig. 1A).

    The entry neuron firing at tick ``t`` produces exactly one spike at
    ``exit`` at tick ``t + d``.  The entry neuron's unit-delay self-loop
    makes it fire repeatedly; the second neuron integrates (no decay) and
    fires on the ``d``-th of those spikes (the figure's count of ``d - 1``
    reflects the paper's one-tick-later integration convention; see
    :mod:`repro.core.lif`), then shuts the generator down with a strong
    inhibitory link and absorbs the final in-flight spike with a
    self-inhibition.

    Requires ``d >= 2`` (a delay of 1 is the native minimum and needs no
    gadget).  The gadget is single-use per assertion of its input: internal
    residual voltage means a second wave should only be sent after a reset
    or through a fresh gadget — the paper uses it to realize the static edge
    delays of Section 3, which fire once.
    """
    if d < 2:
        raise ValidationError(f"delay gadget requires d >= 2, got {d}")
    big = float(d + 2)
    a = net.add_neuron(f"{name}.gen", v_threshold=0.5, tau=1.0)
    b = net.add_neuron(f"{name}.cnt", v_threshold=threshold_for_count(d), tau=0.0)
    net.add_synapse(a, a, weight=1.0, delay=1)  # feedback: keep firing
    net.add_synapse(a, b, weight=1.0, delay=1)  # counted spikes
    net.add_synapse(b, a, weight=-big, delay=1)  # stop the generator
    net.add_synapse(b, b, weight=-big, delay=1)  # absorb the final in-flight spike
    return DelayGadget(entry=a, exit=b, delay=d)


@dataclass(frozen=True)
class Latch:
    """Handles of a Figure-1B memory latch."""

    set_input: int
    memory: int
    recall: int
    output: int


def build_latch(net: Network, name: str = "latch", *, reset_on_recall: bool = False) -> Latch:
    """One-bit neuromorphic memory (Fig. 1B).

    Spiking ``set_input`` stores a 1: the memory neuron ``M`` latches via a
    unit self-loop and fires every tick thereafter.  Spiking ``recall``
    reads the bit: the output neuron fires (two ticks after the recall
    spike) iff ``M`` holds a 1.  With ``reset_on_recall`` the recall pulse
    also clears ``M`` through an inhibitory link, as the figure caption
    describes.
    """
    s = net.add_neuron(f"{name}.set", v_threshold=0.5, tau=1.0)
    m = net.add_neuron(f"{name}.M", v_threshold=0.5, tau=1.0)
    c = net.add_neuron(f"{name}.C", v_threshold=0.5, tau=1.0)
    o = net.add_neuron(f"{name}.out", v_threshold=threshold_for_count(2), tau=1.0)
    net.add_synapse(s, m, weight=1.0, delay=1)
    net.add_synapse(m, m, weight=1.0, delay=1)  # the latch
    net.add_synapse(m, o, weight=1.0, delay=1)
    net.add_synapse(c, o, weight=1.0, delay=1)
    if reset_on_recall:
        net.add_synapse(c, m, weight=-2.0, delay=1)
    return Latch(set_input=s, memory=m, recall=c, output=o)


@dataclass(frozen=True)
class OneShotGadget:
    """Handles of a one-shot relay: feed arbitrary spikes, relays the first."""

    relay: int
    latch: int


def build_one_shot_gadget(net: Network, name: str = "oneshot", *, inhibition: float = 1e6) -> OneShotGadget:
    """Relay that propagates (approximately) only its first input spike.

    The relay fires on any suprathreshold input; its first spike sets a
    latch which, from two ticks later, permanently inhibits the relay.
    Inputs arriving within that two-tick window may still be relayed — for
    the Section 3 algorithm this is harmless (later arrivals encode longer
    paths; first-spike times are unaffected), and the engines' ``one_shot``
    flag provides the idealized semantics when exactness is wanted.
    """
    r = net.add_neuron(f"{name}.relay", v_threshold=0.5, tau=1.0)
    latch = net.add_neuron(f"{name}.latch", v_threshold=0.5, tau=1.0)
    net.add_synapse(r, latch, weight=1.0, delay=1)
    net.add_synapse(latch, latch, weight=1.0, delay=1)
    net.add_synapse(latch, r, weight=-float(inhibition), delay=1)
    return OneShotGadget(relay=r, latch=latch)
