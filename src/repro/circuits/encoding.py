"""Integer <-> bit-pattern codecs for spike messages.

Messages in the paper are ``lambda``-bit binary numbers carried by
``lambda`` parallel synapses (one spike per 1-bit).  We fix LSB-first order
throughout the library.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import CircuitError

__all__ = ["bits_from_int", "int_from_bits", "bit_width_for"]


def bit_width_for(max_value: int) -> int:
    """Minimum ``lambda`` such that values ``0..max_value`` fit in ``lambda`` bits.

    Matches the paper's widths: ``ceil(log2 k)`` for TTLs up to ``k - 1``
    (at least 1 bit).
    """
    if max_value < 0:
        raise CircuitError(f"max_value must be >= 0, got {max_value}")
    return max(1, int(max_value).bit_length())


def bits_from_int(value: int, width: int) -> List[int]:
    """LSB-first bit list of ``value`` in ``width`` bits."""
    if value < 0:
        raise CircuitError(f"only nonnegative values encodable, got {value}")
    if value >= (1 << width):
        raise CircuitError(f"value {value} does not fit in {width} bits")
    return [(value >> j) & 1 for j in range(width)]


def int_from_bits(bits: Sequence[int]) -> int:
    """Integer from an LSB-first bit sequence (accepts bools/0-1 ints)."""
    out = 0
    for j, b in enumerate(bits):
        if b not in (0, 1, False, True):
            raise CircuitError(f"bit {j} is not boolean: {b!r}")
        out |= int(bool(b)) << j
    return out
