"""Drive a built circuit through the LIF engine and decode its outputs.

The driver stimulates each input group's 1-bits (and the run line, if the
circuit uses one) at tick 0, runs the dense engine for exactly the circuit
depth, and reads each output signal at its registered offset: the signal is
logically 1 iff its neuron spiked at that tick.

Multiple waves can be pipelined by passing ``waves`` > 1 and per-wave input
values; wave ``w`` is presented at tick ``w`` and read at ``offset + w``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union


from repro.circuits.builder import CircuitBuilder
from repro.circuits.encoding import bits_from_int, int_from_bits
from repro.core.engine import simulate_dense
from repro.core.transient import FaultModel
from repro.core.watchdog import Watchdog
from repro.errors import CircuitError
from repro.telemetry.hooks import EngineHooks
from repro.telemetry.metrics import counter_inc, timer

__all__ = ["run_circuit", "run_circuit_waves", "wave_stimulus", "wave_horizon", "decode_waves"]

InputValue = Union[int, Sequence[int]]


def _input_bits(builder: CircuitBuilder, group: str, value: InputValue) -> List[int]:
    sigs = builder.input_groups[group]
    if isinstance(value, int):
        return bits_from_int(value, len(sigs))
    bits = [int(bool(b)) for b in value]
    if len(bits) != len(sigs):
        raise CircuitError(
            f"group {group!r} expects {len(sigs)} bits, got {len(bits)}"
        )
    return bits


def run_circuit(
    builder: CircuitBuilder,
    inputs: Mapping[str, InputValue],
    *,
    faults: Optional[FaultModel] = None,
    watchdog: Optional[Watchdog] = None,
    hooks: Optional[EngineHooks] = None,
    verify: bool = False,
) -> Dict[str, int]:
    """Run one input wave; returns ``{output_group: integer value}``.

    ``faults`` / ``watchdog`` / ``hooks`` are forwarded to the engine — used
    by the degradation sweeps, the TMR fault-recovery demonstrations, and
    the telemetry trace recorder.  ``verify=True`` runs the
    :mod:`repro.staticcheck` linter over the compiled circuit first and
    raises :class:`~repro.errors.StaticCheckError` on any error-severity
    finding instead of simulating a structurally broken network.
    """
    return run_circuit_waves(
        builder, [inputs], faults=faults, watchdog=watchdog, hooks=hooks,
        verify=verify,
    )[0]


def run_circuit_waves(
    builder: CircuitBuilder,
    waves: Sequence[Mapping[str, InputValue]],
    *,
    faults: Optional[FaultModel] = None,
    watchdog: Optional[Watchdog] = None,
    hooks: Optional[EngineHooks] = None,
    verify: bool = False,
) -> List[Dict[str, int]]:
    """Run several pipelined waves, one presented per consecutive tick.

    Demonstrates the pipelining property of ``tau = 1`` circuits: results of
    wave ``w`` appear exactly ``depth`` ticks after its presentation,
    independent of the other in-flight waves.  See :func:`run_circuit` for
    ``verify``.
    """
    if verify:
        builder.lint().raise_if_errors()
    with timer("phase.simulate"):
        result = simulate_dense(
            builder.net,
            wave_stimulus(builder, waves),
            max_steps=wave_horizon(builder, len(waves)),
            stop_when_quiescent=False,
            record_spikes=True,
            faults=faults,
            watchdog=watchdog,
            hooks=hooks,
        )
    return decode_waves(builder, result, len(waves))


def wave_stimulus(
    builder: CircuitBuilder, waves: Sequence[Mapping[str, InputValue]]
) -> Dict[int, List[int]]:
    """Encode per-wave input values as an engine stimulus schedule.

    Wave ``w``'s 1-bits (and the run line, if the circuit uses one) are
    stimulated at tick ``w``.  Shared by :func:`run_circuit_waves` and the
    :mod:`repro.service` circuit adapter, so a served evaluation presents
    exactly the solo driver's stimulus.
    """
    unknown = {g for wave in waves for g in wave} - set(builder.input_groups)
    if unknown:
        raise CircuitError(f"unknown input groups: {sorted(unknown)}")
    with timer("phase.encode"):
        stimulus: Dict[int, List[int]] = {}
        for w, wave in enumerate(waves):
            tick_ids = stimulus.setdefault(w, [])
            if "__run__" in builder.input_groups:
                tick_ids.append(builder.input_groups["__run__"][0].nid)
            for group, value in wave.items():
                sigs = builder.input_groups[group]
                for sig, bit in zip(sigs, _input_bits(builder, group, value)):
                    if bit:
                        tick_ids.append(sig.nid)
    return stimulus


def wave_horizon(builder: CircuitBuilder, n_waves: int) -> int:
    """Tick budget covering every output offset of ``n_waves`` waves."""
    max_offset = max(
        (s.offset for grp in builder.output_groups.values() for s in grp),
        default=builder.depth,
    )
    return max_offset + n_waves + 1


def decode_waves(
    builder: CircuitBuilder, result, n_waves: int
) -> List[Dict[str, int]]:
    """Read each wave's output groups from a recorded spike raster.

    Requires the run to have recorded spikes.  Counterpart of
    :func:`wave_stimulus`; also accounts the run's telemetry counters, so
    solo and served circuit evaluations report identical totals.
    """
    if result.spike_events is None:
        raise CircuitError("decode_waves requires a record_spikes=True run")
    with timer("phase.decode"):
        decoded: List[Dict[str, int]] = []
        for w in range(n_waves):
            out: Dict[str, int] = {}
            for group, sigs in builder.output_groups.items():
                fired_bits = []
                for s in sigs:
                    fired = result.spike_events.get(s.offset + w)
                    fired_bits.append(
                        bool(fired is not None and s.nid in set(fired.tolist()))
                    )
                out[group] = int_from_bits(fired_bits)
            decoded.append(out)
    counter_inc("runs.circuit", 1)
    counter_inc("spikes.total", result.total_spikes)
    counter_inc("ticks.simulated", result.final_tick)
    return decoded
