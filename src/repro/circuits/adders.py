"""Threshold-gate adders (Section 5 "Sum Circuits", Figure 4).

* :func:`carry_lookahead_adder` — the Ramos–Bohórquez-style depth-2 design:
  every carry is a *single* threshold gate with place-value (exponential)
  weights — ``c_j`` fires iff the low ``j`` bits of ``a + b`` reach ``2^j``
  — and each sum bit is recovered arithmetically as
  ``s_j = a_j + b_j + c_j - 2*c_{j+1}``.  ``O(lambda)`` neurons, depth 2.
* :func:`siu_adder` — the Siu et al. style design the section cites: all
  carries computed simultaneously from generate/propagate terms with
  *small* weights — ``O(lambda^2)`` neurons, constant depth.  Together the
  three span the size/depth/weight tradeoff: lookahead (small+shallow,
  exponential weights), Siu (quadratic+shallow, unit weights), ripple
  (small+deep, unit weights).
* :func:`ripple_adder` — textbook full-adder chain with unit/small weights:
  ``O(lambda)`` neurons, ``O(lambda)`` depth.  This is the "chained parity
  circuits" alternative Section 4.1 mentions.
* :func:`add_constant` — carry-lookahead specialization with one operand
  hardwired, gated by a *valid* wire so an absent message produces an
  absent (all-silent) result.  This is the per-edge "add the edge length"
  circuit of the Section 4.2 algorithm.
* :func:`subtract_one` — decrement via adding the two's complement of 1
  (all-ones constant, Section 4.1) and dropping the carry out.  This is the
  per-node TTL decrementer of the Section 4.1 algorithm.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.circuits.builder import CircuitBuilder, Signal
from repro.errors import CircuitError

__all__ = [
    "carry_lookahead_adder",
    "siu_adder",
    "ripple_adder",
    "add_constant",
    "subtract_one",
]


def carry_lookahead_adder(
    builder: CircuitBuilder,
    a_bits: Sequence[Signal],
    b_bits: Sequence[Signal],
    name: str = "cla",
) -> List[Signal]:
    """Depth-2 adder of two ``lambda``-bit numbers; returns ``lambda + 1`` bits.

    Layer 1 computes every carry ``c_j`` (one exponential-weight gate
    each); layer 2 computes ``s_j = a_j + b_j + c_j - 2 c_{j+1}``, which is
    0/1 by the definition of binary addition.
    """
    if len(a_bits) != len(b_bits) or not a_bits:
        raise CircuitError("adder operands must share one positive width")
    width = len(a_bits)
    a = builder.align(list(a_bits) + list(b_bits), name=f"{name}.in")
    a_bits, b_bits = a[:width], a[width:]
    # c[j] for j = 1..width ; c[0] = 0 conceptually.
    carries: List[Optional[Signal]] = [None] * (width + 1)
    for j in range(1, width + 1):
        inputs = [(a_bits[i], float(1 << i)) for i in range(j)] + [
            (b_bits[i], float(1 << i)) for i in range(j)
        ]
        carries[j] = builder.gate(inputs, (1 << j) - 0.5, name=f"{name}.c{j}")
    sums: List[Signal] = []
    for j in range(width):
        inputs: List[Tuple[Signal, float]] = [(a_bits[j], 1.0), (b_bits[j], 1.0)]
        if j >= 1:
            inputs.append((carries[j], 1.0))
        inputs.append((carries[j + 1], -2.0))
        sums.append(
            builder.gate(
                inputs, 0.5, name=f"{name}.s{j}", at_offset=carries[j + 1].offset + 1
            )
        )
    top = builder.buffer(carries[width], name=f"{name}.s{width}")
    return builder.align(sums + [top], name=f"{name}.out")


def siu_adder(
    builder: CircuitBuilder,
    a_bits: Sequence[Signal],
    b_bits: Sequence[Signal],
    name: str = "siu",
) -> List[Signal]:
    """Constant-depth adder with unit weights and ``O(lambda^2)`` neurons.

    Carries via generate/propagate: position ``i`` *generates* a carry when
    ``a_i AND b_i`` and *propagates* one when ``a_i OR b_i``; then
    ``c_j = OR_{i < j} (g_i AND p_{i+1} AND ... AND p_{j-1})`` — each term a
    single unit-weight AND gate, ``O(lambda^2)`` of them in all.  Sum bits
    are recovered arithmetically as in the lookahead design.
    """
    if len(a_bits) != len(b_bits) or not a_bits:
        raise CircuitError("adder operands must share one positive width")
    width = len(a_bits)
    aligned = builder.align(list(a_bits) + list(b_bits), name=f"{name}.in")
    a_bits, b_bits = aligned[:width], aligned[width:]
    gen = [builder.and_gate([a_bits[i], b_bits[i]], name=f"{name}.g{i}") for i in range(width)]
    prop = [builder.or_gate([a_bits[i], b_bits[i]], name=f"{name}.p{i}") for i in range(width)]
    carries: List[Optional[Signal]] = [None] * (width + 1)
    for j in range(1, width + 1):
        terms = []
        for i in range(j):
            chain = [gen[i]] + [prop[x] for x in range(i + 1, j)]
            terms.append(builder.and_gate(chain, name=f"{name}.t{i},{j}"))
        carries[j] = builder.or_gate(terms, name=f"{name}.c{j}")
    sums: List[Signal] = []
    for j in range(width):
        inputs: List[Tuple[Signal, float]] = [(a_bits[j], 1.0), (b_bits[j], 1.0)]
        if j >= 1:
            inputs.append((carries[j], 1.0))
        inputs.append((carries[j + 1], -2.0))
        sums.append(
            builder.gate(
                inputs, 0.5, name=f"{name}.s{j}", at_offset=carries[j + 1].offset + 1
            )
        )
    top = builder.buffer(carries[width], name=f"{name}.s{width}")
    return builder.align(sums + [top], name=f"{name}.out")


def ripple_adder(
    builder: CircuitBuilder,
    a_bits: Sequence[Signal],
    b_bits: Sequence[Signal],
    name: str = "rip",
) -> List[Signal]:
    """``O(lambda)``-depth full-adder chain with weights in ``{-2, 1}``.

    Per position: ``carry_out = [a + b + c_in >= 2]`` (one gate) and
    ``sum = a + b + c_in - 2*carry_out`` (one gate).
    """
    if len(a_bits) != len(b_bits) or not a_bits:
        raise CircuitError("adder operands must share one positive width")
    width = len(a_bits)
    carry: Optional[Signal] = None
    sums: List[Signal] = []
    for j in range(width):
        operands = [(a_bits[j], 1.0), (b_bits[j], 1.0)]
        if carry is not None:
            operands.append((carry, 1.0))
        carry_out = builder.gate(operands, 1.5, name=f"{name}.co{j}")
        sum_inputs = [
            (sig, w)
            for sig, w in operands
        ] + [(carry_out, -2.0)]
        sums.append(
            builder.gate(
                sum_inputs, 0.5, name=f"{name}.s{j}", at_offset=carry_out.offset + 1
            )
        )
        carry = carry_out
    sums.append(builder.buffer(carry, name=f"{name}.s{width}"))
    return builder.align(sums, name=f"{name}.out")


def add_constant(
    builder: CircuitBuilder,
    bits: Sequence[Signal],
    constant: int,
    valid: Signal,
    name: str = "addk",
    *,
    out_width: Optional[int] = None,
) -> Tuple[List[Signal], Signal]:
    """Depth-2 ``value + constant`` gated by ``valid``; returns (bits, valid).

    When ``valid`` is silent, every output bit is silent — both the carry
    gates and the sum gates take ``valid`` as a weighted bias against a
    raised threshold, so even stray data spikes cannot leak through.
    Output width defaults to the carry-out width of ``value + constant``.
    """
    if constant < 0:
        raise CircuitError(f"constant must be >= 0, got {constant}")
    width = len(bits)
    if width == 0:
        raise CircuitError("add_constant requires a positive input width")
    full_width = max(width, (constant + (1 << width) - 1).bit_length())
    if out_width is None:
        out_width = full_width
    aligned = builder.align(list(bits) + [valid], name=f"{name}.in")
    bits, valid = aligned[:width], aligned[width]
    # carries: c_j fires iff (low-j bits of value) + (constant mod 2^j) >= 2^j,
    # with the valid wire supplying the constant part.
    carries: List[Optional[Signal]] = [None] * (full_width + 1)
    for j in range(1, full_width + 1):
        k_j = constant & ((1 << j) - 1)
        inputs = [(bits[i], float(1 << i)) for i in range(min(j, width))]
        bias = float(1 << j)
        inputs.append((valid, bias + float(k_j)))
        # fires iff valid*(2^j + k_j) + sum >= 2^{j+1}  <=>  sum + k_j >= 2^j
        carries[j] = builder.gate(inputs, (1 << (j + 1)) - 0.5, name=f"{name}.c{j}")
    outs: List[Signal] = []
    for j in range(out_width):
        k_bit = (constant >> j) & 1 if j < full_width else 0
        # s_j = (x_j + k_j + c_j - 2 c_{j+1}) AND valid: the valid wire
        # carries weight 2 + k_j against a threshold of 2.5, so a silent
        # valid mutes the output even if stray data bits spike.
        inputs: List[Tuple[Signal, float]] = [(valid, 2.0 + float(k_bit))]
        if j < width:
            inputs.append((bits[j], 1.0))
        if 1 <= j <= full_width and carries[j] is not None:
            inputs.append((carries[j], 1.0))
        if j + 1 <= full_width and carries[j + 1] is not None:
            inputs.append((carries[j + 1], -2.0))
        if j >= full_width:
            # bit is identically zero; never fires (valid alone scores 2)
            inputs = [(valid, 2.0)]
        outs.append(
            builder.gate(
                inputs,
                2.5,
                name=f"{name}.s{j}",
                at_offset=carries[full_width].offset + 1,
            )
        )
    out_valid = builder.buffer(valid, to_offset=outs[0].offset, name=f"{name}.valid")
    return outs, out_valid


def subtract_one(
    builder: CircuitBuilder,
    bits: Sequence[Signal],
    valid: Signal,
    name: str = "dec",
) -> Tuple[List[Signal], Signal]:
    """Depth-2 decrement modulo ``2^lambda`` gated by ``valid``.

    Adds the two's complement of 1 (the all-ones constant, as Section 4.1
    describes) and discards the carry out.  A valid zero input wraps to
    all-ones; the TTL algorithm never forwards such a result because it
    gates propagation on ``k' >= 1``.
    """
    width = len(bits)
    ones = (1 << width) - 1
    outs, out_valid = add_constant(
        builder, bits, ones, valid, name=name, out_width=width
    )
    return outs, out_valid
