"""Triple-modular-redundancy wrapping of threshold circuits.

Transient faults (:mod:`repro.core.transient`) can silently corrupt a
circuit's outputs — a dropped delivery inside a comparator flips a bit with
no other symptom.  The classical remedy is replication: build the circuit
``r`` times (``r`` odd), feed every replica from the same inputs, and merge
each output bit through a majority vote.  Any fault process confined to a
minority of replicas is masked exactly.

:func:`tmr` takes the same *build function* a caller would apply to a plain
:class:`~repro.circuits.builder.CircuitBuilder` and applies it once per
replica inside a shared network.  Shared master input neurons fan out to
per-replica buffer gates, so external stimulus (and
:func:`~repro.circuits.runner.run_circuit`) drive the master exactly as they
would the unprotected circuit; the majority vote is a single threshold gate
per output bit (weights 1, threshold ``r / 2``, strict), so the whole wrap
costs one tick of depth on each side plus ``r``-times the circuit size —
the constant-factor overhead classical fault-tolerance theory promises.

The per-replica neuron ids are reported so fault models can target one
replica (``SpikeDrop(p, sources=wrapped.replicas[0])``) and demonstrate
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.circuits.builder import CircuitBuilder, Signal
from repro.errors import CircuitError

__all__ = ["tmr", "TMRCircuit"]


class _ReplicaBuilder(CircuitBuilder):
    """A CircuitBuilder whose inputs are buffers of a master's inputs.

    The build function runs against this subclass unchanged: input groups it
    declares resolve to per-replica buffer gates fed by the shared master
    input neurons (created on first declaration), and the run line buffers
    the master's run line.  Every neuron placed here is recorded in
    ``placed`` so fault models can target exactly one replica.
    """

    def __init__(self, master: CircuitBuilder, index: int):
        super().__init__(network=master.net, prefix=f"{master.prefix}r{index}.")
        self._master = master
        self.placed: List[int] = []

    def _new_neuron(self, name: Optional[str], threshold: float) -> int:
        nid = super()._new_neuron(name, threshold)
        self.placed.append(nid)
        return nid

    def input_bits(self, group: str, width: int, offset: int = 0) -> List[Signal]:
        if group in self.input_groups:
            raise CircuitError(f"duplicate input group {group!r}")
        if group not in self._master.input_groups:
            self._master.input_bits(group, width, offset)
        master_sigs = self._master.input_groups[group]
        if len(master_sigs) != width:
            raise CircuitError(
                f"input group {group!r} declared with width {width} but an "
                f"earlier replica declared width {len(master_sigs)}"
            )
        sigs = [
            self.buffer(m, name=f"in:{group}[{j}]")
            for j, m in enumerate(master_sigs)
        ]
        self.input_groups[group] = sigs
        return sigs

    def run_line(self) -> Signal:
        if self._run is None:
            sig = self.buffer(self._master.run_line(), name="in:__run__")
            self._run = sig
            self.input_groups["__run__"] = [sig]
        return self._run


@dataclass
class TMRCircuit:
    """A majority-voted replicated circuit.

    Attributes
    ----------
    builder:
        The master builder — drive it with
        :func:`~repro.circuits.runner.run_circuit` exactly like the
        unprotected circuit; its output groups are the voted bits.
    replicas:
        Per-replica tuples of the neuron ids placed by that replica (buffer
        gates included) — pass one as ``SpikeDrop(..., sources=...)`` to
        fault a single replica.
    voters:
        Neuron ids of the majority gates, one per output bit.
    """

    builder: CircuitBuilder
    replicas: Tuple[Tuple[int, ...], ...]
    voters: Tuple[int, ...]


def tmr(
    build: Callable[[CircuitBuilder], None],
    *,
    name: str = "tmr",
    replicas: int = 3,
) -> TMRCircuit:
    """Replicate a circuit ``replicas`` times behind per-bit majority votes.

    ``build`` receives a :class:`~repro.circuits.builder.CircuitBuilder`
    and must declare input groups, place gates, and register output groups —
    the same function that would build the unprotected circuit.  ``replicas``
    must be odd and at least 3 so every vote is decisive.
    """
    if replicas < 3 or replicas % 2 == 0:
        raise CircuitError(f"replicas must be odd and >= 3, got {replicas}")
    master = CircuitBuilder(prefix=f"{name}." if name else "")
    reps = [_ReplicaBuilder(master, r) for r in range(replicas)]
    for rep in reps:
        build(rep)
    first = reps[0]
    if not first.output_groups:
        raise CircuitError("build function registered no output groups")
    shape = {g: len(sigs) for g, sigs in first.output_groups.items()}
    for rep in reps[1:]:
        if {g: len(sigs) for g, sigs in rep.output_groups.items()} != shape:
            raise CircuitError("replicas registered differing output groups")
    voters: List[int] = []
    for group, width in shape.items():
        voted = []
        for j in range(width):
            bit_sigs = [rep.output_groups[group][j] for rep in reps]
            # strict majority: r inputs of weight 1 against threshold r/2
            vote = master.gate(
                [(s, 1.0) for s in bit_sigs],
                replicas / 2.0,
                name=f"vote:{group}[{j}]",
            )
            voters.append(vote.nid)
            voted.append(vote)
        master.output_bits(group, voted)
    return TMRCircuit(
        builder=master,
        replicas=tuple(tuple(rep.placed) for rep in reps),
        voters=tuple(voters),
    )
