"""Time-aligned construction of feed-forward threshold circuits.

A *signal* is a neuron together with the tick offset (relative to input
presentation) at which its spike — if the signal is logically 1 — occurs.
Gates placed by :class:`CircuitBuilder` compute their own offset as one plus
the latest input offset and program each incoming synapse's delay so all
inputs land on the same tick.  Programmable delays substitute for the dummy
neurons the paper mentions for the same purpose.

All gate neurons use decay ``tau = 1`` (memoryless threshold gates), so a
circuit is a pipeline: waves of inputs presented on different ticks pass
through independently.  Gates that must fire when some input is *absent*
(NOT, the comparator's tie bias, constant injection) take the *run line* —
an input neuron the driver stimulates alongside each input wave — as a
positive bias, mirroring the always-1 ``Eq``/``S`` inputs of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.network import Network
from repro.errors import CircuitError

__all__ = ["Signal", "CircuitBuilder"]


@dataclass(frozen=True)
class Signal:
    """A boolean wire: neuron ``nid`` spiking at tick ``offset`` means 1."""

    nid: int
    offset: int


class CircuitBuilder:
    """Builds a feed-forward threshold circuit inside a :class:`Network`.

    The builder may target a fresh network (default) or extend an existing
    one (used when algorithm compilers splice node/edge circuits into a
    graph-structured SNN).

    Notes
    -----
    *Depth/time*: :attr:`depth` is the largest offset among registered
    outputs — the circuit's execution time in ticks, matching the paper's
    definition ("the maximum-length path from any input to any output").

    *Size*: :attr:`size` counts gate neurons placed by this builder
    (inputs and the run line included, matching the paper's neuron counts).
    """

    def __init__(self, network: Optional[Network] = None, prefix: str = ""):
        self.net = network if network is not None else Network()
        self.prefix = prefix
        self._run: Optional[Signal] = None
        self.input_groups: Dict[str, List[Signal]] = {}
        self.output_groups: Dict[str, List[Signal]] = {}
        self._n_placed = 0
        self._uid = 0

    # ------------------------------------------------------------------ #
    # naming / bookkeeping
    # ------------------------------------------------------------------ #

    def _name(self, base: Optional[str]) -> Optional[str]:
        if base is None:
            return None
        self._uid += 1
        return f"{self.prefix}{base}#{self._uid}"

    @property
    def size(self) -> int:
        """Neurons placed by this builder."""
        return self._n_placed

    @property
    def depth(self) -> int:
        """Largest output offset (execution time in ticks)."""
        offsets = [s.offset for grp in self.output_groups.values() for s in grp]
        return max(offsets, default=0)

    def lint(self, *, subject: Optional[str] = None):
        """Run the :mod:`repro.staticcheck` linter over this circuit.

        Standalone builder products are feed-forward threshold circuits by
        construction, so the cycle rule is armed and the declared input
        groups (including the run line) are the entry points.  Returns a
        :class:`~repro.staticcheck.diagnostics.LintReport`; chain
        ``.raise_if_errors()`` to use it as a gate.
        """
        from repro.staticcheck.rules import lint_circuit

        return lint_circuit(self, subject=subject or f"circuit({self.prefix or 'anon'})")

    # ------------------------------------------------------------------ #
    # inputs
    # ------------------------------------------------------------------ #

    def _new_neuron(self, name: Optional[str], threshold: float) -> int:
        self._n_placed += 1
        return self.net.add_neuron(
            self._name(name), v_threshold=threshold, tau=1.0
        )

    def input_bits(self, group: str, width: int, offset: int = 0) -> List[Signal]:
        """Declare ``width`` input wires (LSB first) stimulated externally."""
        if group in self.input_groups:
            raise CircuitError(f"duplicate input group {group!r}")
        sigs = [
            Signal(self._new_neuron(f"in:{group}[{j}]", 0.5), offset)
            for j in range(width)
        ]
        self.input_groups[group] = sigs
        for s in sigs:
            self.net.mark_input(s.nid)
        return sigs

    def run_line(self) -> Signal:
        """The constant-1 bias wire, created on first use.

        The circuit driver must stimulate it at the same tick as each input
        wave.  It is registered as input group ``"__run__"``.
        """
        if self._run is None:
            nid = self._new_neuron("in:__run__", 0.5)
            self._run = Signal(nid, 0)
            self.input_groups["__run__"] = [self._run]
            self.net.mark_input(nid)
        return self._run

    def adopt_signal(self, nid: int, offset: int) -> Signal:
        """Wrap an existing neuron of the target network as a signal."""
        return Signal(nid, offset)

    # ------------------------------------------------------------------ #
    # gates
    # ------------------------------------------------------------------ #

    def gate(
        self,
        inputs: Sequence[Tuple[Signal, float]],
        threshold: float,
        name: Optional[str] = None,
        *,
        at_offset: Optional[int] = None,
    ) -> Signal:
        """Place one threshold gate.

        Fires iff the weighted sum of inputs (all delayed to arrive
        together) strictly exceeds ``threshold``.  The gate's offset is one
        past the latest input offset, or ``at_offset`` if given (which must
        leave every synapse a delay of at least 1).
        """
        if not inputs:
            raise CircuitError("gate requires at least one input")
        latest = max(sig.offset for sig, _ in inputs)
        offset = latest + 1 if at_offset is None else at_offset
        if offset <= latest:
            raise CircuitError(
                f"gate offset {offset} leaves no delay after input offset {latest}"
            )
        nid = self._new_neuron(name or "gate", threshold)
        for sig, weight in inputs:
            self.net.add_synapse(sig.nid, nid, weight=weight, delay=offset - sig.offset)
        return Signal(nid, offset)

    def or_gate(self, signals: Sequence[Signal], name: str = "or") -> Signal:
        """Fires iff any input fires."""
        return self.gate([(s, 1.0) for s in signals], 0.5, name)

    def and_gate(self, signals: Sequence[Signal], name: str = "and") -> Signal:
        """Fires iff all inputs fire."""
        return self.gate([(s, 1.0) for s in signals], len(signals) - 0.5, name)

    def not_gate(self, signal: Signal, name: str = "not") -> Signal:
        """Fires iff the input does not fire (uses the run-line bias)."""
        run = self.run_line()
        return self.gate([(run, 1.0), (signal, -1.0)], 0.5, name)

    def and_not_gate(self, keep: Signal, inhibit: Signal, name: str = "andnot") -> Signal:
        """Fires iff ``keep`` fires and ``inhibit`` does not."""
        return self.gate([(keep, 1.0), (inhibit, -1.0)], 0.5, name)

    def xor_gate(self, a: Signal, b: Signal, name: str = "xor") -> Signal:
        """Two-input parity via ``a + b - 2*(a AND b)`` (2 gates, depth 2)."""
        both = self.and_gate([a, b], name=f"{name}.and")
        return self.gate([(a, 1.0), (b, 1.0), (both, -2.0)], 0.5, name, at_offset=both.offset + 1)

    def buffer(self, signal: Signal, to_offset: Optional[int] = None, name: str = "buf") -> Signal:
        """Identity gate, optionally re-timed to a later offset."""
        return self.gate([(signal, 1.0)], 0.5, name, at_offset=to_offset)

    def align(self, signals: Sequence[Signal], name: str = "align") -> List[Signal]:
        """Re-time signals to a common offset by buffering the early ones.

        Signals already at the common (latest) offset pass through
        unchanged; earlier ones gain one identity gate whose input synapse
        carries the needed delay.
        """
        if not signals:
            return []
        target = max(s.offset for s in signals)
        return [
            s if s.offset == target else self.buffer(s, to_offset=target, name=name)
            for s in signals
        ]

    # ------------------------------------------------------------------ #
    # outputs
    # ------------------------------------------------------------------ #

    def output_bits(self, group: str, signals: Sequence[Signal], *, aligned: bool = True) -> List[Signal]:
        """Register an output group (LSB first), aligning offsets by default."""
        if group in self.output_groups:
            raise CircuitError(f"duplicate output group {group!r}")
        sigs = self.align(list(signals)) if aligned else list(signals)
        self.output_groups[group] = sigs
        for s in sigs:
            self.net.mark_output(s.nid)
        return sigs
