"""k-hop reachability by unit-delay spike wavefront (BFS in spiking time).

A companion query family to the Section-3 SSSP network: ignore edge lengths
and give **every** synapse delay 1, so a spike wavefront advances exactly
one hop per tick and a vertex's first-spike time *is* its hop distance from
the source.  Running the network for ``k`` ticks answers k-hop
reachability — which vertices are within ``k`` edges of the source, and at
how many hops — the second query shape (after SSSP) that graph-query
workloads ask of a resident graph.

Like :mod:`repro.algorithms.sssp_pseudo`, the execution is split into a
:func:`khop_reach_plan` (network from the structure-keyed build cache,
stimulus, horizon) and a :func:`khop_reach_decode`, shared verbatim by the
solo driver :func:`spiking_khop_reach` and the :mod:`repro.service`
coalescing adapters so served answers are spike-for-spike identical to solo
runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.algorithms.results import ShortestPathResult
from repro.core.cache import default_build_cache
from repro.core.cost import CostReport
from repro.core.network import Network
from repro.core.result import SimulationResult
from repro.core.run import simulate
from repro.core.transient import FaultModel
from repro.errors import ValidationError
from repro.telemetry.hooks import EngineHooks
from repro.telemetry.metrics import counter_inc, timer
from repro.workloads.graph import WeightedDigraph

__all__ = [
    "spiking_khop_reach",
    "khop_reach_network",
    "khop_reach_plan",
    "khop_reach_decode",
    "KhopReachPlan",
]


def khop_reach_network(graph: WeightedDigraph):
    """The unit-delay (hop-metric) network for ``graph``; ``(net, node_ids)``.

    One one-shot neuron per vertex, one delay-1 synapse per edge — the
    Section-3 construction with the length encoding stripped, so ticks
    count hops.  Builds are cached in
    :data:`~repro.core.cache.default_build_cache` under the graph's
    structure fingerprint; treat the returned network as frozen.
    """
    key = ("khop_reach", graph.structure_key())

    def build():
        net = Network()
        node_ids = [net.add_neuron(f"v{v}", one_shot=True) for v in range(graph.n)]
        for u, v, _w in graph.edges():
            if u == v:
                continue  # self-loops never extend reach
            net.add_synapse(node_ids[u], node_ids[v], weight=1.0, delay=1)
        net.compile()
        return net, node_ids

    return default_build_cache.get_or_build(key, build)


@dataclass(frozen=True)
class KhopReachPlan:
    """Simulation plan of one k-hop reachability query (see :class:`~repro.algorithms.sssp_pseudo.SsspPlan`)."""

    graph: WeightedDigraph
    source: int
    k: int
    net: Network
    node_ids: Tuple[int, ...]
    stimulus: Tuple[int, ...]
    max_steps: int
    terminal: Optional[int]
    watch: Optional[Tuple[int, ...]]


def khop_reach_plan(graph: WeightedDigraph, source: int, k: int) -> KhopReachPlan:
    """Build (or fetch from cache) the plan for one k-hop reachability query."""
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range for n={graph.n}")
    if k < 0:
        raise ValidationError(f"k must be >= 0, got {k}")
    with timer("phase.build"):
        net, node_ids = khop_reach_network(graph)
    return KhopReachPlan(
        graph=graph,
        source=source,
        k=int(k),
        net=net,
        node_ids=tuple(node_ids),
        stimulus=(node_ids[source],),
        # the wavefront needs exactly k ticks to cover k hops
        max_steps=int(k),
        terminal=None,
        watch=tuple(node_ids),
    )


def khop_reach_decode(plan: KhopReachPlan, result: SimulationResult) -> ShortestPathResult:
    """Decode one engine run of ``plan`` into hop distances and cost."""
    with timer("phase.decode"):
        dist = result.first_spike[np.asarray(plan.node_ids, dtype=np.int64)].copy()
    simulated = int(dist.max()) if (dist >= 0).any() else 0
    cost = CostReport(
        algorithm="khop_reach",
        simulated_ticks=simulated,
        loading_ticks=plan.graph.m,
        neuron_count=plan.net.n_neurons,
        synapse_count=plan.net.n_synapses,
        spike_count=result.total_spikes,
    )
    counter_inc("runs.khop_reach", 1)
    counter_inc("spikes.total", cost.spike_count)
    counter_inc("ticks.simulated", cost.simulated_ticks)
    counter_inc("cost.total_time", cost.total_time)
    return ShortestPathResult(dist=dist, source=plan.source, cost=cost, k=plan.k, sim=result)


def spiking_khop_reach(
    graph: WeightedDigraph,
    source: int,
    k: int,
    *,
    engine: str = "auto",
    faults: Optional[FaultModel] = None,
    hooks: Optional[EngineHooks] = None,
    record_spikes: bool = False,
    verify: bool = False,
) -> ShortestPathResult:
    """Hop distances within ``k`` hops of ``source`` (−1 beyond the bound).

    ``dist[v]`` is the minimum number of edges on any source-to-``v`` path
    when that minimum is at most ``k``, else ``UNREACHABLE``.
    ``verify=True`` lints the compiled network first and raises
    :class:`~repro.errors.StaticCheckError` on structural violations.
    """
    plan = khop_reach_plan(graph, source, k)
    if verify:
        from repro.staticcheck.rules import lint_network

        lint_network(
            plan.net.compile(),
            subject=f"khop_reach(n={graph.n}, source={source}, k={k})",
            entries=plan.stimulus,
        ).raise_if_errors()
    with timer("phase.simulate"):
        result = simulate(
            plan.net,
            list(plan.stimulus),
            engine=engine,
            max_steps=plan.max_steps,
            watch=list(plan.watch),
            record_spikes=record_spikes,
            faults=faults,
            hooks=hooks,
        )
    return khop_reach_decode(plan, result)
