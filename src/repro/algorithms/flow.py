"""Maximum flow via tidal flow — the paper's nominated future-work target.

Conclusions: "Tidal flow [Fontaine 2018] may be a promising starting point
for a neuromorphic network-flow algorithm.  Each iteration of tidal flow
has a forward sweep from the source (breadth-first-search-like messages), a
backward sweep from the sink and some local computation."

This module implements that program end to end:

* :func:`tidal_flow` — the full tidal-flow max-flow algorithm on residual
  CSR arrays.  Each iteration (a *tide*) runs three linear passes over the
  BFS level graph: a forward pass propagating tentative flow ``p[e] =
  min(cap, h[tail])``, a backward pass scaling it down to what the sink
  absorbs, and a final forward pass enforcing conservation.
* The per-iteration *level* computation is pluggable: ``levels="spiking"``
  runs the Section 3 spiking SSSP with unit edge lengths on the residual
  graph — first-spike times are exactly BFS levels — accumulating
  neuromorphic cost for the sweeps, which is precisely the hybrid the
  conclusion sketches.  ``levels="bfs"`` is the conventional sweep.
* :func:`edmonds_karp` — the classical baseline for correctness checks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.cost import CostReport
from repro.errors import GraphError, ValidationError
from repro.workloads.graph import WeightedDigraph

__all__ = ["FlowResult", "tidal_flow", "edmonds_karp"]


@dataclass
class FlowResult:
    """Outcome of a max-flow computation.

    ``flow_value`` is the max s-t flow; ``edge_flow[i]`` the flow on the
    i-th input edge (in the graph's CSR order); ``iterations`` the number
    of tides/augmentations; ``spiking_cost`` the accumulated neuromorphic
    cost of the level sweeps when the spiking level oracle was used.
    """

    flow_value: int
    edge_flow: np.ndarray
    iterations: int
    spiking_cost: Optional[CostReport] = None


class _Residual:
    """Residual network with paired forward/backward arcs."""

    def __init__(self, graph: WeightedDigraph):
        self.n = graph.n
        m = graph.m
        # arcs 2i (forward, capacity = length) and 2i+1 (backward, 0)
        self.head = np.empty(2 * m, dtype=np.int64)
        self.cap = np.empty(2 * m, dtype=np.int64)
        self.tail = np.empty(2 * m, dtype=np.int64)
        for i in range(m):
            u, v, c = int(graph.tails[i]), int(graph.heads[i]), int(graph.lengths[i])
            self.tail[2 * i], self.head[2 * i], self.cap[2 * i] = u, v, c
            self.tail[2 * i + 1], self.head[2 * i + 1], self.cap[2 * i + 1] = v, u, 0
        self.out: List[List[int]] = [[] for _ in range(self.n)]
        for a in range(2 * m):
            self.out[self.tail[a]].append(a)

    def bfs_levels(self, source: int) -> np.ndarray:
        level = np.full(self.n, -1, dtype=np.int64)
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for a in self.out[u]:
                v = int(self.head[a])
                if self.cap[a] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level

    def spiking_levels(self, source: int) -> Tuple[np.ndarray, CostReport]:
        """BFS levels via the Section-3 spiking SSSP on unit lengths.

        Residual arcs with positive capacity become unit-delay synapses;
        first-spike times are hop counts — the "breadth-first-search-like
        messages" of the tidal forward sweep, computed neuromorphically.
        """
        from repro.algorithms.sssp_pseudo import spiking_sssp_pseudo

        arcs = np.nonzero(self.cap > 0)[0]
        if arcs.size == 0:
            level = np.full(self.n, -1, dtype=np.int64)
            level[source] = 0
            cost = CostReport("flow_level_sweep", 0, 0, self.n, 0, 1)
            return level, cost
        sub = WeightedDigraph.from_arrays(
            self.n,
            self.tail[arcs],
            self.head[arcs],
            np.ones(arcs.size, dtype=np.int64),
        )
        res = spiking_sssp_pseudo(sub, source)
        return res.dist, res.cost


def tidal_flow(
    graph: WeightedDigraph,
    source: int,
    sink: int,
    *,
    levels: str = "bfs",
    max_iterations: Optional[int] = None,
) -> FlowResult:
    """Maximum s-t flow by repeated tides over BFS level graphs.

    Edge lengths are interpreted as integer capacities.  ``levels`` selects
    the level oracle: ``"bfs"`` (conventional) or ``"spiking"`` (Section 3
    network, unit delays; neuromorphic costs accumulated).
    """
    if not (0 <= source < graph.n) or not (0 <= sink < graph.n):
        raise ValidationError("source/sink out of range")
    if source == sink:
        raise ValidationError("source and sink must differ")
    if levels not in ("bfs", "spiking"):
        raise ValidationError(f"unknown level oracle {levels!r}")
    if graph.has_self_loops():
        raise GraphError("flow networks must not contain self-loops")

    res = _Residual(graph)
    INF = np.iinfo(np.int64).max // 4
    total = 0
    iterations = 0
    acc_ticks = acc_spikes = acc_sweeps = 0
    limit = max_iterations if max_iterations is not None else 4 * graph.n * graph.m + 16

    while iterations < limit:
        if levels == "spiking":
            level, sweep_cost = res.spiking_levels(source)
            acc_ticks += sweep_cost.simulated_ticks
            acc_spikes += sweep_cost.spike_count
            acc_sweeps += 1
        else:
            level = res.bfs_levels(source)
        if level[sink] < 0:
            break
        # level-graph arcs in BFS order (sorted by tail level)
        arcs = [
            a
            for a in range(res.cap.size)
            if res.cap[a] > 0
            and level[res.tail[a]] >= 0
            and level[res.head[a]] == level[res.tail[a]] + 1
            and level[res.head[a]] <= level[sink]
        ]
        arcs.sort(key=lambda a: level[res.tail[a]])
        pushed = _tide(res, arcs, source, sink, INF)
        if pushed == 0:
            break
        total += pushed
        iterations += 1

    m = graph.m
    edge_flow = np.empty(m, dtype=np.int64)
    for i in range(m):
        edge_flow[i] = res.cap[2 * i + 1]  # back-arc capacity == flow sent
    spiking_cost = None
    if levels == "spiking":
        spiking_cost = CostReport(
            algorithm="tidal_flow+spiking_levels",
            simulated_ticks=acc_ticks,
            loading_ticks=graph.m,
            neuron_count=graph.n,
            synapse_count=2 * graph.m,
            spike_count=acc_spikes,
            extras={"level_sweeps": float(acc_sweeps)},
        )
    return FlowResult(
        flow_value=int(total),
        edge_flow=edge_flow,
        iterations=iterations,
        spiking_cost=spiking_cost,
    )


def _tide(res: _Residual, arcs: List[int], source: int, sink: int, INF: int) -> int:
    """One tide: Fontaine's three sweeps over the level-graph arcs."""
    n = res.n
    h = np.zeros(n, dtype=np.int64)  # forward potential
    h[source] = INF
    p = np.zeros(len(arcs), dtype=np.int64)
    for idx, a in enumerate(arcs):
        u, v = int(res.tail[a]), int(res.head[a])
        p[idx] = min(int(res.cap[a]), int(h[u]))
        h[v] += p[idx]
    if h[sink] <= 0:
        return 0
    # backward sweep: only what the sink absorbs survives
    l = np.zeros(n, dtype=np.int64)
    l[sink] = h[sink]
    for idx in range(len(arcs) - 1, -1, -1):
        a = arcs[idx]
        u, v = int(res.tail[a]), int(res.head[a])
        p[idx] = min(int(p[idx]), int(l[v]))
        l[v] -= p[idx]
        l[u] += p[idx]
    # final forward sweep: conservation at every internal vertex
    f = np.zeros(n, dtype=np.int64)
    f[source] = l[source]
    for idx, a in enumerate(arcs):
        u, v = int(res.tail[a]), int(res.head[a])
        p[idx] = min(int(p[idx]), int(f[u]))
        f[u] -= p[idx]
        f[v] += p[idx]
    # apply to residual capacities
    pushed = 0
    for idx, a in enumerate(arcs):
        if p[idx] > 0:
            res.cap[a] -= p[idx]
            res.cap[a ^ 1] += p[idx]
    pushed = int(f[sink])
    return pushed


def edmonds_karp(
    graph: WeightedDigraph, source: int, sink: int
) -> FlowResult:
    """Classical BFS-augmenting-path max flow (the correctness baseline)."""
    if not (0 <= source < graph.n) or not (0 <= sink < graph.n):
        raise ValidationError("source/sink out of range")
    if source == sink:
        raise ValidationError("source and sink must differ")
    if graph.has_self_loops():
        raise GraphError("flow networks must not contain self-loops")
    res = _Residual(graph)
    total = 0
    iterations = 0
    while True:
        # BFS storing the inbound arc
        parent_arc = np.full(graph.n, -1, dtype=np.int64)
        seen = np.zeros(graph.n, dtype=bool)
        seen[source] = True
        queue = deque([source])
        while queue and not seen[sink]:
            u = queue.popleft()
            for a in res.out[u]:
                v = int(res.head[a])
                if res.cap[a] > 0 and not seen[v]:
                    seen[v] = True
                    parent_arc[v] = a
                    queue.append(v)
        if not seen[sink]:
            break
        # bottleneck
        bottleneck = None
        v = sink
        while v != source:
            a = int(parent_arc[v])
            c = int(res.cap[a])
            bottleneck = c if bottleneck is None else min(bottleneck, c)
            v = int(res.tail[a])
        v = sink
        while v != source:
            a = int(parent_arc[v])
            res.cap[a] -= bottleneck
            res.cap[a ^ 1] += bottleneck
            v = int(res.tail[a])
        total += bottleneck
        iterations += 1
    m = graph.m
    edge_flow = np.asarray([res.cap[2 * i + 1] for i in range(m)], dtype=np.int64)
    return FlowResult(flow_value=int(total), edge_flow=edge_flow, iterations=iterations)
