"""Multi-source drivers: all-pairs and multi-destination shortest paths.

The paper notes its single-source/single-destination table "can easily be
generalized to multiple destinations"; a single spiking run already yields
*all* destinations (every vertex's first-spike time).  Going further:

* :func:`all_pairs_shortest_paths` re-runs the Section-3 network once per
  source.  On hardware the graph is loaded once and only the stimulus
  changes, so the cost is ``O(m)`` loading plus ``n`` spiking phases of
  ``O(L_s)`` each — accumulated into one :class:`CostReport`.
* :func:`all_pairs_on_crossbar` does the same on a single crossbar
  embedding (program delays once, stimulate each diagonal in turn) — the
  deployment pattern of Section 4.4.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.sssp_pseudo import spiking_sssp_pseudo
from repro.core.cost import CostReport
from repro.embedding.embed import EmbeddedGraph, embed_graph, embedded_sssp
from repro.errors import ValidationError
from repro.workloads.graph import WeightedDigraph

__all__ = ["all_pairs_shortest_paths", "all_pairs_on_crossbar"]


def all_pairs_shortest_paths(
    graph: WeightedDigraph,
    *,
    sources: Optional[np.ndarray] = None,
):
    """Distance matrix via repeated spiking SSSP; returns (matrix, cost).

    ``matrix[s, v]`` is the s-to-v distance (−1 unreachable).  ``sources``
    restricts the rows computed (default: all vertices).
    """
    srcs = np.arange(graph.n) if sources is None else np.asarray(sources)
    if srcs.size and (srcs.min() < 0 or srcs.max() >= graph.n):
        raise ValidationError("source index out of range")
    matrix = np.full((srcs.size, graph.n), -1, dtype=np.int64)
    ticks = spikes = 0
    for row, s in enumerate(srcs.tolist()):
        res = spiking_sssp_pseudo(graph, s)
        matrix[row] = res.dist
        ticks += res.cost.simulated_ticks
        spikes += res.cost.spike_count
    cost = CostReport(
        algorithm="all_pairs_pseudo",
        simulated_ticks=ticks,
        loading_ticks=graph.m,  # the graph loads once
        neuron_count=graph.n,
        synapse_count=graph.m,
        spike_count=spikes,
        extras={"sources": float(srcs.size)},
    )
    return matrix, cost


def all_pairs_on_crossbar(
    graph: WeightedDigraph,
    *,
    sources: Optional[np.ndarray] = None,
):
    """All-pairs distances with one crossbar embedding; returns (matrix, cost).

    Embeds once (``m`` delay programmings), then runs each source against
    the same programmed crossbar.
    """
    srcs = np.arange(graph.n) if sources is None else np.asarray(sources)
    if srcs.size and (srcs.min() < 0 or srcs.max() >= graph.n):
        raise ValidationError("source index out of range")
    emb: EmbeddedGraph = embed_graph(graph)
    matrix = np.full((srcs.size, graph.n), -1, dtype=np.int64)
    ticks = spikes = 0
    for row, s in enumerate(srcs.tolist()):
        res = embedded_sssp(graph, s, embedded=emb)
        matrix[row] = res.dist
        ticks += res.cost.simulated_ticks
        spikes += res.cost.spike_count
    cost = CostReport(
        algorithm="all_pairs_crossbar",
        simulated_ticks=ticks,
        loading_ticks=graph.m,
        neuron_count=emb.net.n_neurons,
        synapse_count=emb.net.n_synapses,
        spike_count=spikes,
        extras={"sources": float(srcs.size), "embedding_scale": float(emb.scale)},
    )
    return matrix, cost
