"""Multi-source drivers: all-pairs and multi-destination shortest paths.

The paper notes its single-source/single-destination table "can easily be
generalized to multiple destinations"; a single spiking run already yields
*all* destinations (every vertex's first-spike time).  Going further:

* :func:`all_pairs_shortest_paths` runs the Section-3 network once per
  source.  On hardware the graph is loaded once and only the stimulus
  changes, so the cost is ``O(m)`` loading plus ``n`` spiking phases of
  ``O(L_s)`` each — accumulated into one :class:`CostReport`.  By default
  the sources run as **one batch**: the network is built once (and cached
  by structure), and :func:`~repro.core.run.simulate_batch` steps every
  source's run in lockstep on the batched dense engine — the software
  analogue of the hardware deployment, and the fast path for the many-query
  workloads.  ``batched=False`` keeps the historical per-source loop.
* :func:`all_pairs_on_crossbar` does the same on a single crossbar
  embedding (program delays once, stimulate each diagonal in turn) — the
  deployment pattern of Section 4.4.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.sssp_pseudo import spiking_sssp_pseudo, sssp_network
from repro.core.batch import FaultsSpec, HooksSpec, _per_item
from repro.core.cost import CostReport
from repro.core.run import simulate_batch
from repro.core.transient import FaultModel
from repro.embedding.embed import EmbeddedGraph, embed_graph, embedded_sssp
from repro.errors import ValidationError
from repro.telemetry.hooks import EngineHooks
from repro.telemetry.metrics import counter_inc, timer
from repro.workloads.graph import WeightedDigraph

__all__ = ["all_pairs_shortest_paths", "all_pairs_on_crossbar"]


def _check_sources(graph: WeightedDigraph, sources: Optional[np.ndarray]) -> np.ndarray:
    srcs = np.arange(graph.n) if sources is None else np.asarray(sources)
    if srcs.size and (srcs.min() < 0 or srcs.max() >= graph.n):
        raise ValidationError("source index out of range")
    return srcs


def _emitted_messages(spike_counts: np.ndarray, out_degree: np.ndarray) -> int:
    """Synaptic messages emitted by a run: each spike fans out its synapses."""
    return int(spike_counts @ out_degree)


def all_pairs_shortest_paths(
    graph: WeightedDigraph,
    *,
    sources: Optional[np.ndarray] = None,
    batched: bool = True,
    faults: FaultsSpec = None,
    hooks: HooksSpec = None,
):
    """Distance matrix via repeated spiking SSSP; returns (matrix, cost).

    ``matrix[s, v]`` is the s-to-v distance (−1 unreachable).  ``sources``
    restricts the rows computed (default: all vertices).

    With ``batched=True`` (default) all sources run as one batch over the
    cached Section-3 network; ``batched=False`` runs the historical
    per-source loop.  Both paths produce identical distances, tick
    accounting, and fault realizations (enforced by the differential test
    suite).  ``faults`` is one transient fault model shared by every
    source run or a per-source sequence; ``hooks`` likewise (per-source
    telemetry totals stay exact in either path).

    The aggregated cost sums every per-run quantity: ``simulated_ticks``,
    ``spike_count``, and the emitted synaptic message count (reported in
    ``extras["messages"]``).  Loading is charged once — the graph is
    programmed a single time however many sources are queried.
    """
    srcs = _check_sources(graph, sources)
    B = int(srcs.size)
    fault_list = _per_item(faults, B, FaultModel, "faults")
    hook_list = _per_item(hooks, B, EngineHooks, "hooks")
    matrix = np.full((B, graph.n), -1, dtype=np.int64)
    ticks = spikes = messages = 0

    if batched:
        with timer("phase.build"):
            net, node_ids = sssp_network(graph)
        compiled = net.compile()
        out_degree = np.diff(compiled.indptr)
        horizon = (graph.n - 1) * max(1, graph.max_length()) + 1
        with timer("phase.simulate"):
            runs = simulate_batch(
                compiled,
                [[node_ids[s]] for s in srcs.tolist()],
                max_steps=int(horizon),
                watch=node_ids,
                faults=fault_list,
                hooks=hook_list,
            )
        with timer("phase.decode"):
            nodes = np.asarray(node_ids, dtype=np.int64)
            for row, res in enumerate(runs):
                dist = res.first_spike[nodes]
                matrix[row] = dist
                ticks += int(dist.max()) if (dist >= 0).any() else 0
                spikes += res.total_spikes
                messages += _emitted_messages(res.spike_counts, out_degree)
        neuron_count, synapse_count = compiled.n, compiled.m
    else:
        out_degree = None
        for row, s in enumerate(srcs.tolist()):
            res = spiking_sssp_pseudo(
                graph, s, faults=fault_list[row], hooks=hook_list[row]
            )
            matrix[row] = res.dist
            ticks += res.cost.simulated_ticks
            spikes += res.cost.spike_count
            if out_degree is None:
                out_degree = np.diff(sssp_network(graph)[0].compile().indptr)
            messages += _emitted_messages(res.sim.spike_counts, out_degree)
            neuron_count, synapse_count = res.cost.neuron_count, res.cost.synapse_count
        if B == 0:
            neuron_count, synapse_count = graph.n, graph.m

    counter_inc("runs.all_pairs", 1)
    cost = CostReport(
        algorithm="all_pairs_pseudo" + ("" if batched else "+sequential"),
        simulated_ticks=ticks,
        loading_ticks=graph.m,  # the graph loads once
        neuron_count=neuron_count,
        synapse_count=synapse_count,
        spike_count=spikes,
        extras={"sources": float(B), "messages": float(messages)},
    )
    return matrix, cost


def all_pairs_on_crossbar(
    graph: WeightedDigraph,
    *,
    sources: Optional[np.ndarray] = None,
):
    """All-pairs distances with one crossbar embedding; returns (matrix, cost).

    Embeds once (``m`` delay programmings), then runs each source against
    the same programmed crossbar.
    """
    srcs = _check_sources(graph, sources)
    emb: EmbeddedGraph = embed_graph(graph)
    emb_out_degree = np.diff(emb.net.compile().indptr)
    matrix = np.full((srcs.size, graph.n), -1, dtype=np.int64)
    ticks = spikes = messages = 0
    for row, s in enumerate(srcs.tolist()):
        res = embedded_sssp(graph, s, embedded=emb)
        matrix[row] = res.dist
        ticks += res.cost.simulated_ticks
        spikes += res.cost.spike_count
        messages += _emitted_messages(res.sim.spike_counts, emb_out_degree)
    cost = CostReport(
        algorithm="all_pairs_crossbar",
        simulated_ticks=ticks,
        loading_ticks=graph.m,
        neuron_count=emb.net.n_neurons,
        synapse_count=emb.net.n_synapses,
        spike_count=spikes,
        extras={
            "sources": float(srcs.size),
            "messages": float(messages),
            "embedding_scale": float(emb.scale),
        },
    )
    return matrix, cost
