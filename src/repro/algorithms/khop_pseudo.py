"""Pseudopolynomial k-hop SSSP with TTL spike messages (paper Section 4.1).

Every message is a ``ceil(log2 k)``-bit *time to live*: the source emits
``k - 1`` to its neighbors at tick 0; a vertex receiving TTL ``k'`` at tick
``t`` witnesses a source path of length ``t`` using ``k - k'`` edges, takes
the **maximum** TTL over simultaneous arrivals (larger TTLs can reach
further), and — if ``k' >= 1`` — forwards ``k' - 1``.  The first arrival
time at a vertex is its ``<= k``-hop distance.

Two implementations:

* :func:`spiking_khop_pseudo` — event-level: a timed message simulation on
  the graph with Pareto pruning (a later arrival with no larger TTL is
  dominated and need not be forwarded; every surviving first-arrival time
  is unchanged).  Time is charged with the paper's ``O(log k)`` edge-scale
  factor for the max/decrement circuit depth (Theorem 4.2:
  ``O((L + m) log k)``), neurons with the ``O(m log k)`` circuit total.
* :func:`compile_khop_pseudo_gate_level` — the complete Section 4.1 + 5
  construction: per-vertex wired-OR max circuits over the in-edge TTLs,
  depth-2 decrementers, and edge delays scaled so every edge hides the
  node-circuit latency.  The compiled recurrent SNN is executed on the LIF
  engine and first spike times decode to the exact k-hop distances.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.results import ShortestPathResult
from repro.circuits.builder import CircuitBuilder, Signal
from repro.circuits.encoding import bit_width_for, bits_from_int
from repro.core.cost import CostReport
from repro.core.network import Network
from repro.core.run import simulate
from repro.errors import ValidationError
from repro.telemetry.metrics import counter_inc, timer
from repro.workloads.graph import WeightedDigraph

__all__ = [
    "spiking_khop_pseudo",
    "compile_khop_pseudo_gate_level",
    "CompiledKhopNetwork",
    "run_khop_gate_level",
]


def ttl_scale_factor(k: int) -> int:
    """The paper's edge-length scale hiding the TTL circuit depth.

    Section 4.1: "we must scale all graph edges so that the minimum edge
    length is at least ``ceil(log k)``; this increases the running time by
    an ``O(log k)`` factor."
    """
    return max(1, math.ceil(math.log2(max(2, k))))


def spiking_khop_pseudo(
    graph: WeightedDigraph,
    source: int,
    k: int,
    *,
    target: Optional[int] = None,
) -> ShortestPathResult:
    """Event-level k-hop SSSP: returns the length of the shortest path with
    at most ``k`` edges from ``source`` to every vertex (−1 if none).

    The simulation processes (arrival-time, vertex, TTL) events in time
    order, exactly the spike traffic of the Section 4.1 network after
    removing dominated re-broadcasts.
    """
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range")
    if k < 0:
        raise ValidationError(f"k must be >= 0, got {k}")
    n = graph.n
    dist = np.full(n, -1, dtype=np.int64)
    best_ttl = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    best_ttl[source] = k
    spikes = 0
    bits = bit_width_for(max(0, k - 1))
    # events: (arrival_time, vertex, ttl_remaining_after_arrival)
    heap: List[Tuple[int, int, int]] = []
    if k >= 1:
        heads, lengths = graph.out_edges(source)
        for v, w in zip(heads.tolist(), lengths.tolist()):
            if v != source:
                heapq.heappush(heap, (int(w), v, k - 1))
                spikes += bits
    with timer("phase.simulate"):
        while heap:
            t = heap[0][0]
            if target is not None and dist[target] >= 0:
                break
            # drain the batch at time t, grouping by vertex: the node circuit
            # takes the max TTL over simultaneous arrivals
            batch: Dict[int, int] = {}
            while heap and heap[0][0] == t:
                _, v, ttl = heapq.heappop(heap)
                if ttl > batch.get(v, -1):
                    batch[v] = ttl
            for v, ttl in batch.items():
                if dist[v] < 0:
                    dist[v] = t
                if ttl <= best_ttl[v]:
                    continue  # dominated: an earlier-or-equal arrival had >= TTL
                best_ttl[v] = ttl
                if ttl >= 1:
                    heads, lengths = graph.out_edges(v)
                    for w_v, w_len in zip(heads.tolist(), lengths.tolist()):
                        if w_v != v:
                            heapq.heappush(heap, (t + int(w_len), w_v, ttl - 1))
                            spikes += bits
    if target is not None and dist[target] >= 0:
        simulated = int(dist[target])
    else:
        simulated = int(dist.max()) if (dist >= 0).any() else 0
    scale = ttl_scale_factor(k)
    cost = CostReport(
        algorithm="khop_pseudo",
        simulated_ticks=simulated * scale,
        loading_ticks=graph.m * bits,
        neuron_count=graph.n + graph.m * bits,  # O(m log k) circuit neurons
        synapse_count=graph.m * bits,
        spike_count=spikes,
        message_bits=bits,
        extras={"raw_ticks": float(simulated), "ttl_scale": float(scale)},
    )
    counter_inc("runs.khop_pseudo", 1)
    counter_inc("spikes.total", cost.spike_count)
    counter_inc("ticks.simulated", cost.simulated_ticks)
    counter_inc("cost.total_time", cost.total_time)
    return ShortestPathResult(dist=dist, source=source, cost=cost, k=k)


# --------------------------------------------------------------------------- #
# Gate-level compilation
# --------------------------------------------------------------------------- #


@dataclass
class CompiledKhopNetwork:
    """A Section 4.1 network compiled to threshold gates.

    ``arrival[v]`` is the per-vertex arrival-detector neuron; its first
    spike at tick ``t`` decodes to k-hop distance
    ``(t - 1 + node_depth[v]) / scale`` (``scale`` ticks per unit length).
    The ``source`` vertex's distance is 0 by construction.
    """

    net: Network
    graph: WeightedDigraph
    source: int
    k: int
    scale: int
    bits: int
    arrival: Dict[int, int]
    node_depth: Dict[int, int]
    out_bits: Dict[int, List[Signal]]
    out_valid: Dict[int, Signal]
    stimulus: Dict[int, List[int]]
    max_steps: int

    def decode_distances(self, first_spike: np.ndarray) -> np.ndarray:
        dist = np.full(self.graph.n, -1, dtype=np.int64)
        dist[self.source] = 0
        for v, det in self.arrival.items():
            t = int(first_spike[det])
            if t >= 0:
                dist[v] = (t - 1 + self.node_depth[v]) // self.scale
        return dist


def compile_khop_pseudo_gate_level(
    graph: WeightedDigraph,
    source: int,
    k: int,
    *,
    style: str = "wired",
) -> CompiledKhopNetwork:
    """Compile graph + Section-5 circuits into one recurrent SNN.

    Per vertex (with in-edges): a valid-gated max circuit over the in-edge
    TTL messages, an any-bit OR detecting ``k' >= 1``, and a depth-2
    decrementer; per edge: ``bits + 1`` synapses whose delay is the scaled
    edge length minus the receiving vertex's circuit depth, so that a
    message spends exactly ``scale * length`` ticks per hop.  A global
    clock latch supplies the bias line of the max circuits.
    """
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range")
    if k < 1:
        raise ValidationError(f"gate-level compilation requires k >= 1, got {k}")
    n = graph.n
    bits = bit_width_for(k - 1)
    net = Network()
    clock = net.add_neuron("clock", v_threshold=0.5, tau=1.0)
    net.add_synapse(clock, clock, weight=1.0, delay=1)

    in_edges: Dict[int, List[Tuple[int, int]]] = {v: [] for v in range(n)}
    for u, v, w in graph.edges():
        if u != v and v != source:
            in_edges[v].append((u, int(w)))

    # Source output wires: stimulated at t = 0 with TTL k - 1 and valid.
    out_bits: Dict[int, List[Signal]] = {}
    out_valid: Dict[int, Signal] = {}
    src_bit_ids = [
        net.add_neuron(f"src.b{j}", v_threshold=0.5, tau=1.0) for j in range(bits)
    ]
    src_valid_id = net.add_neuron("src.valid", v_threshold=0.5, tau=1.0)
    out_bits[source] = [Signal(nid, 0) for nid in src_bit_ids]
    out_valid[source] = Signal(src_valid_id, 0)

    # Build per-vertex circuits (ports at relative offset 0).
    builders: Dict[int, CircuitBuilder] = {}
    ports: Dict[int, List[Tuple[List[Signal], Signal]]] = {}
    arrival: Dict[int, int] = {}
    node_depth: Dict[int, int] = {}
    from repro.circuits.max_circuits import masked_max
    from repro.circuits.adders import subtract_one

    for v in range(n):
        if not in_edges[v]:
            continue
        b = CircuitBuilder(net, prefix=f"v{v}.")
        b._run = Signal(clock, 0)  # global always-on bias
        vports: List[Tuple[List[Signal], Signal]] = []
        for e_idx, (u, w) in enumerate(in_edges[v]):
            pbits = b.input_bits(f"e{e_idx}.bits", bits)
            pvalid = b.input_bits(f"e{e_idx}.valid", 1)[0]
            vports.append((pbits, pvalid))
        res = masked_max(
            b, [pb for pb, _ in vports], [pv for _, pv in vports], style=style
        )
        ge1 = b.or_gate(res.out_bits, name="ge1")
        dec_bits, dec_valid = subtract_one(b, res.out_bits, ge1)
        outs = b.align(dec_bits + [dec_valid])
        out_bits[v] = outs[:bits]
        out_valid[v] = outs[bits]
        det = b.or_gate([pv for _, pv in vports], name="arrival")
        arrival[v] = det.nid
        node_depth[v] = outs[bits].offset
        builders[v] = b
        ports[v] = vports

    depth_max = max(node_depth.values(), default=0)
    scale = depth_max + 1

    # Wire edges: u.out -> v.ports with delay scale*len - node_depth[v].
    for v, edges in in_edges.items():
        for e_idx, (u, w) in enumerate(edges):
            if u not in out_bits:
                continue  # u never emits (no in-edges and not the source)
            delay = scale * w - node_depth[v]
            assert delay >= 1
            pbits, pvalid = ports[v][e_idx]
            for j in range(bits):
                net.add_synapse(out_bits[u][j].nid, pbits[j].nid, weight=1.0, delay=delay)
            net.add_synapse(out_valid[u].nid, pvalid.nid, weight=1.0, delay=delay)

    stim_ids = [clock, src_valid_id] + [
        nid for nid, bit in zip(src_bit_ids, bits_from_int(k - 1, bits)) if bit
    ]
    max_steps = scale * k * max(1, graph.max_length()) + depth_max + 2
    return CompiledKhopNetwork(
        net=net,
        graph=graph,
        source=source,
        k=k,
        scale=scale,
        bits=bits,
        arrival=arrival,
        node_depth=node_depth,
        out_bits=out_bits,
        out_valid=out_valid,
        stimulus={0: stim_ids},
        max_steps=max_steps,
    )


def run_khop_gate_level(compiled: CompiledKhopNetwork) -> ShortestPathResult:
    """Execute a compiled Section-4.1 network and decode distances."""
    result = simulate(
        compiled.net,
        compiled.stimulus,
        engine="dense",
        max_steps=compiled.max_steps,
        stop_when_quiescent=False,
    )
    dist = compiled.decode_distances(result.first_spike)
    reached = dist[dist >= 0]
    cost = CostReport(
        algorithm="khop_pseudo+gates",
        simulated_ticks=int(reached.max()) * compiled.scale if reached.size else 0,
        loading_ticks=compiled.net.n_synapses,
        neuron_count=compiled.net.n_neurons,
        synapse_count=compiled.net.n_synapses,
        spike_count=result.total_spikes,
        message_bits=compiled.bits,
        extras={"scale": float(compiled.scale)},
    )
    return ShortestPathResult(
        dist=dist, source=compiled.source, cost=cost, k=compiled.k, sim=result
    )
