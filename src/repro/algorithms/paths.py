"""Path construction (paper Sections 3 and 4.3).

The spiking algorithms compute path *lengths*; recovering the paths
themselves requires remembering, at each vertex, a neighbor that delivered
the first (or round-optimal) spike — the paper latches the sender's
``log n``-bit ID (Section 3) at an ``O(k)``-factor neuron overhead for the
k-hop variants (Section 4.3).

Here the latched information is recovered equivalently from the computed
distances: ``u`` precedes ``v`` on a shortest path iff
``dist(u) + l(uv) == dist(v)`` (and, for k-hop paths, iff the hop budget
also decreases), which is exactly the predicate the latch gadget of Figure
1B captures in spiking form.  :func:`neuron_overhead_for_paths` reports the
extra-resource accounting the paper states.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.workloads.graph import WeightedDigraph

__all__ = ["reconstruct_path", "reconstruct_khop_path", "neuron_overhead_for_paths"]


def reconstruct_path(
    graph: WeightedDigraph,
    dist: np.ndarray,
    source: int,
    target: int,
) -> Optional[List[int]]:
    """Recover one shortest path from exact SSSP distances.

    Walks backward from ``target`` choosing any in-neighbor ``u`` with
    ``dist[u] + l(uv) == dist[v]``.  Returns ``None`` if the target is
    unreachable.  Raises if ``dist`` is not consistent with ``graph``.
    """
    if dist.shape != (graph.n,):
        raise ValidationError("dist length must equal graph.n")
    if dist[target] < 0:
        return None
    rev = graph.reverse()
    path = [target]
    v = target
    guard = 0
    while v != source:
        heads, lengths = rev.out_edges(v)  # in-edges of v in the original
        found = None
        for u, w in zip(heads.tolist(), lengths.tolist()):
            if dist[u] >= 0 and dist[u] + w == dist[v]:
                found = u
                break
        if found is None:
            raise ValidationError(
                f"distances inconsistent with graph at vertex {v}"
            )
        path.append(found)
        v = found
        guard += 1
        if guard > graph.n:
            raise ValidationError("cycle encountered; distances are not shortest")
    path.reverse()
    return path


def reconstruct_khop_path(
    graph: WeightedDigraph,
    source: int,
    target: int,
    k: int,
    dist_k: np.ndarray,
) -> Optional[List[int]]:
    """Recover one shortest ``<= k``-hop path.

    Uses a hop-indexed dynamic program seeded by the algorithm's reported
    target distance: finds hop counts ``h <= k`` and predecessors achieving
    ``dist_k[target]`` within ``h`` edges.  Returns ``None`` if the target
    is k-hop unreachable.
    """
    if dist_k[target] < 0:
        return None
    n = graph.n
    INF = np.iinfo(np.int64).max
    # d[h][v]: min length over paths with exactly <= h edges (standard DP)
    d = np.full((k + 1, n), INF, dtype=np.int64)
    d[:, source] = 0
    for h in range(1, k + 1):
        d[h] = d[h - 1]
        for i in range(graph.m):
            u, v, w = int(graph.tails[i]), int(graph.heads[i]), int(graph.lengths[i])
            if u == v or d[h - 1][u] == INF:
                continue
            cand = d[h - 1][u] + w
            if cand < d[h][v]:
                d[h][v] = cand
    if d[k][target] != dist_k[target]:
        raise ValidationError("dist_k inconsistent with graph")
    # walk back through the DP table
    path = [target]
    v, h = target, k
    rev = graph.reverse()
    while v != source:
        heads, lengths = rev.out_edges(v)
        step = None
        for u, w in zip(heads.tolist(), lengths.tolist()):
            if h >= 1 and d[h - 1][u] != INF and d[h - 1][u] + w == d[h][v]:
                step = u
                break
        if step is None:
            # the optimum at v uses fewer than h hops; shrink the budget
            h -= 1
            if h < 0:
                raise ValidationError("failed to trace k-hop path")
            continue
        path.append(step)
        v = step
        h -= 1
    path.reverse()
    return path


def neuron_overhead_for_paths(n: int, m: int, k: Optional[int] = None) -> int:
    """Extra neurons to *construct* paths rather than only lengths.

    Section 3: each vertex latches a ``ceil(log n)``-bit sender ID —
    ``O(n log n)`` extra neurons.  Section 4.3: the k-hop algorithms store
    per-hop information, a multiplicative ``O(k)`` factor on top.
    """
    bits = max(1, math.ceil(math.log2(max(2, n))))
    per_vertex = bits
    if k is not None:
        per_vertex *= max(1, k)
    return n * per_vertex
