"""Polynomial-time k-hop SSSP with distance-valued spike messages
(paper Section 4.2) and its SSSP specialization (Theorems 4.3 / 4.4).

All synapses share one delay ``x`` (the round length), so computation
proceeds in synchronous rounds.  Every message is a
``ceil(log2(n U))``-spike binary number: the length of some source path.
An edge ``uv`` adds ``l(uv)`` in transit (depth-``O(log nU)`` adder);
a node takes the minimum over simultaneously arriving messages
(depth-``O(log nU)`` min circuit); round ``r`` therefore delivers, at each
vertex, the minimum length over *exactly-r-edge* paths, and the prefix
minimum over rounds ``<= k`` is the k-hop distance.  The run terminates
after ``k`` rounds or when the destination first receives a message.

* :func:`spiking_khop_poly` — round-level executor (scales to benchmark
  sweeps); charges time ``R * x`` with ``x = Theta(log nU)`` and neurons
  ``O(m log nU)`` exactly as Theorem 4.3 accounts.
* :func:`spiking_sssp_poly` — SSSP variant: rounds until convergence
  (``R = alpha``, the hop count of the shortest-path tree's deepest
  terminal path; Theorem 4.4).
* :func:`compile_khop_poly_gate_level` — full construction: per-edge
  depth-2 add-constant circuits and per-vertex valid-gated min circuits
  compiled into one recurrent SNN, executed on the LIF engine, with
  distances decoded from the per-round output spikes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.results import ShortestPathResult
from repro.circuits.builder import CircuitBuilder, Signal
from repro.circuits.encoding import bit_width_for, int_from_bits
from repro.core.cost import CostReport
from repro.core.network import Network
from repro.core.run import simulate
from repro.errors import ValidationError
from repro.telemetry.metrics import counter_inc, timer
from repro.workloads.graph import WeightedDigraph

__all__ = [
    "spiking_khop_poly",
    "spiking_sssp_poly",
    "compile_khop_poly_gate_level",
    "CompiledKhopPolyNetwork",
    "run_khop_poly_gate_level",
    "poly_round_length",
]


def poly_round_length(n: int, U: int) -> int:
    """The paper's round length ``x = c * log(nU)`` (we take ``c = 1``)."""
    return max(1, math.ceil(math.log2(max(2, n * max(1, U)))))


def _message_bits(graph: WeightedDigraph, k: int) -> int:
    """Width ``lambda = ceil(log2)`` of the largest representable length.

    Values during rounds ``<= k`` are lengths of ``<= k``-edge paths,
    bounded by ``k * U < n * U`` — the paper's ``ceil(log (nU))``.
    """
    return bit_width_for(max(1, k) * max(1, graph.max_length()))


def spiking_khop_poly(
    graph: WeightedDigraph,
    source: int,
    k: int,
    *,
    target: Optional[int] = None,
    stop_at_target: bool = False,
) -> ShortestPathResult:
    """Round-level Section 4.2 executor.

    Returns the exact ``<= k``-hop distances (prefix minimum over rounds).
    With ``stop_at_target`` the run ends the first round the target
    receives any message (the paper's termination rule for the
    single-destination problem) — the reported target distance is then its
    hop-minimal path length, as in the Theorem 4.4 SSSP usage.
    """
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range")
    if k < 0:
        raise ValidationError(f"k must be >= 0, got {k}")
    if stop_at_target and target is None:
        raise ValidationError("stop_at_target requires a target")
    n = graph.n
    INF = np.iinfo(np.int64).max
    best = np.full(n, INF, dtype=np.int64)
    best[source] = 0
    current: Dict[int, int] = {source: 0}
    rounds = 0
    spikes = 0
    bits = _message_bits(graph, k)
    with timer("phase.rounds"):
        for r in range(1, k + 1):
            nxt: Dict[int, int] = {}
            for u, d in current.items():
                heads, lengths = graph.out_edges(u)
                for v, w in zip(heads.tolist(), lengths.tolist()):
                    if v == u:
                        continue
                    cand = d + int(w)
                    if cand < nxt.get(v, INF):
                        nxt[v] = cand
                    spikes += bits
            rounds = r
            for v, d in nxt.items():
                if d < best[v]:
                    best[v] = d
            current = nxt
            if not current:
                break
            if stop_at_target and target is not None and target in nxt:
                break
    dist = np.where(best == INF, -1, best)
    x = poly_round_length(n, graph.max_length())
    cost = CostReport(
        algorithm="khop_poly",
        simulated_ticks=rounds * x,
        loading_ticks=graph.m * bits,
        neuron_count=graph.n * bits + graph.m * bits,
        synapse_count=graph.m * bits,
        spike_count=spikes,
        rounds=rounds,
        round_length=x,
        message_bits=bits,
    )
    counter_inc("runs.khop_poly", 1)
    counter_inc("spikes.total", cost.spike_count)
    counter_inc("ticks.simulated", cost.simulated_ticks)
    counter_inc("cost.total_time", cost.total_time)
    return ShortestPathResult(dist=dist, source=source, cost=cost, k=k)


def spiking_sssp_poly(
    graph: WeightedDigraph,
    source: int,
    *,
    target: Optional[int] = None,
) -> ShortestPathResult:
    """SSSP via the polynomial algorithm (Theorem 4.4): ``k = alpha``.

    Runs rounds until no message improves any distance (at most ``n - 1``
    rounds); the executed round count is exactly the largest hop count of a
    shortest path, the paper's ``alpha`` when a single target is given.
    """
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range")
    n = graph.n
    INF = np.iinfo(np.int64).max
    best = np.full(n, INF, dtype=np.int64)
    best[source] = 0
    hops = np.zeros(n, dtype=np.int64)  # round at which each best was set
    current: Dict[int, int] = {source: 0}
    rounds = 0
    spikes = 0
    bits = _message_bits(graph, max(1, n - 1))
    with timer("phase.rounds"):
        for r in range(1, n):
            nxt: Dict[int, int] = {}
            for u, d in current.items():
                heads, lengths = graph.out_edges(u)
                for v, w in zip(heads.tolist(), lengths.tolist()):
                    if v == u:
                        continue
                    cand = d + int(w)
                    if cand < nxt.get(v, INF):
                        nxt[v] = cand
                    spikes += bits
            rounds = r
            # only forward messages that improve: non-improving values cannot
            # lie on any shortest path, and stopping when none improve bounds
            # the executed rounds by alpha (the deepest shortest-path hop count)
            current = {}
            for v, d in nxt.items():
                if d < best[v]:
                    best[v] = d
                    hops[v] = r
                    current[v] = d
            if not current:
                break
    dist = np.where(best == INF, -1, best)
    # alpha: hop count of the (single-target) shortest path when a target is
    # given, else the deepest shortest-path hop count over all vertices
    alpha = int(hops[target]) if target is not None else rounds
    x = poly_round_length(n, graph.max_length())
    cost = CostReport(
        algorithm="sssp_poly",
        simulated_ticks=rounds * x,
        loading_ticks=graph.m * bits,
        neuron_count=graph.n * bits + graph.m * bits,
        synapse_count=graph.m * bits,
        spike_count=spikes,
        rounds=rounds,
        round_length=x,
        message_bits=bits,
        extras={"alpha": float(alpha)},
    )
    counter_inc("runs.sssp_poly", 1)
    counter_inc("spikes.total", cost.spike_count)
    counter_inc("ticks.simulated", cost.simulated_ticks)
    counter_inc("cost.total_time", cost.total_time)
    return ShortestPathResult(dist=dist, source=source, cost=cost, k=None)


# --------------------------------------------------------------------------- #
# Gate-level compilation
# --------------------------------------------------------------------------- #


@dataclass
class CompiledKhopPolyNetwork:
    """A Section 4.2 network compiled to threshold gates.

    Vertex ``v``'s output wires fire at ticks ``r * x`` (round boundaries);
    the decoded value at round ``r`` is the minimum length over
    exactly-``r``-edge source paths to ``v``.
    """

    net: Network
    graph: WeightedDigraph
    source: int
    k: int
    x: int
    bits: int
    out_bits: Dict[int, List[Signal]]
    out_valid: Dict[int, Signal]
    stimulus: Dict[int, List[int]]
    max_steps: int

    def decode_distances(self, spike_events: Dict[int, np.ndarray]) -> np.ndarray:
        """Prefix-minimum readout over the ``k`` round boundaries."""
        n = self.graph.n
        INF = np.iinfo(np.int64).max
        best = np.full(n, INF, dtype=np.int64)
        best[self.source] = 0
        for r in range(1, self.k + 1):
            tick = r * self.x
            fired = spike_events.get(tick)
            fired_set = set(fired.tolist()) if fired is not None else set()
            for v, valid in self.out_valid.items():
                if valid.nid not in fired_set:
                    continue
                bits = [sig.nid in fired_set for sig in self.out_bits[v]]
                val = int_from_bits(bits)
                if val < best[v]:
                    best[v] = val
        return np.where(best == INF, -1, best)


def compile_khop_poly_gate_level(
    graph: WeightedDigraph,
    source: int,
    k: int,
    *,
    style: str = "wired",
) -> CompiledKhopPolyNetwork:
    """Compile the Section 4.2 construction into one recurrent SNN.

    Each vertex's circuit contains, per in-edge, a depth-2 add-constant
    (the edge length, Figure 4 style) followed by a valid-gated min over
    all in-edges (Section 5 with complemented bits).  All vertex outputs
    fire on common round boundaries ``r * x``, with ``x`` one tick more
    than the deepest vertex circuit — the uniform synaptic delay the paper
    prescribes, realized as ``x - depth(v)`` padding on each incoming wire.
    """
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range")
    if k < 1:
        raise ValidationError(f"gate-level compilation requires k >= 1, got {k}")
    n = graph.n
    bits = _message_bits(graph, k)
    net = Network()
    clock = net.add_neuron("clock", v_threshold=0.5, tau=1.0)
    net.add_synapse(clock, clock, weight=1.0, delay=1)

    in_edges: Dict[int, List[Tuple[int, int]]] = {v: [] for v in range(n)}
    for u, v, w in graph.edges():
        if u != v:
            in_edges[v].append((u, int(w)))

    out_bits: Dict[int, List[Signal]] = {}
    out_valid: Dict[int, Signal] = {}
    # Source initial message: value 0 -> only the valid wire spikes at t=0.
    src_bit_ids = [
        net.add_neuron(f"src.b{j}", v_threshold=0.5, tau=1.0) for j in range(bits)
    ]
    src_valid_id = net.add_neuron("src.valid", v_threshold=0.5, tau=1.0)

    from repro.circuits.adders import add_constant
    from repro.circuits.max_circuits import masked_min

    builders: Dict[int, CircuitBuilder] = {}
    ports: Dict[int, List[Tuple[List[Signal], Signal]]] = {}
    node_depth: Dict[int, int] = {}
    for v in range(n):
        if not in_edges[v]:
            continue
        b = CircuitBuilder(net, prefix=f"v{v}.")
        b._run = Signal(clock, 0)
        vports: List[Tuple[List[Signal], Signal]] = []
        summed: List[List[Signal]] = []
        valids: List[Signal] = []
        for e_idx, (u, w) in enumerate(in_edges[v]):
            pbits = b.input_bits(f"e{e_idx}.bits", bits)
            pvalid = b.input_bits(f"e{e_idx}.valid", 1)[0]
            vports.append((pbits, pvalid))
            sbits, svalid = add_constant(
                b, pbits, w, pvalid, name=f"e{e_idx}.add", out_width=bits
            )
            summed.append(sbits)
            valids.append(svalid)
        res = masked_min(b, summed, valids, style=style)
        outs = b.align(list(res.out_bits) + [res.valid])
        out_bits[v] = outs[:bits]
        out_valid[v] = outs[bits]
        node_depth[v] = outs[bits].offset
        builders[v] = b
        ports[v] = vports

    depth_max = max(node_depth.values(), default=0)
    x = depth_max + 1

    # Vertex v's outputs fire at ticks r*x; pad each incoming wire so the
    # next outputs fire at (r+1)*x: pad = x - node_depth[v].
    for v, edges in in_edges.items():
        if not edges:
            continue
        pad = x - node_depth[v]
        assert pad >= 1
        for e_idx, (u, w) in enumerate(edges):
            sources: List[Tuple[List[Signal], Signal]] = []
            if u == source:
                # the initial (round 0) message rides the dedicated wires
                sources.append(
                    ([Signal(nid, 0) for nid in src_bit_ids], Signal(src_valid_id, 0))
                )
            if u in out_bits:
                # later rounds relay through u's vertex circuit (this also
                # covers the source itself when it has in-edges)
                sources.append((out_bits[u], out_valid[u]))
            pbits, pvalid = ports[v][e_idx]
            for ubits, uvalid in sources:
                for j in range(bits):
                    net.add_synapse(ubits[j].nid, pbits[j].nid, weight=1.0, delay=pad)
                net.add_synapse(uvalid.nid, pvalid.nid, weight=1.0, delay=pad)
    stim = {0: [clock, src_valid_id]}
    max_steps = k * x + 1
    return CompiledKhopPolyNetwork(
        net=net,
        graph=graph,
        source=source,
        k=k,
        x=x,
        bits=bits,
        out_bits=out_bits,
        out_valid=out_valid,
        stimulus=stim,
        max_steps=max_steps,
    )


def run_khop_poly_gate_level(compiled: CompiledKhopPolyNetwork) -> ShortestPathResult:
    """Execute a compiled Section-4.2 network and decode distances."""
    result = simulate(
        compiled.net,
        compiled.stimulus,
        engine="dense",
        max_steps=compiled.max_steps,
        stop_when_quiescent=False,
        record_spikes=True,
    )
    assert result.spike_events is not None
    dist = compiled.decode_distances(result.spike_events)
    cost = CostReport(
        algorithm="khop_poly+gates",
        simulated_ticks=compiled.k * compiled.x,
        loading_ticks=compiled.net.n_synapses,
        neuron_count=compiled.net.n_neurons,
        synapse_count=compiled.net.n_synapses,
        spike_count=result.total_spikes,
        rounds=compiled.k,
        round_length=compiled.x,
        message_bits=compiled.bits,
    )
    return ShortestPathResult(
        dist=dist, source=compiled.source, cost=cost, k=compiled.k, sim=result
    )
