"""(1 + o(1))-approximate k-hop SSSP (paper Section 7, after Nanongkai).

For each scale ``i`` the edge lengths are rounded to
``l_i(uv) = ceil(2 k l(uv) / (eps D_i))`` with ``D_i = 2^i`` and
``eps = 1 / log n``; the pseudopolynomial spiking SSSP of Section 3 runs on
the reweighted graph, terminated early at time ``(1 + 2/eps) k``.  The
combined estimate is

    d~_k(v) = min_i { (eps D_i / 2k) * dist^{l_i}(v)
                      : dist^{l_i}(v) <= (1 + 2/eps) k }.

Guarantee: ``dist(v) <= d~_k(v) <= (1 + eps) dist_k(v)``, where ``dist`` is
the unrestricted and ``dist_k`` the k-hop distance.  (The paper's Theorem
7.1 prints the lower bound as ``dist_k(v)``; with ``dist^{l_i}`` defined as
the *unrestricted* distance — as both the theorem statement and the spiking
implementation do — paths of between ``k+1`` and ``(1 + 2/eps) k`` hops can
legitimately undercut ``dist_k``, so the sharp lower bound is the
unrestricted ``dist(v)``, matching Nanongkai's original statement.  Our
randomized tests exhibit such cases; see EXPERIMENTS.md.)

Scales ``i > log(2 k U / eps)`` all collapse to unit lengths, so
``O(log(k U log n))`` runs suffice.  The payoff over the exact Section 4.2
algorithm is neuron count: ``n`` neurons per scale —
``O(n log(k U log n))`` total — versus the exact algorithm's
``O(m log(n U))`` (Theorem 7.2 discussion).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.algorithms.results import ShortestPathResult
from repro.algorithms.sssp_pseudo import spiking_sssp_pseudo
from repro.core.cost import CostReport
from repro.errors import ValidationError
from repro.telemetry.metrics import counter_inc, observe
from repro.workloads.graph import WeightedDigraph

__all__ = ["spiking_khop_approx", "approx_epsilon"]


def approx_epsilon(n: int) -> float:
    """The paper's ``eps = 1 / log n`` (base-2; clamped for tiny graphs)."""
    return 1.0 / max(1.0, math.log2(max(2, n)))


def spiking_khop_approx(
    graph: WeightedDigraph,
    source: int,
    k: int,
    *,
    target: Optional[int] = None,
    epsilon: Optional[float] = None,
    on_crossbar: bool = False,
) -> ShortestPathResult:
    """Approximate ``<= k``-hop distances within a ``(1 + eps)`` factor.

    Returns real-valued approximate distances: for every k-hop-reachable
    vertex, ``dist_k(v) <= dist[v] <= (1 + eps) dist_k(v)`` (Theorem 7.1).
    Vertices no scale reaches within its early-termination horizon report
    ``-1``.  (For vertices reachable only with more than ``k`` hops the
    estimate, when produced, is at least the unrestricted distance — the
    same behavior as the paper's algorithm.)

    With ``on_crossbar`` every per-scale run executes on crossbar hardware
    through one :class:`~repro.embedding.embed.EmbeddingSession`: the
    Section 4.4 unembed/re-embed device applied across the algorithm's
    ``O(log(kU log n))`` reweighted graphs, charging ``O(m)`` delay
    reprogrammings per scale (reported in ``extras['reprogram_ops']``).
    """
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range")
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    n = graph.n
    eps = approx_epsilon(n) if epsilon is None else float(epsilon)
    if eps <= 0:
        raise ValidationError(f"epsilon must be positive, got {eps}")
    U = max(1, graph.max_length())
    horizon = math.ceil((1.0 + 2.0 / eps) * k)
    i_max = max(0, math.ceil(math.log2(max(2.0, 2.0 * k * U / eps))))

    best = np.full(n, np.inf, dtype=np.float64)
    best[source] = 0.0
    total_ticks = 0
    total_spikes = 0
    total_neurons = 0
    excess_ticks = 0
    runs = 0
    session = None
    if on_crossbar:
        from repro.embedding.embed import EmbeddingSession, embedded_sssp

        session = EmbeddingSession(n=n)
    for i in range(i_max + 1):
        d_i = float(1 << i)
        factor = 2.0 * k / (eps * d_i)
        scaled = WeightedDigraph.from_arrays(
            n,
            graph.tails,
            graph.heads,
            np.maximum(1, np.ceil(graph.lengths * factor)).astype(np.int64),
        )
        if session is not None:
            from repro.embedding.embed import embedded_sssp

            emb = session.embed(scaled)
            sub = embedded_sssp(scaled, source, embedded=emb)
            # crossbar ticks are scaled by the embedding; convert back to
            # graph-length units before the early-termination filter
            sub_dist = sub.dist
            total_neurons = emb.net.n_neurons  # one crossbar, reused
        else:
            sub = spiking_sssp_pseudo(
                scaled, source, max_length_hint=horizon, engine="event"
            )
            sub_dist = sub.dist
            total_neurons += n
        runs += 1
        total_ticks += min(sub.cost.simulated_ticks, horizon)
        excess_ticks += max(0, sub.cost.simulated_ticks - horizon)
        total_spikes += sub.cost.spike_count
        observe("approx.scale_ticks", min(sub.cost.simulated_ticks, horizon))
        reached = (sub_dist >= 0) & (sub_dist <= horizon)
        est = sub_dist * (eps * d_i / (2.0 * k))
        best = np.where(reached & (est < best), est, best)
    dist = np.where(np.isinf(best), -1.0, best)
    cost = CostReport(
        algorithm="khop_approx",
        simulated_ticks=int(total_ticks),
        loading_ticks=graph.m,  # the graph loads once; delays reprogram per scale
        neuron_count=total_neurons,
        synapse_count=graph.m,
        spike_count=total_spikes,
        extras={
            "epsilon": eps,
            "scales": float(runs),
            "horizon": float(horizon),
            **(
                {"reprogram_ops": float(session.reprogram_ops)}
                if session is not None
                else {}
            ),
        },
    )
    # spikes.total / ticks.simulated accumulate through the per-scale
    # spiking_sssp_pseudo sub-runs; counting here again would double-count.
    # Sub-runs count their raw simulated ticks, but the approx model only
    # charges up to the early-termination horizon per scale — take the
    # clamped excess back out so the counter matches this cost report.
    if excess_ticks:
        counter_inc("ticks.simulated", -excess_ticks)
    counter_inc("runs.khop_approx", 1)
    counter_inc("approx.scales", runs)
    return ShortestPathResult(dist=dist, source=source, cost=cost, k=k)
