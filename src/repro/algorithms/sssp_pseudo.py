"""Pseudopolynomial spiking SSSP (paper Section 3; Aibara et al. 1991,
Aimone et al. 2019).

The graph *is* the network: one neuron per vertex, one synapse per edge
whose **delay equals the edge length**; every neuron propagates only the
first spike it receives.  The source is stimulated at tick 0 and a spike
arriving at vertex ``v`` at tick ``t`` witnesses a source-to-``v`` path of
length exactly ``t`` — spike timing plays the role of Dijkstra's priority
queue.  First-spike times are therefore the exact distances.

Complexity (Theorem 4.1): execution time ``O(L)`` plus ``O(m)`` loading —
``O(L + m)`` with O(1)-time data movement, ``O(nL + m)`` after the crossbar
embedding charge.  ``n`` neurons, ``m`` synapses.

Two constructions of "propagate only the first spike":

* ``use_gadgets=False`` (default) — the engines' idealized ``one_shot``
  neuron flag.
* ``use_gadgets=True`` — the explicit Figure-1B latch-inhibition gadget
  (2 neurons + 3 synapses per vertex).  First-spike times are identical;
  a relayed duplicate may occur inside the gadget's two-tick inhibition
  window, which only costs extra spikes.  This level requires all edge
  lengths ``>= 3`` so duplicates cannot outrun inhibition arbitrarily; the
  driver scales the graph when needed and rescales the reported distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.cache import default_build_cache
from repro.core.cost import CostReport
from repro.core.network import Network
from repro.core.result import SimulationResult
from repro.core.run import simulate
from repro.core.transient import FaultModel
from repro.algorithms.results import ShortestPathResult
from repro.circuits.gates import build_one_shot_gadget
from repro.errors import ValidationError
from repro.telemetry.hooks import EngineHooks
from repro.telemetry.metrics import counter_inc, timer
from repro.workloads.graph import WeightedDigraph

__all__ = ["spiking_sssp_pseudo", "sssp_network", "sssp_plan", "sssp_decode", "SsspPlan"]


def _check_source(graph: WeightedDigraph, source: int) -> None:
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range for n={graph.n}")


def sssp_network(graph: WeightedDigraph, *, use_gadgets: bool = False):
    """The Section-3 delay-encoded network for ``graph``; returns
    ``(net, node_ids)``.

    Builds are cached in :data:`~repro.core.cache.default_build_cache`
    keyed by the graph's structure fingerprint, so repeated queries of one
    graph (all-pairs drivers, fault sweeps) skip the ``O(m)`` Python
    construction and compilation entirely — the software analogue of
    loading the graph into hardware once.  Treat the returned network as
    frozen: do not add neurons or synapses to it.
    """
    key = ("sssp_pseudo", bool(use_gadgets), graph.structure_key())

    def build():
        net = Network()
        n = graph.n
        if use_gadgets:
            node_ids = []
            for v in range(n):
                gadget = build_one_shot_gadget(net, name=f"v{v}")
                node_ids.append(gadget.relay)
        else:
            node_ids = [net.add_neuron(f"v{v}", one_shot=True) for v in range(n)]
        for u, v, w in graph.edges():
            if u == v:
                continue  # self-loops cannot shorten any path
            net.add_synapse(node_ids[u], node_ids[v], weight=1.0, delay=int(w))
        net.compile()
        return net, node_ids

    return default_build_cache.get_or_build(key, build)


@dataclass(frozen=True)
class SsspPlan:
    """Everything needed to execute one Section-3 SSSP query on an engine.

    The plan separates *what to simulate* (network, stimulus, termination
    conditions) from *how* (which engine, solo or coalesced into a batch),
    so the solo driver :func:`spiking_sssp_pseudo` and the
    :mod:`repro.service` batch adapters run byte-identical simulations and
    share one decoder.  ``net`` comes from the structure-keyed build cache
    and must be treated as frozen.
    """

    graph: WeightedDigraph
    source: int
    target: Optional[int]
    use_gadgets: bool
    scale: int
    net: Network
    node_ids: Tuple[int, ...]
    stimulus: Tuple[int, ...]
    max_steps: int
    terminal: Optional[int]
    watch: Optional[Tuple[int, ...]]


def sssp_plan(
    graph: WeightedDigraph,
    source: int,
    *,
    target: Optional[int] = None,
    use_gadgets: bool = False,
    max_length_hint: Optional[int] = None,
) -> SsspPlan:
    """Build (or fetch from cache) the simulation plan for one SSSP query."""
    _check_source(graph, source)
    if target is not None and not (0 <= target < graph.n):
        raise ValidationError(f"target {target} out of range")
    n = graph.n
    scale = 1
    g = graph
    if use_gadgets and graph.m and graph.min_length() < 3:
        # gadget inhibition takes 2 ticks; stretch edges so no second spike
        # can slip through before it engages
        scale = 3
        g = graph.scaled(scale)

    with timer("phase.build"):
        net, node_ids = sssp_network(g, use_gadgets=use_gadgets)

    horizon = max_length_hint
    if horizon is None:
        horizon = (n - 1) * max(1, g.max_length()) + 1
    else:
        horizon = horizon * scale + 1
    return SsspPlan(
        graph=graph,
        source=source,
        target=target,
        use_gadgets=use_gadgets,
        scale=scale,
        net=net,
        node_ids=tuple(node_ids),
        stimulus=(node_ids[source],),
        max_steps=int(horizon),
        terminal=node_ids[target] if target is not None else None,
        watch=None if target is not None else tuple(node_ids),
    )


def sssp_decode(plan: SsspPlan, result: SimulationResult) -> ShortestPathResult:
    """Decode one engine run of ``plan`` into distances and cost accounting."""
    with timer("phase.decode"):
        dist = result.first_spike[np.asarray(plan.node_ids, dtype=np.int64)].copy()
        if plan.scale != 1:
            reached = dist >= 0
            dist[reached] //= plan.scale
    simulated = int(dist.max()) if (dist >= 0).any() else 0
    if plan.target is not None and dist[plan.target] >= 0:
        simulated = int(dist[plan.target])
    cost = CostReport(
        algorithm="sssp_pseudo" + ("+gadgets" if plan.use_gadgets else ""),
        simulated_ticks=simulated,
        loading_ticks=plan.graph.m,
        neuron_count=plan.net.n_neurons,
        synapse_count=plan.net.n_synapses,
        spike_count=result.total_spikes,
    )
    counter_inc("runs.sssp_pseudo", 1)
    counter_inc("spikes.total", cost.spike_count)
    counter_inc("ticks.simulated", cost.simulated_ticks)
    counter_inc("cost.total_time", cost.total_time)
    return ShortestPathResult(dist=dist, source=plan.source, cost=cost, sim=result)


def spiking_sssp_pseudo(
    graph: WeightedDigraph,
    source: int,
    *,
    target: Optional[int] = None,
    use_gadgets: bool = False,
    engine: str = "event",
    max_length_hint: Optional[int] = None,
    faults: Optional[FaultModel] = None,
    hooks: Optional[EngineHooks] = None,
    record_spikes: bool = False,
    verify: bool = False,
) -> ShortestPathResult:
    """Single-source shortest paths by delay-encoded spike propagation.

    With ``target`` given, the run terminates when the target's neuron
    first fires (Definition 3's terminal neuron); distances of vertices
    farther than the target are then left ``UNREACHABLE``.  Otherwise the
    run continues until every reachable vertex has fired.

    ``max_length_hint`` optionally caps the simulated horizon; by default
    the safe bound ``(n - 1) * U`` is used.  ``faults`` injects transient
    faults into the run, and ``hooks`` (e.g. a
    :class:`~repro.telemetry.trace.TraceRecorder`) is forwarded to the
    engine for per-tick event tracing.  The network build is cached per
    graph structure (see :func:`sssp_network`), so repeated sources pay
    only the spiking phase.  The simulation parameters come from
    :func:`sssp_plan` and the result decoding from :func:`sssp_decode` —
    the same pair the :mod:`repro.service` coalescing adapters use, which
    is what makes served results identical to this solo driver.
    ``verify=True`` lints the compiled network first (entry point = the
    stimulated source neuron) and raises
    :class:`~repro.errors.StaticCheckError` on structural violations.
    """
    plan = sssp_plan(
        graph,
        source,
        target=target,
        use_gadgets=use_gadgets,
        max_length_hint=max_length_hint,
    )
    if verify:
        from repro.staticcheck.rules import lint_network

        lint_network(
            plan.net.compile(),
            subject=f"sssp_pseudo(n={graph.n}, source={source})",
            entries=plan.stimulus,
        ).raise_if_errors()
    with timer("phase.simulate"):
        result = simulate(
            plan.net,
            list(plan.stimulus),
            engine=engine,
            max_steps=plan.max_steps,
            terminal=plan.terminal,
            watch=None if plan.watch is None else list(plan.watch),
            record_spikes=record_spikes,
            faults=faults,
            hooks=hooks,
        )
    return sssp_decode(plan, result)
