"""Neuromorphic shortest-path algorithms (paper Sections 3, 4, and 7).

Every algorithm is provided at up to two fidelity levels:

* **SNN / event level** — the graph itself is the network (one neuron or
  one small neuron group per graph node, one synapse per edge whose delay
  encodes length); runs on the event-driven LIF engine and scales to the
  benchmark sweeps.  Time is reported in simulated ticks together with the
  circuit-depth scale factors the paper charges.
* **Gate level** — the graph *and* the per-node/per-edge arithmetic
  circuits of Section 5 are compiled into one recurrent SNN of threshold
  gates, demonstrating the complete construction end to end (used on small
  graphs; integration tests prove exact agreement with the references).

Contents:

* :mod:`~repro.algorithms.sssp_pseudo` — Section 3 pseudopolynomial SSSP
  (delay-encoded Dijkstra, ``O(L + m)``).
* :mod:`~repro.algorithms.khop_pseudo` — Section 4.1 pseudopolynomial
  k-hop SSSP with TTL messages (``O((L + m) log k)``).
* :mod:`~repro.algorithms.khop_poly` — Section 4.2 polynomial k-hop SSSP
  with distance messages (``O(k log(nU) + m)``), plus the SSSP variant of
  Theorem 4.4.
* :mod:`~repro.algorithms.approx` — Section 7 ``(1 + o(1))``-approximate
  k-hop SSSP adapted from Nanongkai's CONGEST algorithm.
* :mod:`~repro.algorithms.paths` — Section 4.3 path construction.
* :mod:`~repro.algorithms.reach` — k-hop reachability on the unit-delay
  (hop-metric) network, the second batchable query family served by
  :mod:`repro.service`.
"""

from repro.algorithms.results import ShortestPathResult
from repro.algorithms.all_pairs import all_pairs_on_crossbar, all_pairs_shortest_paths
from repro.algorithms.reach import khop_reach_network, spiking_khop_reach
from repro.algorithms.sssp_pseudo import spiking_sssp_pseudo, sssp_network
from repro.algorithms.khop_pseudo import (
    compile_khop_pseudo_gate_level,
    spiking_khop_pseudo,
)
from repro.algorithms.khop_poly import (
    compile_khop_poly_gate_level,
    spiking_khop_poly,
    spiking_sssp_poly,
)
from repro.algorithms.approx import spiking_khop_approx
from repro.algorithms.paths import reconstruct_path, reconstruct_khop_path

__all__ = [
    "ShortestPathResult",
    "all_pairs_shortest_paths",
    "all_pairs_on_crossbar",
    "spiking_sssp_pseudo",
    "sssp_network",
    "spiking_khop_reach",
    "khop_reach_network",
    "spiking_khop_pseudo",
    "compile_khop_pseudo_gate_level",
    "spiking_khop_poly",
    "spiking_sssp_poly",
    "compile_khop_poly_gate_level",
    "spiking_khop_approx",
    "reconstruct_path",
    "reconstruct_khop_path",
]
