"""Gate-level SSSP with predecessor latching (paper Section 3's paths).

"Each node has a unique ID from 0 to n-1.  When node v receives its first
spike from node u, it sends a binary encoding of its ID to its neighbors,
and latches (remembers) the ID u."

The compiled network realizes that sentence literally:

* a one-shot relay per vertex (delay-encoded edges, as in
  :mod:`repro.algorithms.sssp_pseudo`);
* per vertex, ``ceil(log n)`` *broadcast* neurons that fire the vertex's ID
  bits one tick after its relay fires, traveling to each neighbor over the
  same edge delay;
* per vertex, ``ceil(log n)`` *capture* gates opened only during the tick
  right after the vertex's first spike (the relay is one-shot, so the
  window opens exactly once), each feeding a self-looping latch
  (Figure 1B) that holds the predecessor bit forever.

The timing works out because the winning predecessor's ID bits arrive at
``dist(v) + 1``, exactly when the capture window is open.  When several
predecessors are tied to the tick, their IDs OR together in the latches —
the classic wired-OR tie artifact; the driver reports such vertices as
unresolved unless the OR happens to name a valid predecessor.

Resource cost: ``O(n log n)`` extra neurons — the Section 3 accounting —
on top of the base ``n`` relays and ``m`` synapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.algorithms.results import ShortestPathResult
from repro.circuits.encoding import bit_width_for, int_from_bits
from repro.core.cost import CostReport
from repro.core.network import Network
from repro.core.run import simulate
from repro.errors import ValidationError
from repro.workloads.graph import WeightedDigraph

__all__ = ["SsspWithPredecessors", "sssp_with_predecessor_latching"]


@dataclass
class SsspWithPredecessors:
    """Distances plus spiking-latched predecessors.

    ``pred[v]`` is the latched predecessor id, ``-1`` for the source and
    unreached vertices, and ``-2`` where tied arrivals corrupted the latch
    (the OR of the tied IDs named no valid predecessor).
    """

    dist: np.ndarray
    pred: np.ndarray
    cost: CostReport
    source: int

    def path_to(self, target: int) -> Optional[List[int]]:
        """Walk the latched predecessors back to the source."""
        if self.dist[target] < 0:
            return None
        path = [target]
        v = target
        guard = 0
        while v != self.source:
            p = int(self.pred[v])
            if p < 0:
                raise ValidationError(
                    f"vertex {v} has no usable latched predecessor"
                )
            path.append(p)
            v = p
            guard += 1
            if guard > self.dist.size:
                raise ValidationError("latched predecessors contain a cycle")
        path.reverse()
        return path


def sssp_with_predecessor_latching(
    graph: WeightedDigraph,
    source: int,
) -> SsspWithPredecessors:
    """Compile and run the Section-3 construction with ID latching.

    Edge lengths must be at least 2 so ID bits (sent one tick after the
    relay spike) cannot outrun the next relay hop; the driver scales the
    graph by 2 when needed and rescales the reported distances.
    """
    if not (0 <= source < graph.n):
        raise ValidationError(f"source {source} out of range")
    n = graph.n
    bits = bit_width_for(max(1, n - 1))
    scale = 2 if graph.m and graph.min_length() < 2 else 1
    g = graph.scaled(scale) if scale != 1 else graph

    net = Network()
    relays = [net.add_neuron(f"v{v}.relay", one_shot=True) for v in range(n)]
    # broadcast neurons: fire the vertex's ID bits one tick after its relay
    broadcast: List[List[int]] = []
    for v in range(n):
        row = []
        for j in range(bits):
            b = net.add_neuron(f"v{v}.id{j}", v_threshold=0.5, tau=1.0)
            if (v >> j) & 1:
                net.add_synapse(relays[v], b, weight=1.0, delay=1)
            row.append(b)
        broadcast.append(row)
    # capture gates + latches per vertex
    capture: List[List[int]] = []
    latch: List[List[int]] = []
    for v in range(n):
        crow, lrow = [], []
        for j in range(bits):
            c = net.add_neuron(f"v{v}.cap{j}", v_threshold=1.5, tau=1.0)
            l = net.add_neuron(f"v{v}.latch{j}", v_threshold=0.5, tau=1.0)
            net.add_synapse(relays[v], c, weight=1.0, delay=1)  # window
            net.add_synapse(c, l, weight=1.0, delay=1)
            net.add_synapse(l, l, weight=1.0, delay=1)  # hold forever
            crow.append(c)
            lrow.append(l)
        capture.append(crow)
        latch.append(lrow)
    # edges: relay pulse + ID bit wires
    for u, v, w in g.edges():
        if u == v:
            continue
        net.add_synapse(relays[u], relays[v], weight=1.0, delay=int(w))
        for j in range(bits):
            net.add_synapse(
                broadcast[u][j], capture[v][j], weight=1.0, delay=int(w)
            )

    horizon = (n - 1) * max(1, g.max_length()) + 3
    # no early stop: the last vertex's latch settles two ticks after its
    # relay fires, and the holding latches keep the network active anyway
    result = simulate(
        net,
        [relays[source]],
        engine="event",
        max_steps=int(horizon),
    )
    dist = result.first_spike[np.asarray(relays, dtype=np.int64)].copy()
    reached = dist >= 0
    if scale != 1:
        dist[reached] //= scale

    pred = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        if v == source or dist[v] < 0:
            continue
        latched_bits = [result.fired(latch[v][j]) for j in range(bits)]
        candidate = int_from_bits(latched_bits)
        # validate against the graph (ties can OR several IDs together)
        ok = False
        if 0 <= candidate < n and dist[candidate] >= 0:
            heads, lengths = graph.out_edges(candidate)
            for h, w in zip(heads.tolist(), lengths.tolist()):
                if h == v and dist[candidate] + w == dist[v]:
                    ok = True
                    break
        pred[v] = candidate if ok else -2

    cost = CostReport(
        algorithm="sssp_pseudo+id_latching",
        simulated_ticks=int(dist[reached].max()) if reached.any() else 0,
        loading_ticks=net.n_synapses,
        neuron_count=net.n_neurons,
        synapse_count=net.n_synapses,
        spike_count=result.total_spikes,
        message_bits=bits,
    )
    return SsspWithPredecessors(dist=dist, pred=pred, cost=cost, source=source)
