"""Common result type for the shortest-path algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cost import CostReport
from repro.core.result import SimulationResult

__all__ = ["ShortestPathResult", "UNREACHABLE"]

#: Distance value reported for vertices no admissible path reaches.
UNREACHABLE: int = -1


@dataclass
class ShortestPathResult:
    """Distances (and cost accounting) from one algorithm execution.

    Attributes
    ----------
    dist:
        ``int64[n]``; ``dist[v]`` is the computed shortest-path length from
        the source (restricted to ``<= k`` hops for the k-hop algorithms),
        or ``UNREACHABLE`` (-1).  For the approximation algorithm the values
        are the ``(1 + eps)``-approximate lengths.
    source:
        Source vertex.
    k:
        Hop bound, when the algorithm enforces one.
    cost:
        Neuromorphic model cost of the run.
    sim:
        The raw engine result, when the algorithm ran an actual SNN
        (event/gate level); ``None`` for round-level executions.
    """

    dist: np.ndarray
    source: int
    cost: CostReport
    k: Optional[int] = None
    sim: Optional[SimulationResult] = None

    def distance_to(self, v: int) -> Optional[int]:
        """Distance to ``v`` or ``None`` if unreachable."""
        d = int(self.dist[v])
        return None if d == UNREACHABLE else d

    @property
    def reached(self) -> np.ndarray:
        """Boolean mask of vertices with a finite computed distance."""
        return self.dist != UNREACHABLE
